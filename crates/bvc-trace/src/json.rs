//! A minimal flat-JSON reader and the `bvc-trace/v1` schema validator.
//!
//! Trace lines are flat objects (string / number / bool / null values, no
//! nesting), so a full JSON parser is unnecessary; this module parses
//! exactly that subset and rejects anything else — which doubles as a
//! schema guard for `trace-report --check`.

use std::collections::BTreeMap;

/// A flat JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
}

impl JsonValue {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b'{') | Some(b'[') => Err("nested values are not part of the schema".into()),
            Some(_) => {
                let start = self.pos;
                while self
                    .peek()
                    .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
                {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in number")?;
                text.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|_| format!("invalid number `{text}`"))
            }
            None => Err("unexpected end of line".into()),
        }
    }

    fn parse_literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }
}

/// Parses one flat JSON object line into a field map.
pub fn parse_flat(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut cursor = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    cursor.skip_ws();
    cursor.expect(b'{')?;
    let mut map = BTreeMap::new();
    cursor.skip_ws();
    if cursor.peek() == Some(b'}') {
        cursor.pos += 1;
    } else {
        loop {
            cursor.skip_ws();
            let key = cursor.parse_string()?;
            cursor.skip_ws();
            cursor.expect(b':')?;
            let value = cursor.parse_value()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key `{key}`"));
            }
            cursor.skip_ws();
            match cursor.peek() {
                Some(b',') => cursor.pos += 1,
                Some(b'}') => {
                    cursor.pos += 1;
                    break;
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", cursor.pos)),
            }
        }
    }
    cursor.skip_ws();
    if cursor.pos != cursor.bytes.len() {
        return Err(format!("trailing bytes after object at {}", cursor.pos));
    }
    Ok(map)
}

/// Required fields (beyond `ev`/`slot`/`seq`) per event kind, with a coarse
/// type letter: `u` unsigned int, `n` number-or-null, `b` bool, `s` string,
/// `S` string-or-null, `U` unsigned-int-or-null.
const EVENT_FIELDS: &[(&str, &[(&str, char)])] = &[
    (
        "run_open",
        &[("protocol", 's'), ("n", 'u'), ("f", 'u'), ("d", 'u')],
    ),
    ("admission", &[("ok", 'b'), ("detail", 's')]),
    ("validity_check", &[("ok", 'b'), ("detail", 's')]),
    ("round_open", &[("round", 'u')]),
    ("round_close", &[("round", 'u'), ("spread", 'n')]),
    (
        "fault_window",
        &[("round", 'u'), ("kind", 's'), ("detail", 's')],
    ),
    ("send", &[("time", 'u'), ("from", 'u'), ("to", 'u')]),
    ("deliver", &[("time", 'u'), ("from", 'u'), ("to", 'u')]),
    ("drop", &[("time", 'u'), ("from", 'u'), ("to", 'u')]),
    ("vanish", &[("time", 'u'), ("from", 'u'), ("to", 'u')]),
    (
        "local_broadcast",
        &[
            ("time", 'u'),
            ("from", 'u'),
            ("receivers", 's'),
            ("slots", 'u'),
        ],
    ),
    (
        "gamma",
        &[
            ("kind", 's'),
            ("cache", 's'),
            ("path", 'S'),
            ("probe_missed", 'b'),
            ("len", 'u'),
            ("f", 'u'),
            ("d", 'u'),
            ("found", 'b'),
        ],
    ),
    (
        "simplex",
        &[
            ("rows", 'u'),
            ("cols", 'u'),
            ("pivots", 'u'),
            ("class", 'u'),
            ("reused", 'b'),
            ("status", 's'),
        ],
    ),
    ("span_open", &[("instance", 'u'), ("label", 's')]),
    (
        "span_close",
        &[
            ("instance", 'u'),
            ("decided", 'b'),
            ("violated", 'b'),
            ("rounds", 'U'),
        ],
    ),
];

fn type_ok(value: &JsonValue, ty: char) -> bool {
    match ty {
        'u' => value.as_uint().is_some(),
        'n' => matches!(value, JsonValue::Null) || value.as_num().is_some(),
        'b' => value.as_bool().is_some(),
        's' => value.as_str().is_some(),
        'S' => matches!(value, JsonValue::Null) || value.as_str().is_some(),
        'U' => matches!(value, JsonValue::Null) || value.as_uint().is_some(),
        _ => unreachable!("unknown type letter"),
    }
}

/// Validates a full trace document (header + event lines) against the
/// `bvc-trace/v1` schema.  Returns the number of event lines.
///
/// # Errors
///
/// Returns a message naming the first offending line (1-based).
pub fn check_trace(text: &str) -> Result<usize, String> {
    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err("empty trace: missing schema header".into());
    };
    let header = parse_flat(header).map_err(|e| format!("line 1: {e}"))?;
    match header.get("schema").and_then(JsonValue::as_str) {
        Some(schema) if schema == crate::event::SCHEMA => {}
        Some(other) => return Err(format!("line 1: unknown schema `{other}`")),
        None => return Err("line 1: missing `schema` field".into()),
    }
    let mut count = 0usize;
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.is_empty() {
            return Err(format!("line {lineno}: empty line"));
        }
        let fields = parse_flat(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let ev = fields
            .get("ev")
            .and_then(JsonValue::as_str)
            .ok_or(format!("line {lineno}: missing `ev`"))?;
        let spec = EVENT_FIELDS
            .iter()
            .find(|(kind, _)| *kind == ev)
            .ok_or(format!("line {lineno}: unknown event kind `{ev}`"))?;
        for key in ["slot", "seq"] {
            if fields.get(key).and_then(JsonValue::as_uint).is_none() {
                return Err(format!("line {lineno}: missing or non-integer `{key}`"));
            }
        }
        for (field, ty) in spec.1 {
            match fields.get(*field) {
                Some(value) if type_ok(value, *ty) => {}
                Some(_) => {
                    return Err(format!(
                        "line {lineno}: field `{field}` of `{ev}` has the wrong type"
                    ))
                }
                None => return Err(format!("line {lineno}: `{ev}` is missing field `{field}`")),
            }
        }
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CacheLevel, GammaPath, GammaQueryKind, TraceEvent};
    use crate::tracer::render_trace;

    #[test]
    fn parse_flat_round_trips_an_event() {
        let ev = TraceEvent::Simplex {
            rows: 4,
            cols: 12,
            pivots: 7,
            class: 6,
            reused: true,
            status: "optimal".into(),
        };
        let map = parse_flat(&ev.to_json(0, 3)).unwrap();
        assert_eq!(map.get("ev").unwrap().as_str(), Some("simplex"));
        assert_eq!(map.get("pivots").unwrap().as_uint(), Some(7));
        assert_eq!(map.get("reused").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn check_trace_accepts_generated_events() {
        let events = [
            TraceEvent::RunOpen {
                protocol: "restricted-sync".into(),
                n: 9,
                f: 2,
                d: 2,
            },
            TraceEvent::RoundOpen { round: 1 },
            TraceEvent::Gamma {
                kind: GammaQueryKind::Point,
                cache: CacheLevel::Miss,
                path: Some(GammaPath::ActiveSetLp),
                probe_missed: true,
                len: 7,
                f: 2,
                d: 2,
                found: true,
            },
            TraceEvent::LocalBroadcast {
                time: 1,
                from: 0,
                receivers: vec![1, 2],
                slots: 1,
            },
            TraceEvent::RoundClose {
                round: 1,
                spread: None,
            },
        ];
        let lines: Vec<String> = events
            .iter()
            .enumerate()
            .map(|(i, e)| e.to_json(0, i as u64))
            .collect();
        let doc = render_trace(&lines);
        assert_eq!(check_trace(&doc), Ok(5));
    }

    #[test]
    fn check_trace_rejects_missing_header_and_bad_fields() {
        assert!(check_trace("{\"ev\": \"round_open\"}\n").is_err());
        let doc =
            "{\"schema\": \"bvc-trace/v1\"}\n{\"ev\": \"round_open\", \"slot\": 0, \"seq\": 0}\n";
        let err = check_trace(doc).unwrap_err();
        assert!(err.contains("round"), "missing field named: {err}");
    }

    #[test]
    fn nested_json_is_rejected() {
        assert!(parse_flat("{\"a\": {\"b\": 1}}").is_err());
        assert!(parse_flat("{\"a\": [1]}").is_err());
    }
}
