//! The safe-area operator `Γ(Y)` (equation (1) of the paper).
//!
//! For a multiset `Y` of points in `R^d` and a fault bound `f`,
//!
//! ```text
//! Γ(Y) = ∩_{T ⊆ Y, |T| = |Y| − f}  H(T)
//! ```
//!
//! is the intersection of the convex hulls of all sub-multisets obtained by
//! removing `f` members.  Lemma 1 of the paper shows that `Γ(Y) ≠ ∅` whenever
//! `|Y| ≥ (d+1)f + 1` (a corollary of Tverberg's theorem), and both the exact
//! and approximate BVC algorithms pick their decision/update points inside
//! `Γ` of suitable multisets.
//!
//! This module provides membership tests, emptiness checks, and the
//! deterministic point-selection rule shared by all non-faulty processes.
//! The queries are *lazy*: subset index combinations are streamed (via
//! [`Combinations`]) instead of materialising every `ConvexHull` up front,
//! membership short-circuits on the first refuting hull, and the
//! point-selection rule grows an active set of binding hulls instead of
//! solving the monolithic `C(|Y|, |Y|−f)`-block joint LP of Section 2.2.
//! Two exact closed forms bypass the solver entirely:
//!
//! * `d = 1`: `Γ(Y)` is the interval `[y_(f+1), y_(|Y|−f)]` of the sorted
//!   multiset (drop the `f` smallest / largest members);
//! * any `d`: a query point equal to at least `f + 1` members of `Y` lies in
//!   every `(|Y|−f)`-subset hull, and a query point outside the
//!   per-coordinate trimmed range `[y^l_(f+1), y^l_(|Y|−f)]` lies outside
//!   some subset hull.
//!
//! All point-valued queries canonicalise the multiset order first, so the
//! chosen point is a function of the *multiset* (not of the arrival order of
//! its members) — the determinism the Exact BVC algorithm's Step 2 requires,
//! and what makes results shareable through
//! [`GammaCache`](crate::cache::GammaCache).
//!
//! The module also exposes [`lp_size`], the size of the single "joint" linear
//! program of Section 2.2, which experiment E7 compares against the paper's
//! formula.

use crate::combinatorics::{binomial, combinations, unrank_combination, Combinations};
use crate::hull::{ConvexHull, HULL_TOLERANCE};
use crate::multiset::PointMultiset;
use crate::point::Point;
use crate::pool::{self, HEAVY_SUBSET_THRESHOLD};
use bvc_lp::SolveStatus;
use bvc_trace::GammaPath;
use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Which engine path resolved a point-selection query, plus whether the
/// trimmed-box probe was tried and missed on the way there.  This is the
/// raw material of the Γ hot-path breakdown: the cache front end counts it,
/// the trace stream carries it, and `perf-snapshot` publishes hit rates
/// from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GammaAttribution {
    /// The path that produced the answer.
    pub path: GammaPath,
    /// `true` when the trimmed-box centre probe ran and failed membership
    /// before the answering path took over.
    pub probe_missed: bool,
}

/// Outcome of a membership query with full diagnostics: the verdict, the
/// deciding engine branch, and — when a subset-hull scan refuted membership —
/// the ordinal of the refuting hull in the canonical (lexicographic) subset
/// order.  The refuter is what the incremental
/// [`GammaCache`](crate::cache::GammaCache) mode remembers across rounds: a
/// hull that refuted round `t−1`'s query is the first suspect for round `t`'s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ContainsOutcome {
    /// The membership verdict.
    pub value: bool,
    /// The engine branch that decided it.
    pub path: GammaPath,
    /// Ordinal of the refuting subset hull, when a scan refuted membership.
    pub refuter: Option<usize>,
}

/// Tolerance of the `d = 1` closed-form interval test, aligned with the LP
/// phase-1 feasibility threshold so the closed form and the solver agree
/// outside a vanishing boundary band.
const D1_TOLERANCE: f64 = 1e-7;

/// Tolerance under which a query point counts as *equal to* a member of `Y`
/// for the multiplicity accept (far below the LP tolerance, so the accept
/// can never contradict the solver).
const MEMBER_EQ_TOLERANCE: f64 = 1e-12;

/// The safe area `Γ(Y)` for a multiset `Y` and fault bound `f`, represented
/// implicitly by its source multiset.  Defining hulls are streamed on demand
/// by the queries rather than stored.
#[derive(Debug, Clone)]
pub struct SafeArea {
    source: PointMultiset,
    f: usize,
}

impl SafeArea {
    /// Builds `Γ(Y)` for the multiset `y` tolerating `f` removals.  This is
    /// cheap: no hull is materialised until a query needs it.
    ///
    /// # Panics
    ///
    /// Panics if `f >= y.len()` (there must be at least one remaining member).
    pub fn new(y: PointMultiset, f: usize) -> Self {
        assert!(
            f < y.len(),
            "fault bound f = {f} must be smaller than |Y| = {}",
            y.len()
        );
        Self { source: y, f }
    }

    /// The source multiset `Y`.
    pub fn source(&self) -> &PointMultiset {
        &self.source
    }

    /// The fault bound `f`.
    pub fn fault_bound(&self) -> usize {
        self.f
    }

    /// Materialises the defining hulls `H(T)`, one per `(|Y|−f)`-subset `T`,
    /// in canonical (lexicographic) subset order.  The queries below do not
    /// need this; it exists for diagnostics and for spelling out the naive
    /// all-hulls formulation in tests.
    pub fn hulls(&self) -> Vec<ConvexHull> {
        let subset_size = self.source.len() - self.f;
        self.source
            .subsets_of_size(subset_size)
            .into_iter()
            .map(ConvexHull::new)
            .collect()
    }

    /// Returns `true` if `point` lies in `Γ(Y)`, i.e. in every defining hull.
    pub fn contains(&self, point: &Point) -> bool {
        contains_impl(&self.source, self.f, point)
    }

    /// Returns a deterministically chosen point of `Γ(Y)`, or `None` when the
    /// safe area is empty.
    ///
    /// The point is a deterministic function of the multiset (members are
    /// canonically reordered first), so every caller that supplies the same
    /// multiset obtains the same point — which is exactly the "deterministic
    /// function" the Exact BVC algorithm requires in Step 2.
    pub fn find_point(&self) -> Option<Point> {
        find_point_impl(&self.source, self.f)
    }

    /// Returns `true` if `Γ(Y)` is empty.
    pub fn is_empty_region(&self) -> bool {
        is_empty_impl(&self.source, self.f)
    }

    /// Lemma 1 precondition: `|Y| ≥ (d+1)f + 1` guarantees `Γ(Y) ≠ ∅`.
    pub fn lemma1_applies(&self) -> bool {
        self.source.len() > (self.source.dim() + 1) * self.f
    }
}

/// Convenience wrapper: a deterministically chosen point of `Γ(y)` with fault
/// bound `f`, or `None` if the safe area is empty.
///
/// # Panics
///
/// Panics if `f >= y.len()`.
pub fn gamma_point(y: &PointMultiset, f: usize) -> Option<Point> {
    find_point_impl(y, f)
}

/// [`gamma_point`] with outcome attribution: which fast path served the
/// query and whether the trimmed-box probe missed on the way.
///
/// # Panics
///
/// Panics if `f >= y.len()`.
pub fn gamma_point_attributed(y: &PointMultiset, f: usize) -> (Option<Point>, GammaAttribution) {
    find_point_impl_attr(y, f)
}

/// Returns `true` if `point ∈ Γ(y)` with fault bound `f`.
///
/// # Panics
///
/// Panics if `f >= y.len()`.
pub fn gamma_contains(y: &PointMultiset, f: usize, point: &Point) -> bool {
    contains_impl(y, f, point)
}

/// Returns `true` if `Γ(y)` is empty for fault bound `f`.
///
/// # Panics
///
/// Panics if `f >= y.len()`.
pub fn gamma_is_empty(y: &PointMultiset, f: usize) -> bool {
    is_empty_impl(y, f)
}

// ---------------------------------------------------------------------------
// The Γ engine
// ---------------------------------------------------------------------------

/// Lexicographic member order under `f64::total_cmp`, the canonical order
/// all point-valued Γ queries normalise to.
fn lexicographic(a: &Point, b: &Point) -> Ordering {
    a.coords()
        .iter()
        .zip(b.coords())
        .map(|(x, y)| x.total_cmp(y))
        .find(|o| o.is_ne())
        .unwrap_or(Ordering::Equal)
}

/// The multiset with its members in canonical order.
pub(crate) fn canonical_order(y: &PointMultiset) -> PointMultiset {
    let mut pts = y.points().to_vec();
    pts.sort_by(lexicographic);
    PointMultiset::new(pts)
}

/// The closed-form `d = 1` safe area: `[y_(f+1), y_(|Y|−f)]` of the sorted
/// values.  Empty exactly when the lower end exceeds the upper end
/// (`|Y| < 2f + 1`, or ties notwithstanding).
fn d1_interval(y: &PointMultiset, f: usize) -> (f64, f64) {
    let mut vals: Vec<f64> = y.iter().map(|p| p.coord(0)).collect();
    vals.sort_by(f64::total_cmp);
    (vals[f], vals[vals.len() - 1 - f])
}

/// Per-coordinate trimmed range `[y^l_(f+1), y^l_(|Y|−f)]`.  `Γ(Y)` is
/// contained in this box: projecting onto coordinate `l`, the subset that
/// drops the `f` largest (resp. smallest) members in that coordinate bounds
/// every safe point from above (resp. below).
pub(crate) fn trimmed_bounds(y: &PointMultiset, f: usize) -> (Vec<f64>, Vec<f64>) {
    let m = y.len();
    let d = y.dim();
    let mut lo = Vec::with_capacity(d);
    let mut hi = Vec::with_capacity(d);
    let mut column: Vec<f64> = Vec::with_capacity(m);
    for l in 0..d {
        column.clear();
        column.extend(y.iter().map(|p| p.coord(l)));
        column.sort_by(f64::total_cmp);
        lo.push(column[f]);
        hi.push(column[m - 1 - f]);
    }
    (lo, hi)
}

pub(crate) fn find_point_impl(y: &PointMultiset, f: usize) -> Option<Point> {
    find_point_impl_attr(y, f).0
}

pub(crate) fn find_point_impl_attr(
    y: &PointMultiset,
    f: usize,
) -> (Option<Point>, GammaAttribution) {
    assert!(
        f < y.len(),
        "fault bound f = {f} must be smaller than |Y| = {}",
        y.len()
    );
    if y.dim() == 1 {
        return (
            d1_find_point(y, f),
            GammaAttribution {
                path: GammaPath::D1ClosedForm,
                probe_missed: false,
            },
        );
    }
    find_point_presorted_attr(canonical_order(y), f)
}

/// Closed-form `d = 1` point selection: the midpoint of the trimmed
/// interval (deterministic and order-invariant by construction).  The
/// interval counts as non-empty up to [`D1_TOLERANCE`], matching both the
/// closed-form membership band and the joint LP's feasibility threshold
/// (two intervals separated by a gap `g` give a phase-1 optimum of `g`);
/// an inverted-within-tolerance interval yields its midpoint, which lies
/// within the tolerance band of both ends.
fn d1_find_point(y: &PointMultiset, f: usize) -> Option<Point> {
    let (lo, hi) = d1_interval(y, f);
    (lo <= hi + D1_TOLERANCE).then(|| Point::new(vec![0.5 * (lo + hi)]))
}

/// [`find_point_impl_attr`] for a multiset already in canonical order
/// (`d ≥ 2`): lets callers that computed the canonical order for other
/// purposes (the cache builds its key from it) avoid sorting twice.
pub(crate) fn find_point_presorted_attr(
    canon: PointMultiset,
    f: usize,
) -> (Option<Point>, GammaAttribution) {
    let (value, attribution, _refuter) = find_point_presorted_hinted(canon, f, None);
    (value, attribution)
}

/// [`find_point_presorted_attr`] with an optional probe-refuter hint (see
/// [`contains_impl_hinted`]) and, in return, the ordinal of the hull that
/// refuted the trimmed-centre probe this time (for the incremental cache to
/// remember).  The hint only accelerates or skips parts of the probe's
/// membership scan — the chosen point is identical with or without it.
pub(crate) fn find_point_presorted_hinted(
    canon: PointMultiset,
    f: usize,
    hint: Option<usize>,
) -> (Option<Point>, GammaAttribution, Option<usize>) {
    let attributed = |path| GammaAttribution {
        path,
        probe_missed: false,
    };
    if canon.dim() == 1 {
        return (
            d1_find_point(&canon, f),
            attributed(GammaPath::D1ClosedForm),
            None,
        );
    }
    if f == 0 {
        return (
            ConvexHull::common_point(&[ConvexHull::new(canon)]),
            attributed(GammaPath::HullF0),
            None,
        );
    }
    // Cheap deterministic probe before any joint LP: the centre of the
    // trimmed bounding box.  When the honest states have converged into a
    // tight cluster (the steady state of every iterative protocol here) the
    // trimmed centre sits inside the cluster and passes the membership
    // stream for a few microseconds, where the joint LP over near-duplicate
    // generators is at its numerically worst.  The probe is order-invariant,
    // so determinism is unaffected.
    let (lo, hi) = trimmed_bounds(&canon, f);
    let centre = Point::new(lo.iter().zip(&hi).map(|(l, h)| 0.5 * (l + h)).collect());
    let probe = contains_impl_hinted(&canon, f, &centre, hint);
    if probe.value {
        return (Some(centre), attributed(GammaPath::ProbeHit), None);
    }
    let (value, naive_used) = find_point_active(&canon, f);
    (
        value,
        GammaAttribution {
            path: if naive_used {
                GammaPath::NaiveFallback
            } else {
                GammaPath::ActiveSetLp
            },
            probe_missed: true,
        },
        probe.refuter,
    )
}

/// Active-set search for a point of `Γ(Y)`: the shared working-set loop
/// ([`ConvexHull::active_set_common_point`]) over the `(|Y|−f)`-subset
/// hulls, materialised on demand from the streamed combination enumerator
/// (the shared loop requests each ordinal at most once, and only in
/// non-decreasing order, so one forward pass over the stream suffices).
/// The second return flags whether the naive monolithic fallback ran.
fn find_point_active(y: &PointMultiset, f: usize) -> (Option<Point>, bool) {
    let m = y.len();
    let k = m - f;
    let count = usize::try_from(binomial(m, k)).unwrap_or(usize::MAX);
    if count >= HEAVY_SUBSET_THRESHOLD {
        return find_point_active_heavy(y, f, count);
    }
    let mut stream = Combinations::new(m, k);
    let mut index_lists: Vec<Vec<usize>> = Vec::new();
    let hull_at = move |ordinal: usize| {
        while index_lists.len() <= ordinal {
            let idx = stream
                .next_ref()
                .expect("ordinal is below the combination count");
            index_lists.push(idx.to_vec());
        }
        ConvexHull::new(y.select(&index_lists[ordinal]))
    };
    let naive_used = Cell::new(false);
    let value = ConvexHull::active_set_common_point(count, hull_at, || {
        naive_used.set(true);
        naive_find_point(y, f)
    });
    (value, naive_used.get())
}

/// [`find_point_active`] for heavy shapes (at least
/// [`HEAVY_SUBSET_THRESHOLD`] subset hulls): the same working-set loop, but
/// the per-candidate verification scan — the part whose cost is linear in
/// `C(m, m−f)` — runs on the deterministic worker pool.  The pool reports
/// the *minimum* violated ordinal, which is exactly the ordinal the
/// sequential scan of [`ConvexHull::active_set_common_point`] would add to
/// the working set, so the loop visits the same working sets and returns the
/// same point as the sequential engine at every worker count.  Joint LPs and
/// the final working-set re-verification stay on the calling thread (they
/// are small and their trace events must stay on the caller's scope).
fn find_point_active_heavy(y: &PointMultiset, f: usize, count: usize) -> (Option<Point>, bool) {
    let m = y.len();
    let k = m - f;
    let hull_for = |ordinal: usize| -> ConvexHull {
        let idx =
            unrank_combination(m, k, ordinal as u128).expect("ordinal is below the subset count");
        ConvexHull::new(y.select(&idx))
    };
    let mut built: HashMap<usize, ConvexHull> = HashMap::new();
    built.insert(0, hull_for(0));
    let mut active: Vec<usize> = vec![0];
    loop {
        let working: Vec<&ConvexHull> = active.iter().map(|o| &built[o]).collect();
        let (status, candidate) = ConvexHull::joint_candidate(&working);
        let z = match (status, candidate) {
            (SolveStatus::Infeasible, _) => return (None, false),
            (SolveStatus::Optimal, Some(z)) => z,
            // Unbounded cannot arise (the candidate is pinned inside the
            // first hull) and a stalled solve certifies nothing; treat both
            // as numerical trouble.
            _ => return (naive_find_point(y, f), true),
        };
        let active_now = &active;
        let violated = pool::min_matching_ordinal(count, &|ordinal, ws| {
            !active_now.contains(&ordinal) && !hull_for(ordinal).contains_pooled(&z, ws)
        });
        match violated {
            Some(ordinal) => {
                built.insert(ordinal, hull_for(ordinal));
                active.push(ordinal);
            }
            None => {
                // The candidate passed every hull outside the working set;
                // re-verify the working set itself to guard against joint-LP
                // round-off before accepting.
                if active.iter().all(|o| built[o].contains(&z)) {
                    return (Some(z), false);
                }
                return (naive_find_point(y, f), true);
            }
        }
    }
}

/// The naive all-LPs formulation (every hull materialised, one monolithic
/// joint LP): the semantic reference the lazy engine falls back to on
/// numerical disagreement.
fn naive_find_point(y: &PointMultiset, f: usize) -> Option<Point> {
    let hulls: Vec<ConvexHull> = y
        .subsets_of_size(y.len() - f)
        .into_iter()
        .map(ConvexHull::new)
        .collect();
    ConvexHull::common_point(&hulls)
}

pub(crate) fn contains_impl(y: &PointMultiset, f: usize, point: &Point) -> bool {
    contains_impl_attr(y, f, point).0
}

/// [`contains_impl`] with attribution of the branch that decided
/// membership.
pub(crate) fn contains_impl_attr(y: &PointMultiset, f: usize, point: &Point) -> (bool, GammaPath) {
    let outcome = contains_impl_hinted(y, f, point, None);
    (outcome.value, outcome.path)
}

/// The full membership engine, with an optional *refuter hint*: the ordinal
/// of a subset hull that refuted an earlier, structurally similar query
/// (remembered by the incremental cache mode).  The hint is checked first —
/// if its hull refutes the point, the query resolves as
/// [`GammaPath::HintReject`] without scanning — and is otherwise skipped by
/// the scan (it is already known non-refuting), so a hint changes cost but
/// **never the verdict**: any refuting hull is a sound non-membership
/// certificate, and a non-refuting hint falls through to the same exhaustive
/// scan.
///
/// Shapes with at least [`HEAVY_SUBSET_THRESHOLD`] subset hulls run the scan
/// on the deterministic worker pool ([`pool::min_matching_ordinal`]), which
/// reports the same first-refuter ordinal as the sequential stream at every
/// worker count.
pub(crate) fn contains_impl_hinted(
    y: &PointMultiset,
    f: usize,
    point: &Point,
    hint: Option<usize>,
) -> ContainsOutcome {
    assert!(
        f < y.len(),
        "fault bound f = {f} must be smaller than |Y| = {}",
        y.len()
    );
    assert_eq!(
        point.dim(),
        y.dim(),
        "query point dimension must match the multiset dimension"
    );
    let decided = |value, path| ContainsOutcome {
        value,
        path,
        refuter: None,
    };
    if y.dim() == 1 {
        let (lo, hi) = d1_interval(y, f);
        let c = point.coord(0);
        return decided(
            c >= lo - D1_TOLERANCE && c <= hi + D1_TOLERANCE,
            GammaPath::D1ClosedForm,
        );
    }
    if f == 0 {
        return decided(
            ConvexHull::new(y.clone()).contains(point),
            GammaPath::HullF0,
        );
    }
    // Multiplicity accept: a point equal to more than `f` members survives
    // every removal of `f` members.
    let copies = y
        .iter()
        .filter(|g| g.approx_eq(point, MEMBER_EQ_TOLERANCE))
        .count();
    if copies > f {
        return decided(true, GammaPath::MultiplicityAccept);
    }
    // Trimmed bounding-box reject: Γ(Y) lies inside the per-coordinate
    // trimmed range.
    let (lo, hi) = trimmed_bounds(y, f);
    if point
        .coords()
        .iter()
        .zip(lo.iter().zip(&hi))
        .any(|(&c, (&l, &h))| c < l - HULL_TOLERANCE || c > h + HULL_TOLERANCE)
    {
        return decided(false, GammaPath::BoxReject);
    }
    let m = y.len();
    let k = m - f;
    let count = usize::try_from(binomial(m, k)).unwrap_or(usize::MAX);
    // Refuter-hint pre-check.
    if let Some(h) = hint.filter(|&h| h < count) {
        let idx = unrank_combination(m, k, h as u128).expect("hint ordinal is below the count");
        if !ConvexHull::new(y.select(&idx)).contains(point) {
            return ContainsOutcome {
                value: false,
                path: GammaPath::HintReject,
                refuter: Some(h),
            };
        }
    }
    if count >= HEAVY_SUBSET_THRESHOLD {
        // Parallel scan: the pool reports the minimum refuting ordinal,
        // which is exactly what the sequential stream below would find.
        let refuter = pool::min_matching_ordinal(count, &|ordinal, ws| {
            Some(ordinal) != hint && {
                let idx = unrank_combination(m, k, ordinal as u128)
                    .expect("pool ordinals are below the count");
                !ConvexHull::new(y.select(&idx)).contains_pooled(point, ws)
            }
        });
        return ContainsOutcome {
            value: refuter.is_none(),
            path: GammaPath::StreamScan,
            refuter,
        };
    }
    // Stream the subsets and short-circuit on the first refuting hull.
    let mut stream = Combinations::new(m, k);
    let mut ordinal = 0usize;
    while let Some(idx) = stream.next_ref() {
        if Some(ordinal) != hint && !ConvexHull::new(y.select(idx)).contains(point) {
            return ContainsOutcome {
                value: false,
                path: GammaPath::StreamScan,
                refuter: Some(ordinal),
            };
        }
        ordinal += 1;
    }
    ContainsOutcome {
        value: true,
        path: GammaPath::StreamScan,
        refuter: None,
    }
}

pub(crate) fn is_empty_impl(y: &PointMultiset, f: usize) -> bool {
    assert!(
        f < y.len(),
        "fault bound f = {f} must be smaller than |Y| = {}",
        y.len()
    );
    if y.dim() == 1 {
        let (lo, hi) = d1_interval(y, f);
        return lo > hi + D1_TOLERANCE;
    }
    find_point_impl(y, f).is_none()
}

// ---------------------------------------------------------------------------
// Subset-level helpers
// ---------------------------------------------------------------------------

/// A deterministically chosen common point of the hulls of the *given*
/// sub-multisets of `y` (identified by index lists), or `None` if they do not
/// intersect.
///
/// This is the primitive behind the witness-optimised Step 2 of the
/// asynchronous algorithm (Appendix F): instead of intersecting the hulls of
/// *all* `(n−f)`-subsets, only the subsets advertised by witnesses are used.
///
/// # Panics
///
/// Panics if `subsets` is empty or any index list is empty/out of range.
pub fn common_point_of_subsets(y: &PointMultiset, subsets: &[Vec<usize>]) -> Option<Point> {
    assert!(!subsets.is_empty(), "need at least one subset");
    let hulls: Vec<ConvexHull> = subsets
        .iter()
        .map(|idx| ConvexHull::new(y.select(idx)))
        .collect();
    ConvexHull::common_point_lazy(&hulls)
}

/// The intersection `∩_i H(Y − {i})` of the *leave-one-out* hulls of `y`
/// (used by the necessity argument of Theorem 1, equation (16) in Appendix C):
/// returns a point of the intersection, or `None` when it is empty.
pub fn leave_one_out_intersection(y: &PointMultiset) -> Option<Point> {
    let n = y.len();
    assert!(
        n >= 2,
        "leave-one-out intersection needs at least two points"
    );
    let all: Vec<usize> = (0..n).collect();
    let subsets: Vec<Vec<usize>> = (0..n)
        .map(|drop| all.iter().copied().filter(|&i| i != drop).collect())
        .collect();
    common_point_of_subsets(y, &subsets)
}

/// Size of the joint linear program of Section 2.2 for parameters
/// `(n, f, d)`: returns `(variables, constraints)` where
/// `variables = d + C(n, n−f)·(n−f)` and
/// `constraints = C(n, n−f)·(d + 1 + n − f)`.
///
/// Saturates at `u128::MAX` for out-of-range parameters.
pub fn lp_size(n: usize, f: usize, d: usize) -> (u128, u128) {
    assert!(f < n, "f must be smaller than n");
    let subsets = binomial(n, n - f);
    let vars = (d as u128).saturating_add(subsets.saturating_mul((n - f) as u128));
    let cons = subsets.saturating_mul((d + 1 + n - f) as u128);
    (vars, cons)
}

/// Enumerates the index sets of all `(|y|−f)`-subsets of `y`, in the canonical
/// (lexicographic) order used by [`SafeArea`].
pub fn gamma_subset_indices(len: usize, f: usize) -> Vec<Vec<usize>> {
    assert!(
        f < len,
        "fault bound must be smaller than the multiset size"
    );
    combinations(len, len - f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[&[f64]]) -> PointMultiset {
        PointMultiset::new(coords.iter().map(|c| Point::new(c.to_vec())).collect())
    }

    #[test]
    fn gamma_with_f_zero_is_the_full_hull() {
        let y = pts(&[&[0.0, 0.0], &[2.0, 0.0], &[0.0, 2.0]]);
        let area = SafeArea::new(y, 0);
        assert_eq!(area.hulls().len(), 1);
        assert!(area.contains(&Point::new(vec![0.5, 0.5])));
        assert!(!area.contains(&Point::new(vec![2.0, 2.0])));
    }

    #[test]
    fn gamma_scalar_case_is_trimmed_interval() {
        // d = 1, f = 1, Y = {0, 1, 2, 3, 10}. Γ is the intersection of hulls of
        // all 4-subsets = [1, 3]: dropping the largest still leaves [0,3];
        // dropping the smallest leaves [1,10]; intersection [1,3].
        let y = pts(&[&[0.0], &[1.0], &[2.0], &[3.0], &[10.0]]);
        let area = SafeArea::new(y, 1);
        assert!(area.contains(&Point::new(vec![1.0])));
        assert!(area.contains(&Point::new(vec![2.5])));
        assert!(area.contains(&Point::new(vec![3.0])));
        assert!(!area.contains(&Point::new(vec![0.5])));
        assert!(!area.contains(&Point::new(vec![3.5])));
        let p = area.find_point().expect("non-empty by Lemma 1");
        assert!(p.coord(0) >= 1.0 - 1e-6 && p.coord(0) <= 3.0 + 1e-6);
    }

    #[test]
    fn scalar_closed_form_picks_the_interval_midpoint() {
        let y = pts(&[&[0.0], &[1.0], &[2.0], &[3.0], &[10.0]]);
        let p = gamma_point(&y, 1).unwrap();
        assert!((p.coord(0) - 2.0).abs() < 1e-12, "midpoint of [1, 3]");
    }

    #[test]
    fn lemma1_guarantees_nonempty_gamma_in_2d() {
        // d = 2, f = 1, need |Y| ≥ 4. Use 4 generic points.
        let y = pts(&[&[0.0, 0.0], &[4.0, 0.0], &[0.0, 4.0], &[4.0, 4.0]]);
        let area = SafeArea::new(y, 1);
        assert!(area.lemma1_applies());
        let p = area.find_point().expect("Lemma 1");
        assert!(area.contains(&p));
    }

    #[test]
    fn lemma1_guarantees_nonempty_gamma_for_f_two() {
        // d = 2, f = 2, need |Y| ≥ 7: regular heptagon (the Figure 1 setup).
        let y = heptagon();
        let area = SafeArea::new(y, 2);
        assert!(area.lemma1_applies());
        let p = area.find_point().expect("Lemma 1 for the heptagon");
        assert!(area.contains(&p));
    }

    fn heptagon() -> PointMultiset {
        let pts: Vec<Point> = (0..7)
            .map(|k| {
                let theta = 2.0 * std::f64::consts::PI * k as f64 / 7.0;
                Point::new(vec![theta.cos(), theta.sin()])
            })
            .collect();
        PointMultiset::new(pts)
    }

    #[test]
    fn gamma_can_be_empty_below_lemma1_threshold() {
        // Theorem 1's construction: d = 2, the standard basis plus the origin
        // gives |Y| = d + 1 = 3 points. With f = 1, the leave-one-out hulls
        // have empty intersection, and so does Γ (|T| = 2 here).
        let y = pts(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]);
        assert!(gamma_is_empty(&y, 1));
        assert!(leave_one_out_intersection(&y).is_none());
    }

    #[test]
    fn leave_one_out_intersection_nonempty_with_enough_points() {
        // d = 2, n = 4 = d + 2: Theorem 1 says n ≥ d+2 is needed for f = 1;
        // with the basis vectors plus two interior points the intersection is
        // non-empty for this particular input set.
        let y = pts(&[&[1.0, 0.0], &[0.0, 1.0], &[0.3, 0.3], &[0.4, 0.2]]);
        let p = leave_one_out_intersection(&y);
        assert!(p.is_some());
    }

    #[test]
    fn gamma_point_is_deterministic() {
        let y = pts(&[
            &[0.0, 0.0],
            &[4.0, 0.0],
            &[0.0, 4.0],
            &[4.0, 4.0],
            &[2.0, 2.0],
        ]);
        let p1 = gamma_point(&y, 1).unwrap();
        let p2 = gamma_point(&y, 1).unwrap();
        assert!(p1.approx_eq(&p2, 1e-12));
    }

    #[test]
    fn gamma_point_is_invariant_under_member_reordering() {
        let a = pts(&[
            &[0.0, 0.0],
            &[4.0, 0.0],
            &[0.0, 4.0],
            &[4.0, 4.0],
            &[2.0, 2.0],
        ]);
        let b = pts(&[
            &[4.0, 4.0],
            &[0.0, 4.0],
            &[2.0, 2.0],
            &[0.0, 0.0],
            &[4.0, 0.0],
        ]);
        let pa = gamma_point(&a, 1).unwrap();
        let pb = gamma_point(&b, 1).unwrap();
        assert!(
            pa.approx_eq(&pb, 1e-12),
            "the chosen point must be a function of the multiset: {pa} vs {pb}"
        );
    }

    #[test]
    fn gamma_point_lies_in_hull_of_every_subset() {
        let y = pts(&[
            &[0.0, 0.0],
            &[4.0, 0.0],
            &[0.0, 4.0],
            &[4.0, 4.0],
            &[2.0, 2.0],
        ]);
        let area = SafeArea::new(y, 1);
        let p = area.find_point().unwrap();
        for hull in area.hulls() {
            assert!(hull.contains(&p));
        }
    }

    #[test]
    fn gamma_contains_helper_agrees_with_safe_area() {
        let y = pts(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        assert!(gamma_contains(&y, 1, &Point::new(vec![1.5])));
        assert!(!gamma_contains(&y, 1, &Point::new(vec![0.1])));
    }

    #[test]
    fn common_point_of_selected_subsets() {
        let y = pts(&[&[0.0], &[1.0], &[2.0], &[3.0], &[4.0]]);
        // Two overlapping subsets: {0,1,2} (hull [0,2]) and {2,3,4} (hull [2,4]).
        let p = common_point_of_subsets(&y, &[vec![0, 1, 2], vec![2, 3, 4]]).unwrap();
        assert!((p.coord(0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn lp_size_matches_paper_formula() {
        // n = 4, f = 1, d = 3: C(4,3) = 4 subsets,
        // vars = 3 + 4*3 = 15, constraints = 4*(3+1+3) = 28.
        assert_eq!(lp_size(4, 1, 3), (15, 28));
        // n = 7, f = 2, d = 2: C(7,5) = 21, vars = 2 + 21*5 = 107,
        // constraints = 21*(2+1+5) = 168.
        assert_eq!(lp_size(7, 2, 2), (107, 168));
    }

    #[test]
    fn gamma_subset_indices_counts() {
        assert_eq!(gamma_subset_indices(5, 1).len(), 5);
        assert_eq!(gamma_subset_indices(7, 2).len(), 21);
    }

    #[test]
    #[should_panic(expected = "smaller than")]
    fn fault_bound_too_large_panics() {
        let y = pts(&[&[0.0], &[1.0]]);
        let _ = SafeArea::new(y, 2);
    }

    #[test]
    fn duplicate_points_respect_multiplicity() {
        // Y = {0, 0, 5}, f = 1: subsets of size 2 are {0,0}, {0,5}, {0,5};
        // Γ = {0} ∩ [0,5] ∩ [0,5] = {0}.
        let y = pts(&[&[0.0], &[0.0], &[5.0]]);
        let area = SafeArea::new(y, 1);
        assert!(area.contains(&Point::new(vec![0.0])));
        assert!(!area.contains(&Point::new(vec![1.0])));
        let p = area.find_point().unwrap();
        assert!(p.coord(0).abs() < 1e-6);
    }

    #[test]
    fn multiplicity_accept_in_two_dimensions() {
        // The point (1, 1) appears twice with f = 1: it survives any single
        // removal, so it is in Γ regardless of the other members.
        let y = pts(&[&[1.0, 1.0], &[1.0, 1.0], &[9.0, 0.0], &[0.0, 9.0]]);
        assert!(gamma_contains(&y, 1, &Point::new(vec![1.0, 1.0])));
    }

    #[test]
    fn trimmed_box_reject_in_two_dimensions() {
        // Γ of 5 box corners + centre with f = 1 lies within the trimmed
        // coordinate ranges; a point beyond them is rejected without LPs.
        let y = pts(&[
            &[0.0, 0.0],
            &[4.0, 0.0],
            &[0.0, 4.0],
            &[4.0, 4.0],
            &[2.0, 2.0],
        ]);
        assert!(!gamma_contains(&y, 1, &Point::new(vec![4.0, 4.0])));
        assert!(!gamma_contains(&y, 1, &Point::new(vec![-1.0, 2.0])));
    }

    #[test]
    fn empty_gamma_detected_in_scalar_case_without_lps() {
        // |Y| = 2, f = 1: dropping either member leaves disjoint singletons.
        let y = pts(&[&[0.0], &[1.0]]);
        assert!(gamma_is_empty(&y, 1));
        assert!(gamma_point(&y, 1).is_none());
    }

    #[test]
    fn attribution_reports_the_answering_path() {
        // d = 1 resolves in closed form.
        let scalar = pts(&[&[0.0], &[1.0], &[2.0]]);
        let (p, attr) = gamma_point_attributed(&scalar, 1);
        assert!(p.is_some());
        assert_eq!(attr.path, GammaPath::D1ClosedForm);
        assert!(!attr.probe_missed);

        // f = 0 is a single full-hull LP.
        let square = pts(&[&[0.0, 0.0], &[2.0, 0.0], &[0.0, 2.0]]);
        let (_, attr) = gamma_point_attributed(&square, 0);
        assert_eq!(attr.path, GammaPath::HullF0);

        // Square + centre: the trimmed-box centre is a member of Γ, so the
        // probe serves the query.
        let clustered = pts(&[
            &[0.0, 0.0],
            &[4.0, 0.0],
            &[0.0, 4.0],
            &[4.0, 4.0],
            &[2.0, 2.0],
        ]);
        let (p, attr) = gamma_point_attributed(&clustered, 1);
        assert!(p.is_some());
        assert_eq!(attr.path, GammaPath::ProbeHit);

        // An empty Γ can never be served by the probe: the LP path reports
        // the miss.
        let empty = pts(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]);
        let (p, attr) = gamma_point_attributed(&empty, 1);
        assert!(p.is_none());
        assert!(attr.probe_missed);
        assert!(matches!(
            attr.path,
            GammaPath::ActiveSetLp | GammaPath::NaiveFallback
        ));
    }

    #[test]
    fn membership_attribution_names_the_deciding_branch() {
        let y = pts(&[
            &[0.0, 0.0],
            &[4.0, 0.0],
            &[0.0, 4.0],
            &[4.0, 4.0],
            &[2.0, 2.0],
        ]);
        let (ok, path) = contains_impl_attr(&y, 1, &Point::new(vec![-1.0, 2.0]));
        assert!(!ok);
        assert_eq!(path, GammaPath::BoxReject);
        let (ok, path) = contains_impl_attr(&y, 1, &Point::new(vec![2.0, 2.0]));
        assert!(ok);
        assert_eq!(path, GammaPath::StreamScan);
        let dup = pts(&[&[1.0, 1.0], &[1.0, 1.0], &[9.0, 0.0], &[0.0, 9.0]]);
        let (ok, path) = contains_impl_attr(&dup, 1, &Point::new(vec![1.0, 1.0]));
        assert!(ok);
        assert_eq!(path, GammaPath::MultiplicityAccept);
    }

    #[test]
    fn scalar_interval_inverted_within_tolerance_is_not_empty() {
        // The trimmed interval is [5e-8, 0.0] — inverted by less than the
        // closed form's tolerance, and the joint LP (phase-1 optimum = gap)
        // would also call the intersection feasible.  Emptiness, point
        // selection and membership must agree with each other.
        let y = pts(&[&[0.0], &[5e-8]]);
        assert!(!gamma_is_empty(&y, 1));
        let p = gamma_point(&y, 1).expect("within-tolerance interval");
        assert!(gamma_contains(&y, 1, &p));
        assert!(gamma_contains(&y, 1, &Point::new(vec![2.5e-8])));
    }
}
