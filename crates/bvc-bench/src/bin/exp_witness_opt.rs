//! E10 — Appendix F: the witness optimisation of Step 2.
//!
//! Without the optimisation, a process's `Z_i` contains one safe-area point
//! per `(n−f)`-subset of `B_i[t]` — up to `C(|B_i|, n−f)` of them.  With the
//! optimisation it only uses the subsets advertised by its witnesses, so
//! `|Z_i| ≤ n`, and the contraction constant improves from
//! `γ = 1/(n·C(n,n−f))` to `γ = 1/n²`.  This experiment runs both variants on
//! identical inputs, records the observed `|Z_i|`, the round budget, the
//! wall-clock time, and checks both converge.

use bvc_adversary::ByzantineStrategy;
use bvc_bench::{experiment_header, fmt, honest_workload, mark, Table};
use bvc_core::{BvcSession, ProtocolKind, RunConfig, Setting, UpdateRule};
use bvc_geometry::combinatorics::binomial;
use std::time::Instant;

fn main() {
    experiment_header(
        "E10: Appendix F witness optimisation",
        "|Z_i| drops from up to C(|B_i|, n−f) to at most n; γ improves from 1/(n·C(n,n−f)) \
         to 1/n²; correctness is preserved",
    );

    let mut table = Table::new(&[
        "d",
        "f",
        "n",
        "rule",
        "max |Z_i| observed",
        "|Z_i| bound",
        "round budget",
        "ε-agreement",
        "validity",
        "wall-clock (s)",
    ]);
    let eps = 0.05;
    for &(d, f) in &[(1usize, 1usize), (2, 1)] {
        let n = Setting::ApproxAsync.min_processes(d, f);
        for rule in [UpdateRule::FullSubsets, UpdateRule::WitnessOptimized] {
            let inputs = honest_workload(900 + d as u64, n - f, d);
            let start = Instant::now();
            let run = BvcSession::new(
                ProtocolKind::Approx,
                RunConfig::new(n, f, d)
                    .honest_inputs(inputs)
                    .adversary(ByzantineStrategy::Equivocate)
                    .epsilon(eps)
                    .update_rule(rule)
                    .seed(17),
            )
            .expect("bound satisfied")
            .run();
            let elapsed = start.elapsed().as_secs_f64();
            let max_zi = run
                .outputs()
                .iter()
                .flat_map(|o| o.zi_sizes.iter().copied())
                .max()
                .unwrap_or(0);
            let bound = match rule {
                UpdateRule::FullSubsets => binomial(n, n - f).to_string(),
                UpdateRule::WitnessOptimized => n.to_string(),
            };
            let rule_name = match rule {
                UpdateRule::FullSubsets => "full subsets (Section 3.2)",
                UpdateRule::WitnessOptimized => "witness optimised (Appendix F)",
            };
            table.row(&[
                d.to_string(),
                f.to_string(),
                n.to_string(),
                rule_name.to_string(),
                max_zi.to_string(),
                bound,
                run.round_budget().expect("approx budget").to_string(),
                mark(run.verdict().agreement),
                mark(run.verdict().validity),
                fmt(elapsed, 2),
            ]);
        }
    }
    table.print();
    println!();
    println!(
        "Both variants satisfy ε-agreement and validity. The witness-optimised rule keeps \
         |Z_i| ≤ n as Appendix F promises; for f = 1 the subset counts coincide (C(n, n−1) = n) \
         so the benefit is visible mainly in the larger-f configurations and in the γ used for \
         the round budget."
    );
}
