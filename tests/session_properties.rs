//! Property tests pinning the session API's config/driver separation: one
//! `RunConfig` is protocol-agnostic data, and dispatching it to different
//! drivers changes the execution — never the configuration-derived facts.

use bvc::core::{BvcSession, ProtocolKind, RunConfig, Setting, ValidityMode};
use bvc::geometry::{ConvexHull, Point, PointMultiset};
use proptest::prelude::*;

fn point_strategy(d: usize) -> impl Strategy<Value = Point> {
    prop::collection::vec(0.0f64..1.0, d).prop_map(Point::new)
}

proptest! {
    // End-to-end protocol executions are comparatively expensive; keep the
    // case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A `RunConfig` built once and dispatched to exact vs restricted-sync
    /// on the same seed: the honest-input hull the verdicts are scored
    /// against is identical (the config owns the inputs; no driver mutates
    /// them), the recorded `ValidityCheck.required_n` is the same (at
    /// d = 1, f = 1 both bounds are 4 — max(3f+1, 2f+1) and (d+2)f+1), and
    /// every decision of either driver lies in that one shared hull.
    #[test]
    fn one_config_dispatched_to_two_drivers_shares_hull_and_requirement(
        inputs in prop::collection::vec(point_strategy(1), 5),
        seed in 0u64..1000,
    ) {
        let config = RunConfig::new(6, 1, 1)
            .honest_inputs(inputs.clone())
            .epsilon(0.1)
            .seed(seed);
        let exact = BvcSession::new(ProtocolKind::Exact, config.clone())
            .expect("n = 6 satisfies the exact bound")
            .run();
        let restricted = BvcSession::new(ProtocolKind::RestrictedSync, config)
            .expect("n = 6 satisfies the restricted-sync bound")
            .run();

        // Config-derived facts are driver-independent.
        prop_assert_eq!(exact.honest_inputs(), restricted.honest_inputs());
        prop_assert_eq!(exact.honest_inputs(), &inputs[..]);
        let exact_check = exact.validity().expect("recorded");
        let restricted_check = restricted.validity().expect("recorded");
        prop_assert_eq!(exact_check.required_n, 4);
        prop_assert_eq!(
            exact_check.required_n, restricted_check.required_n,
            "at d = 1, f = 1 the two settings' bounds coincide"
        );
        prop_assert_eq!(&exact_check.mode, &ValidityMode::Strict);
        prop_assert!(exact_check.satisfied && restricted_check.satisfied);
        prop_assert_eq!(
            exact_check.required_n,
            Setting::ExactSync.min_processes(1, 1)
        );
        prop_assert_eq!(
            restricted_check.required_n,
            Setting::RestrictedSync.min_processes(1, 1)
        );

        // The executions differ per protocol, but both are scored against
        // the one hull the shared config defines.
        let hull = ConvexHull::new(PointMultiset::new(inputs));
        for report in [&exact, &restricted] {
            prop_assert!(report.verdict().all_hold(), "{:?}", report.verdict());
            for decision in report.decisions() {
                prop_assert!(hull.contains(decision), "{decision} left the hull");
            }
        }
        prop_assert_eq!(exact.protocol(), ProtocolKind::Exact);
        prop_assert_eq!(restricted.protocol(), ProtocolKind::RestrictedSync);
    }

    /// Dispatch does not consume config determinism: the same config run
    /// twice through the same driver is bit-identical, and cloning the
    /// config before the first dispatch changes nothing.
    #[test]
    fn config_reuse_is_bit_deterministic(
        inputs in prop::collection::vec(point_strategy(2), 4),
        seed in 0u64..1000,
    ) {
        let config = RunConfig::new(5, 1, 2)
            .honest_inputs(inputs)
            .epsilon(0.1)
            .seed(seed);
        let a = BvcSession::new(ProtocolKind::Exact, config.clone())
            .expect("bound satisfied")
            .run();
        let b = BvcSession::new(ProtocolKind::Exact, config)
            .expect("bound satisfied")
            .run();
        prop_assert_eq!(a.decisions(), b.decisions());
        prop_assert_eq!(a.verdict(), b.verdict());
        prop_assert_eq!(a.rounds(), b.rounds());
    }
}
