//! The session API: configure once, dispatch to any protocol, get one
//! report.
//!
//! A [`BvcSession`] wires a protocol-agnostic [`RunConfig`] to one of the
//! seven [`ProtocolKind`]s — Exact BVC (synchronous), Approximate BVC
//! (asynchronous), the two Section-4 restricted-round variants, the
//! iterative incomplete-graph protocol, and exact consensus on arbitrary
//! directed graphs under point-to-point or local-broadcast delivery —
//! validates the configuration **once**
//! ([`RunConfig::validate`] is the only admission point in the workspace),
//! executes the matching [`ProtocolDriver`], and scores the outcome into a
//! unified [`RunReport`].
//!
//! ```
//! use bvc_core::{BvcSession, ByzantineStrategy, ProtocolKind, RunConfig};
//! use bvc_geometry::Point;
//!
//! // d = 2, f = 1 ⇒ n ≥ max(3f+1, (d+1)f+1) = 4; use n = 5.
//! let config = RunConfig::new(5, 1, 2)
//!     .honest_inputs(vec![
//!         Point::new(vec![0.0, 0.0]),
//!         Point::new(vec![1.0, 0.0]),
//!         Point::new(vec![0.0, 1.0]),
//!         Point::new(vec![1.0, 1.0]),
//!     ])
//!     .adversary(ByzantineStrategy::Equivocate)
//!     .seed(42);
//! let report = BvcSession::new(ProtocolKind::Exact, config)
//!     .expect("parameters satisfy the resilience bound")
//!     .run();
//! assert!(report.verdict().all_hold());
//! ```

pub mod config;
pub mod report;

mod approx;
mod directed;
mod exact;
mod iterative;
mod restricted_async;
mod restricted_sync;

pub use config::{InstanceOverrides, ProtocolKind, RunConfig};
pub use report::{RunReport, Verdict};

use crate::approx::ApproxOutput;
use crate::config::{BvcConfig, BvcError};
use crate::validity::validity_check;
use bvc_adversary::{ByzantineStrategy, PointForge};
use bvc_geometry::{GammaCache, Point, SharedGammaCache};
use bvc_net::ExecutionStats;
use bvc_topology::{Sufficiency, Topology};
use std::sync::Arc;

/// What a [`ProtocolDriver`] hands back to the session: the raw execution
/// outcome, before verdict scoring and report assembly (which are uniform
/// across protocols and live in the session).
#[derive(Debug, Clone)]
pub struct DriverOutcome {
    /// The honest processes' decisions, in honest-index order (processes
    /// that never decided are absent).
    pub decisions: Vec<Point>,
    /// Whether every honest process decided within the executor's budget.
    pub terminated: bool,
    /// The agreement tolerance the verdict is judged at (ε, or the LP
    /// round-off allowance for exact consensus).
    pub tolerance: f64,
    /// Rounds (synchronous) or scheduler delivery steps (asynchronous)
    /// executed.
    pub rounds: usize,
    /// Message statistics of the execution.
    pub stats: ExecutionStats,
    /// The protocol's static round budget, if it has one.
    pub round_budget: Option<usize>,
    /// Full per-process outputs, for protocols that record them (the
    /// approximate protocol's decision + state history + `|Z_i|` sizes).
    pub outputs: Vec<ApproxOutput>,
    /// The topology sufficiency verdict of the condition-governed protocols
    /// (iterative and the two directed exact kinds).
    pub sufficiency: Option<Sufficiency>,
}

/// One protocol's execution strategy: consume a validated session, run the
/// protocol over the shared net/Γ machinery, and return the raw outcome.
///
/// The seven built-in drivers (one per [`ProtocolKind`]) are selected by
/// [`BvcSession::run`]; [`BvcSession::run_with`] accepts any implementation,
/// so experimental protocols can ride the same config/report plumbing
/// without touching it.
pub trait ProtocolDriver {
    /// Executes the protocol.  The session is fully validated: the inputs
    /// have the right shape, the resilience bound holds, and
    /// [`BvcSession::topology`] is resolved (complete graph by default).
    /// The report's protocol and admission metadata come from the
    /// [`ProtocolKind`] the session was bound to, not from the driver.
    fn execute(&self, session: &BvcSession) -> DriverOutcome;
}

/// The built-in driver for a protocol kind.
fn driver_for(kind: ProtocolKind) -> &'static dyn ProtocolDriver {
    match kind {
        ProtocolKind::Exact => &exact::ExactDriver,
        ProtocolKind::Approx => &approx::ApproxDriver,
        ProtocolKind::RestrictedSync => &restricted_sync::RestrictedSyncDriver,
        ProtocolKind::RestrictedAsync => &restricted_async::RestrictedAsyncDriver,
        ProtocolKind::Iterative => &iterative::IterativeDriver,
        ProtocolKind::DirectedExact => &directed::DirectedExactDriver,
        ProtocolKind::DirectedExactLb => &directed::DirectedExactLbDriver,
    }
}

/// A validated, ready-to-run BVC execution: one [`RunConfig`] bound to one
/// [`ProtocolKind`].
///
/// Construction is the validation point; [`run`](Self::run) cannot fail.
#[derive(Debug, Clone)]
pub struct BvcSession {
    protocol: ProtocolKind,
    config: RunConfig,
    core: BvcConfig,
    topology: Arc<Topology>,
    gamma_cache: SharedGammaCache,
}

impl BvcSession {
    /// Binds `config` to `protocol`, validating it once (structure,
    /// mode-aware admission bound, input shape, topology size).
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`RunConfig::validate`].
    pub fn new(protocol: ProtocolKind, config: RunConfig) -> Result<Self, BvcError> {
        let (core, topology) = config.prepare(protocol)?;
        // One Γ cache per run unless the config shares one: every process
        // of the run reuses the same safe-area evaluations (identical
        // multisets recur across processes and rounds), and the cache is
        // mode-keyed, so sharing across validity modes is sound.
        let gamma_cache = config
            .gamma_cache
            .clone()
            .unwrap_or_else(GammaCache::shared);
        if config.incremental_gamma {
            gamma_cache.enable_incremental();
        }
        Ok(Self {
            protocol,
            config,
            core,
            topology: Arc::new(topology),
            gamma_cache,
        })
    }

    /// The protocol this session dispatches to.
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// The configuration the session was built from.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// The validated core parameters (`n`/`f`/`d`, ε, value bounds).
    pub fn params(&self) -> &BvcConfig {
        &self.core
    }

    /// The resolved communication topology (complete graph unless the
    /// config declared otherwise).
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// The Γ cache shared by every process of this run.
    pub fn gamma_cache(&self) -> &SharedGammaCache {
        &self.gamma_cache
    }

    /// Runs the execution with the protocol's built-in driver.
    pub fn run(self) -> RunReport {
        let driver = driver_for(self.protocol);
        self.run_with(driver)
    }

    /// Runs the execution with a custom [`ProtocolDriver`] (the pluggable
    /// entry point; `run()` is `run_with(<built-in driver>)`).
    pub fn run_with(self, driver: &dyn ProtocolDriver) -> RunReport {
        bvc_trace::emit(|| bvc_trace::TraceEvent::RunOpen {
            protocol: self.protocol.name().to_string(),
            n: self.core.n,
            f: self.core.f,
            d: self.core.d,
        });
        // Γ queries are attributed to the run as a cache-counter delta, so a
        // config-shared cache still yields per-run totals.
        let before = self.gamma_cache.counters();
        let mut outcome = driver.execute(&self);
        outcome.stats.gamma_queries = self.gamma_cache.counters().since(&before).queries();
        self.into_report(outcome)
    }

    /// Scores the verdict and assembles the unified report — the one place
    /// outcomes become results, shared by all seven protocols.
    fn into_report(self, outcome: DriverOutcome) -> RunReport {
        let verdict = Verdict::score(
            &outcome.decisions,
            &self.config.honest_inputs,
            outcome.terminated,
            outcome.tolerance,
            &self.config.validity,
        );
        bvc_trace::emit(|| bvc_trace::TraceEvent::ValidityCheck {
            ok: verdict.all_hold(),
            detail: format!(
                "agreement={} validity={} termination={}",
                verdict.agreement, verdict.validity, verdict.termination
            ),
        });
        let validity = self.protocol.setting().map(|setting| {
            validity_check(
                setting,
                self.config.validity,
                self.core.n,
                self.core.d,
                self.core.f,
            )
        });
        let epsilon = self.protocol.uses_epsilon().then_some(self.core.epsilon);
        RunReport {
            protocol: self.protocol,
            decisions: outcome.decisions,
            verdict,
            validity,
            rounds: outcome.rounds,
            round_budget: outcome.round_budget,
            epsilon,
            stats: outcome.stats,
            topology: Arc::try_unwrap(self.topology).unwrap_or_else(|arc| arc.as_ref().clone()),
            sufficiency: outcome.sufficiency,
            outputs: outcome.outputs,
            config: self.config,
        }
    }

    /// Extracts the decided outputs of the honest processes from an
    /// executor's output slots, in honest-index order.
    pub(crate) fn honest_decisions<T: Clone>(&self, outputs: &[Option<T>]) -> Vec<T> {
        (0..self.core.honest_count())
            .filter_map(|i| outputs[i].clone())
            .collect()
    }

    /// The honest process indices (`0..n−f`), the executor's "must decide"
    /// set.
    pub(crate) fn honest_indices(&self) -> Vec<usize> {
        (0..self.core.honest_count()).collect()
    }
}

/// The seeded point forge of Byzantine process `index` (deterministic per
/// `(seed, index)`, shared by all drivers).
pub(crate) fn make_forge(
    strategy: ByzantineStrategy,
    config: &BvcConfig,
    seed: u64,
    index: usize,
) -> PointForge {
    let mut forge = PointForge::new(
        strategy,
        config.d,
        config.lower_bound,
        config.upper_bound,
        seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1)),
    );
    forge.set_honest_value(Point::uniform(
        config.d,
        0.5 * (config.lower_bound + config.upper_bound),
    ));
    forge
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validity::ValidityMode;
    use bvc_topology::Topology;

    fn square_inputs() -> Vec<Point> {
        vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![0.0, 1.0]),
            Point::new(vec![1.0, 1.0]),
        ]
    }

    fn session(protocol: ProtocolKind, config: RunConfig) -> RunReport {
        BvcSession::new(protocol, config)
            .expect("parameters satisfy the bound")
            .run()
    }

    #[test]
    fn exact_session_happy_path() {
        let report = session(
            ProtocolKind::Exact,
            RunConfig::new(5, 1, 2)
                .honest_inputs(square_inputs())
                .adversary(ByzantineStrategy::FixedOutlier)
                .seed(7),
        );
        assert!(
            report.verdict().all_hold(),
            "verdict: {:?}",
            report.verdict()
        );
        assert_eq!(report.decisions().len(), 4);
        assert!(report.rounds() <= 4);
        assert!(report.stats().messages_delivered > 0);
        assert_eq!(report.epsilon(), None, "exact consensus has no ε");
        assert!(report.sufficiency().is_none());
        assert!(
            report
                .validity()
                .expect("resource check recorded")
                .satisfied
        );
        assert!(report.topology().is_complete());
    }

    #[test]
    fn session_rejects_insufficient_processes() {
        // d = 3, f = 1 requires n ≥ 5.
        let err = BvcSession::new(
            ProtocolKind::Exact,
            RunConfig::new(4, 1, 3).honest_inputs(vec![
                Point::new(vec![0.0, 0.0, 0.0]),
                Point::new(vec![1.0, 0.0, 0.0]),
                Point::new(vec![0.0, 1.0, 0.0]),
            ]),
        )
        .expect_err("below the bound");
        assert!(matches!(
            err,
            BvcError::InsufficientProcesses { required: 5, .. }
        ));
    }

    #[test]
    fn session_rejects_wrong_input_count_and_zero_faults() {
        let err = BvcSession::new(
            ProtocolKind::Exact,
            RunConfig::new(5, 1, 2).honest_inputs(vec![Point::new(vec![0.0, 0.0])]),
        )
        .expect_err("wrong input count");
        assert!(matches!(err, BvcError::InvalidParameter(_)));
        let err = BvcSession::new(
            ProtocolKind::Exact,
            RunConfig::new(3, 0, 2).honest_inputs(square_inputs()[..3].to_vec()),
        )
        .expect_err("f = 0");
        assert!(matches!(err, BvcError::InvalidParameter(_)));
    }

    #[test]
    fn approx_session_happy_path() {
        let report = session(
            ProtocolKind::Approx,
            RunConfig::new(5, 1, 2)
                .honest_inputs(square_inputs())
                .adversary(ByzantineStrategy::AntiConvergence)
                .epsilon(0.1)
                .seed(3),
        );
        assert!(
            report.verdict().all_hold(),
            "verdict: {:?}",
            report.verdict()
        );
        assert!(report.verdict().max_pairwise_distance <= 0.1);
        assert!(report.round_budget().expect("approx has a budget") >= 2);
        let ranges = report.range_history();
        assert!(!ranges.is_empty());
        assert!(ranges.last().unwrap() <= &0.1);
        assert_eq!(report.epsilon(), Some(0.1));
        assert_eq!(report.outputs().len(), 4);
    }

    #[test]
    fn restricted_sessions_happy_path() {
        let report = session(
            ProtocolKind::RestrictedSync,
            RunConfig::new(5, 1, 2)
                .honest_inputs(square_inputs())
                .adversary(ByzantineStrategy::Equivocate)
                .epsilon(0.1)
                .seed(5),
        );
        assert!(
            report.verdict().all_hold(),
            "verdict: {:?}",
            report.verdict()
        );

        // d = 1, f = 1 requires n ≥ 6 for the restricted asynchronous variant.
        let inputs = vec![
            Point::new(vec![0.0]),
            Point::new(vec![0.25]),
            Point::new(vec![0.5]),
            Point::new(vec![0.75]),
            Point::new(vec![1.0]),
        ];
        let report = session(
            ProtocolKind::RestrictedAsync,
            RunConfig::new(6, 1, 1)
                .honest_inputs(inputs)
                .adversary(ByzantineStrategy::AntiConvergence)
                .epsilon(0.1)
                .seed(9),
        );
        assert!(
            report.verdict().all_hold(),
            "verdict: {:?}",
            report.verdict()
        );
        let err = BvcSession::new(
            ProtocolKind::RestrictedAsync,
            RunConfig::new(5, 1, 1).honest_inputs(vec![
                Point::new(vec![0.0]),
                Point::new(vec![0.5]),
                Point::new(vec![0.75]),
                Point::new(vec![1.0]),
            ]),
        )
        .expect_err("below the bound");
        assert!(matches!(
            err,
            BvcError::InsufficientProcesses { required: 6, .. }
        ));
    }

    #[test]
    fn iterative_session_records_sufficiency_and_topology() {
        // d = 1, f = 1: the sufficiency condition on K_n needs n ≥ 6.
        let inputs: Vec<Point> = (0..5).map(|i| Point::new(vec![i as f64 / 4.0])).collect();
        let report = session(
            ProtocolKind::Iterative,
            RunConfig::new(6, 1, 1)
                .honest_inputs(inputs.clone())
                .adversary(ByzantineStrategy::AntiConvergence)
                .epsilon(0.05)
                .seed(3),
        );
        assert!(report.sufficiency().expect("recorded").is_satisfied());
        assert!(
            report.verdict().all_hold(),
            "verdict: {:?}",
            report.verdict()
        );
        assert!(report.topology().is_complete());
        assert_eq!(
            report.rounds(),
            report.round_budget().expect("iterative budget") + 1
        );
        assert!(report.validity().is_none(), "no closed-form bound");

        // A violated condition is data, not an error.
        let report = session(
            ProtocolKind::Iterative,
            RunConfig::new(6, 1, 1)
                .honest_inputs(inputs)
                .adversary(ByzantineStrategy::FixedOutlier)
                .epsilon(0.05)
                .topology(Topology::ring(6)),
        );
        assert!(matches!(
            report.sufficiency(),
            Some(Sufficiency::Violated(_))
        ));
        // Validity survives on any topology: the Γ-trimmed update never
        // leaves the hull of honest values.
        assert!(report.verdict().validity, "verdict: {:?}", report.verdict());
    }

    #[test]
    fn iterative_session_accepts_the_fault_free_baseline() {
        let inputs: Vec<Point> = (0..6).map(|i| Point::new(vec![i as f64 / 5.0])).collect();
        let report = session(
            ProtocolKind::Iterative,
            RunConfig::new(6, 0, 1)
                .honest_inputs(inputs)
                .epsilon(0.05)
                .topology(Topology::ring(6)),
        );
        assert!(report.sufficiency().expect("recorded").is_satisfied());
        assert!(
            report.verdict().all_hold(),
            "verdict: {:?}",
            report.verdict()
        );
    }

    #[test]
    fn exact_strict_rejects_below_threshold_but_relaxed_admits() {
        // n = 8 < max(3f+1, (d+1)f+1) = 9 at f = 2, d = 3.
        let inputs: Vec<Point> = (0..6)
            .map(|i| {
                Point::new(vec![
                    i as f64 / 5.0,
                    (5 - i) as f64 / 5.0,
                    0.3 + 0.1 * i as f64,
                ])
            })
            .collect();
        let err = BvcSession::new(
            ProtocolKind::Exact,
            RunConfig::new(8, 2, 3).honest_inputs(inputs.clone()),
        )
        .expect_err("strict bound");
        assert!(matches!(
            err,
            BvcError::InsufficientProcesses { required: 9, .. }
        ));
        // k = 1 relaxation admits at 3f+1 = 7 and the decoupled trimmed
        // -centre rule always terminates there.
        let report = session(
            ProtocolKind::Exact,
            RunConfig::new(8, 2, 3)
                .honest_inputs(inputs)
                .adversary(ByzantineStrategy::FixedOutlier)
                .seed(1)
                .validity_mode(ValidityMode::KRelaxed(1)),
        );
        let check = report.validity().expect("resource check recorded");
        assert_eq!(check.required_n, 7);
        assert!(check.satisfied);
        assert!(
            report.verdict().all_hold(),
            "verdict: {:?}",
            report.verdict()
        );
    }

    #[test]
    fn alpha_zero_mode_scores_like_strict_above_threshold() {
        let strict = session(
            ProtocolKind::Exact,
            RunConfig::new(5, 1, 2)
                .honest_inputs(square_inputs())
                .seed(7),
        );
        let zero = session(
            ProtocolKind::Exact,
            RunConfig::new(5, 1, 2)
                .honest_inputs(square_inputs())
                .seed(7)
                .validity_mode(ValidityMode::AlphaScaled(0.0)),
        );
        assert_eq!(strict.verdict(), zero.verdict());
        for (a, b) in strict.decisions().iter().zip(zero.decisions()) {
            assert_eq!(a.coords(), b.coords(), "α = 0 decisions are bit-equal");
        }
        assert_eq!(
            zero.validity().expect("recorded").required_n,
            4,
            "strict bound at α = 0"
        );
    }

    #[test]
    fn iterative_relaxed_mode_scores_only_and_keeps_strict_sufficiency() {
        // d = 2, f = 1 on K_6: the strict sufficiency condition on K_n is
        // n ≥ (2d+3)f+1 = 8, so the check is violated.  A relaxed validity
        // mode must NOT loosen it — the iterative update rule itself is
        // unchanged, so convergence is no more likely under lenient scoring
        // and the run must stay flagged expected-unsolvable.
        let inputs: Vec<Point> = (0..5)
            .map(|i| Point::new(vec![i as f64 / 4.0, (4 - i) as f64 / 4.0]))
            .collect();
        let report = session(
            ProtocolKind::Iterative,
            RunConfig::new(6, 1, 2)
                .honest_inputs(inputs)
                .epsilon(0.2)
                .seed(2)
                .validity_mode(ValidityMode::KRelaxed(1)),
        );
        assert!(matches!(
            report.sufficiency(),
            Some(Sufficiency::Violated(_))
        ));
        assert_eq!(report.validity_mode(), &ValidityMode::KRelaxed(1));
    }

    #[test]
    fn shared_gamma_cache_is_reused_across_sessions() {
        let cache = GammaCache::shared();
        let first = BvcSession::new(
            ProtocolKind::Exact,
            RunConfig::new(5, 1, 2)
                .honest_inputs(square_inputs())
                .seed(7)
                .gamma_cache(cache.clone()),
        )
        .unwrap();
        assert!(Arc::ptr_eq(first.gamma_cache(), &cache));
        let report = first.run();
        assert!(report.verdict().all_hold());
        // The same decision problem resolves from the cache on a second run.
        let warm = cache.hits();
        let second = BvcSession::new(
            ProtocolKind::Exact,
            RunConfig::new(5, 1, 2)
                .honest_inputs(square_inputs())
                .seed(7)
                .gamma_cache(cache.clone()),
        )
        .unwrap()
        .run();
        assert_eq!(report.decisions(), second.decisions());
        assert!(
            cache.hits() > warm,
            "second session must hit the shared cache"
        );
    }

    /// Two directed 4-cliques bridged by an undirected perfect matching —
    /// satisfies the local-broadcast condition at f = 1, d = 2 but violates
    /// the point-to-point one (the divergence the two papers prove).
    fn divergence_digraph() -> Topology {
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for base in [0usize, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        for i in 0..4 {
            edges.push((i, i + 4));
        }
        Topology::from_edges(8, &edges, true).unwrap()
    }

    fn divergence_inputs() -> Vec<Point> {
        (0..7)
            .map(|i| Point::new(vec![i as f64 / 6.0, (6 - i) as f64 / 6.0]))
            .collect()
    }

    #[test]
    fn directed_on_complete_graph_matches_exact_bit_for_bit() {
        // On K_n the directed drivers delegate to the Section-2.2 protocol,
        // so everything observable — decisions (bit-equal), verdict, rounds,
        // message counts — matches ProtocolKind::Exact; only the recorded
        // sufficiency (absent for exact) differs.
        let config = || {
            RunConfig::new(5, 1, 2)
                .honest_inputs(square_inputs())
                .adversary(ByzantineStrategy::Equivocate)
                .seed(11)
        };
        let exact = session(ProtocolKind::Exact, config());
        for protocol in [ProtocolKind::DirectedExact, ProtocolKind::DirectedExactLb] {
            let directed = session(protocol, config());
            assert_eq!(exact.decisions().len(), directed.decisions().len());
            for (a, b) in exact.decisions().iter().zip(directed.decisions()) {
                assert_eq!(
                    a.coords(),
                    b.coords(),
                    "{protocol}: decisions must be bit-equal"
                );
            }
            assert_eq!(exact.verdict(), directed.verdict(), "{protocol}");
            assert_eq!(exact.rounds(), directed.rounds(), "{protocol}");
            assert_eq!(
                exact.stats().messages_sent,
                directed.stats().messages_sent,
                "{protocol}"
            );
            assert!(
                directed.sufficiency().expect("recorded").is_satisfied(),
                "{protocol}: K_5 satisfies both directed conditions at f = 1"
            );
            assert_eq!(directed.epsilon(), None, "{protocol} is exact consensus");
        }
        assert!(exact.sufficiency().is_none());
    }

    #[test]
    fn directed_session_diverges_across_delivery_models() {
        // The same digraph + inputs + crash adversary: condition-violated
        // (expected-unsolvable) under point-to-point, satisfied and decided
        // under local broadcast.
        let config = || {
            RunConfig::new(8, 1, 2)
                .honest_inputs(divergence_inputs())
                .adversary(ByzantineStrategy::Crash(1))
                .seed(4)
                .topology(divergence_digraph())
        };
        let p2p = session(ProtocolKind::DirectedExact, config());
        assert!(
            matches!(p2p.sufficiency(), Some(Sufficiency::Violated(_))),
            "point-to-point condition must be violated: {:?}",
            p2p.sufficiency()
        );
        let lb = session(ProtocolKind::DirectedExactLb, config());
        assert!(
            lb.sufficiency().expect("recorded").is_satisfied(),
            "local-broadcast condition must hold: {:?}",
            lb.sufficiency()
        );
        assert!(lb.verdict().all_hold(), "verdict: {:?}", lb.verdict());
        assert_eq!(lb.rounds(), 9, "n + 1 flood rounds");
    }

    #[test]
    fn directed_session_accepts_the_fault_free_baseline() {
        let inputs: Vec<Point> = (0..6).map(|i| Point::new(vec![i as f64 / 5.0])).collect();
        let report = session(
            ProtocolKind::DirectedExact,
            RunConfig::new(6, 0, 1)
                .honest_inputs(inputs)
                .topology(Topology::ring(6)),
        );
        assert!(report.sufficiency().expect("recorded").is_satisfied());
        assert!(
            report.verdict().all_hold(),
            "verdict: {:?}",
            report.verdict()
        );
    }

    #[test]
    fn run_with_accepts_a_custom_driver() {
        /// A driver that decides the first honest input everywhere without
        /// exchanging a single message — trivially valid, trivially agreed.
        struct Dictator;
        impl ProtocolDriver for Dictator {
            fn execute(&self, session: &BvcSession) -> DriverOutcome {
                let decision = session.config().honest_inputs[0].clone();
                let honest = session.params().honest_count();
                DriverOutcome {
                    decisions: vec![decision; honest],
                    terminated: true,
                    tolerance: 1e-6,
                    rounds: 0,
                    stats: ExecutionStats::default(),
                    round_budget: None,
                    outputs: Vec::new(),
                    sufficiency: None,
                }
            }
        }
        let report = BvcSession::new(
            ProtocolKind::Exact,
            RunConfig::new(5, 1, 2).honest_inputs(square_inputs()),
        )
        .unwrap()
        .run_with(&Dictator);
        assert!(report.verdict().all_hold());
        assert_eq!(report.rounds(), 0);
    }
}
