//! `perf-snapshot` — the Γ-engine performance gate.
//!
//! Runs a fixed workload matrix over the safe-area operator (micro level:
//! `gamma_point` / `gamma_contains` / cached lookups / the restricted Step-2
//! unit; macro level: end-to-end protocol runs, including the
//! `n = 9, f = 2, d = 2` restricted-synchronous shape that took minutes
//! before the engine overhaul) and emits one JSON document, by convention
//! `BENCH_gamma.json`, that seeds the repository's performance trajectory.
//! CI runs this binary under a wall-clock budget and uploads the artifact,
//! so regressions in the Γ hot path fail loudly.
//!
//! ```text
//! cargo run --release -p bvc-bench --bin perf-snapshot -- [--out BENCH_gamma.json]
//! ```
//!
//! Exit code 0 means the matrix completed and every end-to-end verdict held;
//! 1 means some verdict was violated (timings are reported either way).

use bvc_core::witness::build_zi_full;
use bvc_core::{BvcSession, ByzantineStrategy, ProtocolKind, RunConfig};
use bvc_geometry::{
    gamma_contains, gamma_point, gamma_point_attributed, GammaCache, GammaCounters, Point,
    PointMultiset, WorkloadGenerator,
};
use bvc_trace::GammaPath;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// Distinct random multisets measured per micro shape.
const MICRO_CASES: u64 = 24;

struct Row {
    kind: &'static str,
    n: usize,
    f: usize,
    d: usize,
    detail: String,
    calls: usize,
    wall_ms: f64,
    ok: bool,
    /// Share of queries answered without the slow paths (LP active-set,
    /// naive subset enumeration, full hull-stream scans), in percent.
    /// `None` for workloads with no Γ path attribution.
    fast_path_pct: Option<f64>,
}

/// Share of the counted queries that stayed off the slow paths: cache hits
/// (local or parent) and the cheap attributed paths count as fast;
/// `active-set-lp`, `naive-fallback` and `stream-scan` are the slow tail.
fn fast_path_pct(counters: &GammaCounters) -> Option<f64> {
    let queries = counters.queries();
    if queries == 0 {
        return None;
    }
    let slow = counters.path_count(GammaPath::ActiveSetLp)
        + counters.path_count(GammaPath::NaiveFallback)
        + counters.path_count(GammaPath::StreamScan);
    Some(100.0 * (queries - slow.min(queries)) as f64 / queries as f64)
}

impl Row {
    fn mean_us(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.wall_ms * 1000.0 / self.calls as f64
        }
    }
}

fn multiset(n: usize, d: usize, seed: u64) -> PointMultiset {
    WorkloadGenerator::new(seed).box_points(n, d, 0.0, 1.0)
}

/// Micro: `gamma_point` on fresh multisets (engine path, no cache).
fn micro_gamma_point(n: usize, f: usize, d: usize) -> Row {
    let sets: Vec<PointMultiset> = (0..MICRO_CASES).map(|s| multiset(n, d, 1000 + s)).collect();
    let start = Instant::now();
    let mut found = 0usize;
    let mut slow = 0usize;
    for y in &sets {
        let (point, attribution) = gamma_point_attributed(y, f);
        if point.is_some() {
            found += 1;
        }
        if matches!(
            attribution.path,
            GammaPath::ActiveSetLp | GammaPath::NaiveFallback | GammaPath::StreamScan
        ) {
            slow += 1;
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    Row {
        kind: "gamma_point",
        n,
        f,
        d,
        detail: format!("found={found}/{}", sets.len()),
        calls: sets.len(),
        wall_ms,
        // Lemma 1 shapes: Γ is non-empty; allow the occasional sliver that
        // every LP formulation rejects at tolerance, but no systematic miss.
        ok: found * 10 >= sets.len() * 9,
        fast_path_pct: Some(100.0 * (sets.len() - slow) as f64 / sets.len() as f64),
    }
}

/// Micro: membership of the chosen point plus an outside point.
fn micro_gamma_contains(n: usize, f: usize, d: usize) -> Row {
    let sets: Vec<(PointMultiset, Point)> = (0..MICRO_CASES)
        .filter_map(|s| {
            let y = multiset(n, d, 2000 + s);
            let p = gamma_point(&y, f)?;
            Some((y, p))
        })
        .collect();
    let outside = Point::new(vec![7.5; d]);
    let start = Instant::now();
    let mut ok = true;
    for (y, p) in &sets {
        ok &= gamma_contains(y, f, p);
        ok &= !gamma_contains(y, f, &outside);
    }
    Row {
        kind: "gamma_contains",
        n,
        f,
        d,
        detail: String::new(),
        calls: sets.len() * 2,
        wall_ms: start.elapsed().as_secs_f64() * 1000.0,
        ok,
        fast_path_pct: None,
    }
}

/// Micro: the shared-cache hit path (second evaluation of the same multiset).
fn micro_cache_hit(n: usize, f: usize, d: usize) -> Row {
    let cache = GammaCache::new();
    let sets: Vec<PointMultiset> = (0..MICRO_CASES).map(|s| multiset(n, d, 3000 + s)).collect();
    for y in &sets {
        let _ = cache.find_point(y, f); // warm
    }
    let warmed = cache.counters();
    let start = Instant::now();
    for y in &sets {
        let _ = cache.find_point(y, f);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    Row {
        kind: "gamma_cache_hit",
        n,
        f,
        d,
        detail: String::new(),
        calls: sets.len(),
        wall_ms,
        ok: cache.hits() >= sets.len() as u64,
        fast_path_pct: fast_path_pct(&cache.counters().since(&warmed)),
    }
}

/// Micro: one restricted-sync Step-2 update (`build_zi_full` over
/// `C(entries, quorum)` subsets) — the per-process-per-round unit of work.
fn micro_step2_unit(entries: usize, quorum: usize, f: usize, d: usize) -> Row {
    let sets: Vec<Vec<Point>> = (0..8)
        .map(|s| multiset(entries, d, 4000 + s).into_points())
        .collect();
    let start = Instant::now();
    let mut total = 0usize;
    for e in &sets {
        total += build_zi_full(e, quorum, f).len();
    }
    Row {
        kind: "step2_build_zi_full",
        n: entries,
        f,
        d,
        detail: format!("quorum={quorum}"),
        calls: sets.len(),
        wall_ms: start.elapsed().as_secs_f64() * 1000.0,
        ok: total > 0,
        fast_path_pct: None,
    }
}

/// Macro: one full restricted-synchronous execution.
fn run_restricted_sync(n: usize, f: usize, d: usize, epsilon: f64, seed: u64) -> Row {
    let inputs: Vec<Point> = WorkloadGenerator::new(7)
        .box_points(n - f, d, 0.0, 1.0)
        .into_points();
    let cache = GammaCache::shared();
    let start = Instant::now();
    let run = BvcSession::new(
        ProtocolKind::RestrictedSync,
        RunConfig::new(n, f, d)
            .honest_inputs(inputs)
            .adversary(ByzantineStrategy::Equivocate)
            .epsilon(epsilon)
            .seed(seed)
            .gamma_cache(cache.clone()),
    )
    .expect("workload matrix shapes satisfy the resilience bounds")
    .run();
    Row {
        kind: "restricted_sync_run",
        n,
        f,
        d,
        detail: format!(
            "epsilon={epsilon}, strategy=equivocate, rounds={}",
            run.rounds()
        ),
        calls: 1,
        wall_ms: start.elapsed().as_secs_f64() * 1000.0,
        ok: run.verdict().all_hold(),
        fast_path_pct: fast_path_pct(&cache.counters()),
    }
}

/// Macro: one full Exact BVC execution.
fn run_exact(n: usize, f: usize, d: usize, seed: u64) -> Row {
    let inputs: Vec<Point> = WorkloadGenerator::new(11)
        .box_points(n - f, d, 0.0, 1.0)
        .into_points();
    let cache = GammaCache::shared();
    let start = Instant::now();
    let run = BvcSession::new(
        ProtocolKind::Exact,
        RunConfig::new(n, f, d)
            .honest_inputs(inputs)
            .adversary(ByzantineStrategy::Equivocate)
            .seed(seed)
            .gamma_cache(cache.clone()),
    )
    .expect("workload matrix shapes satisfy the resilience bounds")
    .run();
    Row {
        kind: "exact_run",
        n,
        f,
        d,
        detail: "strategy=equivocate".to_string(),
        calls: 1,
        wall_ms: start.elapsed().as_secs_f64() * 1000.0,
        ok: run.verdict().all_hold(),
        fast_path_pct: fast_path_pct(&cache.counters()),
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"bvc-perf-snapshot/v1\",\n");
    out.push_str("  \"description\": \"Gamma-engine workload matrix: micro safe-area queries and end-to-end protocol runs (wall clock, release build)\",\n");
    out.push_str("  \"workloads\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kind\": \"{}\", \"n\": {}, \"f\": {}, \"d\": {}, \"detail\": \"{}\", \"calls\": {}, \"wall_ms\": {:.3}, \"mean_us\": {:.1}, \"ok\": {}",
            row.kind,
            row.n,
            row.f,
            row.d,
            json_escape(&row.detail),
            row.calls,
            row.wall_ms,
            row.mean_us(),
            row.ok
        );
        if let Some(pct) = row.fast_path_pct {
            let _ = write!(out, ", \"fast_path_pct\": {pct:.1}");
        }
        out.push('}');
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let mut out_path = String::from("BENCH_gamma.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("usage: perf-snapshot [--out <file>]");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                eprintln!("usage: perf-snapshot [--out <file>]");
                return ExitCode::from(2);
            }
            other => {
                eprintln!("perf-snapshot: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    // Micro matrix: shapes strictly above the Lemma-1 threshold
    // `(d+1)f + 1` (at the exact threshold Γ degenerates to a Tverberg
    // point, which is numerically borderline for *any* formulation),
    // including the closed-form d = 1 path, the C(9,7)-subset f = 2 shape,
    // and the two pool-backed cliff shapes: `(10, 2, 3)` with C(10,8) = 45
    // subset hulls and `(13, 3, 2)` with C(13,10) = 286, both above the
    // heavy-scan threshold of 40.
    let micro_shapes: &[(usize, usize, usize)] = &[
        (4, 1, 1),
        (7, 2, 1),
        (10, 3, 1),
        (5, 1, 2),
        (8, 2, 2),
        (9, 2, 2),
        (13, 3, 2),
        (6, 1, 3),
        (10, 2, 3),
    ];
    let mut rows = Vec::new();
    for &(n, f, d) in micro_shapes {
        eprintln!("perf-snapshot: micro n={n} f={f} d={d}");
        rows.push(micro_gamma_point(n, f, d));
        rows.push(micro_gamma_contains(n, f, d));
        rows.push(micro_cache_hit(n, f, d));
    }
    rows.push(micro_step2_unit(9, 7, 2, 2));

    // Macro matrix: end-to-end runs, led by the previously minutes-long
    // n = 9, f = 2, d = 2 restricted-sync shape (the acceptance row).
    eprintln!("perf-snapshot: macro restricted-sync n=9 f=2 d=2");
    rows.push(run_restricted_sync(9, 2, 2, 0.01, 42));
    rows.push(run_restricted_sync(9, 2, 2, 0.1, 42));
    rows.push(run_restricted_sync(5, 1, 2, 0.1, 42));
    eprintln!("perf-snapshot: macro exact");
    rows.push(run_exact(7, 2, 2, 42));
    rows.push(run_exact(5, 1, 3, 42));

    let rendered = render(&rows);
    if let Err(e) = std::fs::write(&out_path, &rendered) {
        eprintln!("perf-snapshot: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    print!("{rendered}");

    let acceptance = rows
        .iter()
        .find(|r| r.kind == "restricted_sync_run" && r.n == 9 && r.f == 2 && r.d == 2)
        .expect("acceptance row is part of the fixed matrix");
    eprintln!(
        "perf-snapshot: n=9 f=2 d=2 restricted-sync completed in {:.1} ms (target < 5000 ms)",
        acceptance.wall_ms
    );
    if rows.iter().all(|r| r.ok) {
        ExitCode::SUCCESS
    } else {
        eprintln!("perf-snapshot: some workload failed its correctness check");
        ExitCode::from(1)
    }
}
