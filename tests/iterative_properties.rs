//! Property tests for the topology substrate and the iterative protocol:
//!
//! * on the **complete** topology with `f = 0`, the iterative protocol
//!   reaches ε-agreement on a point inside the convex hull of the inputs for
//!   random inputs and seeds;
//! * existing exact / restricted / approx scenario runs on the default
//!   complete topology produce verdicts **byte-identical** to the
//!   pre-topology engine (pinned against literal JSON captured before the
//!   topology substrate landed);
//! * iterative verdicts themselves are byte-identical for identical
//!   `(scenario, seed, topology)`.

use bvc::core::{BvcSession, ProtocolKind, RunConfig};
use bvc::geometry::{ConvexHull, Point, PointMultiset};
use bvc::scenario::{run_scenario, ScenarioSpec};
use bvc::topology::Topology;
use proptest::prelude::*;

fn point_strategy(d: usize) -> impl Strategy<Value = Point> {
    prop::collection::vec(0.0f64..1.0, d).prop_map(Point::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fault-free iterative consensus on the complete graph: every decision
    /// lies in the convex hull of the inputs and all decisions are within ε.
    #[test]
    fn iterative_f0_complete_converges_into_the_input_hull(
        inputs in prop::collection::vec(point_strategy(2), 5),
        seed in 0u64..1000,
    ) {
        let run = BvcSession::new(
            ProtocolKind::Iterative,
            RunConfig::new(5, 0, 2)
                .honest_inputs(inputs.clone())
                .epsilon(0.1)
                .seed(seed)
                .topology(Topology::complete(5)),
        )
        .expect("f = 0 on the complete graph is structurally valid")
        .run();
        prop_assert!(run.sufficiency().expect("recorded").is_satisfied());
        prop_assert!(run.verdict().termination);
        prop_assert!(
            run.verdict().agreement,
            "max pairwise distance {} exceeds eps",
            run.verdict().max_pairwise_distance
        );
        let hull = ConvexHull::new(PointMultiset::new(inputs));
        for decision in run.decisions() {
            prop_assert!(hull.contains(decision), "decision {decision} left the hull");
        }
    }

    /// The scalar case additionally pins the hull check to a closed form:
    /// decisions stay inside [min, max] of the inputs.
    #[test]
    fn iterative_f0_scalar_decisions_stay_in_range(
        coords in prop::collection::vec(0.0f64..1.0, 6),
        seed in 0u64..1000,
    ) {
        let lo = coords.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = coords.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let inputs: Vec<Point> = coords.iter().map(|&c| Point::new(vec![c])).collect();
        let run = BvcSession::new(
            ProtocolKind::Iterative,
            RunConfig::new(6, 0, 1)
                .honest_inputs(inputs)
                .epsilon(0.05)
                .seed(seed),
        )
        .expect("valid")
        .run();
        prop_assert!(run.verdict().all_hold());
        for decision in run.decisions() {
            let c = decision.coord(0);
            prop_assert!(c >= lo - 1e-9 && c <= hi + 1e-9, "{c} outside [{lo}, {hi}]");
        }
    }
}

/// Runs a scenario file from `scenarios/` at a fixed seed and returns its
/// JSON verdict.
fn verdict_of(file: &str, seed: u64) -> String {
    let path = format!("{}/scenarios/{file}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let spec = ScenarioSpec::from_toml(&text).expect("scenario parses");
    run_scenario(&spec, seed, spec.strategy, spec.policy.clone())
        .expect("scenario runs")
        .to_json()
}

/// Verdicts captured at seed 11 *before* the topology substrate landed; the
/// default complete-graph path must keep producing these exact bytes.
#[test]
fn pre_topology_verdicts_are_byte_identical_on_the_default_substrate() {
    let pinned = [
        (
            "happy_path.toml",
            r#"{"scenario": "happy-path", "protocol": "exact", "n": 6, "f": 1, "d": 2, "epsilon": null, "seed": 11, "strategy": "benign", "policy": "sync", "faults": [], "verdict": {"agreement": true, "validity": true, "termination": true, "max_pairwise_distance": 0.0}, "rounds": 4, "messages": {"sent": 390, "delivered": 390, "dropped": 0}, "per_process": [{"sent": 65, "delivered": 65, "dropped": 0}, {"sent": 65, "delivered": 65, "dropped": 0}, {"sent": 65, "delivered": 65, "dropped": 0}, {"sent": 65, "delivered": 65, "dropped": 0}, {"sent": 65, "delivered": 65, "dropped": 0}, {"sent": 65, "delivered": 65, "dropped": 0}]}"#,
        ),
        (
            "lossy_links.toml",
            r#"{"scenario": "lossy-links", "protocol": "restricted-async", "n": 6, "f": 1, "d": 1, "epsilon": 0.1, "seed": 11, "strategy": "random-noise", "policy": "random-fair", "faults": ["drop", "latency"], "verdict": {"agreement": true, "validity": true, "termination": true, "max_pairwise_distance": 0.0}, "rounds": 2430, "messages": {"sent": 2490, "delivered": 2430, "dropped": 55}, "per_process": [{"sent": 415, "delivered": 402, "dropped": 0}, {"sent": 415, "delivered": 401, "dropped": 0}, {"sent": 415, "delivered": 402, "dropped": 0}, {"sent": 415, "delivered": 406, "dropped": 0}, {"sent": 415, "delivered": 405, "dropped": 0}, {"sent": 415, "delivered": 414, "dropped": 55}]}"#,
        ),
        (
            "latency_spike.toml",
            r#"{"scenario": "latency-spike", "protocol": "restricted-sync", "n": 5, "f": 1, "d": 2, "epsilon": 0.1, "seed": 11, "strategy": "equivocate", "policy": "sync", "faults": ["latency"], "verdict": {"agreement": true, "validity": true, "termination": true, "max_pairwise_distance": 0.0}, "rounds": 59, "messages": {"sent": 1164, "delivered": 1164, "dropped": 0}, "per_process": [{"sent": 232, "delivered": 233, "dropped": 0}, {"sent": 232, "delivered": 233, "dropped": 0}, {"sent": 232, "delivered": 233, "dropped": 0}, {"sent": 232, "delivered": 233, "dropped": 0}, {"sent": 236, "delivered": 232, "dropped": 0}]}"#,
        ),
        (
            "thm4_delay_schedule.toml",
            r#"{"scenario": "thm4-delay-schedule", "protocol": "approx", "n": 4, "f": 1, "d": 1, "epsilon": 0.1, "seed": 11, "strategy": "anti-convergence", "policy": "delay-from:2", "faults": [], "verdict": {"agreement": true, "validity": true, "termination": true, "max_pairwise_distance": 0.0}, "rounds": 4433, "messages": {"sent": 4440, "delivered": 4433, "dropped": 0}, "per_process": [{"sent": 1110, "delivered": 1110, "dropped": 0}, {"sent": 1110, "delivered": 1110, "dropped": 0}, {"sent": 1110, "delivered": 1110, "dropped": 0}, {"sent": 1110, "delivered": 1103, "dropped": 0}]}"#,
        ),
    ];
    for (file, expected) in pinned {
        assert_eq!(
            verdict_of(file, 11),
            expected,
            "{file}: complete-graph verdicts must stay byte-identical to the \
             pre-topology engine"
        );
    }
}

/// Topology verdicts are as deterministic as everything else: identical
/// `(scenario, seed)` yields identical bytes, including the generated
/// random-regular wiring.
#[test]
fn iterative_topology_verdicts_are_byte_identical_across_runs() {
    let text = r#"
[scenario]
name = "det"
protocol = "iterative"
n = 8
f = 1
d = 1
epsilon = 0.05

[topology]
kind = "random-regular:6"
"#;
    let spec = ScenarioSpec::from_toml(text).unwrap();
    let a = run_scenario(&spec, 7, spec.strategy, spec.policy.clone()).unwrap();
    let b = run_scenario(&spec, 7, spec.strategy, spec.policy.clone()).unwrap();
    assert_eq!(a.to_json(), b.to_json());
    assert!(a.to_json().contains("\"kind\": \"random-regular:6\""));
    assert!(a.to_json().contains("\"sufficiency\": \"satisfied\""));
}
