//! Integration tests: the convergence formulas (γ, round budget, guaranteed
//! range) are mutually consistent and consistent with actual executions —
//! the algorithm really does finish within its static budget with a spread
//! no larger than ε, for every configuration the experiments sweep.

use bvc::adversary::ByzantineStrategy;
use bvc::core::{
    gamma, gamma_witness_optimized, guaranteed_range, round_threshold, BvcConfig, BvcSession,
    ProtocolKind, RunConfig, Setting, UpdateRule,
};
use bvc::geometry::{Point, WorkloadGenerator};

#[test]
fn round_threshold_is_sufficient_for_the_guaranteed_range() {
    // For a grid of (n, f, ε): after `round_threshold` rounds the worst-case
    // range must be at most ε — the inequality chain (13)–(15) of the paper.
    for &(n, f) in &[(4usize, 1usize), (5, 1), (6, 1), (7, 2), (9, 2)] {
        for &eps in &[0.5, 0.1, 0.01, 0.001] {
            for g in [gamma(n, f), gamma_witness_optimized(n)] {
                let t = round_threshold(g, 0.0, 1.0, eps);
                let range = guaranteed_range(g, 1.0, t);
                assert!(
                    range <= eps * (1.0 + 1e-9),
                    "n={n} f={f} eps={eps}: {t} rounds leave range {range}"
                );
                // One round fewer must NOT be sufficient in the worst case
                // (unless the initial range is already within ε or the
                // threshold bottomed out at 1).
                if t > 2 && 1.0 > eps {
                    let prev = guaranteed_range(g, 1.0, t - 2);
                    assert!(
                        prev > eps,
                        "n={n} f={f} eps={eps}: the budget {t} is not tight-ish (t-2 already enough)"
                    );
                }
            }
        }
    }
}

#[test]
fn witness_gamma_never_needs_more_rounds_than_full_gamma() {
    for &(n, f) in &[(4usize, 1usize), (5, 1), (7, 2), (9, 2), (13, 3)] {
        let g_full = gamma(n, f);
        let g_wit = gamma_witness_optimized(n);
        assert!(g_wit >= g_full - 1e-15);
        let t_full = round_threshold(g_full, 0.0, 1.0, 0.01);
        let t_wit = round_threshold(g_wit, 0.0, 1.0, 0.01);
        assert!(
            t_wit <= t_full,
            "n={n} f={f}: witness budget {t_wit} > full {t_full}"
        );
    }
}

#[test]
fn executions_respect_their_static_budget_and_epsilon() {
    // Actual asynchronous executions: the recorded history length equals the
    // budget plus the input entry, and the final spread is within ε.
    let mut workload = WorkloadGenerator::new(31);
    for &(d, eps) in &[(1usize, 0.1f64), (2, 0.1)] {
        let f = 1;
        let n = Setting::ApproxAsync.min_processes(d, f);
        let inputs: Vec<Point> = workload.box_points(n - f, d, 0.0, 1.0).into_points();
        let run = BvcSession::new(
            ProtocolKind::Approx,
            RunConfig::new(n, f, d)
                .honest_inputs(inputs)
                .adversary(ByzantineStrategy::AntiConvergence)
                .epsilon(eps)
                .update_rule(UpdateRule::WitnessOptimized)
                .seed(77),
        )
        .expect("bound satisfied")
        .run();
        let budget = run.round_budget().expect("approx has a static budget");
        let config = BvcConfig::new(n, f, d).unwrap().with_epsilon(eps).unwrap();
        assert_eq!(
            budget,
            round_threshold(
                gamma_witness_optimized(n),
                config.lower_bound,
                config.upper_bound,
                eps
            )
        );
        for output in run.outputs() {
            assert_eq!(
                output.history.len(),
                budget + 1,
                "history must record the input plus one state per budgeted round"
            );
        }
        assert!(run.verdict().max_pairwise_distance <= eps);
        // The range history never increases above the initial honest range
        // (validity of the intermediate states).
        let ranges = run.range_history();
        let initial = ranges[0];
        assert!(ranges.iter().all(|&r| r <= initial + 1e-9));
        // And it ends within ε.
        assert!(*ranges.last().unwrap() <= eps);
    }
}

#[test]
fn budgets_grow_logarithmically_in_one_over_epsilon() {
    let g = gamma(5, 1);
    let t1 = round_threshold(g, 0.0, 1.0, 0.1);
    let t2 = round_threshold(g, 0.0, 1.0, 0.01);
    let t3 = round_threshold(g, 0.0, 1.0, 0.001);
    // Each factor-of-ten tightening adds roughly the same number of rounds.
    let d1 = t2 as isize - t1 as isize;
    let d2 = t3 as isize - t2 as isize;
    assert!(
        (d1 - d2).abs() <= 1,
        "increments {d1} vs {d2} should match within 1"
    );
}

#[test]
fn budgets_scale_with_the_value_range() {
    let g = gamma(4, 1);
    let narrow = round_threshold(g, 0.0, 1.0, 0.01);
    let wide = round_threshold(g, -100.0, 100.0, 0.01);
    assert!(wide > narrow);
    let same = round_threshold(g, 5.0, 6.0, 0.01);
    assert_eq!(
        same, narrow,
        "only the range U − ν matters, not its location"
    );
}
