//! Driver for Approximate BVC over the asynchronous simulator (Section 3.2:
//! ε-Agreement, Validity, Termination — Theorems 4 and 5).

use super::{make_forge, BvcSession, DriverOutcome, ProtocolDriver};
use crate::approx::{ApproxBvcProcess, ApproxOutput, ByzantineApproxProcess};
use bvc_geometry::Point;
use bvc_net::{AsyncNetwork, AsyncProcess};

pub(super) struct ApproxDriver;

impl ProtocolDriver for ApproxDriver {
    fn execute(&self, session: &BvcSession) -> DriverOutcome {
        let config = session.params();
        let rc = session.config();
        // Overlapping B_i[t] sets across processes share their Step-2
        // subset evaluations through the run's cache.
        let gamma_cache = session.gamma_cache().clone();
        let mut processes: Vec<
            Box<dyn AsyncProcess<Msg = crate::aad::AadMsg, Output = ApproxOutput>>,
        > = Vec::new();
        for (i, input) in rc.honest_inputs.iter().enumerate() {
            processes.push(Box::new(
                ApproxBvcProcess::new(config.clone(), i, input.clone(), rc.update_rule)
                    .with_gamma_cache(gamma_cache.clone()),
            ));
        }
        for b in 0..config.f {
            let me = config.honest_count() + b;
            let forge = make_forge(rc.adversary, config, rc.seed, b);
            processes.push(Box::new(ByzantineApproxProcess::new(
                config.clone(),
                me,
                Point::uniform(config.d, 0.5 * (config.lower_bound + config.upper_bound)),
                rc.update_rule,
                forge,
            )));
        }
        let honest = session.honest_indices();
        let outcome =
            AsyncNetwork::new(processes, rc.delivery_policy.clone(), rc.seed, rc.max_steps)
                .with_topology(session.topology().as_ref().clone())
                .with_faults(rc.faults.clone())
                .run(&honest);
        let outputs: Vec<ApproxOutput> = session.honest_decisions(&outcome.outputs);
        let terminated = outputs.len() == honest.len() && outcome.completed;
        let decisions: Vec<Point> = outputs.iter().map(|o| o.decision.clone()).collect();
        DriverOutcome {
            decisions,
            terminated,
            tolerance: config.epsilon,
            rounds: outcome.stats.steps,
            round_budget: Some(ApproxBvcProcess::round_budget(config, rc.update_rule)),
            stats: outcome.stats,
            outputs,
            sufficiency: None,
        }
    }
}
