//! Path-attribution breakdown of the `gamma_point n=10 f=2 d=3` benchmark
//! row — the reproduction referenced from the README's "Case study: the
//! n = 10, f = 2, d = 3 outlier" section.
//!
//! Run with:
//!
//! ```text
//! cargo test -p bvc-geometry --test probe_diag -- --ignored --nocapture
//! ```
//!
//! Expected shape of the output (timings vary, attribution does not):
//! 6 of the 24 seeds hit the trimmed-box probe, 17 escalate to the
//! active-set LP, and seed 1016 falls all the way back to the naive
//! all-hulls joint LP and still reports `found = false` — the Lemma-1
//! sub-tolerance sliver that dominates the row's wall clock.  Ignored by
//! default because the naive-fallback seed alone takes over a second in
//! debug builds.

use bvc_geometry::{gamma_point_attributed, PointMultiset, WorkloadGenerator};

#[test]
#[ignore]
fn diagnose_n10_f2_d3() {
    for s in 0..24u64 {
        let y: PointMultiset = WorkloadGenerator::new(1000 + s).box_points(10, 3, 0.0, 1.0);
        let start = std::time::Instant::now();
        let (point, attribution) = gamma_point_attributed(&y, 2);
        let us = start.elapsed().as_micros();
        println!(
            "seed {:4}  found={}  path={:?}  probe_missed={}  {us:>8} us",
            1000 + s,
            point.is_some(),
            attribution.path,
            attribution.probe_missed,
        );
    }
}
