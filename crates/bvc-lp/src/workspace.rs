//! Reusable solver buffers.
//!
//! Every simplex solve needs a dense tableau (`(rows + 1) × (cols + 1)`
//! floats), a basis map and an eligibility mask.  The consensus geometry
//! solves *many* small LPs of a handful of recurring shapes — hull-membership
//! programs and joint common-point programs — so allocating those buffers
//! fresh on every call is pure churn.  [`SimplexWorkspace`] is an arena-style
//! pool: returned buffers are parked in a slot keyed by their power-of-two
//! size class and handed back out (cleared) to the next solve of a compatible
//! size, so a workload that alternates between tiny membership programs and
//! larger joint programs does not keep re-zeroing one oversized buffer.
//!
//! [`LinearProgram::solve`](crate::LinearProgram::solve) uses a thread-local
//! workspace transparently; callers that want explicit control (benchmarks,
//! long-lived engines) can hold their own and use
//! [`LinearProgram::solve_with`](crate::LinearProgram::solve_with).

use std::cell::RefCell;
use std::collections::HashMap;

/// Number of power-of-two size classes kept per buffer kind (class 30 holds
/// buffers of up to 2^30 elements — far beyond any LP this workspace serves).
const NUM_CLASSES: usize = 31;

/// An arena-style pool of simplex buffers, keyed by size class.
#[derive(Debug)]
pub struct SimplexWorkspace {
    f64_slots: Vec<Vec<f64>>,
    usize_slots: Vec<Vec<usize>>,
    bool_slots: Vec<Vec<bool>>,
    reuses: u64,
    allocations: u64,
    /// Trace-scope token of the previous solve, for the logical `reused`
    /// flag of the traced simplex event (see [`SimplexWorkspace::stamp_scope`]).
    trace_stamp: Option<u64>,
    /// Per-shape column priorities learned from completed warm-start solves:
    /// `(rows, total_cols) → permutation of 0..total_cols` that fronts the
    /// previous solve's final basis columns (see
    /// [`LinearProgram::solve_feasibility_warm_with`](crate::LinearProgram::solve_feasibility_warm_with)).
    warm_priorities: HashMap<(usize, usize), Vec<usize>>,
    /// Warm-start solves that found a stored priority for their shape.
    warm_hits: u64,
}

impl Default for SimplexWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

/// The size class of a requested length: the exponent of the smallest power
/// of two that fits `len`.
#[inline]
pub(crate) fn class_of(len: usize) -> usize {
    (len.max(1).next_power_of_two().trailing_zeros() as usize).min(NUM_CLASSES - 1)
}

impl SimplexWorkspace {
    /// Creates an empty workspace; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        Self {
            f64_slots: (0..NUM_CLASSES).map(|_| Vec::new()).collect(),
            usize_slots: (0..NUM_CLASSES).map(|_| Vec::new()).collect(),
            bool_slots: (0..NUM_CLASSES).map(|_| Vec::new()).collect(),
            reuses: 0,
            allocations: 0,
            trace_stamp: None,
            warm_priorities: HashMap::new(),
            warm_hits: 0,
        }
    }

    /// Pins the workspace to a trace scope: when `token` differs from the
    /// previous stamp the pooled buffers are dropped, so a physical reuse
    /// is always a *same-scope* reuse.  Without this, a thread-local
    /// workspace warmed by another instance (or by an earlier traced run on
    /// the same thread) would make the traced `reused` flag depend on
    /// worker scheduling.  Untraced runs always pass `None`, so the pools
    /// are never cleared when tracing is off.
    pub fn stamp_scope(&mut self, token: Option<u64>) {
        if self.trace_stamp != token {
            self.trace_stamp = token;
            for slot in &mut self.f64_slots {
                *slot = Vec::new();
            }
            for slot in &mut self.usize_slots {
                *slot = Vec::new();
            }
            for slot in &mut self.bool_slots {
                *slot = Vec::new();
            }
            self.warm_priorities.clear();
        }
    }

    /// The stored warm column priority for a `(rows, total_cols)` tableau
    /// shape, if a previous warm solve of that shape completed.
    pub(crate) fn warm_priority(&self, rows: usize, total_cols: usize) -> Option<&[usize]> {
        self.warm_priorities
            .get(&(rows, total_cols))
            .map(Vec::as_slice)
    }

    /// Records the final basis of a completed phase 1 as the column priority
    /// for the next warm solve of the same shape: the basis columns first
    /// (ascending, for a deterministic permutation), then every other column
    /// ascending.
    pub(crate) fn store_warm_priority(&mut self, rows: usize, total_cols: usize, basis: &[usize]) {
        let mut in_basis = vec![false; total_cols];
        for &col in basis {
            if col < total_cols {
                in_basis[col] = true;
            }
        }
        let mut priority = Vec::with_capacity(total_cols);
        priority.extend((0..total_cols).filter(|&c| in_basis[c]));
        priority.extend((0..total_cols).filter(|&c| !in_basis[c]));
        self.warm_priorities.insert((rows, total_cols), priority);
    }

    /// Counts one warm solve that found a stored priority for its shape.
    pub(crate) fn note_warm_hit(&mut self) {
        self.warm_hits += 1;
    }

    /// Warm-start solves that were actually served a stored column priority.
    pub fn warm_hits(&self) -> u64 {
        self.warm_hits
    }

    /// How many buffer requests were served from the pool.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// How many buffer requests required a fresh allocation.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    pub(crate) fn take_f64(&mut self, len: usize) -> Vec<f64> {
        let class = class_of(len);
        let parked = std::mem::take(&mut self.f64_slots[class]);
        if parked.capacity() >= len {
            self.reuses += 1;
            let mut buf = parked;
            buf.clear();
            buf.resize(len, 0.0);
            return buf;
        }
        self.allocations += 1;
        let mut buf = Vec::with_capacity(1usize << class);
        buf.resize(len, 0.0);
        buf
    }

    pub(crate) fn put_f64(&mut self, buf: Vec<f64>) {
        if buf.capacity() == 0 {
            return;
        }
        let class = (buf.capacity().ilog2() as usize).min(NUM_CLASSES - 1);
        if self.f64_slots[class].capacity() < buf.capacity() {
            self.f64_slots[class] = buf;
        }
    }

    pub(crate) fn take_usize(&mut self, len: usize) -> Vec<usize> {
        let class = class_of(len);
        let parked = std::mem::take(&mut self.usize_slots[class]);
        if parked.capacity() >= len {
            self.reuses += 1;
            let mut buf = parked;
            buf.clear();
            buf.resize(len, 0);
            return buf;
        }
        self.allocations += 1;
        let mut buf = Vec::with_capacity(1usize << class);
        buf.resize(len, 0);
        buf
    }

    pub(crate) fn put_usize(&mut self, buf: Vec<usize>) {
        if buf.capacity() == 0 {
            return;
        }
        let class = (buf.capacity().ilog2() as usize).min(NUM_CLASSES - 1);
        if self.usize_slots[class].capacity() < buf.capacity() {
            self.usize_slots[class] = buf;
        }
    }

    pub(crate) fn take_bool(&mut self, len: usize, value: bool) -> Vec<bool> {
        let class = class_of(len);
        let parked = std::mem::take(&mut self.bool_slots[class]);
        if parked.capacity() >= len {
            self.reuses += 1;
            let mut buf = parked;
            buf.clear();
            buf.resize(len, value);
            return buf;
        }
        self.allocations += 1;
        let mut buf = Vec::with_capacity(1usize << class);
        buf.resize(len, value);
        buf
    }

    pub(crate) fn put_bool(&mut self, buf: Vec<bool>) {
        if buf.capacity() == 0 {
            return;
        }
        let class = (buf.capacity().ilog2() as usize).min(NUM_CLASSES - 1);
        if self.bool_slots[class].capacity() < buf.capacity() {
            self.bool_slots[class] = buf;
        }
    }
}

thread_local! {
    static THREAD_WORKSPACE: RefCell<SimplexWorkspace> = RefCell::new(SimplexWorkspace::new());
}

/// Runs `f` with the calling thread's shared workspace.
pub(crate) fn with_thread_workspace<R>(f: impl FnOnce(&mut SimplexWorkspace) -> R) -> R {
    THREAD_WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_reused_within_a_size_class() {
        let mut ws = SimplexWorkspace::new();
        let buf = ws.take_f64(100);
        assert_eq!(buf.len(), 100);
        ws.put_f64(buf);
        let again = ws.take_f64(120); // same class (128)
        assert_eq!(again.len(), 120);
        assert!(again.iter().all(|&v| v == 0.0));
        assert_eq!(ws.reuses(), 1);
        assert_eq!(ws.allocations(), 1);
    }

    #[test]
    fn different_size_classes_use_different_slots() {
        let mut ws = SimplexWorkspace::new();
        let small = ws.take_f64(10);
        ws.put_f64(small);
        // A much larger request must not be served by the small buffer.
        let large = ws.take_f64(1000);
        assert_eq!(large.len(), 1000);
        assert_eq!(ws.allocations(), 2);
    }

    #[test]
    fn returned_buffers_come_back_cleared() {
        let mut ws = SimplexWorkspace::new();
        let mut buf = ws.take_usize(8);
        buf[3] = 42;
        ws.put_usize(buf);
        let again = ws.take_usize(8);
        assert!(again.iter().all(|&v| v == 0));
    }

    #[test]
    fn bool_buffers_honour_fill_value() {
        let mut ws = SimplexWorkspace::new();
        let buf = ws.take_bool(5, true);
        assert!(buf.iter().all(|&b| b));
        ws.put_bool(buf);
        let again = ws.take_bool(4, false);
        assert!(again.iter().all(|&b| !b));
    }
}
