//! Construction of the multiset `Z_i` used in Step 2 of the approximate
//! algorithms.
//!
//! Given the tuples a process collected in a round (its `B_i[t]`), Step 2 of
//! the asynchronous algorithm adds to `Z_i` one deterministically chosen point
//! of `Γ(Φ(C))` for certain `(n−f)`-sized subsets `C ⊆ B_i[t]`, and the new
//! state is the average of `Z_i` (equation (9)).  Two subset-selection rules
//! appear in the paper:
//!
//! * the **full rule** (Section 3.2): every `C ⊆ B_i[t]` with `|C| = n − f`,
//!   giving `|Z_i| = C(|B_i|, n−f)`;
//! * the **witness-optimised rule** (Appendix F): only the `≤ n` subsets
//!   advertised by this process's witnesses, giving `|Z_i| ≤ n` and improving
//!   the contraction constant to `γ = 1/n²`.
//!
//! Both rules are provided here and shared by the AAD-based algorithm
//! ([`crate::approx`]) and the restricted-round algorithms
//! ([`crate::restricted`]).

use bvc_geometry::combinatorics::Combinations;
use bvc_geometry::{gamma_point, GammaCache, Point, PointMultiset};

/// One deterministically chosen point of `Γ(y)`, looked up in `cache` when
/// one is supplied and computed directly otherwise.  The cached and uncached
/// paths return identical points (the Γ engine is a deterministic,
/// order-invariant function of the multiset), so mixing them in one system
/// is safe.
fn gamma_point_via(cache: Option<&GammaCache>, y: &PointMultiset, f: usize) -> Option<Point> {
    match cache {
        Some(cache) => cache.find_point(y, f),
        None => gamma_point(y, f),
    }
}

/// Builds `Z_i` with the full rule: one `Γ` point per `(n−f)`-subset of
/// `entries`.
///
/// `entries` are the values of the tuples in `B_i[t]` (order irrelevant);
/// `quorum` is `n − f` and `f` the fault bound used inside `Γ`.
/// Subsets whose `Γ` is empty (possible only when `quorum < (d+1)f + 1`,
/// i.e. below the resilience bound) are skipped.
///
/// # Panics
///
/// Panics if `entries.len() < quorum` or `quorum == 0`.
pub fn build_zi_full(entries: &[Point], quorum: usize, f: usize) -> Vec<Point> {
    build_zi_full_cached(entries, quorum, f, None)
}

/// [`build_zi_full`] with the `Γ` evaluations shared through a
/// [`GammaCache`]: in a synchronous round every honest process builds `Z_i`
/// from the same broadcast states, so the cache collapses the per-process
/// recomputation to a single evaluation per distinct subset.
///
/// # Panics
///
/// Panics if `entries.len() < quorum` or `quorum == 0`.
pub fn build_zi_full_cached(
    entries: &[Point],
    quorum: usize,
    f: usize,
    cache: Option<&GammaCache>,
) -> Vec<Point> {
    assert!(quorum > 0, "quorum must be positive");
    assert!(
        entries.len() >= quorum,
        "need at least {quorum} entries, got {}",
        entries.len()
    );
    let mut zi = Vec::new();
    let mut subsets = Combinations::new(entries.len(), quorum);
    while let Some(subset) = subsets.next_ref() {
        let points: Vec<Point> = subset.iter().map(|&i| entries[i].clone()).collect();
        let y = PointMultiset::new(points);
        if let Some(point) = gamma_point_via(cache, &y, f) {
            zi.push(point);
        }
    }
    zi
}

/// Builds `Z_i` with the witness-optimised rule: one `Γ` point per witness-
/// advertised subset (each subset is a list of tuple values of size `n − f`).
///
/// Subsets whose `Γ` is empty are skipped (they cannot arise for parameters
/// meeting the paper's bounds).
pub fn build_zi_witness(witness_sets: &[Vec<Point>], f: usize) -> Vec<Point> {
    build_zi_witness_cached(witness_sets, f, None)
}

/// [`build_zi_witness`] with the `Γ` evaluations shared through a
/// [`GammaCache`].
pub fn build_zi_witness_cached(
    witness_sets: &[Vec<Point>],
    f: usize,
    cache: Option<&GammaCache>,
) -> Vec<Point> {
    let mut zi = Vec::new();
    for set in witness_sets {
        if set.is_empty() {
            continue;
        }
        let y = PointMultiset::new(set.clone());
        if let Some(point) = gamma_point_via(cache, &y, f) {
            zi.push(point);
        }
    }
    zi
}

/// The state-update rule of equation (9): the average of the points of `Z_i`.
///
/// # Panics
///
/// Panics if `zi` is empty.
pub fn average_state(zi: &[Point]) -> Point {
    assert!(
        !zi.is_empty(),
        "Z_i must be non-empty to compute the new state"
    );
    Point::centroid(zi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvc_geometry::ConvexHull;

    fn pts(vals: &[f64]) -> Vec<Point> {
        vals.iter().map(|&v| Point::new(vec![v])).collect()
    }

    #[test]
    fn full_rule_produces_binomial_many_points() {
        // 4 entries, quorum 3, f = 1 (d = 1 so quorum ≥ (d+1)f+1 = 3 holds).
        let zi = build_zi_full(&pts(&[0.0, 1.0, 2.0, 10.0]), 3, 1);
        assert_eq!(zi.len(), 4); // C(4,3)
    }

    #[test]
    fn full_rule_points_lie_in_the_entry_hull() {
        let entries = pts(&[0.0, 1.0, 2.0, 10.0]);
        let hull = ConvexHull::new(PointMultiset::new(entries.clone()));
        for z in build_zi_full(&entries, 3, 1) {
            assert!(hull.contains(&z));
        }
    }

    #[test]
    fn witness_rule_produces_one_point_per_set() {
        let sets = vec![pts(&[0.0, 1.0, 2.0]), pts(&[1.0, 2.0, 3.0])];
        let zi = build_zi_witness(&sets, 1);
        assert_eq!(zi.len(), 2);
    }

    #[test]
    fn witness_rule_skips_empty_sets() {
        let sets = vec![Vec::new(), pts(&[0.0, 1.0, 2.0])];
        let zi = build_zi_witness(&sets, 1);
        assert_eq!(zi.len(), 1);
    }

    #[test]
    fn gamma_points_are_robust_to_one_outlier() {
        // With f = 1 and three honest-looking values near 1 plus one huge
        // outlier, every Γ point must stay within the range spanned by at
        // least n − 2f = 2 honest values — in particular far below the
        // outlier.
        let entries = pts(&[0.9, 1.0, 1.1, 1000.0]);
        for z in build_zi_full(&entries, 3, 1) {
            assert!(
                z.coord(0) <= 1.1 + 1e-6,
                "Γ point dragged by the outlier: {z}"
            );
        }
    }

    #[test]
    fn average_state_is_the_centroid() {
        let avg = average_state(&pts(&[0.0, 1.0, 2.0]));
        assert!((avg.coord(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn average_of_empty_zi_panics() {
        let _ = average_state(&[]);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn full_rule_with_too_few_entries_panics() {
        let _ = build_zi_full(&pts(&[0.0]), 2, 1);
    }

    #[test]
    fn cached_zi_matches_uncached_zi() {
        let cache = GammaCache::new();
        let entries = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![0.0, 1.0]),
            Point::new(vec![1.0, 1.0]),
            Point::new(vec![5.0, 5.0]),
        ];
        let plain = build_zi_full(&entries, 4, 1);
        let cached = build_zi_full_cached(&entries, 4, 1, Some(&cache));
        assert_eq!(plain.len(), cached.len());
        for (a, b) in plain.iter().zip(&cached) {
            assert!(a.approx_eq(b, 1e-15), "{a} vs {b}");
        }
        // A second pass is served from the cache and still identical.
        let again = build_zi_full_cached(&entries, 4, 1, Some(&cache));
        assert!(cache.hits() > 0);
        for (a, b) in cached.iter().zip(&again) {
            assert!(a.approx_eq(b, 1e-15));
        }
    }

    #[test]
    fn two_dimensional_subsets_work() {
        // d = 2, f = 1, quorum 4 (≥ (d+1)f+1 = 4).
        let entries = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![0.0, 1.0]),
            Point::new(vec![1.0, 1.0]),
            Point::new(vec![5.0, 5.0]),
        ];
        let zi = build_zi_full(&entries, 4, 1);
        assert_eq!(zi.len(), 5); // C(5,4)
        let hull = ConvexHull::new(PointMultiset::new(entries));
        assert!(zi.iter().all(|z| hull.contains(z)));
    }
}
