//! Deterministic asynchronous execution simulator.
//!
//! In the paper's asynchronous model, processes take steps at arbitrary
//! relative speeds and message delays are unbounded but finite; channels are
//! reliable and FIFO.  The [`AsyncNetwork`] simulator models an execution as a
//! sequence of *delivery steps*: at each step an adversarial (but fair)
//! scheduler picks one non-empty channel, delivers its oldest message, and
//! lets the recipient react by sending further messages.
//!
//! The scheduler is seeded, so a given `(processes, policy, seed)` triple
//! always produces exactly the same execution — which is what makes the
//! asynchronous experiments and property tests reproducible.

use crate::process::{ExecutionStats, Outgoing, ProcessId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// An event-driven state machine driven by the asynchronous executor.
pub trait AsyncProcess {
    /// Message payload type exchanged by the protocol.
    type Msg: Clone;
    /// Decision/output type of the protocol.
    type Output: Clone;

    /// Called once when the execution starts; returns the initial messages.
    fn on_start(&mut self) -> Vec<Outgoing<Self::Msg>>;

    /// Called when a message is delivered to this process; returns the
    /// messages to send in response.
    fn on_message(&mut self, from: ProcessId, msg: Self::Msg) -> Vec<Outgoing<Self::Msg>>;

    /// The process's decision, once reached.
    fn output(&self) -> Option<Self::Output>;
}

/// Scheduling policy of the asynchronous adversary.
///
/// All policies are *fair*: a message sitting in a channel is eventually
/// delivered, because the scheduler only ever chooses among non-empty
/// channels and every policy gives every non-empty channel a chance once the
/// preferred ones are drained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeliveryPolicy {
    /// Pick a uniformly random non-empty channel at each step.
    RandomFair,
    /// Cycle through channels in a fixed order.
    RoundRobin,
    /// Starve messages **from** the listed processes for as long as any other
    /// channel has pending messages (the "slow process" adversary used in the
    /// necessity proof of Theorem 4, where `p_{d+2}` takes no steps until the
    /// others are done).
    DelayFrom(Vec<ProcessId>),
    /// Starve messages **to** the listed processes for as long as any other
    /// channel has pending messages.
    DelayTo(Vec<ProcessId>),
}

/// Outcome of running an asynchronous execution.
#[derive(Debug, Clone)]
pub struct AsyncOutcome<O> {
    /// Output of each process, by index (`None` if it never decided).
    pub outputs: Vec<Option<O>>,
    /// Whether every process the caller waited for decided before the step
    /// cap was reached.
    pub completed: bool,
    /// Message statistics (`steps` counts delivery steps).
    pub stats: ExecutionStats,
}

impl<O> AsyncOutcome<O> {
    /// Outputs of the processes whose indices appear in `indices`; `None`
    /// entries are skipped.
    pub fn outputs_of(&self, indices: &[usize]) -> Vec<&O> {
        indices
            .iter()
            .filter_map(|&i| self.outputs.get(i).and_then(|o| o.as_ref()))
            .collect()
    }
}

/// The asynchronous executor over a complete graph of processes.
pub struct AsyncNetwork<M, O> {
    processes: Vec<Box<dyn AsyncProcess<Msg = M, Output = O>>>,
    policy: DeliveryPolicy,
    seed: u64,
    max_steps: usize,
}

impl<M: Clone, O: Clone> AsyncNetwork<M, O> {
    /// Creates an executor with the given scheduling policy, RNG seed and a
    /// safety cap on the number of delivery steps.
    ///
    /// # Panics
    ///
    /// Panics if `processes` is empty or `max_steps == 0`.
    pub fn new(
        processes: Vec<Box<dyn AsyncProcess<Msg = M, Output = O>>>,
        policy: DeliveryPolicy,
        seed: u64,
        max_steps: usize,
    ) -> Self {
        assert!(!processes.is_empty(), "need at least one process");
        assert!(max_steps > 0, "max_steps must be positive");
        Self {
            processes,
            policy,
            seed,
            max_steps,
        }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// Always `false`; the constructor rejects empty process sets.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Runs the execution until every process listed in `wait_for` has
    /// produced an output, all channels are empty, or the step cap is hit.
    pub fn run(mut self, wait_for: &[usize]) -> AsyncOutcome<O> {
        let n = self.processes.len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut stats = ExecutionStats::default();
        // channels[from][to] is a FIFO queue of in-flight messages.
        let mut channels: Vec<Vec<VecDeque<M>>> = vec![(0..n).map(|_| VecDeque::new()).collect(); n];
        let mut round_robin_cursor = 0usize;

        // Start every process and enqueue its initial messages.
        for index in 0..n {
            let outgoing = self.processes[index].on_start();
            stats.messages_sent += outgoing.len();
            enqueue(&mut channels, index, outgoing, n);
        }

        let decided = |processes: &[Box<dyn AsyncProcess<Msg = M, Output = O>>]| {
            wait_for.iter().all(|&i| processes[i].output().is_some())
        };

        while stats.steps < self.max_steps {
            if decided(&self.processes) {
                return AsyncOutcome {
                    outputs: self.processes.iter().map(|p| p.output()).collect(),
                    completed: true,
                    stats,
                };
            }
            let nonempty: Vec<(usize, usize)> = (0..n)
                .flat_map(|from| (0..n).map(move |to| (from, to)))
                .filter(|&(from, to)| !channels[from][to].is_empty())
                .collect();
            if nonempty.is_empty() {
                break;
            }
            let (from, to) = self.pick_channel(&nonempty, &mut rng, &mut round_robin_cursor);
            let msg = channels[from][to]
                .pop_front()
                .expect("channel selected among non-empty channels");
            stats.messages_delivered += 1;
            stats.steps += 1;
            let outgoing = self.processes[to].on_message(ProcessId::new(from), msg);
            stats.messages_sent += outgoing.len();
            enqueue(&mut channels, to, outgoing, n);
        }

        let completed = decided(&self.processes);
        AsyncOutcome {
            outputs: self.processes.iter().map(|p| p.output()).collect(),
            completed,
            stats,
        }
    }

    fn pick_channel(
        &self,
        nonempty: &[(usize, usize)],
        rng: &mut StdRng,
        cursor: &mut usize,
    ) -> (usize, usize) {
        match &self.policy {
            DeliveryPolicy::RandomFair => nonempty[rng.gen_range(0..nonempty.len())],
            DeliveryPolicy::RoundRobin => {
                let choice = nonempty[*cursor % nonempty.len()];
                *cursor = cursor.wrapping_add(1);
                choice
            }
            DeliveryPolicy::DelayFrom(slow) => {
                let preferred: Vec<(usize, usize)> = nonempty
                    .iter()
                    .copied()
                    .filter(|&(from, _)| !slow.iter().any(|p| p.index() == from))
                    .collect();
                let pool = if preferred.is_empty() { nonempty } else { &preferred };
                pool[rng.gen_range(0..pool.len())]
            }
            DeliveryPolicy::DelayTo(slow) => {
                let preferred: Vec<(usize, usize)> = nonempty
                    .iter()
                    .copied()
                    .filter(|&(_, to)| !slow.iter().any(|p| p.index() == to))
                    .collect();
                let pool = if preferred.is_empty() { nonempty } else { &preferred };
                pool[rng.gen_range(0..pool.len())]
            }
        }
    }
}

fn enqueue<M>(
    channels: &mut [Vec<VecDeque<M>>],
    from: usize,
    outgoing: Vec<Outgoing<M>>,
    n: usize,
) {
    for Outgoing { to, msg } in outgoing {
        if to.index() < n {
            channels[from][to.index()].push_back(msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::broadcast_to_all;

    /// Toy protocol: each process broadcasts its value once, then outputs the
    /// sum of the first `n - 1` values it receives (including duplicates).
    struct Summer {
        id: ProcessId,
        n: usize,
        value: u64,
        received: Vec<u64>,
        result: Option<u64>,
    }

    impl AsyncProcess for Summer {
        type Msg = u64;
        type Output = u64;

        fn on_start(&mut self) -> Vec<Outgoing<u64>> {
            broadcast_to_all(self.n, Some(self.id), &self.value)
        }

        fn on_message(&mut self, _from: ProcessId, msg: u64) -> Vec<Outgoing<u64>> {
            if self.result.is_none() {
                self.received.push(msg);
                if self.received.len() == self.n - 1 {
                    self.result = Some(self.received.iter().sum::<u64>() + self.value);
                }
            }
            Vec::new()
        }

        fn output(&self) -> Option<u64> {
            self.result
        }
    }

    fn summer_network(values: &[u64], policy: DeliveryPolicy, seed: u64) -> AsyncNetwork<u64, u64> {
        let n = values.len();
        let processes: Vec<Box<dyn AsyncProcess<Msg = u64, Output = u64>>> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                Box::new(Summer {
                    id: ProcessId::new(i),
                    n,
                    value: v,
                    received: Vec::new(),
                    result: None,
                }) as Box<dyn AsyncProcess<Msg = u64, Output = u64>>
            })
            .collect();
        AsyncNetwork::new(processes, policy, seed, 10_000)
    }

    #[test]
    fn all_messages_eventually_delivered_random_policy() {
        let all: Vec<usize> = (0..4).collect();
        let outcome = summer_network(&[1, 2, 3, 4], DeliveryPolicy::RandomFair, 7).run(&all);
        assert!(outcome.completed);
        assert_eq!(outcome.outputs, vec![Some(10), Some(10), Some(10), Some(10)]);
    }

    #[test]
    fn round_robin_policy_also_completes() {
        let all: Vec<usize> = (0..3).collect();
        let outcome = summer_network(&[1, 2, 3], DeliveryPolicy::RoundRobin, 0).run(&all);
        assert!(outcome.completed);
        assert_eq!(outcome.outputs, vec![Some(6), Some(6), Some(6)]);
    }

    #[test]
    fn executions_are_reproducible_for_equal_seeds() {
        let all: Vec<usize> = (0..4).collect();
        let a = summer_network(&[1, 2, 3, 4], DeliveryPolicy::RandomFair, 42).run(&all);
        let b = summer_network(&[1, 2, 3, 4], DeliveryPolicy::RandomFair, 42).run(&all);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn delayed_process_messages_arrive_last_but_arrive() {
        // Delay messages from process 0; everyone still completes because the
        // policy is fair.
        let all: Vec<usize> = (0..3).collect();
        let outcome = summer_network(
            &[100, 1, 2],
            DeliveryPolicy::DelayFrom(vec![ProcessId::new(0)]),
            3,
        )
        .run(&all);
        assert!(outcome.completed);
        assert_eq!(outcome.outputs, vec![Some(103), Some(103), Some(103)]);
    }

    #[test]
    fn waiting_for_a_subset_ignores_others() {
        // Only wait for processes 1 and 2; process 0 needs n-1 = 3 messages
        // like the others, but we do not require it.
        let outcome = summer_network(&[1, 2, 3, 4], DeliveryPolicy::RandomFair, 9).run(&[1, 2]);
        assert!(outcome.completed);
        assert!(outcome.outputs[1].is_some() && outcome.outputs[2].is_some());
    }

    #[test]
    fn step_cap_halts_runaway_executions() {
        // A protocol that ping-pongs forever between two processes.
        struct PingPong {
            id: ProcessId,
        }
        impl AsyncProcess for PingPong {
            type Msg = ();
            type Output = ();
            fn on_start(&mut self) -> Vec<Outgoing<()>> {
                vec![Outgoing::new(ProcessId::new(1 - self.id.index()), ())]
            }
            fn on_message(&mut self, from: ProcessId, _msg: ()) -> Vec<Outgoing<()>> {
                vec![Outgoing::new(from, ())]
            }
            fn output(&self) -> Option<()> {
                None
            }
        }
        let processes: Vec<Box<dyn AsyncProcess<Msg = (), Output = ()>>> = (0..2)
            .map(|i| Box::new(PingPong { id: ProcessId::new(i) }) as Box<dyn AsyncProcess<Msg = (), Output = ()>>)
            .collect();
        let outcome = AsyncNetwork::new(processes, DeliveryPolicy::RoundRobin, 0, 50).run(&[0, 1]);
        assert!(!outcome.completed);
        assert_eq!(outcome.stats.steps, 50);
    }

    #[test]
    fn outputs_of_selects_indices() {
        let all: Vec<usize> = (0..3).collect();
        let outcome = summer_network(&[1, 2, 3], DeliveryPolicy::RandomFair, 5).run(&all);
        assert_eq!(outcome.outputs_of(&[0, 2]), vec![&6, &6]);
    }

    #[test]
    fn per_channel_fifo_order_is_respected() {
        // Process 0 sends two ordered messages to process 1 at start; process
        // 1 records the order it sees them in.
        struct Sender;
        struct Receiver {
            seen: Vec<u64>,
            done: Option<Vec<u64>>,
        }
        #[derive(Clone)]
        enum Msg {
            Value(u64),
        }
        impl AsyncProcess for Sender {
            type Msg = Msg;
            type Output = Vec<u64>;
            fn on_start(&mut self) -> Vec<Outgoing<Msg>> {
                vec![
                    Outgoing::new(ProcessId::new(1), Msg::Value(1)),
                    Outgoing::new(ProcessId::new(1), Msg::Value(2)),
                    Outgoing::new(ProcessId::new(1), Msg::Value(3)),
                ]
            }
            fn on_message(&mut self, _f: ProcessId, _m: Msg) -> Vec<Outgoing<Msg>> {
                Vec::new()
            }
            fn output(&self) -> Option<Vec<u64>> {
                Some(Vec::new())
            }
        }
        impl AsyncProcess for Receiver {
            type Msg = Msg;
            type Output = Vec<u64>;
            fn on_start(&mut self) -> Vec<Outgoing<Msg>> {
                Vec::new()
            }
            fn on_message(&mut self, _f: ProcessId, m: Msg) -> Vec<Outgoing<Msg>> {
                let Msg::Value(v) = m;
                self.seen.push(v);
                if self.seen.len() == 3 {
                    self.done = Some(self.seen.clone());
                }
                Vec::new()
            }
            fn output(&self) -> Option<Vec<u64>> {
                self.done.clone()
            }
        }
        let processes: Vec<Box<dyn AsyncProcess<Msg = Msg, Output = Vec<u64>>>> = vec![
            Box::new(Sender),
            Box::new(Receiver {
                seen: Vec::new(),
                done: None,
            }),
        ];
        let outcome =
            AsyncNetwork::new(processes, DeliveryPolicy::RandomFair, 123, 1000).run(&[1]);
        assert_eq!(outcome.outputs[1], Some(vec![1, 2, 3]));
    }
}
