//! Integration tests: the same protocol state machines deliver the same
//! guarantees on the deterministic event simulator and on the
//! thread-per-process runtime.

use bvc::adversary::{ByzantineStrategy, PointForge};
use bvc::core::{
    AadMsg, ApproxBvcProcess, ApproxOutput, BvcConfig, ByzantineApproxProcess, UpdateRule,
};
use bvc::geometry::{ConvexHull, Point, PointMultiset};
use bvc::net::{run_threaded, AsyncNetwork, AsyncProcess, DeliveryPolicy};
use std::time::Duration;

fn config() -> BvcConfig {
    BvcConfig::new(5, 1, 2)
        .unwrap()
        .with_epsilon(0.1)
        .unwrap()
        .with_value_bounds(0.0, 1.0)
        .unwrap()
}

fn honest_inputs() -> Vec<Point> {
    vec![
        Point::new(vec![0.1, 0.2]),
        Point::new(vec![0.8, 0.1]),
        Point::new(vec![0.4, 0.9]),
        Point::new(vec![0.6, 0.5]),
    ]
}

fn build_processes(
    config: &BvcConfig,
) -> Vec<Box<dyn AsyncProcess<Msg = AadMsg, Output = ApproxOutput> + Send>> {
    let mut processes: Vec<Box<dyn AsyncProcess<Msg = AadMsg, Output = ApproxOutput> + Send>> =
        Vec::new();
    for (i, input) in honest_inputs().iter().enumerate() {
        processes.push(Box::new(ApproxBvcProcess::new(
            config.clone(),
            i,
            input.clone(),
            UpdateRule::WitnessOptimized,
        )));
    }
    let mut forge = PointForge::new(ByzantineStrategy::Equivocate, 2, 0.0, 1.0, 77);
    forge.set_honest_value(Point::new(vec![0.5, 0.5]));
    processes.push(Box::new(ByzantineApproxProcess::new(
        config.clone(),
        4,
        Point::new(vec![0.5, 0.5]),
        UpdateRule::WitnessOptimized,
        forge,
    )));
    processes
}

fn check(decisions: &[Point], epsilon: f64) {
    let hull = ConvexHull::new(PointMultiset::new(honest_inputs()));
    for d in decisions {
        assert!(hull.contains(d), "decision {d} escaped the honest hull");
    }
    for pair in decisions.windows(2) {
        assert!(
            pair[0].linf_distance(&pair[1]) <= epsilon,
            "spread exceeds epsilon"
        );
    }
}

#[test]
fn simulator_execution_meets_the_guarantees() {
    let config = config();
    // The simulator needs non-Send boxes; rebuild with the plain trait object.
    let mut processes: Vec<Box<dyn AsyncProcess<Msg = AadMsg, Output = ApproxOutput>>> = Vec::new();
    for p in build_processes(&config) {
        processes.push(p);
    }
    let outcome =
        AsyncNetwork::new(processes, DeliveryPolicy::RandomFair, 31, 2_000_000).run(&[0, 1, 2, 3]);
    assert!(outcome.completed);
    let decisions: Vec<Point> = (0..4)
        .map(|i| outcome.outputs[i].as_ref().unwrap().decision.clone())
        .collect();
    check(&decisions, config.epsilon);
}

#[test]
fn threaded_execution_meets_the_same_guarantees() {
    let config = config();
    let processes = build_processes(&config);
    let outcome = run_threaded(processes, &[0, 1, 2, 3], Duration::from_secs(120));
    assert!(outcome.completed, "threads must decide within the deadline");
    let decisions: Vec<Point> = (0..4)
        .map(|i| outcome.outputs[i].as_ref().unwrap().decision.clone())
        .collect();
    check(&decisions, config.epsilon);
}

#[test]
fn adversarial_scheduling_policies_all_meet_the_guarantees() {
    let config = config();
    for policy in [
        DeliveryPolicy::RandomFair,
        DeliveryPolicy::RoundRobin,
        DeliveryPolicy::DelayFrom(vec![bvc::net::ProcessId::new(0)]),
        DeliveryPolicy::DelayTo(vec![bvc::net::ProcessId::new(1)]),
    ] {
        let mut processes: Vec<Box<dyn AsyncProcess<Msg = AadMsg, Output = ApproxOutput>>> =
            Vec::new();
        for p in build_processes(&config) {
            processes.push(p);
        }
        let outcome =
            AsyncNetwork::new(processes, policy.clone(), 13, 3_000_000).run(&[0, 1, 2, 3]);
        assert!(outcome.completed, "policy {policy:?} blocked termination");
        let decisions: Vec<Point> = (0..4)
            .map(|i| outcome.outputs[i].as_ref().unwrap().decision.clone())
            .collect();
        check(&decisions, config.epsilon);
    }
}
