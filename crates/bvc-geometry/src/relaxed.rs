//! Relaxed validity predicates (Xiang & Vaidya, *Relaxed Byzantine Vector
//! Consensus*, arXiv:1601.08067).
//!
//! The source paper's validity condition is *strict*: every honest decision
//! must lie in the convex hull of the honest inputs.  The relaxed paper
//! weakens that condition in two ways, each of which lowers the
//! `(d+1)f + 1`-type resource requirement of the strict problem:
//!
//! * **(1+α)-relaxed**: the decision may lie anywhere in the honest hull
//!   *dilated* by a factor `1 + α` about its centroid `c`,
//!   `H_α = { c + (1+α)(x − c) : x ∈ H }`.  At `α = 0` this is exactly the
//!   strict condition.
//! * **k-relaxed**: the decision's projection onto *every* subset of `k`
//!   coordinates must lie in the corresponding projection of the honest
//!   hull.  At `k = d` (a single subset: all coordinates) this is exactly
//!   the strict condition; smaller `k` only constrains lower-dimensional
//!   shadows of the decision.
//!
//! [`ValidityPredicate`] packages the three conditions behind one membership
//! query so the run scoring, the scenario verdicts and the test assertions
//! all share a single implementation.  The implementation reuses the
//! machinery of this crate throughout: a dilated hull is just the
//! [`ConvexHull`] of the dilated generators (so the bounding-box reject,
//! generator-equality accept and LP membership fast paths all apply
//! unchanged), coordinate subsets are streamed with [`Combinations`] instead
//! of being materialised, and the point-valued queries canonicalise the
//! member order first ([`crate::gamma`]-style), so they are functions of the
//! *multiset* exactly like the strict Γ queries — which is what makes them
//! usable as deterministic decision rules.
//!
//! The module also provides the relaxed safe-area queries the Exact BVC
//! decision rule needs below the strict threshold:
//! [`relaxed_gamma_point`] intersects the *dilated* `(|Y|−f)`-subset hulls
//! (non-empty for large enough `α` whenever the subsets are full-dimensional)
//! and [`k_relaxed_point`] picks the trimmed-box centre and verifies its
//! `k`-dimensional shadows against the projected safe areas.

use crate::combinatorics::{binomial, Combinations};
use crate::gamma::{canonical_order, contains_impl, trimmed_bounds};
use crate::hull::ConvexHull;
use crate::multiset::PointMultiset;
use crate::point::Point;
use std::fmt;

/// Which validity condition a decision is judged against.
///
/// `Strict` is the source paper's condition; the other two are the
/// relaxations of arXiv:1601.08067.  `AlphaScaled(0.0)` and `KRelaxed(d)`
/// are *by construction* byte-identical to `Strict` (both short-circuit into
/// the strict code path), which the property tests pin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValidityPredicate {
    /// Membership in the honest hull (Vaidya & Garg, PODC 2013).
    Strict,
    /// Membership in the honest hull dilated by `1 + α` about its centroid.
    AlphaScaled(f64),
    /// Membership of every `k`-coordinate projection in the projected honest
    /// hull.  `k ≥ d` collapses to `Strict`.
    KRelaxed(usize),
}

impl ValidityPredicate {
    /// Returns `true` when this predicate is semantically the strict
    /// condition (`Strict` itself, `AlphaScaled(0)`, or `KRelaxed(k ≥ d)`
    /// for the given dimension).
    pub fn is_strict_for(&self, d: usize) -> bool {
        match self {
            ValidityPredicate::Strict => true,
            ValidityPredicate::AlphaScaled(alpha) => *alpha == 0.0,
            ValidityPredicate::KRelaxed(k) => *k >= d,
        }
    }

    /// Stable display label (`strict`, `(1+0.5)-relaxed`, `2-relaxed`),
    /// used by the scenario verdicts and the campaign report.
    pub fn label(&self) -> String {
        match self {
            ValidityPredicate::Strict => "strict".to_string(),
            ValidityPredicate::AlphaScaled(alpha) => format!("(1+{alpha})-relaxed"),
            ValidityPredicate::KRelaxed(k) => format!("{k}-relaxed"),
        }
    }

    /// The effective dimension the validity condition binds in: `d` for the
    /// strict condition, `k` for `k`-relaxed, and `1` for `(1+α)`-relaxed
    /// with `α > 0` (dilation decouples the hull geometry from the ambient
    /// dimension, so only the scalar-consensus core of the bound survives —
    /// the modelling of 1601.08067's headline result used by the resource
    /// checks in `bvc-core`).
    pub fn effective_dim(&self, d: usize) -> usize {
        match self {
            ValidityPredicate::Strict => d,
            ValidityPredicate::AlphaScaled(alpha) => {
                if *alpha > 0.0 {
                    1
                } else {
                    d
                }
            }
            ValidityPredicate::KRelaxed(k) => (*k).clamp(1, d),
        }
    }

    /// Returns `true` if `point` satisfies this validity condition with
    /// respect to the honest inputs `honest`.
    ///
    /// # Panics
    ///
    /// Panics if `honest` is empty, the dimensions disagree, or the
    /// predicate's parameter is invalid (negative/non-finite `α`, `k = 0`).
    pub fn contains(&self, honest: &PointMultiset, point: &Point) -> bool {
        assert!(!honest.is_empty(), "need at least one honest input");
        assert_eq!(
            point.dim(),
            honest.dim(),
            "query point dimension must match the input dimension"
        );
        match self {
            ValidityPredicate::Strict => ConvexHull::new(honest.clone()).contains(point),
            ValidityPredicate::AlphaScaled(alpha) => {
                assert!(
                    alpha.is_finite() && *alpha >= 0.0,
                    "alpha must be finite and non-negative, got {alpha}"
                );
                // α = 0 takes the strict path verbatim: `c + 1.0·(g − c)`
                // is not bit-exact in floating point, and the equivalence
                // must be byte-identical, not approximate.
                if *alpha == 0.0 {
                    return ConvexHull::new(honest.clone()).contains(point);
                }
                ConvexHull::new(dilate_about_centroid(honest, *alpha)).contains(point)
            }
            ValidityPredicate::KRelaxed(k) => {
                assert!(*k >= 1, "k must be at least 1");
                let d = honest.dim();
                if *k >= d {
                    return ConvexHull::new(honest.clone()).contains(point);
                }
                // Stream the C(d, k) coordinate subsets; short-circuit on the
                // first projection whose hull rejects the projected point.
                let mut subsets = Combinations::new(d, *k);
                while let Some(coords) = subsets.next_ref() {
                    let hull = ConvexHull::new(project(honest, coords));
                    if !hull.contains(&project_point(point, coords)) {
                        return false;
                    }
                }
                true
            }
        }
    }
}

impl fmt::Display for ValidityPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The multiset dilated by `1 + α` about its centroid:
/// `g ↦ c + (1+α)(g − c)`.  `α = 0` returns the input unchanged (bit-exact),
/// so downstream consumers can rely on `dilate(y, 0) ≡ y`.
pub fn dilate_about_centroid(y: &PointMultiset, alpha: f64) -> PointMultiset {
    assert!(
        alpha.is_finite() && alpha >= 0.0,
        "alpha must be finite and non-negative, got {alpha}"
    );
    if alpha == 0.0 {
        return y.clone();
    }
    let centre = Point::centroid(y.points());
    let scale = 1.0 + alpha;
    PointMultiset::new(
        y.iter()
            .map(|g| {
                Point::new(
                    g.coords()
                        .iter()
                        .zip(centre.coords())
                        .map(|(&gc, &cc)| cc + scale * (gc - cc))
                        .collect(),
                )
            })
            .collect(),
    )
}

/// Projection of a multiset onto the given coordinate subset.
fn project(y: &PointMultiset, coords: &[usize]) -> PointMultiset {
    PointMultiset::new(y.iter().map(|p| project_point(p, coords)).collect())
}

/// Projection of one point onto the given coordinate subset.
fn project_point(p: &Point, coords: &[usize]) -> Point {
    Point::new(coords.iter().map(|&l| p.coord(l)).collect())
}

/// A deterministically chosen point of the **(1+α)-relaxed safe area**
/// `Γ_α(Y) = ∩_{T ⊆ Y, |T| = |Y| − f} dilate_α(H(T))`, or `None` when the
/// intersection is empty (each hull is dilated about its own centroid).
///
/// `Γ_0 = Γ`, so `alpha = 0` delegates to the strict engine and is
/// byte-identical to [`gamma_point`](crate::gamma_point).  For `α > 0` the
/// dilated hulls are intersected with the same active-set working-set loop
/// the strict engine uses, after canonicalising the member order — the
/// chosen point is a function of `(Y, f, α)`, which is what lets the Exact
/// BVC decision rule below the strict threshold stay a "same deterministic
/// function at every process".
///
/// `Γ_α(Y) ⊆ dilate_α(H(T))` for every `(|Y|−f)`-subset `T`; in particular,
/// when at most `f` members of `Y` are Byzantine, any point of `Γ_α(Y)` is
/// in the dilated hull of the honest members — i.e. relaxed decisions built
/// on this query satisfy `(1+α)`-relaxed validity by construction.
///
/// # Panics
///
/// Panics if `f >= y.len()` or `alpha` is negative or non-finite.
pub fn relaxed_gamma_point(y: &PointMultiset, f: usize, alpha: f64) -> Option<Point> {
    assert!(
        f < y.len(),
        "fault bound f = {f} must be smaller than |Y| = {}",
        y.len()
    );
    assert!(
        alpha.is_finite() && alpha >= 0.0,
        "alpha must be finite and non-negative, got {alpha}"
    );
    if alpha == 0.0 {
        return crate::gamma::find_point_impl(y, f);
    }
    let canon = canonical_order(y);
    if f == 0 {
        return ConvexHull::common_point(&[ConvexHull::new(dilate_about_centroid(&canon, alpha))]);
    }
    let m = canon.len();
    let k = m - f;
    let count = usize::try_from(binomial(m, k)).unwrap_or(usize::MAX);
    let mut stream = Combinations::new(m, k);
    let mut index_lists: Vec<Vec<usize>> = Vec::new();
    let hull_at = |ordinal: usize| {
        while index_lists.len() <= ordinal {
            let idx = stream
                .next_ref()
                .expect("ordinal is below the combination count");
            index_lists.push(idx.to_vec());
        }
        ConvexHull::new(dilate_about_centroid(
            &canon.select(&index_lists[ordinal]),
            alpha,
        ))
    };
    let fallback = || {
        let hulls: Vec<ConvexHull> = canon
            .subsets_of_size(k)
            .into_iter()
            .map(|t| ConvexHull::new(dilate_about_centroid(&t, alpha)))
            .collect();
        ConvexHull::common_point(&hulls)
    };
    ConvexHull::active_set_common_point(count, hull_at, fallback)
}

/// Returns `true` if `point` lies in the (1+α)-relaxed safe area `Γ_α(y)`
/// (every dilated `(|y|−f)`-subset hull contains it).
///
/// # Panics
///
/// Panics if `f >= y.len()`, the dimensions disagree, or `alpha` is negative
/// or non-finite.
pub fn relaxed_gamma_contains(y: &PointMultiset, f: usize, alpha: f64, point: &Point) -> bool {
    assert!(
        f < y.len(),
        "fault bound f = {f} must be smaller than |Y| = {}",
        y.len()
    );
    assert!(
        alpha.is_finite() && alpha >= 0.0,
        "alpha must be finite and non-negative, got {alpha}"
    );
    if alpha == 0.0 {
        return contains_impl(y, f, point);
    }
    let m = y.len();
    let mut stream = Combinations::new(m, m - f);
    while let Some(idx) = stream.next_ref() {
        let hull = ConvexHull::new(dilate_about_centroid(&y.select(idx), alpha));
        if !hull.contains(point) {
            return false;
        }
    }
    true
}

/// A deterministically chosen point satisfying the **k-relaxed safe-area
/// condition**: its projection onto every `k`-coordinate subset lies in the
/// strict safe area of the correspondingly projected multiset.
///
/// The candidate is the centre of the per-coordinate trimmed box
/// `[y^l_(f+1), y^l_(|Y|−f)]` — order-invariant by construction — verified
/// against the `C(d, k)` projected safe areas (streamed, short-circuiting).
/// For `k = 1` the verification always succeeds when every trimmed interval
/// is non-empty (`|Y| ≥ 2f + 1`), which is the decoupled per-coordinate
/// scalar-consensus rule of the relaxed paper; for `1 < k < d` the candidate
/// may fail verification, in which case `None` is returned (no decision —
/// recorded as a termination violation, which is data).
///
/// Any returned point is in the projected hull of the honest members for
/// every `k`-subset whenever at most `f` members of `Y` are Byzantine, i.e.
/// decisions built on this query satisfy k-relaxed validity by construction.
///
/// # Panics
///
/// Panics if `f >= y.len()`, `k == 0`, or `k > y.dim()`.
pub fn k_relaxed_point(y: &PointMultiset, f: usize, k: usize) -> Option<Point> {
    assert!(
        f < y.len(),
        "fault bound f = {f} must be smaller than |Y| = {}",
        y.len()
    );
    let d = y.dim();
    assert!(k >= 1 && k <= d, "k must be in 1..=d, got {k} (d = {d})");
    if k == d {
        return crate::gamma::find_point_impl(y, f);
    }
    let canon = canonical_order(y);
    let (lo, hi) = trimmed_bounds(&canon, f);
    if lo.iter().zip(&hi).any(|(l, h)| l > h) {
        return None;
    }
    let centre = Point::new(lo.iter().zip(&hi).map(|(l, h)| 0.5 * (l + h)).collect());
    let mut subsets = Combinations::new(d, k);
    while let Some(coords) = subsets.next_ref() {
        let projected = project(&canon, coords);
        if !contains_impl(&projected, f, &project_point(&centre, coords)) {
            return None;
        }
    }
    Some(centre)
}

/// The deterministic decision-rule value for a multiset under a validity
/// mode — the single function the Exact BVC Step 2 (and its shared cache)
/// evaluates:
///
/// * `Strict` — the strict Γ point;
/// * `AlphaScaled(α)` — the `(1+α)`-relaxed Γ point (`α = 0` is the strict
///   path, byte-identically);
/// * `KRelaxed(k)` — the strict Γ point when it exists (it satisfies every
///   projection), else the [`k_relaxed_point`] trimmed-centre fallback
///   (`k ≥ d` collapses to strict).
///
/// # Panics
///
/// Panics if `f >= y.len()` or the mode's parameter is invalid.
pub fn decision_point(y: &PointMultiset, f: usize, mode: &ValidityPredicate) -> Option<Point> {
    match mode {
        ValidityPredicate::Strict => crate::gamma::find_point_impl(y, f),
        ValidityPredicate::AlphaScaled(alpha) => relaxed_gamma_point(y, f, *alpha),
        ValidityPredicate::KRelaxed(k) => {
            if *k >= y.dim() {
                crate::gamma::find_point_impl(y, f)
            } else {
                crate::gamma::find_point_impl(y, f).or_else(|| k_relaxed_point(y, f, *k))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma_point;
    use crate::workload::WorkloadGenerator;

    fn pts(coords: &[&[f64]]) -> PointMultiset {
        PointMultiset::new(coords.iter().map(|c| Point::new(c.to_vec())).collect())
    }

    #[test]
    fn alpha_zero_dilation_is_bit_exact_identity() {
        let y = pts(&[&[0.1, 0.7], &[0.3, 0.2], &[0.9, 0.4]]);
        assert_eq!(dilate_about_centroid(&y, 0.0), y);
    }

    #[test]
    fn dilation_contains_the_original_hull() {
        let y = pts(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]]);
        let dilated = ConvexHull::new(dilate_about_centroid(&y, 0.5));
        for g in y.iter() {
            assert!(dilated.contains(g), "generator {g} must stay inside");
        }
    }

    #[test]
    fn alpha_scaled_accepts_points_outside_the_strict_hull() {
        let y = pts(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]]);
        let outside = Point::new(vec![0.6, 0.6]); // beyond the hypotenuse
        assert!(!ValidityPredicate::Strict.contains(&y, &outside));
        assert!(!ValidityPredicate::AlphaScaled(0.1).contains(&y, &outside));
        assert!(ValidityPredicate::AlphaScaled(1.0).contains(&y, &outside));
    }

    #[test]
    fn k_relaxed_accepts_points_whose_shadows_are_covered() {
        // The square's corners: (0.9, 0.9) is outside the triangle hull but
        // both 1-D shadows land inside the per-coordinate ranges.
        let y = pts(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]]);
        let p = Point::new(vec![0.9, 0.9]);
        assert!(!ValidityPredicate::Strict.contains(&y, &p));
        assert!(!ValidityPredicate::KRelaxed(2).contains(&y, &p));
        assert!(ValidityPredicate::KRelaxed(1).contains(&y, &p));
    }

    #[test]
    fn k_at_least_d_matches_strict() {
        let mut gen = WorkloadGenerator::new(5);
        let y = gen.box_points(5, 3, 0.0, 1.0);
        let queries = gen.box_points(20, 3, -0.2, 1.2);
        for q in queries.iter() {
            let strict = ValidityPredicate::Strict.contains(&y, q);
            assert_eq!(ValidityPredicate::KRelaxed(3).contains(&y, q), strict);
            assert_eq!(ValidityPredicate::KRelaxed(7).contains(&y, q), strict);
        }
    }

    #[test]
    fn relaxed_gamma_point_at_alpha_zero_is_gamma_point() {
        let mut gen = WorkloadGenerator::new(11);
        for _ in 0..8 {
            let y = gen.box_points(5, 2, 0.0, 1.0);
            let strict = gamma_point(&y, 1);
            let relaxed = relaxed_gamma_point(&y, 1, 0.0);
            assert_eq!(strict.is_some(), relaxed.is_some());
            if let (Some(a), Some(b)) = (strict, relaxed) {
                assert_eq!(a.coords(), b.coords(), "α = 0 must be byte-identical");
            }
        }
    }

    #[test]
    fn relaxed_gamma_point_recovers_empty_safe_areas() {
        // |Y| = 5, f = 2, d = 2 is below the Lemma-1 threshold 7, and this
        // box workload's Γ is indeed empty; the (|Y|−f)-subsets have 3 > d
        // members, so their dilated hulls are full-dimensional and meet once
        // α is large enough.
        let y = WorkloadGenerator::new(0).box_points(5, 2, 0.0, 1.0);
        assert!(gamma_point(&y, 2).is_none(), "below threshold: Γ = ∅");
        assert!(
            relaxed_gamma_point(&y, 2, 0.25).is_none(),
            "small dilation does not yet close the gap"
        );
        let p = relaxed_gamma_point(&y, 2, 2.0).expect("dilated hulls intersect");
        assert!(relaxed_gamma_contains(&y, 2, 2.0, &p));
        // The relaxed point satisfies (1+α)-relaxed validity w.r.t. any
        // (|Y|−f)-subset playing the role of the honest inputs.
        let honest = y.select(&[0, 1, 2]);
        assert!(ValidityPredicate::AlphaScaled(2.0).contains(&honest, &p));
    }

    #[test]
    fn relaxed_gamma_point_is_order_invariant() {
        let a = pts(&[
            &[0.0, 0.0],
            &[4.0, 0.0],
            &[0.0, 4.0],
            &[4.0, 4.0],
            &[2.0, 2.0],
        ]);
        let mut reordered = a.points().to_vec();
        reordered.reverse();
        let b = PointMultiset::new(reordered);
        let pa = relaxed_gamma_point(&a, 2, 2.0).unwrap();
        let pb = relaxed_gamma_point(&b, 2, 2.0).unwrap();
        assert_eq!(pa.coords(), pb.coords());
    }

    #[test]
    fn k_relaxed_point_decouples_coordinates() {
        // Below the Lemma-1 threshold for d = 2 (|Y| = 4 < 7 with f = 2) the
        // strict Γ is empty, but every per-coordinate trimmed interval is
        // non-empty (|Y| ≥ 2f + 1 fails here: 4 < 5 — so pick f = 1).
        let y = pts(&[&[0.0, 1.0], &[1.0, 0.0], &[0.2, 0.8], &[0.9, 0.1]]);
        let p = k_relaxed_point(&y, 1, 1).expect("trimmed intervals non-empty");
        assert_eq!(p.dim(), 2);
        // Each coordinate is the trimmed-interval midpoint.
        let honest = y.select(&[0, 1, 2]);
        assert!(ValidityPredicate::KRelaxed(1).contains(&honest, &p));
    }

    #[test]
    fn k_relaxed_point_at_k_equals_d_is_gamma_point() {
        let y = pts(&[
            &[0.0, 0.0],
            &[4.0, 0.0],
            &[0.0, 4.0],
            &[4.0, 4.0],
            &[2.0, 2.0],
        ]);
        let strict = gamma_point(&y, 1).unwrap();
        let relaxed = k_relaxed_point(&y, 1, 2).unwrap();
        assert_eq!(strict.coords(), relaxed.coords());
    }

    #[test]
    fn alpha_membership_is_monotone() {
        // A decision valid at α must be valid at every α′ > α: dilation
        // about a fixed centroid only ever grows the hull.
        let mut gen = WorkloadGenerator::new(21);
        let y = gen.box_points(6, 2, 0.0, 1.0);
        let queries = gen.box_points(40, 2, -0.5, 1.5);
        for q in queries.iter() {
            let mut valid_before = false;
            for alpha in [0.0, 0.25, 0.5, 1.0, 2.0] {
                let valid_now = ValidityPredicate::AlphaScaled(alpha).contains(&y, q);
                assert!(
                    !valid_before || valid_now,
                    "point {q} valid at a smaller α must stay valid at α = {alpha}"
                );
                valid_before = valid_now;
            }
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ValidityPredicate::Strict.label(), "strict");
        assert_eq!(
            ValidityPredicate::AlphaScaled(0.5).label(),
            "(1+0.5)-relaxed"
        );
        assert_eq!(ValidityPredicate::KRelaxed(2).label(), "2-relaxed");
    }

    #[test]
    fn effective_dim_models_the_lowered_bound() {
        assert_eq!(ValidityPredicate::Strict.effective_dim(4), 4);
        assert_eq!(ValidityPredicate::AlphaScaled(0.0).effective_dim(4), 4);
        assert_eq!(ValidityPredicate::AlphaScaled(0.5).effective_dim(4), 1);
        assert_eq!(ValidityPredicate::KRelaxed(2).effective_dim(4), 2);
        assert_eq!(ValidityPredicate::KRelaxed(9).effective_dim(4), 4);
    }

    #[test]
    #[should_panic(expected = "alpha must be finite")]
    fn negative_alpha_panics() {
        let y = pts(&[&[0.0], &[1.0]]);
        let _ = ValidityPredicate::AlphaScaled(-0.5).contains(&y, &Point::new(vec![0.5]));
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_panics() {
        let y = pts(&[&[0.0], &[1.0]]);
        let _ = ValidityPredicate::KRelaxed(0).contains(&y, &Point::new(vec![0.5]));
    }
}
