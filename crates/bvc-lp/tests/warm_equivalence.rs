//! Property pins for simplex warm starts.
//!
//! Warm-started feasibility solves reorder the entering-column scan of
//! phase 1 around the previous same-shape solve's final basis.  That is
//! still Bland's rule under a total order that is fixed for the whole solve,
//! so it changes the pivot walk — never the verdict.  These tests pin the
//! contract over randomised programs:
//!
//! * every warm feasibility verdict equals the cold verdict, and
//! * full solves (which are deliberately never warm-started, so chosen
//!   points stay history-free) return bit-identical values no matter what
//!   warm history the workspace carries.

use bvc_lp::{LinearProgram, Objective, Relation, SimplexWorkspace, SolveStatus};

/// Minimal deterministic generator (splitmix-style) so the corpus is stable.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[-1, 1]`.
    fn coeff(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// A random small program.  Shapes are drawn from a handful of recurring
/// `(vars, constraints)` pairs so the warm-priority map (keyed by tableau
/// shape) actually gets re-hits, like the recurring membership/joint shapes
/// of the Γ engine.
fn random_lp(rng: &mut Rng) -> LinearProgram {
    let vars = 2 + rng.below(3);
    let constraints = 2 + rng.below(4);
    let mut lp = LinearProgram::new(vars, Objective::Minimize);
    for v in 0..vars {
        lp.set_objective_coefficient(v, rng.coeff());
    }
    for c in 0..constraints {
        let coefficients: Vec<f64> = (0..vars).map(|_| rng.coeff()).collect();
        let relation = match c % 3 {
            0 => Relation::LessEq,
            1 => Relation::GreaterEq,
            _ => Relation::Equal,
        };
        lp.add_constraint(coefficients, relation, rng.coeff());
    }
    lp
}

#[test]
fn warm_feasibility_verdicts_equal_cold_verdicts() {
    let mut rng = Rng(7);
    let mut warm_workspace = SimplexWorkspace::new();
    let mut feasible = 0u32;
    let mut infeasible = 0u32;
    for case in 0..400 {
        let lp = random_lp(&mut rng);
        let cold = lp.solve_feasibility();
        let warm = lp.solve_feasibility_warm_with(&mut warm_workspace);
        assert_eq!(
            cold, warm,
            "case {case}: warm starts must not change verdicts"
        );
        match cold {
            SolveStatus::Optimal => feasible += 1,
            SolveStatus::Infeasible => infeasible += 1,
            SolveStatus::Unbounded | SolveStatus::Stalled => {}
        }
    }
    assert!(
        feasible > 0 && infeasible > 0,
        "the corpus must exercise both verdicts (got {feasible} feasible, {infeasible} infeasible)"
    );
    assert!(
        warm_workspace.warm_hits() > 0,
        "recurring shapes must actually be served stored warm priorities"
    );
}

#[test]
fn full_solves_are_unaffected_by_warm_history() {
    let mut rng = Rng(11);
    for case in 0..100 {
        let lp = random_lp(&mut rng);
        // Reference: a full solve on a pristine workspace.
        let pristine = lp.solve_with(&mut SimplexWorkspace::new());
        // A workspace polluted by warm feasibility solves of unrelated
        // programs (which store warm priorities for their shapes).
        let mut polluted = SimplexWorkspace::new();
        for _ in 0..5 {
            let other = random_lp(&mut rng);
            let _ = other.solve_feasibility_warm_with(&mut polluted);
        }
        let solved = lp.solve_with(&mut polluted);
        assert_eq!(pristine.status, solved.status, "case {case}");
        let a: Vec<u64> = pristine.values.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = solved.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            a, b,
            "case {case}: full solves never warm-start, so chosen points are history-free"
        );
    }
}
