//! Approximate BVC with the restricted (simple) round structure (Section 4).
//!
//! Section 4 of the paper considers iterative algorithms with the simplest
//! possible round structure — each round is a single all-to-all state
//! exchange, with no AAD-style witness machinery — and shows that the price of
//! that simplicity is a higher resilience requirement:
//!
//! * synchronous rounds: `n ≥ (d + 2)f + 1`;
//! * asynchronous rounds: `n ≥ (d + 4)f + 1`.
//!
//! Both algorithms keep the same Step-2 update rule as Section 3.2 (points of
//! `Γ(Φ(C))` for `(n−f)`-sized subsets `C` of the received vectors, averaged),
//! with `B_i[t]` simply redefined as the set of state vectors received in the
//! round.  The correctness argument rests on the received sets of any two
//! non-faulty processes sharing at least `(d+1)f + 1` identical vectors, which
//! the bounds above guarantee.
//!
//! [`RestrictedSyncProcess`] and [`RestrictedAsyncProcess`] are the honest
//! implementations; [`ByzantineRestrictedSync`] / [`ByzantineRestrictedAsync`]
//! are the forging adversaries.

use crate::config::BvcConfig;
use crate::convergence::{gamma, round_threshold};
use crate::witness::{average_state, build_zi_full_cached};
use bvc_adversary::PointForge;
use bvc_geometry::{Point, SharedGammaCache};
use bvc_net::{broadcast_to_all, AsyncProcess, Delivery, Outgoing, ProcessId, SyncProcess};
use std::collections::BTreeMap;

/// Message of the restricted-round protocols: the sender's state vector for a
/// given round.
#[derive(Debug, Clone, PartialEq)]
pub struct StateMsg {
    /// Round the state belongs to (1-based).
    pub round: usize,
    /// The sender's state vector `v[round − 1]`.
    pub state: Point,
}

/// The round budget used by both restricted algorithms: the same static
/// termination rule as Section 3.2, with `γ = 1/(n·C(n,n−f))`.
pub fn restricted_round_budget(config: &BvcConfig) -> usize {
    round_threshold(
        gamma(config.n, config.f),
        config.lower_bound,
        config.upper_bound,
        config.epsilon,
    )
}

// ---------------------------------------------------------------------------
// Synchronous variant
// ---------------------------------------------------------------------------

/// Honest process of the restricted-round **synchronous** algorithm
/// (`n ≥ (d+2)f + 1`).
pub struct RestrictedSyncProcess {
    config: BvcConfig,
    me: usize,
    state: Point,
    max_rounds: usize,
    history: Vec<Point>,
    decision: Option<Point>,
    gamma_cache: Option<SharedGammaCache>,
}

impl RestrictedSyncProcess {
    /// Creates the honest process with index `me` and input `input`.
    ///
    /// # Panics
    ///
    /// Panics if `me >= config.n`, `input.dim() != config.d` or
    /// `config.f == 0`.
    pub fn new(config: BvcConfig, me: usize, input: Point) -> Self {
        assert!(me < config.n, "process index {me} out of range");
        assert_eq!(input.dim(), config.d, "input dimension must equal config.d");
        assert!(config.f >= 1, "RestrictedSyncProcess requires f >= 1");
        let max_rounds = restricted_round_budget(&config);
        Self {
            history: vec![input.clone()],
            config,
            me,
            state: input,
            max_rounds,
            decision: None,
            gamma_cache: None,
        }
    }

    /// Shares a [`GammaCache`](bvc_geometry::GammaCache) with this process's
    /// round loop.  In a synchronous round all honest processes receive the
    /// same broadcast states, so the `C(n, n−f)` safe-area evaluations of
    /// Step 2 are computed once per round system-wide instead of once per
    /// process.  Cached and uncached runs produce identical states.
    pub fn with_gamma_cache(mut self, cache: SharedGammaCache) -> Self {
        self.gamma_cache = Some(cache);
        self
    }

    /// Total number of executor rounds needed: `max_rounds` exchange rounds
    /// plus one closing round in which the last inbox is processed.
    pub fn total_rounds(config: &BvcConfig) -> usize {
        restricted_round_budget(config) + 1
    }

    /// Per-round states (`history()[t]` is `v_i[t]`, index 0 the input).
    pub fn history(&self) -> &[Point] {
        &self.history
    }

    fn apply_update(&mut self, received: &[Delivery<StateMsg>], round: usize) {
        // B_i[t]: the vectors received this round (at most one per sender,
        // first wins) plus this process's own state.
        let mut per_sender: BTreeMap<usize, Point> = BTreeMap::new();
        for delivery in received {
            if delivery.msg.round == round && delivery.msg.state.dim() == self.config.d {
                per_sender
                    .entry(delivery.from.index())
                    .or_insert_with(|| delivery.msg.state.clone());
            }
        }
        per_sender.insert(self.me, self.state.clone());
        let entries: Vec<Point> = per_sender.into_values().collect();
        let quorum = self.config.n - self.config.f;
        if entries.len() >= quorum {
            let zi =
                build_zi_full_cached(&entries, quorum, self.config.f, self.gamma_cache.as_deref());
            if !zi.is_empty() {
                self.state = average_state(&zi);
            }
        }
        self.history.push(self.state.clone());
    }
}

impl SyncProcess for RestrictedSyncProcess {
    type Msg = StateMsg;
    type Output = Point;

    fn round(&mut self, round: usize, inbox: &[Delivery<StateMsg>]) -> Vec<Outgoing<StateMsg>> {
        // The inbox holds the state vectors sent in round `round − 1`.
        if round >= 2 && round <= self.max_rounds + 1 {
            self.apply_update(inbox, round - 1);
            if round == self.max_rounds + 1 {
                self.decision = Some(self.state.clone());
            }
        }
        if round <= self.max_rounds {
            broadcast_to_all(
                self.config.n,
                Some(ProcessId::new(self.me)),
                &StateMsg {
                    round,
                    state: self.state.clone(),
                },
            )
        } else {
            Vec::new()
        }
    }

    fn output(&self) -> Option<Point> {
        self.decision.clone()
    }

    fn trace_state(&self) -> Option<Vec<f64>> {
        Some(self.state.coords().to_vec())
    }
}

/// Byzantine participant of the restricted synchronous algorithm: forges the
/// state it reports, per receiver.
pub struct ByzantineRestrictedSync {
    config: BvcConfig,
    me: usize,
    forge: PointForge,
}

impl ByzantineRestrictedSync {
    /// Creates the Byzantine process.
    pub fn new(config: BvcConfig, me: usize, forge: PointForge) -> Self {
        Self { config, me, forge }
    }
}

impl SyncProcess for ByzantineRestrictedSync {
    type Msg = StateMsg;
    type Output = Point;

    fn round(&mut self, round: usize, _inbox: &[Delivery<StateMsg>]) -> Vec<Outgoing<StateMsg>> {
        let mut out = Vec::new();
        for to in 0..self.config.n {
            if to == self.me {
                continue;
            }
            if let Some(point) = self.forge.forge(round, to) {
                out.push(Outgoing::new(
                    ProcessId::new(to),
                    StateMsg {
                        round,
                        state: point,
                    },
                ));
            }
        }
        out
    }

    fn output(&self) -> Option<Point> {
        None
    }
}

// ---------------------------------------------------------------------------
// Asynchronous variant
// ---------------------------------------------------------------------------

/// Honest process of the restricted-round **asynchronous** algorithm
/// (`n ≥ (d+4)f + 1`): in each round it broadcasts its state, waits for
/// `n − f − 1` round-`t` states from other processes, and applies the same
/// update rule.
pub struct RestrictedAsyncProcess {
    config: BvcConfig,
    me: usize,
    state: Point,
    current_round: usize,
    max_rounds: usize,
    /// Received state vectors per round, at most one per sender.
    received: BTreeMap<usize, BTreeMap<usize, Point>>,
    history: Vec<Point>,
    decision: Option<Point>,
    gamma_cache: Option<SharedGammaCache>,
}

impl RestrictedAsyncProcess {
    /// Creates the honest process with index `me` and input `input`.
    ///
    /// # Panics
    ///
    /// Panics if `me >= config.n`, `input.dim() != config.d` or
    /// `config.f == 0`.
    pub fn new(config: BvcConfig, me: usize, input: Point) -> Self {
        assert!(me < config.n, "process index {me} out of range");
        assert_eq!(input.dim(), config.d, "input dimension must equal config.d");
        assert!(config.f >= 1, "RestrictedAsyncProcess requires f >= 1");
        let max_rounds = restricted_round_budget(&config);
        Self {
            history: vec![input.clone()],
            config,
            me,
            state: input,
            current_round: 0,
            max_rounds,
            received: BTreeMap::new(),
            decision: None,
            gamma_cache: None,
        }
    }

    /// Shares a [`GammaCache`](bvc_geometry::GammaCache) with this process's
    /// round loop; asynchronous processes see overlapping (not identical)
    /// `B_i[t]` sets, so the sharing is partial but still substantial.
    pub fn with_gamma_cache(mut self, cache: SharedGammaCache) -> Self {
        self.gamma_cache = Some(cache);
        self
    }

    /// Per-round states (`history()[t]` is `v_i[t]`, index 0 the input).
    pub fn history(&self) -> &[Point] {
        &self.history
    }

    fn broadcast_state(&self, round: usize) -> Vec<Outgoing<StateMsg>> {
        broadcast_to_all(
            self.config.n,
            Some(ProcessId::new(self.me)),
            &StateMsg {
                round,
                state: self.state.clone(),
            },
        )
    }

    fn try_advance(&mut self) -> Vec<Outgoing<StateMsg>> {
        let mut out = Vec::new();
        loop {
            if self.decision.is_some() {
                return out;
            }
            let round = self.current_round;
            let quorum_others = self.config.n - self.config.f - 1;
            let have = self.received.get(&round).map(|m| m.len()).unwrap_or(0);
            if have < quorum_others {
                return out;
            }
            // B_i[t]: own state plus the first n − f − 1 received vectors.
            let mut entries: Vec<Point> = vec![self.state.clone()];
            entries.extend(
                self.received
                    .get(&round)
                    .into_iter()
                    .flat_map(|m| m.values().cloned())
                    .take(quorum_others),
            );
            let quorum = self.config.n - self.config.f;
            let zi =
                build_zi_full_cached(&entries, quorum, self.config.f, self.gamma_cache.as_deref());
            if !zi.is_empty() {
                self.state = average_state(&zi);
            }
            self.history.push(self.state.clone());
            if round >= self.max_rounds {
                self.decision = Some(self.state.clone());
                return out;
            }
            self.current_round = round + 1;
            out.extend(self.broadcast_state(self.current_round));
        }
    }
}

impl AsyncProcess for RestrictedAsyncProcess {
    type Msg = StateMsg;
    type Output = Point;

    fn on_start(&mut self) -> Vec<Outgoing<StateMsg>> {
        self.current_round = 1;
        let mut out = self.broadcast_state(1);
        out.extend(self.try_advance());
        out
    }

    fn on_message(&mut self, from: ProcessId, msg: StateMsg) -> Vec<Outgoing<StateMsg>> {
        if msg.state.dim() != self.config.d || msg.round == 0 || msg.round > self.max_rounds {
            return Vec::new();
        }
        self.received
            .entry(msg.round)
            .or_default()
            .entry(from.index())
            .or_insert(msg.state);
        self.try_advance()
    }

    fn output(&self) -> Option<Point> {
        self.decision.clone()
    }
}

/// Byzantine participant of the restricted asynchronous algorithm: broadcasts
/// forged round-tagged states for every round up front and ignores everything
/// it receives (an aggressive but simple adversary; per-receiver forging gives
/// equivocation).
pub struct ByzantineRestrictedAsync {
    config: BvcConfig,
    me: usize,
    forge: PointForge,
    max_rounds: usize,
}

impl ByzantineRestrictedAsync {
    /// Creates the Byzantine process.
    pub fn new(config: BvcConfig, me: usize, forge: PointForge) -> Self {
        let max_rounds = restricted_round_budget(&config);
        Self {
            config,
            me,
            forge,
            max_rounds,
        }
    }
}

impl AsyncProcess for ByzantineRestrictedAsync {
    type Msg = StateMsg;
    type Output = Point;

    fn on_start(&mut self) -> Vec<Outgoing<StateMsg>> {
        let mut out = Vec::new();
        for round in 1..=self.max_rounds {
            for to in 0..self.config.n {
                if to == self.me {
                    continue;
                }
                if let Some(point) = self.forge.forge(round, to) {
                    out.push(Outgoing::new(
                        ProcessId::new(to),
                        StateMsg {
                            round,
                            state: point,
                        },
                    ));
                }
            }
        }
        out
    }

    fn on_message(&mut self, _from: ProcessId, _msg: StateMsg) -> Vec<Outgoing<StateMsg>> {
        Vec::new()
    }

    fn output(&self) -> Option<Point> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvc_adversary::ByzantineStrategy;
    use bvc_net::{AsyncNetwork, DeliveryPolicy, SyncNetwork};

    fn config(n: usize, f: usize, d: usize, eps: f64) -> BvcConfig {
        BvcConfig::new(n, f, d)
            .unwrap()
            .with_epsilon(eps)
            .unwrap()
            .with_value_bounds(0.0, 1.0)
            .unwrap()
    }

    fn assert_eps_agreement(decisions: &[Point], eps: f64) {
        for pair in decisions.windows(2) {
            assert!(
                pair[0].linf_distance(&pair[1]) <= eps,
                "ε-agreement violated: {} vs {}",
                pair[0],
                pair[1]
            );
        }
    }

    use crate::validity::assert_strict_validity as assert_validity;

    fn run_sync(
        n: usize,
        f: usize,
        d: usize,
        eps: f64,
        honest_inputs: Vec<Point>,
        strategy: ByzantineStrategy,
        seed: u64,
    ) -> (Vec<Point>, Vec<Point>) {
        let cfg = config(n, f, d, eps);
        let mut processes: Vec<Box<dyn SyncProcess<Msg = StateMsg, Output = Point>>> = Vec::new();
        for (i, input) in honest_inputs.iter().enumerate() {
            processes.push(Box::new(RestrictedSyncProcess::new(
                cfg.clone(),
                i,
                input.clone(),
            )));
        }
        for b in 0..f {
            let me = n - f + b;
            let mut forge = PointForge::new(strategy, d, 0.0, 1.0, seed + b as u64);
            forge.set_honest_value(Point::uniform(d, 0.5));
            processes.push(Box::new(ByzantineRestrictedSync::new(
                cfg.clone(),
                me,
                forge,
            )));
        }
        let honest: Vec<usize> = (0..n - f).collect();
        let outcome =
            SyncNetwork::new(processes, RestrictedSyncProcess::total_rounds(&cfg) + 2).run(&honest);
        let decisions = honest
            .iter()
            .map(|&i| outcome.outputs[i].clone().expect("honest decision"))
            .collect();
        (decisions, honest_inputs)
    }

    fn run_async(
        n: usize,
        f: usize,
        d: usize,
        eps: f64,
        honest_inputs: Vec<Point>,
        strategy: ByzantineStrategy,
        seed: u64,
    ) -> (Vec<Point>, Vec<Point>) {
        let cfg = config(n, f, d, eps);
        let mut processes: Vec<Box<dyn AsyncProcess<Msg = StateMsg, Output = Point>>> = Vec::new();
        for (i, input) in honest_inputs.iter().enumerate() {
            processes.push(Box::new(RestrictedAsyncProcess::new(
                cfg.clone(),
                i,
                input.clone(),
            )));
        }
        for b in 0..f {
            let me = n - f + b;
            let mut forge = PointForge::new(strategy, d, 0.0, 1.0, seed + b as u64);
            forge.set_honest_value(Point::uniform(d, 0.5));
            processes.push(Box::new(ByzantineRestrictedAsync::new(
                cfg.clone(),
                me,
                forge,
            )));
        }
        let honest: Vec<usize> = (0..n - f).collect();
        let outcome =
            AsyncNetwork::new(processes, DeliveryPolicy::RandomFair, seed, 2_000_000).run(&honest);
        assert!(outcome.completed, "honest processes must terminate");
        let decisions = honest
            .iter()
            .map(|&i| outcome.outputs[i].clone().expect("honest decision"))
            .collect();
        (decisions, honest_inputs)
    }

    #[test]
    fn sync_restricted_scalar_with_outlier() {
        // d = 1, f = 1: n ≥ (1+2)·1+1 = 4.
        let inputs = vec![
            Point::new(vec![0.0]),
            Point::new(vec![0.4]),
            Point::new(vec![1.0]),
        ];
        let (decisions, honest) =
            run_sync(4, 1, 1, 0.05, inputs, ByzantineStrategy::FixedOutlier, 3);
        assert_eps_agreement(&decisions, 0.05);
        assert_validity(&decisions, &honest);
    }

    #[test]
    fn sync_restricted_planar_with_equivocation() {
        // d = 2, f = 1: n ≥ 5.
        let inputs = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![0.0, 1.0]),
            Point::new(vec![0.8, 0.8]),
        ];
        let (decisions, honest) = run_sync(5, 1, 2, 0.1, inputs, ByzantineStrategy::Equivocate, 7);
        assert_eps_agreement(&decisions, 0.1);
        assert_validity(&decisions, &honest);
    }

    #[test]
    fn sync_restricted_crash_fault() {
        let inputs = vec![
            Point::new(vec![0.2]),
            Point::new(vec![0.6]),
            Point::new(vec![0.8]),
        ];
        let (decisions, honest) = run_sync(4, 1, 1, 0.05, inputs, ByzantineStrategy::Crash(2), 9);
        assert_eps_agreement(&decisions, 0.05);
        assert_validity(&decisions, &honest);
    }

    #[test]
    fn async_restricted_scalar_with_anti_convergence() {
        // d = 1, f = 1: n ≥ (1+4)·1+1 = 6.
        let inputs = vec![
            Point::new(vec![0.0]),
            Point::new(vec![0.2]),
            Point::new(vec![0.6]),
            Point::new(vec![0.9]),
            Point::new(vec![1.0]),
        ];
        let (decisions, honest) =
            run_async(6, 1, 1, 0.1, inputs, ByzantineStrategy::AntiConvergence, 11);
        assert_eps_agreement(&decisions, 0.1);
        assert_validity(&decisions, &honest);
    }

    #[test]
    fn async_restricted_silent_fault() {
        let inputs = vec![
            Point::new(vec![0.1]),
            Point::new(vec![0.3]),
            Point::new(vec![0.5]),
            Point::new(vec![0.7]),
            Point::new(vec![0.9]),
        ];
        let (decisions, honest) = run_async(6, 1, 1, 0.1, inputs, ByzantineStrategy::Silent, 13);
        assert_eps_agreement(&decisions, 0.1);
        assert_validity(&decisions, &honest);
    }

    #[test]
    fn histories_record_every_round() {
        let cfg = config(4, 1, 1, 0.1);
        let budget = restricted_round_budget(&cfg);
        let mut p = RestrictedSyncProcess::new(cfg.clone(), 0, Point::new(vec![0.5]));
        // Drive it alone (no messages): every round it keeps its own state.
        for round in 1..=(budget + 1) {
            let _ = p.round(round, &[]);
        }
        assert_eq!(p.history().len(), budget + 1);
        assert!(p.output().is_some());
    }

    #[test]
    fn round_budget_is_positive_and_matches_formula() {
        let cfg = config(6, 1, 1, 0.1);
        let budget = restricted_round_budget(&cfg);
        assert!(budget >= 2);
    }
}
