//! Dense two-phase simplex linear-programming solver.
//!
//! This crate is a self-contained substrate for the Byzantine vector consensus
//! (BVC) reproduction of Vaidya & Garg (PODC 2013).  Section 2.2 of the paper
//! shows how a decision vector inside the safe area `Γ(S)` can be found "using
//! linear programming"; the paper assumes an LP solver exists.  The allowed
//! dependency set for this reproduction contains no LP crate, so this crate
//! implements the classical **two-phase primal simplex method** on a dense
//! tableau, with Bland's anti-cycling rule.
//!
//! The solver is deliberately small and predictable rather than fast: the LPs
//! produced by the consensus geometry are tiny (tens of variables, tens of
//! constraints for the parameter ranges the paper considers), and determinism
//! matters more than speed because all non-faulty processes must select the
//! *same* point of `Γ(S)`.
//!
//! # Example
//!
//! Maximise `3x + 2y` subject to `x + y ≤ 4`, `x ≤ 2`, `x, y ≥ 0`:
//!
//! ```
//! use bvc_lp::{LinearProgram, Objective, Relation, SolveStatus};
//!
//! let mut lp = LinearProgram::new(2, Objective::Maximize);
//! lp.set_objective_coefficient(0, 3.0);
//! lp.set_objective_coefficient(1, 2.0);
//! lp.add_constraint(vec![1.0, 1.0], Relation::LessEq, 4.0);
//! lp.add_constraint(vec![1.0, 0.0], Relation::LessEq, 2.0);
//! let solution = lp.solve();
//! assert_eq!(solution.status, SolveStatus::Optimal);
//! assert!((solution.objective_value - 10.0).abs() < 1e-9);
//! assert!((solution.values[0] - 2.0).abs() < 1e-9);
//! assert!((solution.values[1] - 2.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod problem;
mod simplex;
mod tableau;
mod workspace;

pub use problem::{Constraint, LinearProgram, Objective, Relation};
pub use simplex::{Solution, SolveStatus};
pub use workspace::SimplexWorkspace;

/// Numerical tolerance used throughout the solver for feasibility and
/// optimality tests.
pub const EPSILON: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readme_style_example_runs() {
        let mut lp = LinearProgram::new(2, Objective::Maximize);
        lp.set_objective_coefficient(0, 3.0);
        lp.set_objective_coefficient(1, 2.0);
        lp.add_constraint(vec![1.0, 1.0], Relation::LessEq, 4.0);
        lp.add_constraint(vec![1.0, 0.0], Relation::LessEq, 2.0);
        let solution = lp.solve();
        assert_eq!(solution.status, SolveStatus::Optimal);
        assert!((solution.objective_value - 10.0).abs() < 1e-9);
    }
}
