//! # bvc-chaos — chaos lab and search-based adversary engine
//!
//! The rest of the workspace asks "does the protocol hold on the inputs we
//! thought of?".  This crate asks the opposite question: **can an
//! optimizing adversary find an instance where it doesn't?**  Two engines:
//!
//! * **Search** ([`search`]): a seeded hill-climbing loop with restarts
//!   over a [`ChaosGenome`] — protocol, shape, explicit honest inputs,
//!   Byzantine strategy (including a searchable split-brain receiver
//!   mask), validity knob, per-link latency windows, delivery schedule —
//!   scored by an objective that rewards genuine verdict violations and,
//!   short of one, generic danger heuristics (decision spread vs ε,
//!   rounds-to-decide, operating below the strict bound under a relaxed
//!   validity mode).  Violations are [`shrink`](shrink::shrink)-minimised
//!   and pinned as reproducer files ([`repro`]) that CI replays forever.
//! * **Churn** ([`churn`]): a long-running randomized-but-seeded campaign
//!   across protocols × strategies × shapes × validity modes, plus service
//!   waves that stress the worker pool's panic containment and
//!   backpressure, emitting `bvc-chaos-metrics/v1` JSON and a longitudinal
//!   Markdown dashboard row.
//!
//! Everything is deterministic from a master seed: the search trace, the
//! shrink sequence, the churn session, and every committed reproducer —
//! pinned by the property tests in `tests/shrinker_props.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod genome;
pub mod objective;
pub mod repro;
pub mod search;
pub mod shrink;

pub use churn::{churn, dashboard_header, ChurnConfig, ChurnReport, WaveMetrics};
pub use genome::{ChaosGenome, FaultGene, ValidityGene};
pub use objective::{evaluate, strict_bound, Evaluation, VIOLATION_SCORE};
pub use repro::{known_signatures, replay_dir, spec_signature, write_repro, ReplayResult};
pub use search::{search, Finding, SearchConfig, SearchReport, SearchSpace};
pub use shrink::{shrink, ShrinkResult};
