//! Criterion bench: the two-phase simplex solver on feasibility LPs of the
//! shape the consensus geometry produces (convex-combination membership).

use bvc_lp::{LinearProgram, Objective, Relation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the membership LP "is the centroid of `k` random points in their
/// hull?" in dimension `d`.
fn membership_lp(k: usize, d: usize, seed: u64) -> LinearProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let points: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let centroid: Vec<f64> = (0..d)
        .map(|l| points.iter().map(|p| p[l]).sum::<f64>() / k as f64)
        .collect();
    let mut lp = LinearProgram::new(k, Objective::Minimize);
    lp.add_constraint(vec![1.0; k], Relation::Equal, 1.0);
    for l in 0..d {
        let coeffs: Vec<f64> = points.iter().map(|p| p[l]).collect();
        lp.add_constraint(coeffs, Relation::Equal, centroid[l]);
    }
    lp
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_membership");
    group.sample_size(30);
    for &(k, d) in &[(5usize, 2usize), (10, 3), (20, 4), (40, 6)] {
        let lp = membership_lp(k, d, 42);
        group.bench_with_input(
            BenchmarkId::new("solve", format!("k{k}_d{d}")),
            &lp,
            |b, lp| {
                b.iter(|| {
                    let solution = lp.solve();
                    assert!(solution.is_optimal());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simplex);
criterion_main!(benches);
