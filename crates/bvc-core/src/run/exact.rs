//! Driver for Exact BVC over the synchronous executor (Section 2.2:
//! Agreement, Validity, Termination — Theorems 1 and 3).

use super::{make_forge, BvcSession, DriverOutcome, ProtocolDriver};
use crate::exact::{ByzantineExactProcess, ExactBvcProcess, ExactMsg};
use bvc_geometry::Point;
use bvc_net::{SyncNetwork, SyncProcess};

pub(super) struct ExactDriver;

impl ProtocolDriver for ExactDriver {
    fn execute(&self, session: &BvcSession) -> DriverOutcome {
        let config = session.params();
        let rc = session.config();
        // Step 1 gives all honest processes the same multiset, so the
        // Step-2 decision LP runs once system-wide through the shared cache.
        let gamma_cache = session.gamma_cache().clone();
        let mut processes: Vec<Box<dyn SyncProcess<Msg = ExactMsg, Output = Point>>> = Vec::new();
        for (i, input) in rc.honest_inputs.iter().enumerate() {
            processes.push(Box::new(
                ExactBvcProcess::new(config.clone(), i, input.clone())
                    .with_validity_mode(rc.validity)
                    .with_gamma_cache(gamma_cache.clone()),
            ));
        }
        for b in 0..config.f {
            let me = config.honest_count() + b;
            let forge = make_forge(rc.adversary, config, rc.seed, b);
            processes.push(Box::new(
                ByzantineExactProcess::new(
                    config.clone(),
                    me,
                    Point::uniform(config.d, config.lower_bound),
                    forge,
                )
                .with_gamma_cache(gamma_cache.clone()),
            ));
        }
        let honest = session.honest_indices();
        let outcome = SyncNetwork::new(processes, ExactBvcProcess::total_rounds(config))
            .with_topology(session.topology().as_ref().clone())
            .with_faults(rc.faults.clone(), rc.seed)
            .run(&honest);
        let decisions = session.honest_decisions(&outcome.outputs);
        let terminated = decisions.len() == honest.len();
        DriverOutcome {
            decisions,
            terminated,
            // Exact consensus: agreement means identical decisions (up to
            // LP round-off).
            tolerance: 1e-6,
            rounds: outcome.rounds,
            stats: outcome.stats,
            round_budget: None,
            outputs: Vec::new(),
            sufficiency: None,
        }
    }
}
