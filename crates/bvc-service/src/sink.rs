//! Streaming verdict emission: the sink trait, its two implementations,
//! and the sequence-numbered reorder buffer that keeps a parallel stream
//! byte-deterministic.

use std::collections::BTreeMap;
use std::io::{self, Write};

/// Consumes one verdict line at a time, as instances complete.
///
/// Implementations must be `Send`: the service emits from whichever worker
/// thread completes the next in-order instance.
pub trait VerdictSink: Send {
    /// Emits one verdict line (without the trailing newline).
    fn emit(&mut self, line: &str) -> io::Result<()>;

    /// Called once after the last line; flush buffers here.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Streams verdict lines to any writer, one JSON object per line.
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    writer: W,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer (callers wanting buffering pass a `BufWriter`).
    pub fn new(writer: W) -> Self {
        Self { writer }
    }

    /// Unwraps the writer (e.g. to inspect a `Vec<u8>` in tests).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write + Send> VerdictSink for JsonlSink<W> {
    fn emit(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Collects verdict lines in memory (tests, benches, programmatic use).
#[derive(Debug, Default)]
pub struct MemorySink {
    lines: Vec<String>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The lines emitted so far, in emission order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Consumes the sink, returning its lines.
    pub fn into_lines(self) -> Vec<String> {
        self.lines
    }
}

impl VerdictSink for MemorySink {
    fn emit(&mut self, line: &str) -> io::Result<()> {
        self.lines.push(line.to_string());
        Ok(())
    }
}

/// Restores admission order over out-of-order completions.
///
/// Workers complete instances in scheduling order; the buffer holds each
/// completion under its sequence number and releases the longest ready
/// prefix to the sink.  A `None` entry is a *gap*: the sequence number is
/// consumed without emitting a line (used by campaign streaming, where
/// rejected instances produce no verdict but still occupy a slot).
#[derive(Debug, Default)]
pub struct ReorderBuffer {
    next: u64,
    pending: BTreeMap<u64, Option<String>>,
}

impl ReorderBuffer {
    /// An empty buffer expecting sequence number 0 first.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the completion of `seq` and drains every line that is now
    /// in order into `sink`.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error; the buffer stays consistent (the
    /// failed line is not re-emitted).
    pub fn push(
        &mut self,
        seq: u64,
        line: Option<String>,
        sink: &mut dyn VerdictSink,
    ) -> io::Result<()> {
        self.pending.insert(seq, line);
        while let Some(entry) = self.pending.remove(&self.next) {
            self.next += 1;
            if let Some(line) = entry {
                sink.emit(&line)?;
            }
        }
        Ok(())
    }

    /// `true` when every registered completion has been released.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }

    /// The next sequence number the buffer is waiting for.
    pub fn next_seq(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorder_buffer_restores_admission_order() {
        let mut buffer = ReorderBuffer::new();
        let mut sink = MemorySink::new();
        for seq in [2u64, 0, 3, 1] {
            buffer
                .push(seq, Some(format!("line-{seq}")), &mut sink)
                .unwrap();
        }
        assert_eq!(sink.lines(), ["line-0", "line-1", "line-2", "line-3"]);
        assert!(buffer.is_drained());
        assert_eq!(buffer.next_seq(), 4);
    }

    #[test]
    fn gaps_consume_a_sequence_number_without_emitting() {
        let mut buffer = ReorderBuffer::new();
        let mut sink = MemorySink::new();
        buffer.push(1, Some("b".into()), &mut sink).unwrap();
        buffer.push(0, None, &mut sink).unwrap();
        buffer.push(2, Some("c".into()), &mut sink).unwrap();
        assert_eq!(sink.lines(), ["b", "c"]);
        assert!(buffer.is_drained());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_emit() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit("{\"a\": 1}").unwrap();
        sink.emit("{\"b\": 2}").unwrap();
        sink.finish().unwrap();
        let bytes = sink.into_inner();
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            "{\"a\": 1}\n{\"b\": 2}\n"
        );
    }
}
