//! Criterion bench: cost of the asynchronous approximate algorithm —
//! the Step 2 update rule in isolation (full subsets vs the Appendix F
//! witness optimisation) and a complete small execution.

use bvc_adversary::ByzantineStrategy;
use bvc_bench::honest_workload;
use bvc_core::{build_zi_full, build_zi_witness, BvcSession, ProtocolKind, RunConfig, UpdateRule};
use bvc_geometry::{Point, WorkloadGenerator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn entries(count: usize, d: usize, seed: u64) -> Vec<Point> {
    WorkloadGenerator::new(seed)
        .box_points(count, d, 0.0, 1.0)
        .into_points()
}

fn bench_update_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_step2");
    group.sample_size(10);
    // |B_i| = n entries, quorum n − f: full rule builds C(n, n−f) points,
    // the witness rule at most n.  Parameters respect n ≥ (d+2)f + 1 so that
    // every (n−f)-subset has a non-empty Γ (Lemma 1), exactly as in the
    // protocol.
    for &(n, f, d) in &[(5usize, 1usize, 2usize), (6, 1, 3), (9, 2, 2)] {
        let b_entries = entries(n, d, 3);
        let quorum = n - f;
        group.bench_with_input(
            BenchmarkId::new("full_subsets", format!("n{n}_f{f}_d{d}")),
            &b_entries,
            |bench, b_entries| {
                bench.iter(|| {
                    let zi = build_zi_full(b_entries, quorum, f);
                    assert!(!zi.is_empty());
                })
            },
        );
        // Witness sets: n sets of size quorum (the Appendix F shape).
        let witness_sets: Vec<Vec<Point>> =
            (0..n).map(|k| entries(quorum, d, 100 + k as u64)).collect();
        group.bench_with_input(
            BenchmarkId::new("witness_optimised", format!("n{n}_f{f}_d{d}")),
            &witness_sets,
            |bench, witness_sets| {
                bench.iter(|| {
                    let zi = build_zi_witness(witness_sets, f);
                    assert!(!zi.is_empty());
                })
            },
        );
    }
    group.finish();
}

fn bench_approx_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_bvc_end_to_end");
    group.sample_size(10);
    let (n, f, d) = (4usize, 1usize, 1usize);
    let inputs = honest_workload(8, n - f, d);
    for rule in [UpdateRule::FullSubsets, UpdateRule::WitnessOptimized] {
        group.bench_with_input(
            BenchmarkId::new("rule", format!("{rule:?}")),
            &inputs,
            |b, inputs| {
                b.iter(|| {
                    let run = BvcSession::new(
                        ProtocolKind::Approx,
                        RunConfig::new(n, f, d)
                            .honest_inputs(inputs.clone())
                            .adversary(ByzantineStrategy::Equivocate)
                            .epsilon(0.1)
                            .update_rule(rule)
                            .seed(3),
                    )
                    .expect("bound satisfied")
                    .run();
                    assert!(run.verdict().all_hold());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_update_rules, bench_approx_end_to_end);
criterion_main!(benches);
