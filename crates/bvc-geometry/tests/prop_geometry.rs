//! Property-based tests of the geometric substrate, close to the data
//! structures: hull membership, Γ monotonicity, Tverberg guarantees and
//! workload generators.

use bvc_geometry::{
    find_tverberg_partition, gamma_point, tverberg_threshold, ConvexHull, Point, PointMultiset,
    SafeArea, WorkloadGenerator,
};
use proptest::prelude::*;

fn points(len: usize, d: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        prop::collection::vec(-5.0f64..5.0, d).prop_map(Point::new),
        len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The centroid of a point set is always inside its convex hull.
    #[test]
    fn centroid_is_inside_the_hull(pts in points(5, 2)) {
        let centroid = Point::centroid(&pts);
        let hull = ConvexHull::new(PointMultiset::new(pts));
        prop_assert!(hull.contains(&centroid));
    }

    /// Every generator of a hull is a member of the hull.
    #[test]
    fn generators_are_members(pts in points(4, 3)) {
        let hull = ConvexHull::new(PointMultiset::new(pts.clone()));
        for p in &pts {
            prop_assert!(hull.contains(p));
        }
    }

    /// Γ(Y) with f = 0 coincides with plain hull membership.
    #[test]
    fn gamma_with_zero_faults_is_the_hull(pts in points(4, 2)) {
        let y = PointMultiset::new(pts.clone());
        let hull = ConvexHull::new(y.clone());
        let area = SafeArea::new(y, 0);
        let centroid = Point::centroid(&pts);
        prop_assert_eq!(hull.contains(&centroid), area.contains(&centroid));
    }

    /// Γ is monotone in f: anything inside Γ with a larger f is inside Γ with
    /// a smaller f (removing fewer points only enlarges the hulls).
    #[test]
    fn gamma_is_monotone_in_f(pts in points(7, 2)) {
        let y = PointMultiset::new(pts);
        if let Some(p) = gamma_point(&y, 2) {
            let weaker = SafeArea::new(y, 1);
            prop_assert!(weaker.contains(&p));
        }
    }

    /// Lemma 1 / Tverberg: at the threshold size a partition into f + 1
    /// intersecting parts exists and its common point lies in Γ.
    #[test]
    fn tverberg_partition_exists_at_threshold(pts in points(tverberg_threshold(2, 1), 2)) {
        let y = PointMultiset::new(pts);
        let partition = find_tverberg_partition(&y, 2).expect("Radon/Tverberg at threshold");
        let area = SafeArea::new(y, 1);
        prop_assert!(area.contains(&partition.point));
    }

    /// Probability-vector workloads always produce probability vectors.
    #[test]
    fn probability_workload_invariant(seed in 0u64..10_000, dim in 2usize..6) {
        let ms = WorkloadGenerator::new(seed).probability_vectors(4, dim);
        for p in ms.iter() {
            let sum: f64 = p.coords().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(p.coords().iter().all(|&c| c >= 0.0));
        }
    }

    /// L∞ distance is a metric bounded by the L2 distance.
    #[test]
    fn linf_is_bounded_by_l2(a in points(1, 3), b in points(1, 3)) {
        let (a, b) = (&a[0], &b[0]);
        prop_assert!(a.linf_distance(b) <= a.distance(b) + 1e-12);
        prop_assert!((a.linf_distance(b) - b.linf_distance(a)).abs() < 1e-12);
    }
}
