//! Running the asynchronous approximate BVC protocol on real OS threads.
//!
//! The experiments and tests mostly use the deterministic event simulator,
//! but the protocol implementations are plain state machines and run
//! unchanged on the thread-per-process runtime backed by `crossbeam`
//! channels.  This example launches six threads (one Byzantine) and lets the
//! operating-system scheduler provide the asynchrony.
//!
//! Run with:
//!
//! ```text
//! cargo run --example threaded_runtime
//! ```

use bvc::adversary::{ByzantineStrategy, PointForge};
use bvc::core::{
    AadMsg, ApproxBvcProcess, ApproxOutput, BvcConfig, ByzantineApproxProcess, UpdateRule,
};
use bvc::geometry::{ConvexHull, Point, PointMultiset};
use bvc::net::{run_threaded, AsyncProcess};
use std::time::Duration;

fn main() {
    // d = 2, f = 1 ⇒ n ≥ (d+2)f+1 = 5; use 6.
    let config = BvcConfig::new(6, 1, 2)
        .expect("valid parameters")
        .with_epsilon(0.05)
        .expect("valid epsilon")
        .with_value_bounds(0.0, 1.0)
        .expect("valid bounds");

    let honest_inputs = vec![
        Point::new(vec![0.1, 0.1]),
        Point::new(vec![0.9, 0.1]),
        Point::new(vec![0.5, 0.9]),
        Point::new(vec![0.3, 0.5]),
        Point::new(vec![0.7, 0.5]),
    ];

    println!("Approximate BVC on the thread-per-process runtime (n = 6, f = 1, d = 2)");
    println!("epsilon = {}", config.epsilon);

    let mut processes: Vec<Box<dyn AsyncProcess<Msg = AadMsg, Output = ApproxOutput> + Send>> =
        Vec::new();
    for (i, input) in honest_inputs.iter().enumerate() {
        processes.push(Box::new(ApproxBvcProcess::new(
            config.clone(),
            i,
            input.clone(),
            UpdateRule::WitnessOptimized,
        )));
    }
    let mut forge = PointForge::new(ByzantineStrategy::Equivocate, 2, 0.0, 1.0, 7);
    forge.set_honest_value(Point::new(vec![0.5, 0.5]));
    processes.push(Box::new(ByzantineApproxProcess::new(
        config.clone(),
        5,
        Point::new(vec![0.5, 0.5]),
        UpdateRule::WitnessOptimized,
        forge,
    )));

    let outcome = run_threaded(processes, &[0, 1, 2, 3, 4], Duration::from_secs(60));
    assert!(
        outcome.completed,
        "honest processes must decide within the deadline"
    );

    let decisions: Vec<Point> = (0..5)
        .map(|i| {
            outcome.outputs[i]
                .as_ref()
                .expect("decided")
                .decision
                .clone()
        })
        .collect();
    println!("\ndecisions:");
    for (i, d) in decisions.iter().enumerate() {
        println!("  thread {} -> {d}", i + 1);
    }

    let mut max_spread: f64 = 0.0;
    for i in 0..decisions.len() {
        for j in (i + 1)..decisions.len() {
            max_spread = max_spread.max(decisions[i].linf_distance(&decisions[j]));
        }
    }
    let hull = ConvexHull::new(PointMultiset::new(honest_inputs));
    let valid = decisions.iter().all(|d| hull.contains(d));
    println!(
        "\nmax pairwise spread: {max_spread:.5} (epsilon = {})",
        config.epsilon
    );
    println!("validity: {valid}");
    println!("messages delivered: {}", outcome.stats.messages_delivered);
    assert!(max_spread <= config.epsilon && valid);
    println!("\nSame protocol, real threads, same guarantees.");
}
