//! d-dimensional convex geometry for Byzantine vector consensus.
//!
//! This crate provides the geometric machinery that the algorithms of
//! *"Byzantine Vector Consensus in Complete Graphs"* (Vaidya & Garg, PODC
//! 2013) are built on:
//!
//! * [`Point`] / [`PointMultiset`] — points of `R^d` and multisets of them
//!   (the paper's inputs and process states).
//! * [`ConvexHull`] — implicit hulls with LP-based membership tests and a
//!   common-point query across several hulls.
//! * [`SafeArea`] and the `gamma_*` helpers — the operator
//!   `Γ(Y) = ∩_{T ⊆ Y, |T| = |Y| − f} H(T)` of equation (1), the heart of both
//!   the exact and approximate algorithms.
//! * [`ValidityPredicate`] and the `relaxed_*` helpers — the relaxed
//!   validity conditions of Xiang & Vaidya (arXiv:1601.08067): membership in
//!   the `(1+α)`-dilated honest hull, or of every `k`-coordinate projection
//!   in the projected hull, plus the matching relaxed safe-area queries.
//! * [`tverberg`] — Tverberg partitions and points (Theorem 2, Figure 1).
//! * [`WorkloadGenerator`] — reproducible random input workloads
//!   (probability vectors, robot positions, box-bounded inputs).
//!
//! # Example
//!
//! Compute a safe-area point of five planar inputs tolerating one fault:
//!
//! ```
//! use bvc_geometry::{gamma_point, Point, PointMultiset};
//!
//! let inputs = PointMultiset::new(vec![
//!     Point::new(vec![0.0, 0.0]),
//!     Point::new(vec![4.0, 0.0]),
//!     Point::new(vec![0.0, 4.0]),
//!     Point::new(vec![4.0, 4.0]),
//!     Point::new(vec![2.0, 2.0]),
//! ]);
//! let decision = gamma_point(&inputs, 1).expect("|Y| >= (d+1)f+1, so Γ is non-empty");
//! assert_eq!(decision.dim(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod combinatorics;
pub mod gamma;
pub mod hull;
pub mod multiset;
pub mod point;
pub mod pool;
pub mod relaxed;
pub mod tverberg;
pub mod workload;

pub use cache::{GammaCache, GammaCounters, SharedGammaCache};
pub use gamma::{
    common_point_of_subsets, gamma_contains, gamma_is_empty, gamma_point, gamma_point_attributed,
    gamma_subset_indices, leave_one_out_intersection, lp_size, GammaAttribution, SafeArea,
};
pub use hull::ConvexHull;
pub use multiset::PointMultiset;
pub use point::{Point, DEFAULT_TOLERANCE};
pub use pool::{gamma_workers, set_gamma_workers, HEAVY_SUBSET_THRESHOLD};
pub use relaxed::{
    decision_point, dilate_about_centroid, k_relaxed_point, relaxed_gamma_contains,
    relaxed_gamma_point, ValidityPredicate,
};
pub use tverberg::{
    common_point_of_partition, find_radon_partition, find_tverberg_partition, tverberg_threshold,
    TverbergPartition,
};
pub use workload::WorkloadGenerator;
