//! Byzantine fault strategies.
//!
//! The paper's fault model is the strongest one: up to `f` processes "may
//! behave arbitrarily" (Section 1, citing Lamport–Shostak–Pease).  Arbitrary
//! behaviour cannot be enumerated, so this crate provides a library of
//! *representative attack strategies* that stress the specific properties the
//! algorithms must defend:
//!
//! * attacks on **validity** — report points far outside the honest hull and
//!   try to drag the decision out of it;
//! * attacks on **agreement / ε-agreement** — tell different processes
//!   different things (equivocation), or push opposite extremes to different
//!   receivers to keep the honest states spread apart;
//! * attacks on **termination / liveness** — crash, stay silent, or stop
//!   participating halfway through.
//!
//! [`ByzantineStrategy`] names the attack; [`PointForge`] turns a strategy
//! into concrete forged points, deterministically from a seed, so that every
//! experiment and test is reproducible.

use bvc_geometry::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named Byzantine attack strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ByzantineStrategy {
    /// Participate correctly for a while, then stop sending anything
    /// (crash-stop).  The embedded value is the last round in which the
    /// process participates; `0` means it never sends at all.
    Crash(usize),
    /// Never send any message (equivalent to `Crash(0)`, provided separately
    /// because it is the adversary used in several necessity arguments).
    Silent,
    /// Always report one fixed point far outside the honest inputs' bounding
    /// box (a validity attack).
    FixedOutlier,
    /// Report uniformly random points from an inflated box (a fuzzing-style
    /// attack on both validity and convergence).
    RandomNoise,
    /// Report different values to different receivers (equivocation), drawn
    /// at random per receiver.
    Equivocate,
    /// Report opposite extreme corners of the value box to different
    /// receivers, alternating by receiver parity — the strongest simple
    /// attack against the contraction argument of Theorem 5 (it maximises the
    /// spread the adversary can induce in honest states).
    AntiConvergence,
    /// Report opposite extreme corners of the value box according to an
    /// arbitrary receiver partition: receivers whose index bit is set in the
    /// mask get the `hi` corner, the rest get `lo` (indices ≥ 64 wrap).
    /// Generalises [`AntiConvergence`](Self::AntiConvergence) (whose parity
    /// split is mask `0xAAAA…`) into a searchable equivocation-target knob:
    /// an optimizing adversary can mutate the mask to find the worst split.
    SplitBrain(u64),
    /// Follow the protocol exactly (a "Byzantine" process that happens to
    /// behave; useful as a control in experiments).
    Benign,
}

impl ByzantineStrategy {
    /// All strategies that actively forge values (used by experiment sweeps).
    pub fn active_attacks() -> Vec<ByzantineStrategy> {
        vec![
            ByzantineStrategy::FixedOutlier,
            ByzantineStrategy::RandomNoise,
            ByzantineStrategy::Equivocate,
            ByzantineStrategy::AntiConvergence,
        ]
    }

    /// All strategies, including the passive ones.
    pub fn all() -> Vec<ByzantineStrategy> {
        let mut v = Self::active_attacks();
        v.push(ByzantineStrategy::Crash(1));
        v.push(ByzantineStrategy::Silent);
        v.push(ByzantineStrategy::Benign);
        v
    }

    /// A short stable name for tables and benchmark ids.
    pub fn name(&self) -> &'static str {
        match self {
            ByzantineStrategy::Crash(_) => "crash",
            ByzantineStrategy::Silent => "silent",
            ByzantineStrategy::FixedOutlier => "fixed-outlier",
            ByzantineStrategy::RandomNoise => "random-noise",
            ByzantineStrategy::Equivocate => "equivocate",
            ByzantineStrategy::AntiConvergence => "anti-convergence",
            ByzantineStrategy::SplitBrain(_) => "split-brain",
            ByzantineStrategy::Benign => "benign",
        }
    }

    /// Whether a process following this strategy sends anything at all in the
    /// given round (1-based).
    pub fn participates_in_round(&self, round: usize) -> bool {
        match self {
            ByzantineStrategy::Silent => false,
            ByzantineStrategy::Crash(last) => round <= *last,
            _ => true,
        }
    }

    /// Whether the strategy ever sends different payloads to different
    /// receivers in the same round.
    pub fn equivocates(&self) -> bool {
        matches!(
            self,
            ByzantineStrategy::Equivocate
                | ByzantineStrategy::AntiConvergence
                | ByzantineStrategy::SplitBrain(_)
        )
    }
}

/// Deterministic factory of forged points for a Byzantine process.
///
/// The forge knows the value bounds `[lo, hi]` the honest inputs live in
/// (the paper's `ν` and `U`), so outlier attacks can place points well outside
/// the honest hull and anti-convergence attacks can hit the box corners.
#[derive(Debug, Clone)]
pub struct PointForge {
    strategy: ByzantineStrategy,
    dim: usize,
    lo: f64,
    hi: f64,
    rng: StdRng,
    /// The honest value this Byzantine process would have used, if any (used
    /// by the `Benign` strategy).
    honest_value: Option<Point>,
}

impl PointForge {
    /// Creates a forge for one Byzantine process.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `lo > hi`.
    pub fn new(strategy: ByzantineStrategy, dim: usize, lo: f64, hi: f64, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(lo <= hi, "lo must not exceed hi");
        Self {
            strategy,
            dim,
            lo,
            hi,
            rng: StdRng::seed_from_u64(seed),
            honest_value: None,
        }
    }

    /// The strategy this forge implements.
    pub fn strategy(&self) -> ByzantineStrategy {
        self.strategy
    }

    /// Sets the honest value the process would have reported (used by
    /// [`ByzantineStrategy::Benign`], and as a fallback).
    pub fn set_honest_value(&mut self, value: Point) {
        assert_eq!(value.dim(), self.dim, "honest value dimension mismatch");
        self.honest_value = Some(value);
    }

    /// Returns the point this process reports to receiver `to` in round
    /// `round`, or `None` if the strategy sends nothing in this round.
    pub fn forge(&mut self, round: usize, to: usize) -> Option<Point> {
        if !self.strategy.participates_in_round(round) {
            return None;
        }
        let span = (self.hi - self.lo).max(1.0);
        let value = match self.strategy {
            ByzantineStrategy::Silent | ByzantineStrategy::Crash(_) | ByzantineStrategy::Benign => {
                self.honest_value
                    .clone()
                    .unwrap_or_else(|| Point::uniform(self.dim, self.lo))
            }
            ByzantineStrategy::FixedOutlier => {
                // A fixed point far above the honest box.
                Point::uniform(self.dim, self.hi + 10.0 * span)
            }
            ByzantineStrategy::RandomNoise => {
                let lo = self.lo - 5.0 * span;
                let hi = self.hi + 5.0 * span;
                Point::new((0..self.dim).map(|_| self.rng.gen_range(lo..=hi)).collect())
            }
            ByzantineStrategy::Equivocate => {
                // A different random in-box value per (round, receiver): the
                // RNG stream plus the receiver index sets them apart.
                let jitter = (to as f64 + 1.0) / 1000.0;
                Point::new(
                    (0..self.dim)
                        .map(|_| self.rng.gen_range(self.lo..=self.hi) + jitter)
                        .collect(),
                )
            }
            ByzantineStrategy::AntiConvergence => {
                // Opposite corners of the box by receiver parity.
                if to.is_multiple_of(2) {
                    Point::uniform(self.dim, self.lo)
                } else {
                    Point::uniform(self.dim, self.hi)
                }
            }
            ByzantineStrategy::SplitBrain(mask) => {
                // Opposite corners by the mask's receiver partition.
                if (mask >> (to % 64)) & 1 == 1 {
                    Point::uniform(self.dim, self.hi)
                } else {
                    Point::uniform(self.dim, self.lo)
                }
            }
        };
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct_enough() {
        let names: Vec<&str> = ByzantineStrategy::all().iter().map(|s| s.name()).collect();
        assert!(names.contains(&"equivocate"));
        assert!(names.contains(&"fixed-outlier"));
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn participation_rules() {
        assert!(!ByzantineStrategy::Silent.participates_in_round(1));
        assert!(ByzantineStrategy::Crash(2).participates_in_round(2));
        assert!(!ByzantineStrategy::Crash(2).participates_in_round(3));
        assert!(ByzantineStrategy::FixedOutlier.participates_in_round(100));
    }

    #[test]
    fn equivocation_flag() {
        assert!(ByzantineStrategy::Equivocate.equivocates());
        assert!(ByzantineStrategy::AntiConvergence.equivocates());
        assert!(!ByzantineStrategy::FixedOutlier.equivocates());
    }

    #[test]
    fn silent_forge_returns_none() {
        let mut forge = PointForge::new(ByzantineStrategy::Silent, 2, 0.0, 1.0, 1);
        assert!(forge.forge(1, 0).is_none());
    }

    #[test]
    fn crash_forge_stops_after_configured_round() {
        let mut forge = PointForge::new(ByzantineStrategy::Crash(2), 2, 0.0, 1.0, 1);
        forge.set_honest_value(Point::new(vec![0.5, 0.5]));
        assert!(forge.forge(1, 0).is_some());
        assert!(forge.forge(2, 0).is_some());
        assert!(forge.forge(3, 0).is_none());
    }

    #[test]
    fn fixed_outlier_is_far_outside_the_box() {
        let mut forge = PointForge::new(ByzantineStrategy::FixedOutlier, 3, 0.0, 1.0, 7);
        let p = forge.forge(1, 2).unwrap();
        assert!(p.coords().iter().all(|&c| c > 5.0));
    }

    #[test]
    fn anti_convergence_hits_opposite_corners() {
        let mut forge = PointForge::new(ByzantineStrategy::AntiConvergence, 2, -1.0, 1.0, 7);
        let even = forge.forge(1, 0).unwrap();
        let odd = forge.forge(1, 1).unwrap();
        assert_eq!(even.coords(), &[-1.0, -1.0]);
        assert_eq!(odd.coords(), &[1.0, 1.0]);
    }

    #[test]
    fn split_brain_partitions_receivers_by_mask() {
        // Mask 0b0110: receivers 1 and 2 get the hi corner, 0 and 3 the lo.
        let mut forge = PointForge::new(ByzantineStrategy::SplitBrain(0b0110), 2, 0.0, 1.0, 7);
        assert_eq!(forge.forge(1, 0).unwrap().coords(), &[0.0, 0.0]);
        assert_eq!(forge.forge(1, 1).unwrap().coords(), &[1.0, 1.0]);
        assert_eq!(forge.forge(1, 2).unwrap().coords(), &[1.0, 1.0]);
        assert_eq!(forge.forge(1, 3).unwrap().coords(), &[0.0, 0.0]);
        assert!(ByzantineStrategy::SplitBrain(0b0110).equivocates());
    }

    #[test]
    fn equivocate_differs_per_receiver() {
        let mut forge = PointForge::new(ByzantineStrategy::Equivocate, 2, 0.0, 1.0, 11);
        let a = forge.forge(1, 0).unwrap();
        let b = forge.forge(1, 1).unwrap();
        assert!(!a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn benign_reports_the_honest_value() {
        let mut forge = PointForge::new(ByzantineStrategy::Benign, 2, 0.0, 1.0, 3);
        forge.set_honest_value(Point::new(vec![0.25, 0.75]));
        let p = forge.forge(4, 1).unwrap();
        assert!(p.approx_eq(&Point::new(vec![0.25, 0.75]), 1e-12));
    }

    #[test]
    fn forges_with_equal_seeds_are_reproducible() {
        let mut a = PointForge::new(ByzantineStrategy::RandomNoise, 3, 0.0, 1.0, 99);
        let mut b = PointForge::new(ByzantineStrategy::RandomNoise, 3, 0.0, 1.0, 99);
        for round in 1..5 {
            assert_eq!(a.forge(round, 0), b.forge(round, 0));
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn honest_value_dimension_checked() {
        let mut forge = PointForge::new(ByzantineStrategy::Benign, 2, 0.0, 1.0, 3);
        forge.set_honest_value(Point::new(vec![0.1]));
    }
}
