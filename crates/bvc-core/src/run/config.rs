//! The protocol-independent run configuration and its single validation
//! point.
//!
//! [`RunConfig`] carries every knob a BVC execution can take — shape
//! (`n`/`f`/`d`), honest inputs, adversary, seed, ε, value bounds, the
//! asynchronous scheduling knobs, injected faults, topology, validity mode
//! and an optional shared Γ cache.  It is deliberately **protocol-agnostic**:
//! the same config can be dispatched to any [`ProtocolKind`] through
//! [`BvcSession`](super::BvcSession), and everything protocol-specific
//! (admission bounds, which knobs the driver actually reads) is decided at
//! validation time, in exactly one place: [`RunConfig::validate`].

use crate::approx::UpdateRule;
use crate::config::{BvcConfig, BvcError, Setting};
use crate::validity::{require_with_mode, ValidityMode};
use bvc_adversary::ByzantineStrategy;
use bvc_geometry::{Point, SharedGammaCache};
use bvc_net::{DeliveryPolicy, FaultPlan};
use bvc_topology::Topology;

/// The seven protocols a [`BvcSession`](super::BvcSession) can dispatch to:
/// the source paper's four complete-graph algorithms, the iterative
/// incomplete-graph protocol (Vaidya 2013), and exact consensus on arbitrary
/// directed graphs under the point-to-point (arXiv:1208.5075) and
/// local-broadcast (arXiv:1911.07298) delivery models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Exact BVC, synchronous (Theorems 1/3).
    Exact,
    /// Approximate BVC, asynchronous with the AAD exchange (Theorems 4/5).
    Approx,
    /// Restricted-round approximate BVC, synchronous (Theorem 6).
    RestrictedSync,
    /// Restricted-round approximate BVC, asynchronous (Theorem 6).
    RestrictedAsync,
    /// Iterative BVC over a declared topology (incomplete graphs,
    /// synchronous; solvability governed by the topology sufficiency check
    /// instead of a closed-form bound).
    Iterative,
    /// Exact BVC on an arbitrary directed graph, point-to-point delivery
    /// (synchronous; solvability governed by
    /// `Topology::directed_exact_sufficiency`, recorded in the report).
    DirectedExact,
    /// Exact BVC on an arbitrary directed graph under the local-broadcast
    /// delivery model (synchronous; solvability governed by
    /// `Topology::directed_exact_lb_sufficiency`).
    DirectedExactLb,
}

impl ProtocolKind {
    /// All seven protocols, in declaration order (handy for table-driven
    /// tests and sweeps).
    pub const ALL: [ProtocolKind; 7] = [
        ProtocolKind::Exact,
        ProtocolKind::Approx,
        ProtocolKind::RestrictedSync,
        ProtocolKind::RestrictedAsync,
        ProtocolKind::Iterative,
        ProtocolKind::DirectedExact,
        ProtocolKind::DirectedExactLb,
    ];

    /// The stable name (`exact`, `approx`, `restricted-sync`,
    /// `restricted-async`, `iterative`, `directed-exact`,
    /// `directed-exact-lb`), matching the scenario schema.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Exact => "exact",
            ProtocolKind::Approx => "approx",
            ProtocolKind::RestrictedSync => "restricted-sync",
            ProtocolKind::RestrictedAsync => "restricted-async",
            ProtocolKind::Iterative => "iterative",
            ProtocolKind::DirectedExact => "directed-exact",
            ProtocolKind::DirectedExactLb => "directed-exact-lb",
        }
    }

    /// Whether the protocol runs on the asynchronous executor (and therefore
    /// reads the delivery policy, the step cap, and tick-based fault
    /// windows).
    pub fn is_async(self) -> bool {
        matches!(self, ProtocolKind::Approx | ProtocolKind::RestrictedAsync)
    }

    /// Whether the protocol is judged against ε-agreement (every protocol
    /// except the exact-consensus family, whose agreement is equality up to
    /// LP round-off).
    pub fn uses_epsilon(self) -> bool {
        !matches!(
            self,
            ProtocolKind::Exact | ProtocolKind::DirectedExact | ProtocolKind::DirectedExactLb
        )
    }

    /// The paper setting whose resilience bound admits this protocol —
    /// `None` for the iterative and directed protocols, which have no
    /// closed-form bound (their resource signal is the topology sufficiency
    /// check, recorded in the report; the directed kinds additionally
    /// enforce their model's `n` floor at validation).
    pub fn setting(self) -> Option<Setting> {
        match self {
            ProtocolKind::Exact => Some(Setting::ExactSync),
            ProtocolKind::Approx => Some(Setting::ApproxAsync),
            ProtocolKind::RestrictedSync => Some(Setting::RestrictedSync),
            ProtocolKind::RestrictedAsync => Some(Setting::RestrictedAsync),
            ProtocolKind::Iterative => None,
            ProtocolKind::DirectedExact | ProtocolKind::DirectedExactLb => None,
        }
    }

    /// The directed models' process floor — the part of the graph condition
    /// that does not depend on the graph (arXiv:1208.5075 needs `n ≥ 3f+1`
    /// point-to-point; arXiv:1911.07298 weakens it to `n ≥ 2f+1` under
    /// local broadcast; the `(d+1)f+1` decision-step floor is
    /// model-independent).  `None` for the non-directed protocols, whose
    /// admission goes through [`Setting`] bounds instead.
    fn directed_floor(self, d: usize, f: usize) -> Option<usize> {
        let equivocation_floor = match self {
            ProtocolKind::DirectedExact => 3 * f + 1,
            ProtocolKind::DirectedExactLb => 2 * f + 1,
            _ => return None,
        };
        Some(equivocation_floor.max((d + 1) * f + 1))
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One declarative description of a BVC execution, shared by all five
/// protocol drivers.
///
/// Build it with [`RunConfig::new`] and the chainable setters (the method
/// names match the fields, and both match the setters of the pre-session
/// per-protocol builders, so migration is mechanical), then hand it to
/// [`BvcSession::new`](super::BvcSession::new), which validates it **once**
/// — structure, admission bound, input shape, topology size — and runs it.
/// Fields are public: the config is plain data, and nothing trusts it until
/// it has passed [`validate`](Self::validate).
///
/// Knobs a protocol does not read are ignored by its driver (e.g. the
/// delivery policy for the synchronous protocols), exactly as the scenario
/// schema always treated them.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Total number of processes `n`.
    pub n: usize,
    /// Number of Byzantine processes `f` (the last `f` indices).  The four
    /// complete-graph protocols require `f ≥ 1`; the iterative protocol also
    /// accepts the fault-free `f = 0` baseline.
    pub f: usize,
    /// Dimension `d` of input and decision vectors.
    pub d: usize,
    /// Honest inputs, one per non-faulty process (`n − f` of them).
    pub honest_inputs: Vec<Point>,
    /// The Byzantine strategy of the `f` faulty processes.
    pub adversary: ByzantineStrategy,
    /// Seed of all randomness in the execution (adversary and scheduler).
    pub seed: u64,
    /// The ε of ε-agreement (ignored by exact consensus).
    pub epsilon: f64,
    /// A-priori bounds on the input coordinates (Section 3.2).
    pub value_bounds: (f64, f64),
    /// Which Step-2 subset rule the approximate protocol uses.
    pub update_rule: UpdateRule,
    /// The asynchronous scheduling adversary (asynchronous protocols only).
    pub delivery_policy: DeliveryPolicy,
    /// Cap on scheduler delivery steps (asynchronous protocols only).
    pub max_steps: usize,
    /// Injected network faults (windows in rounds for synchronous
    /// protocols, scheduler ticks for asynchronous ones).
    pub faults: FaultPlan,
    /// Restricts delivery to a declared topology; `None` means the paper's
    /// complete graph.
    pub topology: Option<Topology>,
    /// The validity condition the run is scored against, which also selects
    /// the (possibly lowered) admission bound and — for the exact protocol —
    /// relaxes the Step-2 decision rule itself.
    pub validity: ValidityMode,
    /// A Γ cache to share across runs; `None` gives every run a fresh one
    /// (the pre-session behaviour: one cache per run, shared by all of the
    /// run's processes).
    pub gamma_cache: Option<SharedGammaCache>,
    /// Switches the run's Γ cache into its incremental cross-round mode:
    /// engine scans remember refuter-ordinal hints per query shape so round
    /// `t` reuses round `t−1`'s subset-hull work.  Cost-only (answers are
    /// bit-identical either way); off by default.
    pub incremental_gamma: bool,
}

impl RunConfig {
    /// A configuration with `n` processes, `f` Byzantine, inputs of
    /// dimension `d`, and the historical defaults everywhere else
    /// (equivocating adversary, seed 0, ε = 0.01, value bounds `[0, 1]`,
    /// witness-optimized update rule, random-fair delivery, 5,000,000 step
    /// cap, no faults, complete graph, strict validity, per-run Γ cache).
    pub fn new(n: usize, f: usize, d: usize) -> Self {
        Self {
            n,
            f,
            d,
            honest_inputs: Vec::new(),
            adversary: ByzantineStrategy::Equivocate,
            seed: 0,
            epsilon: 0.01,
            value_bounds: (0.0, 1.0),
            update_rule: UpdateRule::WitnessOptimized,
            delivery_policy: DeliveryPolicy::RandomFair,
            max_steps: 5_000_000,
            faults: FaultPlan::new(),
            topology: None,
            validity: ValidityMode::Strict,
            gamma_cache: None,
            incremental_gamma: false,
        }
    }

    /// Honest inputs, one per non-faulty process (`n − f` of them).
    pub fn honest_inputs(mut self, inputs: Vec<Point>) -> Self {
        self.honest_inputs = inputs;
        self
    }

    /// The Byzantine strategy of the last `f` processes.
    pub fn adversary(mut self, strategy: ByzantineStrategy) -> Self {
        self.adversary = strategy;
        self
    }

    /// Seed of all randomness in the execution.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The ε of ε-agreement (defaults to `0.01`; ignored by exact
    /// consensus).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// A-priori bounds on the input coordinates (defaults to `[0, 1]`).
    pub fn value_bounds(mut self, lower: f64, upper: f64) -> Self {
        self.value_bounds = (lower, upper);
        self
    }

    /// Which Step-2 subset rule the approximate protocol uses (defaults to
    /// the Appendix F witness optimisation).
    pub fn update_rule(mut self, rule: UpdateRule) -> Self {
        self.update_rule = rule;
        self
    }

    /// The asynchronous scheduling adversary (defaults to
    /// [`DeliveryPolicy::RandomFair`]).
    pub fn delivery_policy(mut self, policy: DeliveryPolicy) -> Self {
        self.delivery_policy = policy;
        self
    }

    /// Cap on scheduler delivery steps (defaults to 5,000,000).
    pub fn max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Injected network faults; windows are measured in rounds for the
    /// synchronous protocols and scheduler ticks for the asynchronous ones.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Restricts delivery to a declared topology (the complete graph is the
    /// default).  The complete-graph protocols treat a failed verdict on an
    /// incomplete topology as expected data, not a bug.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// The validity condition the run is scored against (strict hull
    /// membership by default).  A relaxed mode lowers the admission bound to
    /// the relaxed requirement of arXiv:1601.08067 and — for the exact
    /// protocol — relaxes the Step-2 decision rule itself.
    pub fn validity_mode(mut self, mode: ValidityMode) -> Self {
        self.validity = mode;
        self
    }

    /// Shares a Γ cache across runs (defaults to one fresh cache per run).
    pub fn gamma_cache(mut self, cache: SharedGammaCache) -> Self {
        self.gamma_cache = Some(cache);
        self
    }

    /// Enables the Γ cache's incremental cross-round mode (off by default):
    /// refuter-ordinal hints carry subset-hull work from round `t−1` into
    /// round `t`.  Purely a cost knob — every Γ answer is bit-identical with
    /// or without it.
    pub fn incremental_gamma(mut self, enabled: bool) -> Self {
        self.incremental_gamma = enabled;
        self
    }

    /// Derives the config of one instance of a multi-instance stream: this
    /// config as the template, with the per-instance knobs replaced from
    /// `overrides`.  Everything a service keeps fixed across the stream —
    /// shape, topology, faults, delivery, value bounds, shared Γ cache —
    /// is inherited untouched.
    pub fn for_instance(&self, overrides: &InstanceOverrides) -> RunConfig {
        let mut config = self.clone();
        config.seed = overrides.seed;
        if let Some(inputs) = &overrides.honest_inputs {
            config.honest_inputs = inputs.clone();
        }
        if let Some(strategy) = overrides.adversary {
            config.adversary = strategy;
        }
        if let Some(mode) = overrides.validity {
            config.validity = mode;
        }
        config
    }

    /// The single admission/validation point every protocol goes through —
    /// there is deliberately no other place that checks a resource bound.
    ///
    /// In order: structural validation (`n`, `d`, `f < n`, value bounds,
    /// and ε for the protocols judged against it — exact consensus ignores
    /// the knob), the mode-aware resilience bound for the protocol's
    /// [`Setting`] (the iterative protocol has none — its solvability signal
    /// is the recorded topology sufficiency check), the `f ≥ 1` requirement
    /// of the four complete-graph protocols, the input shape, and the
    /// topology size.
    ///
    /// # Errors
    ///
    /// Returns [`BvcError::InsufficientProcesses`] when `n` is below the
    /// protocol's (possibly mode-lowered) bound, and
    /// [`BvcError::InvalidParameter`] for every structural violation.
    pub fn validate(&self, protocol: ProtocolKind) -> Result<(), BvcError> {
        self.prepare(protocol).map(|_| ())
    }

    /// [`validate`](Self::validate), returning the validated [`BvcConfig`]
    /// and the resolved topology for the session to run on.
    pub(crate) fn prepare(
        &self,
        protocol: ProtocolKind,
    ) -> Result<(BvcConfig, Topology), BvcError> {
        let result = self.prepare_inner(protocol);
        bvc_trace::emit(|| bvc_trace::TraceEvent::Admission {
            ok: result.is_ok(),
            detail: match &result {
                Ok(_) => format!("{protocol} n={} f={} d={}", self.n, self.f, self.d),
                Err(e) => e.to_string(),
            },
        });
        result
    }

    fn prepare_inner(&self, protocol: ProtocolKind) -> Result<(BvcConfig, Topology), BvcError> {
        let mut core = BvcConfig::new(self.n, self.f, self.d)?
            .with_value_bounds(self.value_bounds.0, self.value_bounds.1)?;
        // ε is only validated for protocols judged against it — exact
        // consensus ignores the knob entirely (the field docs promise so),
        // matching the pre-session builder, which had no ε setter.
        if protocol.uses_epsilon() {
            core = core.with_epsilon(self.epsilon)?;
        }
        if let Some(setting) = protocol.setting() {
            require_with_mode(setting, &self.validity, core.n, core.d, core.f)?;
            if core.f == 0 {
                return Err(BvcError::InvalidParameter(
                    "the runners model at least one Byzantine process; use f >= 1".into(),
                ));
            }
        }
        // The directed models' graph-independent floor is enforced here — the
        // single admission point — while the graph-dependent part of the
        // condition is recorded by the driver as the run's sufficiency
        // verdict (a violating *graph* is expected data, a too-small `n`
        // is a configuration error on every graph).
        if let Some(floor) = protocol.directed_floor(core.d, core.f) {
            if core.n < floor {
                return Err(BvcError::InvalidParameter(format!(
                    "{protocol} requires n >= {floor} (model floor at f = {}, d = {}), got n = {}",
                    core.f, core.d, core.n
                )));
            }
        }
        if self.honest_inputs.len() != core.honest_count() {
            return Err(BvcError::InvalidParameter(format!(
                "expected {} honest inputs (n − f), got {}",
                core.honest_count(),
                self.honest_inputs.len()
            )));
        }
        if let Some(bad) = self.honest_inputs.iter().find(|p| p.dim() != core.d) {
            return Err(BvcError::InvalidParameter(format!(
                "input {bad} has dimension {}, expected {}",
                bad.dim(),
                core.d
            )));
        }
        let topology = match &self.topology {
            None => Topology::complete(core.n),
            Some(t) if t.len() == core.n => t.clone(),
            Some(t) => {
                return Err(BvcError::InvalidParameter(format!(
                    "topology covers {} processes, run has n = {}",
                    t.len(),
                    core.n
                )))
            }
        };
        Ok((core, topology))
    }
}

/// The per-instance knobs of a multi-instance stream (state-machine-
/// replication style): each consensus instance decides fresh inputs under a
/// fresh seed — and may vary the adversary and the validity condition —
/// while the [`RunConfig`] template fixes everything else for the whole
/// stream.  Resolve one with [`RunConfig::for_instance`].
#[derive(Debug, Clone, Default)]
pub struct InstanceOverrides {
    /// Seed of all randomness in this instance.
    pub seed: u64,
    /// This instance's honest inputs; `None` inherits the template's.
    pub honest_inputs: Option<Vec<Point>>,
    /// This instance's Byzantine strategy; `None` inherits the template's.
    pub adversary: Option<ByzantineStrategy>,
    /// This instance's validity condition; `None` inherits the template's.
    pub validity: Option<ValidityMode>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validity::relaxed_min_processes;

    fn inputs(count: usize, d: usize) -> Vec<Point> {
        (0..count)
            .map(|i| Point::uniform(d, i as f64 / count.max(2) as f64))
            .collect()
    }

    /// The centralised admission check, table-driven over all five protocols
    /// × three validity modes: one `validate` call per cell, each held to
    /// the family bound of `require_with_mode` — the per-builder drift this
    /// table replaces is structurally impossible now, and the table is the
    /// regression net proving it.
    #[test]
    fn admission_table_over_protocols_and_validity_modes() {
        let modes = [
            ValidityMode::Strict,
            ValidityMode::AlphaScaled(0.5),
            ValidityMode::KRelaxed(1),
        ];
        let (d, f) = (3usize, 2usize);
        for protocol in ProtocolKind::ALL {
            for mode in modes {
                // The family bound the mode admits at: the strict bound
                // evaluated at the relaxation family's effective dimension
                // (1 for both relaxed families here).
                let required = match protocol.setting() {
                    Some(setting) => match mode {
                        ValidityMode::Strict => setting.min_processes(d, f),
                        _ => setting.min_processes(1, f),
                    },
                    // Iterative has no closed-form bound; the directed kinds
                    // keep their graph-independent model floor under every
                    // validity mode (the flood has no relaxed variant).
                    None => protocol.directed_floor(d, f).unwrap_or(1),
                };
                // One below the bound is rejected with the exact requirement…
                if required > f + 1 {
                    let below = RunConfig::new(required - 1, f, d)
                        .honest_inputs(inputs(required - 1 - f, d))
                        .validity_mode(mode);
                    match below.validate(protocol) {
                        Err(BvcError::InsufficientProcesses {
                            required: r,
                            actual,
                            ..
                        }) => {
                            assert_eq!(r, required, "{protocol} / {mode:?}");
                            assert_eq!(actual, required - 1, "{protocol} / {mode:?}");
                        }
                        // The directed kinds have no Setting; their model
                        // floor rejects as a structural violation naming the
                        // required n.
                        Err(BvcError::InvalidParameter(msg)) if protocol.setting().is_none() => {
                            assert!(
                                msg.contains(&format!("n >= {required}")),
                                "{protocol} / {mode:?}: {msg}"
                            );
                        }
                        other => panic!("{protocol} / {mode:?}: expected rejection, got {other:?}"),
                    }
                }
                // …and the bound itself is admitted.
                let at = RunConfig::new(required.max(f + 2), f, d)
                    .honest_inputs(inputs(required.max(f + 2) - f, d))
                    .validity_mode(mode);
                at.validate(protocol)
                    .unwrap_or_else(|e| panic!("{protocol} / {mode:?}: {e}"));
            }
        }
    }

    /// The admission bound agrees with `relaxed_min_processes`' *family*
    /// variant for every cell — `validate` is the only gate, and it is the
    /// same gate for every protocol.
    #[test]
    fn admission_never_exceeds_the_recorded_requirement_for_complete_rules() {
        // For modes whose decision rule actually relaxes (exact at k = 1 /
        // α > 0), the recorded requirement equals the admission bound.
        let mode = ValidityMode::KRelaxed(1);
        let required = relaxed_min_processes(Setting::ExactSync, &mode, 3, 2);
        assert_eq!(required, 7);
        assert!(RunConfig::new(7, 2, 3)
            .honest_inputs(inputs(5, 3))
            .validity_mode(mode)
            .validate(ProtocolKind::Exact)
            .is_ok());
    }

    #[test]
    fn zero_faults_rejected_except_for_topology_governed_protocols() {
        // The iterative and directed protocols accept the fault-free
        // baseline (their solvability signal is the graph condition, which
        // is trivial at f = 0); the four complete-graph protocols model at
        // least one Byzantine process.
        for protocol in ProtocolKind::ALL {
            let config = RunConfig::new(6, 0, 2).honest_inputs(inputs(6, 2));
            let result = config.validate(protocol);
            if protocol.setting().is_none() {
                result.unwrap_or_else(|e| panic!("{protocol} accepts f = 0: {e}"));
            } else {
                assert!(
                    matches!(result, Err(BvcError::InvalidParameter(_))),
                    "{protocol} must reject f = 0"
                );
            }
        }
    }

    #[test]
    fn input_shape_and_topology_size_are_validated_once() {
        let err = RunConfig::new(5, 1, 2)
            .honest_inputs(inputs(2, 2))
            .validate(ProtocolKind::Exact)
            .unwrap_err();
        assert!(matches!(err, BvcError::InvalidParameter(_)));
        let err = RunConfig::new(5, 1, 2)
            .honest_inputs(inputs(4, 3))
            .validate(ProtocolKind::Exact)
            .unwrap_err();
        assert!(matches!(err, BvcError::InvalidParameter(_)));
        let err = RunConfig::new(6, 1, 1)
            .honest_inputs(inputs(5, 1))
            .topology(Topology::ring(5))
            .validate(ProtocolKind::Iterative)
            .unwrap_err();
        assert!(matches!(err, BvcError::InvalidParameter(_)));
    }

    #[test]
    fn exact_ignores_the_epsilon_knob_like_its_old_builder() {
        // The old ExactBvcRun builder had no ε setter; a garbage ε must not
        // make an exact session unconstructible…
        let config = RunConfig::new(5, 1, 2)
            .honest_inputs(inputs(4, 2))
            .epsilon(0.0);
        config
            .validate(ProtocolKind::Exact)
            .expect("ε is ignored by exact consensus");
        // …and the two directed exact protocols ignore it the same way…
        for protocol in [ProtocolKind::DirectedExact, ProtocolKind::DirectedExactLb] {
            RunConfig::new(5, 1, 2)
                .honest_inputs(inputs(4, 2))
                .epsilon(0.0)
                .validate(protocol)
                .expect("ε is ignored by the exact-consensus family");
        }
        // …while every ε-judged protocol still rejects it.
        for protocol in [
            ProtocolKind::Approx,
            ProtocolKind::RestrictedSync,
            ProtocolKind::RestrictedAsync,
            ProtocolKind::Iterative,
        ] {
            let config = RunConfig::new(13, 1, 2)
                .honest_inputs(inputs(12, 2))
                .epsilon(0.0);
            assert!(
                matches!(
                    config.validate(protocol),
                    Err(BvcError::InvalidParameter(_))
                ),
                "{protocol} is judged against ε and must validate it"
            );
        }
    }

    #[test]
    fn for_instance_overrides_only_the_per_instance_knobs() {
        let template = RunConfig::new(5, 1, 2)
            .honest_inputs(inputs(4, 2))
            .adversary(ByzantineStrategy::Silent)
            .seed(7)
            .epsilon(0.25);
        let inherited = template.for_instance(&InstanceOverrides {
            seed: 99,
            ..InstanceOverrides::default()
        });
        assert_eq!(inherited.seed, 99);
        assert_eq!(inherited.adversary, ByzantineStrategy::Silent);
        assert_eq!(inherited.honest_inputs.len(), 4);
        assert_eq!(inherited.epsilon, 0.25);
        let replaced = template.for_instance(&InstanceOverrides {
            seed: 3,
            honest_inputs: Some(inputs(4, 2)),
            adversary: Some(ByzantineStrategy::Equivocate),
            validity: Some(ValidityMode::KRelaxed(1)),
        });
        assert_eq!(replaced.adversary, ByzantineStrategy::Equivocate);
        assert_eq!(replaced.validity, ValidityMode::KRelaxed(1));
        replaced
            .validate(ProtocolKind::Exact)
            .expect("derived instance config stays valid");
    }

    #[test]
    fn protocol_kind_surface() {
        assert_eq!(ProtocolKind::ALL.len(), 7);
        assert!(ProtocolKind::Approx.is_async());
        assert!(!ProtocolKind::RestrictedSync.is_async());
        assert!(!ProtocolKind::Exact.uses_epsilon());
        assert!(ProtocolKind::Iterative.uses_epsilon());
        assert_eq!(ProtocolKind::RestrictedAsync.name(), "restricted-async");
        assert_eq!(ProtocolKind::Iterative.setting(), None);
        assert_eq!(ProtocolKind::DirectedExact.name(), "directed-exact");
        assert_eq!(ProtocolKind::DirectedExactLb.name(), "directed-exact-lb");
        assert!(!ProtocolKind::DirectedExact.is_async());
        assert!(!ProtocolKind::DirectedExactLb.is_async());
        assert!(!ProtocolKind::DirectedExact.uses_epsilon());
        assert!(!ProtocolKind::DirectedExactLb.uses_epsilon());
        assert_eq!(ProtocolKind::DirectedExact.setting(), None);
        assert_eq!(ProtocolKind::DirectedExactLb.setting(), None);
        // The LB floor is strictly weaker where 3f+1 dominates…
        assert_eq!(ProtocolKind::DirectedExact.directed_floor(1, 2), Some(7));
        assert_eq!(ProtocolKind::DirectedExactLb.directed_floor(1, 2), Some(5));
        // …and both keep the model-independent (d+1)f+1 decision floor.
        assert_eq!(ProtocolKind::DirectedExact.directed_floor(4, 2), Some(11));
        assert_eq!(ProtocolKind::DirectedExactLb.directed_floor(4, 2), Some(11));
    }
}
