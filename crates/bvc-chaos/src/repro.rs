//! Reproducer files: pin a shrunk counterexample as a standard scenario
//! TOML plus its expected verdict line, and replay the whole directory.
//!
//! A reproducer is two files in `scenarios/repros/`:
//!
//! * `<signature>.toml` — the shrunk genome in ordinary scenario form (it
//!   runs under `scenario-run` like any other scenario);
//! * `<signature>.expected` — the verdict JSON line the violation produced,
//!   byte-exact.
//!
//! [`replay_dir`] re-runs every committed reproducer through the same
//! scenario runner the search used and byte-compares the verdict against
//! the pinned line — the CI scenarios job fails on any drift.

use crate::genome::ChaosGenome;
use bvc_scenario::{run_scenario, ScenarioSpec};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The family signature of a parsed scenario spec, matching
/// [`ChaosGenome::signature`] — computable from any committed reproducer,
/// so fresh findings can be matched against pinned families without
/// rerunning them.
pub fn spec_signature(spec: &ScenarioSpec) -> String {
    let family = match &spec.validity {
        None => "strict".to_string(),
        Some(mode) => {
            use bvc_scenario::ValidityMode;
            match mode {
                ValidityMode::Strict => "strict".to_string(),
                ValidityMode::AlphaScaled(_) => "alpha".to_string(),
                ValidityMode::KRelaxed(k) => format!("k{k}"),
            }
        }
    };
    let mut signature = format!(
        "{}-n{}f{}d{}-{}",
        spec.protocol.name(),
        spec.n,
        spec.f,
        spec.d,
        family
    );
    if let Some(topology) = &spec.topology {
        let _ = write!(signature, "-{}", topology.name().replace(':', "-"));
    }
    signature
}

/// Signatures of every committed reproducer in `dir` (empty if the
/// directory does not exist).
///
/// # Errors
///
/// I/O failures reading the directory, or a committed file that no longer
/// parses as a scenario.
pub fn known_signatures(dir: &Path) -> io::Result<Vec<String>> {
    let mut signatures = Vec::new();
    if !dir.exists() {
        return Ok(signatures);
    }
    for path in toml_files(dir)? {
        let text = fs::read_to_string(&path)?;
        let spec = ScenarioSpec::from_toml(&text)
            .map_err(|e| io::Error::other(format!("{}: {e}", path.display())))?;
        signatures.push(spec_signature(&spec));
    }
    Ok(signatures)
}

/// Writes the reproducer pair for a shrunk violating genome, returning the
/// TOML path.  `expected_line` must be the verdict JSON of the violating
/// run (no trailing newline needed).
///
/// # Errors
///
/// Filesystem errors creating the directory or files.
pub fn write_repro(
    dir: &Path,
    genome: &ChaosGenome,
    expected_line: &str,
    master_seed: u64,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let signature = genome.signature();
    let toml_path = dir.join(format!("{signature}.toml"));
    let flags_note = format!(
        "# Found by `chaos-run --search` (master seed {master_seed}) and shrunk to this\n\
         # minimal form; the violation is genuine (resource check satisfied, no drop\n\
         # faults).  Replay and byte-compare against `{signature}.expected` with:\n\
         #\n\
         #   cargo run --release -p bvc-chaos --bin chaos-run -- --replay {}\n\n",
        dir.display()
    );
    fs::write(&toml_path, format!("{flags_note}{}", genome.to_toml()))?;
    let mut expected = expected_line.to_string();
    expected.push('\n');
    fs::write(dir.join(format!("{signature}.expected")), expected)?;
    Ok(toml_path)
}

/// The outcome of replaying one committed reproducer.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// The reproducer TOML path.
    pub path: PathBuf,
    /// `true` when the fresh verdict byte-matched the pinned line.
    pub matched: bool,
    /// Human-readable detail for mismatches/errors.
    pub detail: String,
}

/// Replays every `*.toml` under `dir` (sorted by name) and byte-compares
/// each verdict against its `.expected` sibling.
///
/// # Errors
///
/// I/O failures walking the directory; per-file run/parse failures are
/// reported as unmatched [`ReplayResult`]s, not errors.
pub fn replay_dir(dir: &Path) -> io::Result<Vec<ReplayResult>> {
    let mut results = Vec::new();
    for path in toml_files(dir)? {
        results.push(replay_one(&path));
    }
    Ok(results)
}

fn replay_one(path: &Path) -> ReplayResult {
    let fail = |detail: String| ReplayResult {
        path: path.to_path_buf(),
        matched: false,
        detail,
    };
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => return fail(format!("unreadable: {e}")),
    };
    let spec = match ScenarioSpec::from_toml(&text) {
        Ok(spec) => spec,
        Err(e) => return fail(format!("parse: {e}")),
    };
    let outcome = match run_scenario(&spec, spec.seed, spec.strategy, spec.policy.clone()) {
        Ok(outcome) => outcome,
        Err(e) => return fail(format!("run: {e}")),
    };
    let expected_path = path.with_extension("expected");
    let expected = match fs::read_to_string(&expected_path) {
        Ok(expected) => expected,
        Err(e) => {
            return fail(format!(
                "missing pinned verdict {}: {e}",
                expected_path.display()
            ))
        }
    };
    let fresh = format!("{}\n", outcome.to_json());
    if fresh == expected {
        ReplayResult {
            path: path.to_path_buf(),
            matched: true,
            detail: "byte-identical".to_string(),
        }
    } else {
        fail(format!(
            "verdict drift:\n  pinned: {}\n  fresh:  {}",
            expected.trim_end(),
            fresh.trim_end()
        ))
    }
}

/// Sorted `*.toml` paths under `dir`.
fn toml_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::ValidityGene;
    use bvc_scenario::Protocol;

    #[test]
    fn spec_signature_matches_genome_signature() {
        let genome = ChaosGenome {
            protocol: Protocol::Exact,
            n: 5,
            f: 1,
            d: 2,
            epsilon: 0.1,
            seed: 0,
            points: vec![
                vec![0.1, 0.1],
                vec![0.5, 0.5],
                vec![0.9, 0.9],
                vec![0.3, 0.7],
            ],
            strategy: "equivocate".to_string(),
            validity: ValidityGene::Alpha(0.5),
            topology: None,
            faults: Vec::new(),
            round_robin: false,
            max_steps: 100_000,
        };
        let spec = genome.to_spec().unwrap();
        assert_eq!(spec_signature(&spec), genome.signature());

        // A declared topology shows up in both signatures identically —
        // directed reproducers dedup by (shape, validity, topology).
        let mut directed = genome;
        directed.protocol = Protocol::DirectedExact;
        directed.n = 8;
        directed.f = 1;
        directed.validity = ValidityGene::Strict;
        directed.topology = Some("random-regular:4".to_string());
        directed.points = (0..7).map(|i| vec![0.1 * i as f64, 0.2]).collect();
        let spec = directed.to_spec().unwrap();
        assert_eq!(spec_signature(&spec), directed.signature());
    }
}
