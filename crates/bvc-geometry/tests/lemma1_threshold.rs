//! Regression pins for Γ at the exact Lemma-1 threshold `|Y| = (d+1)f + 1`.
//!
//! At the threshold the safe area is guaranteed non-empty but can degenerate
//! to a *single point* (a Tverberg point), where any LP formulation operates
//! at its numerical worst: the feasible region has zero volume, so a solver
//! may report it empty at tolerance.  The contract pinned here (and
//! documented in this crate's README) is one-sided robustness: **whenever
//! the naive all-hulls formulation accepts — finds a point, or holds a
//! membership — the lazy engine accepts too.**  The lazy path may be
//! *strictly more* robust (its closed forms and multiplicity accepts dodge
//! the LP entirely), never less.

use bvc_geometry::{gamma_contains, gamma_point, ConvexHull, Point, PointMultiset, SafeArea};

fn pts(coords: &[&[f64]]) -> PointMultiset {
    PointMultiset::new(coords.iter().map(|c| Point::new(c.to_vec())).collect())
}

/// The naive Section-2.2 formulation: materialise every `(|Y|−f)`-subset
/// hull, solve the monolithic joint LP.
fn naive_point(y: &PointMultiset, f: usize) -> Option<Point> {
    ConvexHull::common_point(&SafeArea::new(y.clone(), f).hulls())
}

/// Threshold families in d = 2, f = 1 (|Y| = 4): a triangle plus an interior
/// point placed `offset` away from the centroid.  At `offset = 0` Γ is
/// exactly the centroid — a zero-volume region.
fn triangle_plus_interior(offset: f64) -> PointMultiset {
    let centroid_x = 1.0 + offset;
    pts(&[&[0.0, 0.0], &[3.0, 0.0], &[0.0, 3.0], &[centroid_x, 1.0]])
}

#[test]
fn lazy_accepts_whatever_the_naive_path_accepts_near_the_point_threshold() {
    // Sweep the interior point through the degenerate configuration,
    // including perturbations below, at, and above the LP tolerance.
    for &offset in &[
        0.0, 1e-12, 1e-9, 1e-8, 1e-7, 1e-6, 1e-4, 0.01, 0.1, -1e-9, -1e-7, -0.01,
    ] {
        let y = triangle_plus_interior(offset);
        let naive = naive_point(&y, 1);
        let lazy = gamma_point(&y, 1);
        if let Some(p) = &naive {
            let q = lazy.as_ref().unwrap_or_else(|| {
                panic!("offset {offset}: naive found {p}, lazy must not report empty")
            });
            // Both chosen points must be accepted by the lazy membership
            // test — the three queries have to agree with each other.
            assert!(
                gamma_contains(&y, 1, q),
                "offset {offset}: lazy point {q} fails its own membership"
            );
            assert!(
                gamma_contains(&y, 1, p),
                "offset {offset}: naive point {p} rejected by lazy membership"
            );
        }
    }
}

#[test]
fn exact_threshold_tverberg_point_is_found_by_both_paths() {
    // |Y| = (d+1)f + 1 = 4 with the interior point exactly at the centroid:
    // Γ = {centroid}.  Both formulations must find it (the degenerate case
    // the PR-2 caveat recorded: here the lazy path's multiplicity/trimmed-box
    // machinery keeps it at least as robust as the naive LP).
    let y = triangle_plus_interior(0.0);
    let naive = naive_point(&y, 1).expect("naive joint LP finds the Tverberg point");
    let lazy = gamma_point(&y, 1).expect("lazy engine finds the Tverberg point");
    let centroid = Point::new(vec![1.0, 1.0]);
    assert!(
        naive.approx_eq(&centroid, 1e-6),
        "naive point {naive} should be the centroid"
    );
    assert!(
        lazy.approx_eq(&centroid, 1e-6),
        "lazy point {lazy} should be the centroid"
    );
    assert!(gamma_contains(&y, 1, &centroid));
}

#[test]
fn near_point_gamma_with_duplicated_member_uses_the_multiplicity_accept() {
    // A point appearing f + 1 = 2 times survives every f-removal: the lazy
    // engine accepts it with no LP at all, while the naive formulation has
    // to push a zero-volume region through the solver.  The lazy answer must
    // dominate the naive one.
    let y = pts(&[&[1.0, 1.0], &[1.0, 1.0], &[9.0, 0.0], &[0.0, 9.0]]);
    assert!(gamma_contains(&y, 1, &Point::new(vec![1.0, 1.0])));
    if let Some(p) = naive_point(&y, 1) {
        assert!(
            gamma_point(&y, 1).is_some(),
            "naive found {p}; lazy must agree the region is non-empty"
        );
    }
}

#[test]
fn d1_threshold_interval_matches_the_lp_tolerance_band() {
    // d = 1, f = 1, |Y| = 2f + 1 = 3: Γ is the singleton {median}.  The
    // closed form must accept the median and agree with the naive LP on
    // within-tolerance inverted intervals (the documented tolerance band).
    let y = pts(&[&[0.0], &[0.5], &[1.0]]);
    assert!(!bvc_geometry::gamma_is_empty(&y, 1));
    let p = gamma_point(&y, 1).expect("singleton interval");
    assert!((p.coord(0) - 0.5).abs() < 1e-9);
    assert!(gamma_contains(&y, 1, &p));
    if let Some(q) = naive_point(&y, 1) {
        assert!(
            gamma_contains(&y, 1, &q),
            "naive point {q} must be accepted"
        );
    }
}
