//! The unified run report: one result type for all five protocols.
//!
//! [`RunReport`] replaces the five per-protocol run structs of the
//! pre-session API.  Every field that used to be scattered across
//! `ExactBvcRun` / `ApproxBvcRun` / `RestrictedRun` / `IterativeBvcRun` is
//! here exactly once: decisions, the scored [`Verdict`], the validity check,
//! round/step counts, message statistics, and the topology + sufficiency
//! metadata.  Fields a protocol does not produce are `None`/empty (e.g. the
//! resource check of the iterative protocol, whose solvability signal is the
//! sufficiency verdict instead).

use super::config::{ProtocolKind, RunConfig};
use crate::approx::ApproxOutput;
use crate::validity::{ValidityCheck, ValidityMode};
use bvc_geometry::{Point, PointMultiset};
use bvc_net::ExecutionStats;
use bvc_topology::{Sufficiency, Topology};

/// How an execution scored against the paper's correctness conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Exact algorithms: all honest decisions identical.  Approximate
    /// algorithms: all honest decisions within ε per coordinate.
    pub agreement: bool,
    /// Every honest decision satisfies the run's validity condition with
    /// respect to the honest inputs (strict hull membership by default; the
    /// relaxed conditions of arXiv:1601.08067 when the run declares them).
    pub validity: bool,
    /// Every honest process decided before the executor's budget ran out.
    pub termination: bool,
    /// Largest L∞ distance between two honest decisions.
    pub max_pairwise_distance: f64,
}

impl Verdict {
    /// `true` when all three conditions hold.
    pub fn all_hold(&self) -> bool {
        self.agreement && self.validity && self.termination
    }

    pub(crate) fn score(
        decisions: &[Point],
        honest_inputs: &[Point],
        terminated: bool,
        tolerance: f64,
        mode: &ValidityMode,
    ) -> Self {
        if decisions.is_empty() || !terminated {
            return Self {
                agreement: false,
                validity: false,
                termination: false,
                max_pairwise_distance: f64::INFINITY,
            };
        }
        let mut max_distance: f64 = 0.0;
        for i in 0..decisions.len() {
            for j in (i + 1)..decisions.len() {
                max_distance = max_distance.max(decisions[i].linf_distance(&decisions[j]));
            }
        }
        let honest = PointMultiset::new(honest_inputs.to_vec());
        let validity = decisions.iter().all(|d| mode.contains(&honest, d));
        Self {
            agreement: max_distance <= tolerance,
            validity,
            termination: true,
            max_pairwise_distance: max_distance,
        }
    }
}

/// A completed BVC execution, whatever the protocol.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub(crate) protocol: ProtocolKind,
    pub(crate) config: RunConfig,
    pub(crate) decisions: Vec<Point>,
    pub(crate) verdict: Verdict,
    pub(crate) validity: Option<ValidityCheck>,
    pub(crate) rounds: usize,
    pub(crate) round_budget: Option<usize>,
    pub(crate) epsilon: Option<f64>,
    pub(crate) stats: ExecutionStats,
    pub(crate) topology: Topology,
    pub(crate) sufficiency: Option<Sufficiency>,
    pub(crate) outputs: Vec<ApproxOutput>,
}

impl RunReport {
    /// The protocol that produced this report.
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// The configuration the session ran (inputs, seed, adversary, …).
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// The honest processes' decisions (index = honest process index).
    pub fn decisions(&self) -> &[Point] {
        &self.decisions
    }

    /// The honest inputs the run was configured with.
    pub fn honest_inputs(&self) -> &[Point] {
        &self.config.honest_inputs
    }

    /// The verdict against (ε-)Agreement / Validity / Termination.
    pub fn verdict(&self) -> &Verdict {
        &self.verdict
    }

    /// The validity mode the verdict was scored against.
    pub fn validity_mode(&self) -> &ValidityMode {
        &self.config.validity
    }

    /// The recorded resource check: the protocol's (possibly mode-lowered)
    /// minimum `n` and whether the run meets it.  `None` for the iterative
    /// protocol, whose resource signal is [`sufficiency`](Self::sufficiency).
    pub fn validity(&self) -> Option<&ValidityCheck> {
        self.validity.as_ref()
    }

    /// Rounds (synchronous protocols) or scheduler delivery steps
    /// (asynchronous protocols) executed.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The protocol's static round budget, where it has one (the
    /// approximate Step-3 budget; the iterative convergence budget).
    pub fn round_budget(&self) -> Option<usize> {
        self.round_budget
    }

    /// The ε the verdict was judged against (`None` for exact consensus).
    pub fn epsilon(&self) -> Option<f64> {
        self.epsilon
    }

    /// Message statistics of the execution.
    pub fn stats(&self) -> &ExecutionStats {
        &self.stats
    }

    /// The topology the run executed on (the complete graph unless the
    /// config declared otherwise).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The iterative protocol's up-front graph-condition check: whether
    /// convergence was expected on this topology at all.  `None` for the
    /// four complete-graph protocols.
    pub fn sufficiency(&self) -> Option<&Sufficiency> {
        self.sufficiency.as_ref()
    }

    /// Full per-process outputs of the approximate protocol (decision,
    /// state history, `|Z_i|` sizes); empty for every other protocol.
    pub fn outputs(&self) -> &[ApproxOutput] {
        &self.outputs
    }

    /// The per-round range `max_l (Ω_l[t] − µ_l[t])` across the honest
    /// processes, computed from the recorded approximate-protocol histories
    /// (index 0 is the range of the inputs).  Empty for protocols that do
    /// not record histories.
    pub fn range_history(&self) -> Vec<f64> {
        if self.outputs.is_empty() {
            return Vec::new();
        }
        let rounds = self
            .outputs
            .iter()
            .map(|o| o.history.len())
            .min()
            .unwrap_or(0);
        (0..rounds)
            .map(|t| {
                let states: Vec<Point> =
                    self.outputs.iter().map(|o| o.history[t].clone()).collect();
                PointMultiset::new(states).coordinate_range()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_all_hold_logic() {
        let verdict = Verdict {
            agreement: true,
            validity: true,
            termination: false,
            max_pairwise_distance: 0.0,
        };
        assert!(!verdict.all_hold());
    }
}
