//! Synchronous Byzantine broadcast built on EIG consensus.
//!
//! The classical reduction: a designated *source* sends its value to every
//! process in the first round, and then all processes run Byzantine consensus
//! (here: EIG, [`crate::eig`]) on the value they received, using a default for
//! a silent source.  For `n ≥ 3f + 1` this satisfies exactly the two
//! properties the Exact BVC algorithm's Step 1 relies on:
//!
//! 1. all non-faulty processes decide an identical value, and
//! 2. if the source is non-faulty, that value is the source's input.
//!
//! [`BroadcastInstance`] is a pure per-process state machine (no I/O): the
//! caller moves messages between instances.  The Exact BVC process multiplexes
//! `n` of these, one per source, over the synchronous network executor.

use crate::eig::{EigTree, Label};

/// Payload of a broadcast-protocol message for one instance.
#[derive(Debug, Clone, PartialEq)]
pub enum BroadcastMessage<V> {
    /// Round 1: the source's value.
    Initial(V),
    /// Rounds 2..=f+2: EIG relays (pairs of label and value) for EIG round
    /// `round − 1`.
    Relay(Vec<(Label, V)>),
}

/// Per-process state machine for one Byzantine broadcast instance (one
/// designated source).
#[derive(Debug, Clone)]
pub struct BroadcastInstance<V> {
    n: usize,
    f: usize,
    me: usize,
    source: usize,
    default: V,
    /// Value to broadcast; meaningful only at the source.
    input: Option<V>,
    /// The value this process received directly from the source in round 1.
    received_from_source: Option<V>,
    tree: EigTree<V>,
    decision: Option<V>,
}

impl<V: Clone + PartialEq> BroadcastInstance<V> {
    /// Creates the state machine for process `me` participating in the
    /// broadcast of `source`, in a system of `n` processes tolerating `f`
    /// faults, with `default` used when the source is silent or equivocates
    /// unintelligibly.
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ 3f + 1`, `f ≥ 1`, and `me, source < n`.
    pub fn new(n: usize, f: usize, me: usize, source: usize, default: V) -> Self {
        assert!(source < n, "source index {source} out of range");
        let tree = EigTree::new(n, f, me, default.clone());
        Self {
            n,
            f,
            me,
            source,
            default,
            input: None,
            received_from_source: None,
            tree,
            decision: None,
        }
    }

    /// Total number of synchronous rounds the protocol takes: `f + 2`.
    pub fn rounds(&self) -> usize {
        self.f + 2
    }

    /// The designated source of this instance.
    pub fn source(&self) -> usize {
        self.source
    }

    /// Sets the value to broadcast.  Only meaningful when `me == source`.
    pub fn set_input(&mut self, value: V) {
        self.input = Some(value);
    }

    /// The messages this process should send to **all other processes** in
    /// round `round` (1-based), or `None` if it has nothing to send (e.g. a
    /// non-source process in round 1).
    ///
    /// # Panics
    ///
    /// Panics if `round` is 0 or exceeds [`Self::rounds`].
    pub fn message_for_round(&mut self, round: usize) -> Option<BroadcastMessage<V>> {
        assert!(
            round >= 1 && round <= self.rounds(),
            "round {round} out of range"
        );
        if round == 1 {
            if self.me == self.source {
                let value = self.input.clone().unwrap_or_else(|| self.default.clone());
                // The source "receives from itself" immediately.
                self.received_from_source = Some(value.clone());
                return Some(BroadcastMessage::Initial(value));
            }
            return None;
        }
        // EIG rounds: consensus round = round − 1. At the first EIG round the
        // consensus input is whatever arrived from the source.
        let eig_round = round - 1;
        if eig_round == 1 {
            let input = self
                .received_from_source
                .clone()
                .unwrap_or_else(|| self.default.clone());
            self.tree.set_input(input);
        }
        let relays = self.tree.messages_for_round(eig_round);
        self.tree.apply_own_relays(eig_round);
        Some(BroadcastMessage::Relay(relays))
    }

    /// Handles a message received from `from` during round `round`.
    ///
    /// Out-of-place messages (an `Initial` not from the source or outside
    /// round 1, a `Relay` in round 1) are ignored: that is how a Byzantine
    /// sender's protocol violations are neutralised.
    pub fn receive(&mut self, round: usize, from: usize, msg: &BroadcastMessage<V>) {
        if from >= self.n {
            return;
        }
        match msg {
            BroadcastMessage::Initial(value) => {
                if round == 1 && from == self.source && self.received_from_source.is_none() {
                    self.received_from_source = Some(value.clone());
                }
            }
            BroadcastMessage::Relay(pairs) => {
                if round >= 2 && round <= self.rounds() {
                    self.tree.receive(round - 1, from, pairs);
                }
            }
        }
    }

    /// Marks the end of round `round`: fills EIG defaults and, after the last
    /// round, computes the decision.
    pub fn end_round(&mut self, round: usize) {
        if round >= 2 && round <= self.rounds() {
            self.tree.fill_defaults(round - 1);
        }
        if round == self.rounds() && self.decision.is_none() {
            self.decision = Some(self.tree.decide());
        }
    }

    /// The broadcast decision, available after [`Self::rounds`] rounds.
    pub fn decision(&self) -> Option<&V> {
        self.decision.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs one broadcast instance synchronously.  `byzantine` processes send
    /// whatever `forge` returns (possibly different messages per receiver)
    /// instead of their honest messages.  Returns the decisions of honest
    /// processes.
    fn run_broadcast(
        n: usize,
        f: usize,
        source: usize,
        source_value: i64,
        byzantine: &[usize],
        mut forge: impl FnMut(usize, usize, usize) -> Option<BroadcastMessage<i64>>,
    ) -> Vec<i64> {
        let default = 0i64;
        let mut instances: Vec<BroadcastInstance<i64>> = (0..n)
            .map(|me| BroadcastInstance::new(n, f, me, source, default))
            .collect();
        instances[source].set_input(source_value);
        let rounds = f + 2;
        for round in 1..=rounds {
            let outgoing: Vec<Option<BroadcastMessage<i64>>> = instances
                .iter_mut()
                .map(|inst| inst.message_for_round(round))
                .collect();
            for (to, inst) in instances.iter_mut().enumerate() {
                for (from, out) in outgoing.iter().enumerate() {
                    if from == to {
                        continue;
                    }
                    let msg = if byzantine.contains(&from) {
                        forge(round, from, to)
                    } else {
                        out.clone()
                    };
                    if let Some(m) = msg {
                        inst.receive(round, from, &m);
                    }
                }
            }
            for inst in instances.iter_mut() {
                inst.end_round(round);
            }
        }
        (0..n)
            .filter(|i| !byzantine.contains(i))
            .map(|i| *instances[i].decision().expect("decided after f+2 rounds"))
            .collect()
    }

    #[test]
    fn honest_source_value_is_adopted_by_all() {
        let decisions = run_broadcast(4, 1, 0, 42, &[], |_, _, _| None);
        assert_eq!(decisions, vec![42, 42, 42, 42]);
    }

    #[test]
    fn honest_source_with_a_byzantine_relay() {
        // Process 2 is Byzantine and relays garbage; the source (0) is honest,
        // so everyone must still decide 42.
        let decisions = run_broadcast(4, 1, 0, 42, &[2], |round, _from, to| {
            if round == 1 {
                None
            } else {
                Some(BroadcastMessage::Relay(vec![
                    (vec![], 900 + to as i64),
                    (vec![0], 800 + to as i64),
                    (vec![1], 700 + to as i64),
                    (vec![3], 600 + to as i64),
                ]))
            }
        });
        assert_eq!(decisions, vec![42, 42, 42]);
    }

    #[test]
    fn equivocating_source_still_yields_agreement() {
        // The source (0) is Byzantine and tells every receiver a different
        // value, then relays garbage. Honest processes must still agree on
        // *some* identical value.
        let decisions = run_broadcast(4, 1, 0, 0, &[0], |round, _from, to| {
            if round == 1 {
                Some(BroadcastMessage::Initial(100 + to as i64))
            } else {
                Some(BroadcastMessage::Relay(vec![(vec![1], 500 + to as i64)]))
            }
        });
        assert_eq!(decisions.len(), 3);
        assert!(decisions.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn silent_source_yields_agreement_on_some_value() {
        let decisions = run_broadcast(4, 1, 3, 7, &[3], |_, _, _| None);
        assert!(decisions.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn two_faults_with_seven_processes() {
        // n = 7, f = 2, honest source, Byzantine relays from 5 and 6.
        let decisions = run_broadcast(7, 2, 0, 13, &[5, 6], |round, from, to| {
            if round == 1 {
                None
            } else {
                Some(BroadcastMessage::Relay(vec![(
                    vec![],
                    (round * 100 + from * 10 + to) as i64,
                )]))
            }
        });
        assert_eq!(decisions, vec![13; 5]);
    }

    #[test]
    fn equivocating_source_with_two_faults() {
        // n = 7, f = 2: the source and one relay are Byzantine.
        let decisions = run_broadcast(7, 2, 1, 0, &[1, 4], |round, from, to| {
            if from == 1 && round == 1 {
                Some(BroadcastMessage::Initial((to % 3) as i64))
            } else if round >= 2 {
                Some(BroadcastMessage::Relay(vec![(vec![], to as i64)]))
            } else {
                None
            }
        });
        assert_eq!(decisions.len(), 5);
        assert!(decisions.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn misplaced_messages_are_ignored() {
        let mut inst = BroadcastInstance::new(4, 1, 1, 0, 0i64);
        // An Initial from a non-source process must be ignored.
        inst.receive(1, 2, &BroadcastMessage::Initial(99));
        // A Relay in round 1 must be ignored.
        inst.receive(1, 0, &BroadcastMessage::Relay(vec![(vec![], 99)]));
        // Now the genuine initial from the source.
        inst.receive(1, 0, &BroadcastMessage::Initial(5));
        let _ = inst.message_for_round(2);
        assert_eq!(inst.tree.value(&[]), Some(&5));
    }

    #[test]
    fn source_decides_its_own_value() {
        let decisions = run_broadcast(4, 1, 2, -3, &[], |_, _, _| None);
        assert_eq!(decisions, vec![-3; 4]);
    }

    #[test]
    fn rounds_is_f_plus_two() {
        let inst = BroadcastInstance::new(7, 2, 0, 0, 0i64);
        assert_eq!(inst.rounds(), 4);
    }
}
