//! Exponential Information Gathering (EIG) Byzantine consensus core.
//!
//! Step 1 of the Exact BVC algorithm (Section 2.2 of the paper) uses a
//! "scalar Byzantine broadcast algorithm (such as [12, 6])" as a black box
//! with the two classical properties: all non-faulty processes decide the same
//! value, and if the sender is non-faulty they decide the sender's value.
//! This module implements the textbook construction behind those citations:
//! the EIG (a.k.a. `OM(f)`) protocol, correct for `n ≥ 3f + 1` in a
//! synchronous complete graph.
//!
//! [`EigTree`] is the per-process data structure for one *consensus* instance:
//! a tree of values indexed by strings of distinct process ids, filled in over
//! `f + 1` relay rounds and resolved bottom-up by recursive majority.  The
//! broadcast wrapper (source sends, then everybody runs consensus on what they
//! received) lives in [`crate::broadcast`].

use std::collections::HashMap;

/// A label of an EIG tree node: a sequence of distinct process indices.
/// The root is the empty label.
pub type Label = Vec<usize>;

/// Per-process EIG tree for one Byzantine consensus instance over values of
/// type `V`.
///
/// `V` only needs `Clone + PartialEq`: majorities are computed by pairwise
/// comparison, so no `Ord`/`Hash` is required (the consensus values in this
/// workspace are vectors of `f64`).
#[derive(Debug, Clone)]
pub struct EigTree<V> {
    n: usize,
    f: usize,
    me: usize,
    default: V,
    /// Values stored at tree nodes, keyed by label.
    values: HashMap<Label, V>,
}

impl<V: Clone + PartialEq> EigTree<V> {
    /// Creates the tree for a system of `n` processes tolerating `f` faults,
    /// as seen by process `me`, with `default` used for missing/garbled
    /// values.
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ 3f + 1`, `f ≥ 1` and `me < n`.
    pub fn new(n: usize, f: usize, me: usize, default: V) -> Self {
        assert!(f >= 1, "EIG needs f >= 1 (use direct exchange for f = 0)");
        assert!(n > 3 * f, "EIG requires n >= 3f + 1 (n = {n}, f = {f})");
        assert!(me < n, "process index {me} out of range");
        Self {
            n,
            f,
            me,
            default,
            values: HashMap::new(),
        }
    }

    /// Number of relay rounds the protocol needs: `f + 1`.
    pub fn rounds(&self) -> usize {
        self.f + 1
    }

    /// Sets this process's input (the value stored at the root).
    pub fn set_input(&mut self, value: V) {
        self.values.insert(Vec::new(), value);
    }

    /// The value currently stored at `label`, if any.
    pub fn value(&self, label: &[usize]) -> Option<&V> {
        self.values.get(label)
    }

    /// The `(label, value)` pairs this process must relay in round `round`
    /// (1-based): the values of all level-`round − 1` nodes whose labels do
    /// not contain this process.
    ///
    /// Missing values are relayed as the default, which keeps the relay
    /// schedule deterministic even if earlier senders were silent.
    pub fn messages_for_round(&self, round: usize) -> Vec<(Label, V)> {
        assert!(
            round >= 1 && round <= self.rounds(),
            "round {round} out of range"
        );
        self.labels_at_level(round - 1)
            .into_iter()
            .filter(|label| !label.contains(&self.me))
            .map(|label| {
                let value = self
                    .values
                    .get(&label)
                    .cloned()
                    .unwrap_or_else(|| self.default.clone());
                (label, value)
            })
            .collect()
    }

    /// Applies this process's own round-`round` relays to its own tree: the
    /// classical protocol has every process broadcast to *all* processes,
    /// including itself, so the nodes `label · me` must be populated with the
    /// values this process relays.  Call once per round, alongside
    /// [`EigTree::messages_for_round`].
    pub fn apply_own_relays(&mut self, round: usize) {
        let own = self.messages_for_round(round);
        for (label, value) in own {
            let mut child = label;
            child.push(self.me);
            self.values.entry(child).or_insert(value);
        }
    }

    /// Records the relays received from `from` in round `round`.  A pair
    /// `(label, value)` sent by `from` assigns `value` to the node
    /// `label · from`, provided the label is well-formed for that round and
    /// sender (correct length, distinct ids, does not already contain `from`).
    /// Malformed pairs are ignored, which is how a Byzantine sender's garbage
    /// is neutralised.
    pub fn receive(&mut self, round: usize, from: usize, pairs: &[(Label, V)]) {
        assert!(
            round >= 1 && round <= self.rounds(),
            "round {round} out of range"
        );
        for (label, value) in pairs {
            if label.len() != round - 1 {
                continue;
            }
            if label.contains(&from) || from >= self.n {
                continue;
            }
            if !labels_distinct(label) || label.iter().any(|&p| p >= self.n) {
                continue;
            }
            let mut child = label.clone();
            child.push(from);
            // First write wins: a FIFO channel delivers at most one relay per
            // (round, label, sender) in a correct execution; keeping the first
            // protects against duplicates.
            self.values.entry(child).or_insert_with(|| value.clone());
        }
    }

    /// Fills every still-missing node of level `round` with the default
    /// value.  Call at the end of round `round` so silent senders are treated
    /// as having sent the default, as the classical protocol prescribes.
    pub fn fill_defaults(&mut self, round: usize) {
        assert!(
            round >= 1 && round <= self.rounds(),
            "round {round} out of range"
        );
        for label in self.labels_at_level(round) {
            self.values
                .entry(label)
                .or_insert_with(|| self.default.clone());
        }
    }

    /// Resolves the tree bottom-up by recursive strict majority and returns
    /// the decision value.  Call after all `f + 1` rounds have completed (and
    /// defaults have been filled).
    pub fn decide(&self) -> V {
        self.resolve(&Vec::new())
    }

    fn resolve(&self, label: &Label) -> V {
        if label.len() == self.rounds() {
            return self
                .values
                .get(label)
                .cloned()
                .unwrap_or_else(|| self.default.clone());
        }
        let children: Vec<V> = (0..self.n)
            .filter(|p| !label.contains(p))
            .map(|p| {
                let mut child = label.clone();
                child.push(p);
                self.resolve(&child)
            })
            .collect();
        strict_majority(&children).unwrap_or_else(|| self.default.clone())
    }

    /// All well-formed labels of the given level: sequences of `level`
    /// distinct process indices.
    fn labels_at_level(&self, level: usize) -> Vec<Label> {
        let mut result = vec![Vec::new()];
        for _ in 0..level {
            let mut next = Vec::new();
            for label in &result {
                for p in 0..self.n {
                    if !label.contains(&p) {
                        let mut extended = label.clone();
                        extended.push(p);
                        next.push(extended);
                    }
                }
            }
            result = next;
        }
        result
    }
}

fn labels_distinct(label: &[usize]) -> bool {
    for (i, a) in label.iter().enumerate() {
        if label[i + 1..].contains(a) {
            return false;
        }
    }
    true
}

/// Returns the value held by a strict majority of `values` (by `PartialEq`
/// comparison), if one exists.
pub fn strict_majority<V: Clone + PartialEq>(values: &[V]) -> Option<V> {
    for candidate in values {
        let count = values.iter().filter(|v| *v == candidate).count();
        if 2 * count > values.len() {
            return Some(candidate.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a full synchronous execution of one EIG consensus instance with
    /// the given inputs; `byzantine` processes send `garbage(round, to)`
    /// instead of honest relays (possibly different values to different
    /// receivers).  Returns the decisions of the honest processes.
    fn run_eig(
        n: usize,
        f: usize,
        inputs: &[i64],
        byzantine: &[usize],
        mut garbage: impl FnMut(usize, usize, usize) -> Vec<(Label, i64)>,
    ) -> Vec<i64> {
        let default = -1i64;
        let mut trees: Vec<EigTree<i64>> = (0..n)
            .map(|i| {
                let mut t = EigTree::new(n, f, i, default);
                t.set_input(inputs[i]);
                t
            })
            .collect();
        let rounds = f + 1;
        for round in 1..=rounds {
            // Gather every process's outgoing relays for this round and apply
            // each process's own relays to its own tree (self-delivery).
            let mut outgoing: Vec<Vec<(Label, i64)>> = Vec::with_capacity(n);
            for tree in trees.iter_mut() {
                outgoing.push(tree.messages_for_round(round));
                tree.apply_own_relays(round);
            }
            // Deliver.
            for (to, tree) in trees.iter_mut().enumerate() {
                for (from, out) in outgoing.iter().enumerate() {
                    if from == to {
                        continue;
                    }
                    let pairs = if byzantine.contains(&from) {
                        garbage(round, from, to)
                    } else {
                        out.clone()
                    };
                    tree.receive(round, from, &pairs);
                }
            }
            for tree in trees.iter_mut() {
                tree.fill_defaults(round);
            }
        }
        (0..n)
            .filter(|i| !byzantine.contains(i))
            .map(|i| trees[i].decide())
            .collect()
    }

    #[test]
    fn all_honest_processes_agree_with_no_faults_present() {
        let decisions = run_eig(4, 1, &[7, 7, 7, 7], &[], |_, _, _| Vec::new());
        assert!(decisions.iter().all(|&d| d == 7));
    }

    #[test]
    fn validity_holds_when_all_honest_inputs_equal() {
        // Byzantine process 3 sends nothing at all; honest inputs are all 5.
        let decisions = run_eig(4, 1, &[5, 5, 5, 99], &[3], |_, _, _| Vec::new());
        assert_eq!(decisions, vec![5, 5, 5]);
    }

    #[test]
    fn agreement_holds_under_equivocation() {
        // Byzantine process 0 relays different values to different receivers.
        let decisions = run_eig(4, 1, &[10, 20, 30, 40], &[0], |round, _from, to| {
            // Send a per-receiver fabricated root value in round 1, and
            // per-receiver garbage relays in round 2.
            if round == 1 {
                vec![(vec![], 1000 + to as i64)]
            } else {
                vec![
                    (vec![1], 2000 + to as i64),
                    (vec![2], 3000 + to as i64),
                    (vec![3], 4000 + to as i64),
                ]
            }
        });
        // All honest processes decide identically (agreement), whatever value
        // that is.
        assert!(decisions.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn agreement_holds_with_two_faults_and_seven_processes() {
        let inputs = [1, 1, 1, 1, 1, 9, 9];
        let decisions = run_eig(7, 2, &inputs, &[5, 6], |round, from, to| {
            vec![(vec![], (round * 100 + from * 10 + to) as i64)]
        });
        assert!(decisions.windows(2).all(|w| w[0] == w[1]));
        // Honest inputs are all 1, so validity forces the decision to 1.
        assert_eq!(decisions[0], 1);
    }

    #[test]
    fn malformed_relays_are_ignored() {
        let mut tree = EigTree::new(4, 1, 0, 0i64);
        tree.set_input(3);
        // Label containing the sender, wrong level, out-of-range ids, and
        // duplicate ids must all be ignored.
        tree.receive(1, 2, &[(vec![2], 50)]); // wrong level for round 1
        tree.receive(2, 2, &[(vec![2], 50)]); // label contains sender
        tree.receive(2, 2, &[(vec![9], 50)]); // id out of range
        tree.receive(2, 2, &[(vec![1, 1], 50)]); // duplicates (also wrong level)
        assert!(tree.value(&[2, 2]).is_none());
        assert!(tree.value(&[2]).is_none());
    }

    #[test]
    fn duplicate_relays_keep_first_value() {
        let mut tree = EigTree::new(4, 1, 0, 0i64);
        tree.receive(1, 1, &[(vec![], 5)]);
        tree.receive(1, 1, &[(vec![], 6)]);
        assert_eq!(tree.value(&[1]), Some(&5));
    }

    #[test]
    fn strict_majority_detects_presence_and_absence() {
        assert_eq!(strict_majority(&[1, 1, 2]), Some(1));
        assert_eq!(strict_majority(&[1, 2, 3]), None);
        assert_eq!(strict_majority::<i32>(&[]), None);
        assert_eq!(strict_majority(&[4]), Some(4));
    }

    #[test]
    fn rounds_is_f_plus_one() {
        let tree = EigTree::new(7, 2, 0, 0i64);
        assert_eq!(tree.rounds(), 3);
    }

    #[test]
    #[should_panic(expected = "n >= 3f + 1")]
    fn too_few_processes_panics() {
        let _ = EigTree::new(3, 1, 0, 0i64);
    }

    #[test]
    fn fill_defaults_populates_missing_level_nodes() {
        let mut tree = EigTree::new(4, 1, 0, -7i64);
        tree.fill_defaults(1);
        // Level-1 labels are [1], [2], [3] (and [0], which also gets a default
        // because labels_at_level enumerates all distinct-id sequences).
        assert_eq!(tree.value(&[1]), Some(&-7));
        assert_eq!(tree.value(&[2]), Some(&-7));
    }
}
