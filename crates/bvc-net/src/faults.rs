//! Injected network faults, layered over the delivery policies.
//!
//! The paper's model assumes **reliable FIFO channels**; everything the four
//! algorithms guarantee is proved under that assumption.  Real deployments —
//! and the follow-up literature (iterative BVC in *incomplete* graphs,
//! relaxed-validity BVC) — care about what happens beyond it.  This module
//! lets a scenario script faults on top of either executor:
//!
//! * [`FaultKind::Drop`] — messages sent on covered links while the fault is
//!   active are destroyed with a given probability (omission faults; this is
//!   the one fault kind that genuinely breaks the reliable-channel
//!   assumption, so protocol guarantees may fail and the verdict records it).
//! * [`FaultKind::Latency`] — messages sent on covered links while active
//!   become deliverable only `extra` scheduler ticks (asynchronous executor)
//!   or rounds (synchronous executor) after they were sent.
//! * [`FaultKind::Partition`] — links between different groups are blocked
//!   while active; queued messages are **not** lost, they wait for the heal
//!   (per-link FIFO order is preserved throughout).
//!
//! # Fairness contract
//!
//! The asynchronous executor promises that every sent message is eventually
//! delivered (unless a drop fault destroyed it).  To keep that promise every
//! fault must expire: [`FaultPlan::push`] rejects events whose activity
//! window does not fit in a `usize` ([`FaultError::NeverExpires`]), and the
//! executor budgets extra scheduler ticks past the step cap so that a stalled
//! execution survives until [`FaultPlan::quiescent_at`], after which every
//! channel is eligible again and the ordinary fairness argument applies.  The
//! fairness regression test in this module's test suite pins that behaviour.

use crate::process::ProcessId;

/// Which directed links of the complete graph a fault covers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkSelector {
    /// Every link.
    All,
    /// Links whose sender is one of the listed processes.
    From(Vec<ProcessId>),
    /// Links whose receiver is one of the listed processes.
    To(Vec<ProcessId>),
    /// Links between the two sets, in either direction.
    Between(Vec<ProcessId>, Vec<ProcessId>),
    /// Only the directed links sender-set → receiver-set (the reverse
    /// direction is *not* covered; use [`LinkSelector::Between`] for both).
    Directed(Vec<ProcessId>, Vec<ProcessId>),
}

impl LinkSelector {
    /// Whether the directed link `from → to` is covered.
    pub fn covers(&self, from: usize, to: usize) -> bool {
        let has = |set: &[ProcessId], i: usize| set.iter().any(|p| p.index() == i);
        match self {
            LinkSelector::All => true,
            LinkSelector::From(senders) => has(senders, from),
            LinkSelector::To(receivers) => has(receivers, to),
            LinkSelector::Between(a, b) => {
                (has(a, from) && has(b, to)) || (has(b, from) && has(a, to))
            }
            LinkSelector::Directed(senders, receivers) => has(senders, from) && has(receivers, to),
        }
    }
}

/// One kind of injectable network fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Destroy messages sent on covered links with probability `rate`.
    Drop {
        /// Probability in `[0, 1]` that a covered message is destroyed.
        rate: f64,
        /// Links the fault covers.
        links: LinkSelector,
    },
    /// Delay messages sent on covered links by `extra` ticks/rounds.
    Latency {
        /// Additional delivery delay, in scheduler ticks (async) or rounds
        /// (sync).
        extra: usize,
        /// Links the fault covers.
        links: LinkSelector,
    },
    /// Block links between different groups; unlisted processes form one
    /// implicit extra group.
    Partition {
        /// The explicit groups of the partition.
        groups: Vec<Vec<ProcessId>>,
    },
}

impl FaultKind {
    /// A short stable name for reports ("drop", "latency", "partition").
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Drop { .. } => "drop",
            FaultKind::Latency { .. } => "latency",
            FaultKind::Partition { .. } => "partition",
        }
    }
}

/// A fault with its activity window `[start, start + duration)`, measured in
/// scheduler ticks (asynchronous executor) or rounds (synchronous executor).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// What the fault does while active.
    pub kind: FaultKind,
    /// First tick/round at which the fault is active.
    pub start: usize,
    /// Length of the activity window; must be positive and finite (see the
    /// module-level fairness contract).
    pub duration: usize,
}

impl FaultEvent {
    /// Whether the fault is active at the given tick/round.
    pub fn active_at(&self, time: usize) -> bool {
        time >= self.start && time - self.start < self.duration
    }

    /// First tick/round at which the fault is guaranteed inactive.
    pub fn end(&self) -> usize {
        // Validated at plan construction: start + duration never overflows.
        self.start + self.duration
    }
}

/// Why a fault event was rejected by [`FaultPlan::push`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A drop probability was outside `[0, 1]` or not finite.
    InvalidRate(f64),
    /// The event's activity window does not terminate (zero would be a no-op
    /// and an end beyond `usize::MAX` never expires, starving channels
    /// forever and breaking the async fairness contract).
    NeverExpires {
        /// The offending start.
        start: usize,
        /// The offending duration.
        duration: usize,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::InvalidRate(rate) => {
                write!(f, "drop rate must be a probability in [0, 1], got {rate}")
            }
            FaultError::NeverExpires { start, duration } => write!(
                f,
                "fault window [{start}, {start} + {duration}) must be positive and finite \
                 so the fairness contract holds"
            ),
        }
    }
}

impl std::error::Error for FaultError {}

/// A validated schedule of network faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no injected faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an event after validating it (see [`FaultError`]).
    ///
    /// # Errors
    ///
    /// Rejects non-probability drop rates and activity windows that are empty
    /// or never expire.
    pub fn push(&mut self, event: FaultEvent) -> Result<(), FaultError> {
        if event.duration == 0 || event.start.checked_add(event.duration).is_none() {
            return Err(FaultError::NeverExpires {
                start: event.start,
                duration: event.duration,
            });
        }
        if let FaultKind::Drop { rate, .. } = &event.kind {
            if !rate.is_finite() || !(0.0..=1.0).contains(rate) {
                return Err(FaultError::InvalidRate(*rate));
            }
        }
        self.events.push(event);
        Ok(())
    }

    /// Builder-style [`push`](Self::push).
    ///
    /// # Errors
    ///
    /// Same as [`push`](Self::push).
    pub fn with_event(mut self, event: FaultEvent) -> Result<Self, FaultError> {
        self.push(event)?;
        Ok(self)
    }

    /// The validated events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// First tick/round by which every fault has expired **and** every
    /// latency-delayed message has come due — the horizon after which the
    /// unfaulted fairness argument applies unchanged.
    pub fn quiescent_at(&self) -> usize {
        self.events
            .iter()
            .map(|e| match &e.kind {
                FaultKind::Latency { extra, .. } => e.end().saturating_add(*extra),
                _ => e.end(),
            })
            .max()
            .unwrap_or(0)
    }

    /// Combined probability that a message sent on `from → to` at `time` is
    /// destroyed (independent drop faults compose as `1 − Π(1 − rateᵢ)`).
    pub fn drop_probability(&self, time: usize, from: usize, to: usize) -> f64 {
        let mut keep = 1.0;
        for event in &self.events {
            if let FaultKind::Drop { rate, links } = &event.kind {
                if event.active_at(time) && links.covers(from, to) {
                    keep *= 1.0 - rate;
                }
            }
        }
        1.0 - keep
    }

    /// Extra delivery delay for a message sent on `from → to` at `time`
    /// (maximum over active latency faults covering the link).
    pub fn extra_latency(&self, time: usize, from: usize, to: usize) -> usize {
        self.events
            .iter()
            .filter_map(|event| match &event.kind {
                FaultKind::Latency { extra, links }
                    if event.active_at(time) && links.covers(from, to) =>
                {
                    Some(*extra)
                }
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Whether an active partition blocks the link `from → to` at `time`.
    pub fn blocked(&self, time: usize, from: usize, to: usize) -> bool {
        self.events.iter().any(|event| match &event.kind {
            FaultKind::Partition { groups } if event.active_at(time) => {
                group_of(groups, from) != group_of(groups, to)
            }
            _ => false,
        })
    }
}

/// Index of the partition group containing process `i`; unlisted processes
/// share the implicit group `groups.len()`.
fn group_of(groups: &[Vec<ProcessId>], i: usize) -> usize {
    groups
        .iter()
        .position(|g| g.iter().any(|p| p.index() == i))
        .unwrap_or(groups.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(indices: &[usize]) -> Vec<ProcessId> {
        indices.iter().copied().map(ProcessId::new).collect()
    }

    #[test]
    fn selectors_cover_the_right_links() {
        assert!(LinkSelector::All.covers(0, 1));
        let from = LinkSelector::From(ids(&[2]));
        assert!(from.covers(2, 0) && !from.covers(0, 2));
        let to = LinkSelector::To(ids(&[1]));
        assert!(to.covers(0, 1) && !to.covers(1, 0));
        let between = LinkSelector::Between(ids(&[0]), ids(&[3]));
        assert!(between.covers(0, 3) && between.covers(3, 0));
        assert!(!between.covers(0, 1) && !between.covers(1, 3));
        let directed = LinkSelector::Directed(ids(&[0]), ids(&[3]));
        assert!(directed.covers(0, 3));
        assert!(
            !directed.covers(3, 0),
            "Directed must not cover the reverse link"
        );
        assert!(!directed.covers(0, 1));
    }

    #[test]
    fn activity_windows_are_half_open() {
        let event = FaultEvent {
            kind: FaultKind::Partition {
                groups: vec![ids(&[0])],
            },
            start: 10,
            duration: 5,
        };
        assert!(!event.active_at(9));
        assert!(event.active_at(10));
        assert!(event.active_at(14));
        assert!(!event.active_at(15));
        assert_eq!(event.end(), 15);
    }

    #[test]
    fn plan_rejects_never_expiring_windows() {
        let mut plan = FaultPlan::new();
        let zero = FaultEvent {
            kind: FaultKind::Latency {
                extra: 1,
                links: LinkSelector::All,
            },
            start: 0,
            duration: 0,
        };
        assert!(matches!(
            plan.push(zero),
            Err(FaultError::NeverExpires { .. })
        ));
        let overflow = FaultEvent {
            kind: FaultKind::Partition {
                groups: vec![ids(&[0])],
            },
            start: 1,
            duration: usize::MAX,
        };
        assert!(matches!(
            plan.push(overflow),
            Err(FaultError::NeverExpires { .. })
        ));
        assert!(plan.is_empty());
    }

    #[test]
    fn plan_rejects_bad_drop_rates() {
        for rate in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let event = FaultEvent {
                kind: FaultKind::Drop {
                    rate,
                    links: LinkSelector::All,
                },
                start: 0,
                duration: 10,
            };
            assert!(matches!(
                FaultPlan::new().with_event(event),
                Err(FaultError::InvalidRate(_))
            ));
        }
    }

    #[test]
    fn quiescence_accounts_for_latency_tails() {
        let plan = FaultPlan::new()
            .with_event(FaultEvent {
                kind: FaultKind::Partition {
                    groups: vec![ids(&[0])],
                },
                start: 0,
                duration: 50,
            })
            .unwrap()
            .with_event(FaultEvent {
                kind: FaultKind::Latency {
                    extra: 30,
                    links: LinkSelector::All,
                },
                start: 10,
                duration: 20,
            })
            .unwrap();
        // Latency fault ends at 30 but a message sent at tick 29 is due at 59;
        // the partition ends at 50; quiescence is max(50, 30 + 30) = 60.
        assert_eq!(plan.quiescent_at(), 60);
    }

    #[test]
    fn drop_probabilities_compose() {
        let plan = FaultPlan::new()
            .with_event(FaultEvent {
                kind: FaultKind::Drop {
                    rate: 0.5,
                    links: LinkSelector::All,
                },
                start: 0,
                duration: 100,
            })
            .unwrap()
            .with_event(FaultEvent {
                kind: FaultKind::Drop {
                    rate: 0.5,
                    links: LinkSelector::From(ids(&[1])),
                },
                start: 0,
                duration: 100,
            })
            .unwrap();
        assert!((plan.drop_probability(5, 0, 1) - 0.5).abs() < 1e-12);
        assert!((plan.drop_probability(5, 1, 0) - 0.75).abs() < 1e-12);
        assert_eq!(plan.drop_probability(100, 1, 0), 0.0);
    }

    #[test]
    fn partitions_block_across_groups_only() {
        let plan = FaultPlan::new()
            .with_event(FaultEvent {
                kind: FaultKind::Partition {
                    groups: vec![ids(&[0, 1])],
                },
                start: 0,
                duration: 10,
            })
            .unwrap();
        // {0, 1} vs the implicit rest-group {2, 3, ...}.
        assert!(plan.blocked(0, 0, 2));
        assert!(plan.blocked(0, 2, 1));
        assert!(!plan.blocked(0, 0, 1));
        assert!(!plan.blocked(0, 2, 3));
        assert!(!plan.blocked(10, 0, 2));
    }

    #[test]
    fn latency_takes_the_max_of_active_faults() {
        let plan = FaultPlan::new()
            .with_event(FaultEvent {
                kind: FaultKind::Latency {
                    extra: 5,
                    links: LinkSelector::All,
                },
                start: 0,
                duration: 100,
            })
            .unwrap()
            .with_event(FaultEvent {
                kind: FaultKind::Latency {
                    extra: 20,
                    links: LinkSelector::To(ids(&[2])),
                },
                start: 0,
                duration: 100,
            })
            .unwrap();
        assert_eq!(plan.extra_latency(0, 0, 1), 5);
        assert_eq!(plan.extra_latency(0, 0, 2), 20);
        assert_eq!(plan.extra_latency(200, 0, 2), 0);
    }
}
