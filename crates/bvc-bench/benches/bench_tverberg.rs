//! Criterion bench: brute-force Tverberg partition search (Theorem 2 /
//! Figure 1).  The paper notes no polynomial algorithm is known for general
//! dimension; this bench quantifies how quickly the exhaustive search blows
//! up with the multiset size, which is why the algorithms use the Γ LP
//! instead.

use bvc_geometry::{find_tverberg_partition, PointMultiset, WorkloadGenerator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn multiset(n: usize, d: usize, seed: u64) -> PointMultiset {
    WorkloadGenerator::new(seed).box_points(n, d, 0.0, 1.0)
}

fn bench_tverberg_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("tverberg_partition");
    group.sample_size(10);
    // Radon case (2 parts) and the Figure 1 case (3 parts).
    for &(n, d, parts) in &[(4usize, 2usize, 2usize), (5, 3, 2), (7, 2, 3)] {
        let s = multiset(n, d, 11);
        group.bench_with_input(
            BenchmarkId::new("search", format!("n{n}_d{d}_parts{parts}")),
            &(s, parts),
            |b, (s, parts)| {
                b.iter(|| {
                    let partition = find_tverberg_partition(s, *parts);
                    assert!(partition.is_some());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tverberg_search);
criterion_main!(benches);
