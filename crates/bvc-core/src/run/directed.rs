//! Drivers for exact BVC on arbitrary directed graphs — point-to-point
//! (Tseng & Vaidya, arXiv:1208.5075) and local-broadcast (Khan, Tseng &
//! Vaidya, arXiv:1911.07298).
//!
//! Both drivers record the model's graph condition as the run's sufficiency
//! verdict (the iterative-driver idiom: a violated condition is data, not an
//! error — the verdict scoring says what actually happened).  On a complete
//! topology they delegate to the Section-2.2 [`ExactDriver`], because `K_n`
//! is exactly the setting that protocol is proven for — this is what makes
//! the `K_n` verdicts byte-identical to the `exact` protocol, and local
//! broadcast is vacuous there (every receiver set is all of Π, so the
//! delivery guarantee adds nothing the complete-graph protocol does not
//! already tolerate).

use super::exact::ExactDriver;
use super::{make_forge, BvcSession, DriverOutcome, ProtocolDriver};
use crate::directed::{ByzantineDirectedProcess, DirectedExactProcess, DirectedMsg};
use bvc_geometry::Point;
use bvc_net::{SyncNetwork, SyncProcess};
use std::sync::Arc;

pub(super) struct DirectedExactDriver;

impl ProtocolDriver for DirectedExactDriver {
    fn execute(&self, session: &BvcSession) -> DriverOutcome {
        execute_directed(session, false)
    }
}

pub(super) struct DirectedExactLbDriver;

impl ProtocolDriver for DirectedExactLbDriver {
    fn execute(&self, session: &BvcSession) -> DriverOutcome {
        execute_directed(session, true)
    }
}

fn execute_directed(session: &BvcSession, local_broadcast: bool) -> DriverOutcome {
    let config = session.params();
    let rc = session.config();
    let topology = Arc::clone(session.topology());
    // The model's graph condition, recorded in the report.  Like the
    // iterative driver, a violated condition does not abort the run — the
    // scenario layer flags such runs expected-unsolvable and the verdict
    // shows whether the flood actually broke.
    let sufficiency = if local_broadcast {
        topology.directed_exact_lb_sufficiency(config.f, config.d)
    } else {
        topology.directed_exact_sufficiency(config.f, config.d)
    };

    // On K_n with the Section-2.2 preconditions met, run the real
    // complete-graph protocol: its Byzantine broadcast already defeats
    // everything the directed condition guards against there, and the
    // verdicts stay byte-identical to ProtocolKind::Exact.
    let exact_preconditions =
        config.f >= 1 && config.n >= (3 * config.f + 1).max((config.d + 1) * config.f + 1);
    if topology.is_complete() && exact_preconditions {
        let mut outcome = ExactDriver.execute(session);
        outcome.sufficiency = Some(sufficiency);
        return outcome;
    }

    let gamma_cache = session.gamma_cache().clone();
    let mut processes: Vec<Box<dyn SyncProcess<Msg = DirectedMsg, Output = Point>>> = Vec::new();
    for (i, input) in rc.honest_inputs.iter().enumerate() {
        processes.push(Box::new(
            DirectedExactProcess::new(config.clone(), i, input.clone(), Arc::clone(&topology))
                .with_validity_mode(rc.validity)
                .with_gamma_cache(gamma_cache.clone()),
        ));
    }
    for b in 0..config.f {
        let me = config.honest_count() + b;
        let forge = make_forge(rc.adversary, config, rc.seed, b);
        processes.push(Box::new(ByzantineDirectedProcess::new(
            config.clone(),
            me,
            Point::uniform(config.d, config.lower_bound),
            Arc::clone(&topology),
            forge,
        )));
    }
    let honest = session.honest_indices();
    let outcome = SyncNetwork::new(processes, DirectedExactProcess::total_rounds(config))
        .with_topology(topology.as_ref().clone())
        .with_local_broadcast(local_broadcast)
        .with_faults(rc.faults.clone(), rc.seed)
        .run(&honest);
    let decisions = session.honest_decisions(&outcome.outputs);
    let terminated = decisions.len() == honest.len();
    DriverOutcome {
        decisions,
        terminated,
        // Exact consensus: agreement means identical decisions (up to LP
        // round-off), same as the complete-graph exact driver.
        tolerance: 1e-6,
        rounds: outcome.rounds,
        stats: outcome.stats,
        round_budget: None,
        outputs: Vec::new(),
        sufficiency: Some(sufficiency),
    }
}
