//! Process-shareable memoisation of Γ queries.
//!
//! In a synchronous round every honest process receives the same broadcast
//! state vectors, so all of them evaluate `Γ` of *identical* multisets —
//! today's protocols would recompute the same intersection `n − f` times per
//! round.  [`GammaCache`] memoises [`find_point`](GammaCache::find_point) and
//! [`contains`](GammaCache::contains) results keyed by a **canonical multiset
//! key**: the members are sorted lexicographically (under `f64::total_cmp`)
//! and their coordinate bit patterns concatenated, so two multisets that
//! differ only in member order share one entry.  Because every Γ query is a
//! deterministic, order-invariant function of the multiset (see
//! [`crate::gamma`]), serving a result from the cache is observationally
//! identical to recomputing it — which is what makes the cache safe to share
//! across processes, rounds, and threads (`Arc<GammaCache>` =
//! [`SharedGammaCache`]).
//!
//! Memory is bounded: when a map reaches the configured capacity it is
//! wholesale-cleared (deterministically; eviction can never change results,
//! only cost).
//!
//! # Incremental mode
//!
//! An opt-in **incremental** mode ([`GammaCache::enable_incremental`])
//! additionally remembers, per query *shape* `(f, dim, |Y|)`, the ordinal of
//! the subset hull that last refuted a scan.  Successive rounds of an
//! iterative protocol contract the same cloud of states, so the hull that
//! refuted round `t−1`'s probe is the first suspect for round `t`'s — the
//! engine checks it before scanning and skips it during the scan.  Hints are
//! **cost-only**: any refuting hull is a sound non-membership certificate
//! and a non-refuting hint falls through to the exhaustive scan, so every
//! answer is bit-identical to the non-incremental mode's (pinned by test).
//! The mode is off by default, which keeps the pinned determinism corpora
//! byte-for-byte unchanged.

use crate::gamma::{
    contains_impl_hinted, find_point_presorted_attr, find_point_presorted_hinted, GammaAttribution,
};
use crate::multiset::PointMultiset;
use crate::point::Point;
use crate::relaxed::{k_relaxed_point, relaxed_gamma_point, ValidityPredicate};
use bvc_trace::{CacheLevel, GammaPath, GammaQueryKind, TraceEvent};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A Γ-results cache shared between the processes of a run.
pub type SharedGammaCache = Arc<GammaCache>;

/// A snapshot of a cache's query counters: the overall hit/miss split plus
/// the per-path attribution of engine computations.  Two snapshots
/// subtracted ([`since`](Self::since)) bound the queries of one run even
/// when the cache is shared across runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GammaCounters {
    /// Queries answered from this cache's own maps.
    pub hits: u64,
    /// Queries this cache had to resolve elsewhere (parent chain or engine).
    pub misses: u64,
    /// The subset of `misses` answered by an ancestor cache.
    pub parent_hits: u64,
    /// Engine computations where the trimmed-box probe ran and missed.
    pub probe_misses: u64,
    /// Engine computations with no path attribution (relaxed-validity
    /// decision rules, which bypass the strict engine ladder).
    pub unattributed: u64,
    /// Engine computations per [`GammaPath`] (indexed by
    /// [`GammaPath::index`]).
    pub paths: [u64; 9],
}

impl GammaCounters {
    /// Total queries observed: hits plus misses.
    pub fn queries(&self) -> u64 {
        self.hits + self.misses
    }

    /// Engine computations attributed to `path`.
    pub fn path_count(&self, path: GammaPath) -> u64 {
        self.paths[path.index()]
    }

    /// Counter deltas since an earlier snapshot of the same cache.
    pub fn since(&self, earlier: &GammaCounters) -> GammaCounters {
        let mut paths = [0u64; 9];
        for (i, slot) in paths.iter_mut().enumerate() {
            *slot = self.paths[i].saturating_sub(earlier.paths[i]);
        }
        GammaCounters {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            parent_hits: self.parent_hits.saturating_sub(earlier.parent_hits),
            probe_misses: self.probe_misses.saturating_sub(earlier.probe_misses),
            unattributed: self.unattributed.saturating_sub(earlier.unattributed),
            paths,
        }
    }

    /// Field-wise sum (for aggregating per-instance deltas).
    pub fn absorb(&mut self, other: &GammaCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.parent_hits += other.parent_hits;
        self.probe_misses += other.probe_misses;
        self.unattributed += other.unattributed;
        for (slot, add) in self.paths.iter_mut().zip(other.paths.iter()) {
            *slot += add;
        }
    }

    /// Every query is accounted for exactly once: local hits, parent hits,
    /// attributed engine paths, and unattributed engine computations sum to
    /// [`queries`](Self::queries).  (The trace stream's Γ breakdown relies
    /// on the same partition.)
    pub fn is_consistent(&self) -> bool {
        let engine: u64 = self.paths.iter().sum::<u64>() + self.unattributed;
        self.hits + self.parent_hits + engine == self.queries()
    }
}

/// The validity regime of a cached point query.  Modes that are
/// semantically strict (`AlphaScaled(0)`, `KRelaxed(k ≥ d)`) normalise to
/// [`ModeKey::Strict`] so they share the strict entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ModeKey {
    Strict,
    Alpha(u64),
    K(usize),
}

impl ModeKey {
    fn normalise(mode: &ValidityPredicate, dim: usize) -> Self {
        match mode {
            ValidityPredicate::Strict => ModeKey::Strict,
            ValidityPredicate::AlphaScaled(alpha) if *alpha == 0.0 => ModeKey::Strict,
            ValidityPredicate::AlphaScaled(alpha) => ModeKey::Alpha(alpha.to_bits()),
            ValidityPredicate::KRelaxed(k) if *k >= dim => ModeKey::Strict,
            ValidityPredicate::KRelaxed(k) => ModeKey::K(*k),
        }
    }
}

/// Canonical identity of a `(Y, f, mode)` query: the fault bound, the
/// dimension, the validity regime, and the bit patterns of the canonically
/// ordered members.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MultisetKey {
    f: usize,
    dim: usize,
    mode: ModeKey,
    bits: Vec<u64>,
}

/// Key from a multiset already in canonical order (callers that need the
/// canonical multiset anyway — the miss path hands it to the engine —
/// canonicalise once and reuse it here).
fn key_of_canonical(canon: &PointMultiset, f: usize, mode: ModeKey) -> MultisetKey {
    let bits = canon
        .iter()
        .flat_map(|p| p.coords().iter().map(|c| c.to_bits()))
        .collect();
    MultisetKey {
        f,
        dim: canon.dim(),
        mode,
        bits,
    }
}

fn multiset_key(y: &PointMultiset, f: usize) -> MultisetKey {
    key_of_canonical(&crate::gamma::canonical_order(y), f, ModeKey::Strict)
}

fn point_bits(p: &Point) -> Vec<u64> {
    p.coords().iter().map(|c| c.to_bits()).collect()
}

/// How a parent-chain outcome looks one level down: any ancestor hit is a
/// parent hit for the child; an engine computation stays a miss.
fn demote(parent_level: CacheLevel) -> CacheLevel {
    match parent_level {
        CacheLevel::Local | CacheLevel::Parent => CacheLevel::Parent,
        CacheLevel::Miss => CacheLevel::Miss,
    }
}

/// Memoises safe-area queries across processes and rounds.
///
/// A cache may chain to a **parent** ([`Self::with_parent`]): misses are
/// answered by the parent (which memoises them in turn) instead of the Γ
/// engine.  A long-lived parent shared by many runs then measures exactly
/// the *cross-run* reuse — same-run repeats are absorbed by the per-run
/// child, so every parent hit is a query some earlier run already paid for.
#[derive(Debug)]
pub struct GammaCache {
    points: Mutex<HashMap<MultisetKey, Option<Point>>>,
    membership: Mutex<HashMap<(MultisetKey, Vec<u64>), bool>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    parent_hits: AtomicU64,
    probe_misses: AtomicU64,
    unattributed: AtomicU64,
    paths: [AtomicU64; 9],
    parent: Option<SharedGammaCache>,
    /// Incremental cross-round mode: when set, scans remember and reuse
    /// refuter-ordinal hints (see the module docs).  Off by default.
    incremental: AtomicBool,
    /// Hint-assisted engine computations: scans whose remembered refuter
    /// refuted again, short-circuiting the scan.
    hint_hits: AtomicU64,
    /// Last refuting subset-hull ordinal per point-query shape
    /// `(f, dim, |Y|)` (the trimmed-centre probe inside `find_point`).
    point_hints: Mutex<HashMap<(usize, usize, usize), usize>>,
    /// Last refuting subset-hull ordinal per membership-query shape.
    membership_hints: Mutex<HashMap<(usize, usize, usize), usize>>,
}

impl Default for GammaCache {
    fn default() -> Self {
        Self::new()
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // The cached values are plain data; a panic elsewhere cannot leave them
    // half-written, so poisoning is ignorable.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl GammaCache {
    /// Default capacity: enough for the longest restricted-round executions
    /// the scenario engine drives (tens of thousands of distinct multisets)
    /// while staying far below typical memory budgets.
    const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Creates a cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a cache holding at most `capacity` entries per query kind.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            points: Mutex::new(HashMap::new()),
            membership: Mutex::new(HashMap::new()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            parent_hits: AtomicU64::new(0),
            probe_misses: AtomicU64::new(0),
            unattributed: AtomicU64::new(0),
            paths: std::array::from_fn(|_| AtomicU64::new(0)),
            parent: None,
            incremental: AtomicBool::new(false),
            hint_hits: AtomicU64::new(0),
            point_hints: Mutex::new(HashMap::new()),
            membership_hints: Mutex::new(HashMap::new()),
        }
    }

    /// Creates a cache ready for sharing across processes.
    pub fn shared() -> SharedGammaCache {
        Arc::new(Self::new())
    }

    /// Creates a default-capacity cache whose misses are resolved (and
    /// memoised) by `parent` instead of the Γ engine.
    ///
    /// Chaining is observationally transparent — every Γ query is a pure
    /// function of `(Y, f, mode)`, so a parent answer is identical to a
    /// recomputation.  The parent's hit counter counts exactly the queries
    /// that this child missed but some earlier sibling already computed.
    pub fn with_parent(parent: SharedGammaCache) -> Self {
        Self {
            parent: Some(parent),
            ..Self::new()
        }
    }

    /// The parent cache misses are delegated to, if any.
    pub fn parent(&self) -> Option<&SharedGammaCache> {
        self.parent.as_ref()
    }

    /// Switches on the incremental cross-round mode (see the module docs):
    /// subsequent engine scans remember the refuting hull's ordinal per
    /// query shape and check it first next time.  Takes `&self` so it works
    /// through a [`SharedGammaCache`].  Hints never change answers — only
    /// how fast a refutation is found — so enabling this is observationally
    /// transparent (pinned by test).
    pub fn enable_incremental(&self) {
        self.incremental.store(true, Ordering::Relaxed);
    }

    /// `true` when the incremental cross-round mode is on.
    pub fn incremental_enabled(&self) -> bool {
        self.incremental.load(Ordering::Relaxed)
    }

    /// Engine scans whose remembered refuter refuted again (short-circuiting
    /// the subset scan).  Always `0` unless
    /// [`enable_incremental`](Self::enable_incremental) was called.
    pub fn hint_hits(&self) -> u64 {
        self.hint_hits.load(Ordering::Relaxed)
    }

    /// The remembered refuter ordinal for a query shape, when incremental
    /// mode is on.
    fn hint_for(
        hints: &Mutex<HashMap<(usize, usize, usize), usize>>,
        shape: (usize, usize, usize),
    ) -> Option<usize> {
        lock(hints).get(&shape).copied()
    }

    /// Remembers `refuter` (when the scan produced one) as the hint for the
    /// next same-shape query.
    fn remember_refuter(
        hints: &Mutex<HashMap<(usize, usize, usize), usize>>,
        shape: (usize, usize, usize),
        refuter: Option<usize>,
    ) {
        if let Some(ordinal) = refuter {
            lock(hints).insert(shape, ordinal);
        }
    }

    /// Memoised [`gamma_point`](crate::gamma_point): the deterministically
    /// chosen point of `Γ(y)`, or `None` when the safe area is empty.
    ///
    /// # Panics
    ///
    /// Panics if `f >= y.len()`.
    pub fn find_point(&self, y: &PointMultiset, f: usize) -> Option<Point> {
        assert!(
            f < y.len(),
            "fault bound f = {f} must be smaller than |Y| = {}",
            y.len()
        );
        // Canonicalise once: the key and the (miss-path) engine both need
        // the canonical order.
        let canon = crate::gamma::canonical_order(y);
        let (len, d) = (canon.len(), canon.dim());
        let (value, level, attr) = self.find_point_levelled(canon, f);
        bvc_trace::emit(|| TraceEvent::Gamma {
            kind: GammaQueryKind::Point,
            cache: level,
            path: attr.as_ref().map(|a| a.path),
            probe_missed: attr.as_ref().is_some_and(|a| a.probe_missed),
            len,
            f,
            d,
            found: value.is_some(),
        });
        value
    }

    /// Cache lookup + resolution without event emission: one `Gamma` trace
    /// event must be recorded per *public* query, so parent delegation goes
    /// through this levelled variant.  Counter bookkeeping (each cache's own
    /// view) still happens at every level.
    fn find_point_levelled(
        &self,
        canon: PointMultiset,
        f: usize,
    ) -> (Option<Point>, CacheLevel, Option<GammaAttribution>) {
        let key = key_of_canonical(&canon, f, ModeKey::Strict);
        if let Some(cached) = lock(&self.points).get(&key) {
            self.note(CacheLevel::Local, None, false);
            return (cached.clone(), CacheLevel::Local, None);
        }
        let (value, level, attr) = match &self.parent {
            Some(parent) => {
                let (value, parent_level, attr) = parent.find_point_levelled(canon, f);
                (value, demote(parent_level), attr)
            }
            None => {
                if self.incremental_enabled() {
                    let shape = (f, canon.dim(), canon.len());
                    let hint = Self::hint_for(&self.point_hints, shape);
                    let (value, attr, refuter) = find_point_presorted_hinted(canon, f, hint);
                    if hint.is_some() && refuter == hint {
                        self.hint_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    Self::remember_refuter(&self.point_hints, shape, refuter);
                    (value, CacheLevel::Miss, Some(attr))
                } else {
                    let (value, attr) = find_point_presorted_attr(canon, f);
                    (value, CacheLevel::Miss, Some(attr))
                }
            }
        };
        self.note(
            level,
            attr.as_ref().map(|a| a.path),
            attr.as_ref().is_some_and(|a| a.probe_missed),
        );
        let mut map = lock(&self.points);
        if map.len() >= self.capacity {
            map.clear();
        }
        map.insert(key, value.clone());
        (value, level, attr)
    }

    /// Memoised [`decision_point`](crate::relaxed::decision_point): the
    /// deterministic Step-2 decision value for `(y, f)` under the given
    /// validity mode.  Modes that are semantically strict (`Strict`,
    /// `AlphaScaled(0)`, `KRelaxed(k ≥ d)`) share the strict
    /// [`find_point`](Self::find_point) entries; genuinely relaxed modes get
    /// their own — which is what lets the `n − f` honest processes of an
    /// exact run below the strict threshold compute the relaxed safe-area
    /// intersection once system-wide instead of once each.
    ///
    /// # Panics
    ///
    /// Panics if `f >= y.len()` or the mode's parameter is invalid.
    pub fn decision_point(
        &self,
        y: &PointMultiset,
        f: usize,
        mode: &ValidityPredicate,
    ) -> Option<Point> {
        let mode_key = ModeKey::normalise(mode, y.dim());
        if mode_key == ModeKey::Strict {
            return self.find_point(y, f);
        }
        assert!(
            f < y.len(),
            "fault bound f = {f} must be smaller than |Y| = {}",
            y.len()
        );
        let canon = crate::gamma::canonical_order(y);
        let (len, d) = (canon.len(), canon.dim());
        let (value, level) = self.decision_levelled(canon, f, mode_key);
        bvc_trace::emit(|| TraceEvent::Gamma {
            kind: GammaQueryKind::Decision,
            cache: level,
            path: None,
            probe_missed: false,
            len,
            f,
            d,
            found: value.is_some(),
        });
        value
    }

    /// Levelled (non-emitting) resolution of a genuinely relaxed decision
    /// query.  Relaxed engines bypass the strict escalation ladder, so the
    /// engine outcome carries no path attribution ([`GammaCounters`] counts
    /// it under `unattributed`).  The k-relaxed strict leg goes through the
    /// *public* [`find_point`](Self::find_point): it is a full strict query
    /// in its own right and keeps its own counter increment and trace event.
    fn decision_levelled(
        &self,
        canon: PointMultiset,
        f: usize,
        mode_key: ModeKey,
    ) -> (Option<Point>, CacheLevel) {
        let key = key_of_canonical(&canon, f, mode_key.clone());
        if let Some(cached) = lock(&self.points).get(&key) {
            self.note(CacheLevel::Local, None, false);
            return (cached.clone(), CacheLevel::Local);
        }
        let (value, level) = match (&self.parent, &mode_key) {
            (Some(parent), _) => {
                let (value, parent_level) = parent.decision_levelled(canon, f, mode_key);
                (value, demote(parent_level))
            }
            (None, ModeKey::Strict) => unreachable!("strict-normalised modes use find_point"),
            (None, ModeKey::Alpha(bits)) => (
                relaxed_gamma_point(&canon, f, f64::from_bits(*bits)),
                CacheLevel::Miss,
            ),
            // The k-relaxed rule prefers the strict Γ point; route that leg
            // through the cache so it shares the ModeKey::Strict entry
            // instead of re-solving the strict LP on every relaxed miss.
            (None, ModeKey::K(k)) => (
                self.find_point(&canon, f)
                    .or_else(|| k_relaxed_point(&canon, f, *k)),
                CacheLevel::Miss,
            ),
        };
        self.note(level, None, false);
        let mut map = lock(&self.points);
        if map.len() >= self.capacity {
            map.clear();
        }
        map.insert(key, value.clone());
        (value, level)
    }

    /// Memoised [`gamma_contains`](crate::gamma_contains).
    ///
    /// # Panics
    ///
    /// Panics if `f >= y.len()` or the dimensions disagree.
    pub fn contains(&self, y: &PointMultiset, f: usize, point: &Point) -> bool {
        let (value, level, path) = self.contains_levelled(y, f, point);
        bvc_trace::emit(|| TraceEvent::Gamma {
            kind: GammaQueryKind::Membership,
            cache: level,
            path,
            probe_missed: false,
            len: y.len(),
            f,
            d: y.dim(),
            found: value,
        });
        value
    }

    /// Levelled (non-emitting) membership resolution; see
    /// [`find_point_levelled`](Self::find_point_levelled).
    fn contains_levelled(
        &self,
        y: &PointMultiset,
        f: usize,
        point: &Point,
    ) -> (bool, CacheLevel, Option<GammaPath>) {
        let key = (multiset_key(y, f), point_bits(point));
        if let Some(&cached) = lock(&self.membership).get(&key) {
            self.note(CacheLevel::Local, None, false);
            return (cached, CacheLevel::Local, None);
        }
        let (value, level, path) = match &self.parent {
            Some(parent) => {
                let (value, parent_level, path) = parent.contains_levelled(y, f, point);
                (value, demote(parent_level), path)
            }
            None => {
                let hint = self
                    .incremental_enabled()
                    .then(|| Self::hint_for(&self.membership_hints, (f, y.dim(), y.len())));
                let outcome = contains_impl_hinted(y, f, point, hint.flatten());
                if self.incremental_enabled() {
                    if outcome.path == GammaPath::HintReject {
                        self.hint_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    Self::remember_refuter(
                        &self.membership_hints,
                        (f, y.dim(), y.len()),
                        outcome.refuter,
                    );
                }
                (outcome.value, CacheLevel::Miss, Some(outcome.path))
            }
        };
        self.note(level, path, false);
        let mut map = lock(&self.membership);
        if map.len() >= self.capacity {
            map.clear();
        }
        map.insert(key, value);
        (value, level, path)
    }

    /// Memoised [`gamma_is_empty`](crate::gamma_is_empty) (piggybacks on the
    /// `find_point` entry).
    ///
    /// # Panics
    ///
    /// Panics if `f >= y.len()`.
    pub fn is_empty_region(&self, y: &PointMultiset, f: usize) -> bool {
        self.find_point(y, f).is_none()
    }

    /// Records this cache's own view of one resolved query.  `Local` keeps
    /// the historical `hits` semantics; both `Parent` and `Miss` count as
    /// `misses` (the query was not answered from this cache's maps), with
    /// the finer split carried by `parent_hits` / the path counters.
    fn note(&self, level: CacheLevel, path: Option<GammaPath>, probe_missed: bool) {
        match level {
            CacheLevel::Local => {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            CacheLevel::Parent => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.parent_hits.fetch_add(1, Ordering::Relaxed);
            }
            CacheLevel::Miss => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                match path {
                    Some(p) => {
                        self.paths[p.index()].fetch_add(1, Ordering::Relaxed);
                        if probe_missed {
                            self.probe_misses.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    None => {
                        self.unattributed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// Queries answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Queries that had to be computed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Snapshot of every counter (hit/miss split, parent hits, and per-path
    /// engine attribution).  Snapshots taken around a run and subtracted
    /// with [`GammaCounters::since`] isolate that run's queries.
    pub fn counters(&self) -> GammaCounters {
        let mut paths = [0u64; 9];
        for (slot, counter) in paths.iter_mut().zip(self.paths.iter()) {
            *slot = counter.load(Ordering::Relaxed);
        }
        GammaCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            parent_hits: self.parent_hits.load(Ordering::Relaxed),
            probe_misses: self.probe_misses.load(Ordering::Relaxed),
            unattributed: self.unattributed.load(Ordering::Relaxed),
            paths,
        }
    }

    /// Entries currently stored across both query kinds.
    pub fn len(&self) -> usize {
        lock(&self.points).len() + lock(&self.membership).len()
    }

    /// `true` when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma_point;

    fn square_plus_centre() -> PointMultiset {
        PointMultiset::new(vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![4.0, 0.0]),
            Point::new(vec![0.0, 4.0]),
            Point::new(vec![4.0, 4.0]),
            Point::new(vec![2.0, 2.0]),
        ])
    }

    #[test]
    fn cached_find_point_matches_uncached() {
        let cache = GammaCache::new();
        let y = square_plus_centre();
        let direct = gamma_point(&y, 1).unwrap();
        let cached = cache.find_point(&y, 1).unwrap();
        assert!(direct.approx_eq(&cached, 1e-15));
        assert_eq!(cache.misses(), 1);
        let again = cache.find_point(&y, 1).unwrap();
        assert!(direct.approx_eq(&again, 1e-15));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn reordered_multisets_share_an_entry() {
        let cache = GammaCache::new();
        let y = square_plus_centre();
        let mut reordered = y.points().to_vec();
        reordered.reverse();
        let reordered = PointMultiset::new(reordered);
        let a = cache.find_point(&y, 1).unwrap();
        let b = cache.find_point(&reordered, 1).unwrap();
        assert!(a.approx_eq(&b, 1e-15));
        assert_eq!(cache.misses(), 1, "canonical keying shares the entry");
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn membership_queries_are_cached_per_point() {
        let cache = GammaCache::new();
        let y = square_plus_centre();
        let inside = Point::new(vec![2.0, 2.0]);
        let outside = Point::new(vec![9.0, 9.0]);
        assert!(cache.contains(&y, 1, &inside));
        assert!(!cache.contains(&y, 1, &outside));
        assert_eq!(cache.misses(), 2);
        assert!(cache.contains(&y, 1, &inside));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_eviction_keeps_answers_correct() {
        let cache = GammaCache::with_capacity(2);
        for i in 0..5u8 {
            let y = PointMultiset::new(vec![
                Point::new(vec![0.0]),
                Point::new(vec![f64::from(i)]),
                Point::new(vec![2.0]),
            ]);
            let cached = cache.find_point(&y, 1);
            let direct = gamma_point(&y, 1);
            assert_eq!(cached.is_some(), direct.is_some());
            if let (Some(c), Some(d)) = (cached, direct) {
                assert!(c.approx_eq(&d, 1e-15));
            }
        }
        assert!(cache.len() <= 2);
    }

    #[test]
    fn empty_regions_are_cached_too() {
        let cache = GammaCache::new();
        let y = PointMultiset::new(vec![
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![0.0, 1.0]),
            Point::new(vec![0.0, 0.0]),
        ]);
        assert!(cache.is_empty_region(&y, 1));
        assert!(cache.is_empty_region(&y, 1));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn relaxed_decision_points_are_cached_per_mode() {
        let cache = GammaCache::new();
        let y = square_plus_centre();
        // Strict-normalised modes share the strict entry.
        let strict = cache.find_point(&y, 1).unwrap();
        let zero = cache
            .decision_point(&y, 1, &ValidityPredicate::AlphaScaled(0.0))
            .unwrap();
        assert_eq!(strict.coords(), zero.coords());
        assert_eq!(cache.misses(), 1, "α = 0 shares the strict entry");
        assert_eq!(cache.hits(), 1);
        // A genuinely relaxed mode gets its own entry, then hits it.
        let first = cache.decision_point(&y, 2, &ValidityPredicate::AlphaScaled(2.0));
        let again = cache.decision_point(&y, 2, &ValidityPredicate::AlphaScaled(2.0));
        assert_eq!(
            first.as_ref().map(|p| p.coords()),
            again.as_ref().map(|p| p.coords())
        );
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 2);
        // The cached relaxed value equals the uncached decision rule.
        let direct = crate::relaxed::decision_point(&y, 2, &ValidityPredicate::AlphaScaled(2.0));
        assert_eq!(
            first.map(|p| p.coords().to_vec()),
            direct.map(|p| p.coords().to_vec())
        );
    }

    #[test]
    fn parent_chaining_answers_child_misses_and_counts_cross_run_reuse() {
        let parent = GammaCache::shared();
        let y = square_plus_centre();

        // First "run": a fresh child misses, the parent misses, the engine
        // answers; both layers memoise.
        let first = GammaCache::with_parent(Arc::clone(&parent));
        let a = first.find_point(&y, 1).unwrap();
        assert_eq!((first.hits(), first.misses()), (0, 1));
        assert_eq!((parent.hits(), parent.misses()), (0, 1));
        // Same-run repeat: absorbed by the child, parent untouched.
        let _ = first.find_point(&y, 1);
        assert_eq!(first.hits(), 1);
        assert_eq!(parent.hits(), 0);

        // Second "run": a new child misses but the parent hits — the hit
        // counts exactly the cross-run reuse.
        let second = GammaCache::with_parent(Arc::clone(&parent));
        let b = second.find_point(&y, 1).unwrap();
        assert!(a.approx_eq(&b, 0.0), "parent answers are bit-identical");
        assert_eq!((second.hits(), second.misses()), (0, 1));
        assert_eq!((parent.hits(), parent.misses()), (1, 1));
        assert!(second.parent().is_some());
    }

    #[test]
    fn parent_chaining_is_observationally_transparent() {
        let parent = GammaCache::shared();
        let chained = GammaCache::with_parent(Arc::clone(&parent));
        let cold = GammaCache::new();
        let y = square_plus_centre();
        for (f, alpha) in [(1usize, 0.0), (1, 2.0), (2, 2.0)] {
            let mode = ValidityPredicate::AlphaScaled(alpha);
            let via_parent = chained.decision_point(&y, f, &mode);
            let direct = cold.decision_point(&y, f, &mode);
            assert_eq!(
                via_parent.map(|p| p.coords().to_vec()),
                direct.map(|p| p.coords().to_vec())
            );
        }
        let probe = Point::new(vec![2.0, 2.0]);
        assert_eq!(
            chained.contains(&y, 1, &probe),
            cold.contains(&y, 1, &probe)
        );
    }

    #[test]
    fn counters_partition_queries_by_level_and_path() {
        let parent = GammaCache::shared();
        let child = GammaCache::with_parent(Arc::clone(&parent));
        let y = square_plus_centre();

        // Engine computation through the chain: both caches record a miss,
        // both attribute the engine path; neither records a parent hit.
        let _ = child.find_point(&y, 1);
        let c = child.counters();
        assert_eq!((c.hits, c.misses, c.parent_hits), (0, 1, 0));
        assert_eq!(c.paths.iter().sum::<u64>(), 1);
        assert!(c.is_consistent());

        // Local hit: only `hits` moves.
        let _ = child.find_point(&y, 1);
        let c = child.counters();
        assert_eq!((c.hits, c.misses), (1, 1));
        assert!(c.is_consistent());

        // A sibling child misses locally but the parent answers: that is a
        // parent hit, not an engine path.
        let sibling = GammaCache::with_parent(Arc::clone(&parent));
        let _ = sibling.find_point(&y, 1);
        let s = sibling.counters();
        assert_eq!((s.hits, s.misses, s.parent_hits), (0, 1, 1));
        assert_eq!(s.paths.iter().sum::<u64>(), 0);
        assert!(s.is_consistent());
        assert!(parent.counters().is_consistent());

        // Membership attribution lands in the path table too.
        let probe = Point::new(vec![2.0, 2.0]);
        let _ = child.contains(&y, 1, &probe);
        let c2 = child.counters();
        assert_eq!(c2.queries(), 3);
        assert!(c2.is_consistent());

        // Relaxed decisions are engine computations without a ladder path.
        let _ = child.decision_point(&y, 2, &ValidityPredicate::AlphaScaled(2.0));
        let c3 = child.counters();
        assert_eq!(c3.unattributed, 1);
        assert!(c3.is_consistent());

        // Deltas between snapshots isolate a window.
        let delta = c3.since(&c2);
        assert_eq!(delta.queries(), 1);
        assert_eq!(delta.unattributed, 1);
    }

    #[test]
    #[should_panic(expected = "smaller than")]
    fn oversized_fault_bound_panics() {
        let cache = GammaCache::new();
        let y = PointMultiset::new(vec![Point::new(vec![0.0])]);
        let _ = cache.find_point(&y, 1);
    }
}
