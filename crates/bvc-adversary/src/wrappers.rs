//! Payload-agnostic Byzantine wrappers for network processes.
//!
//! Some attacks do not need to understand the protocol's message contents at
//! all: dropping messages, crashing mid-protocol, selectively silencing the
//! traffic towards a victim, or duplicating everything.  These wrappers
//! implement such attacks generically for any [`SyncProcess`] or
//! [`AsyncProcess`], by post-processing the outgoing message list of an inner
//! (honest) implementation.
//!
//! Attacks that forge protocol-specific *values* (outliers, equivocation,
//! anti-convergence) need to know where the points live inside the messages;
//! those are implemented next to the protocols in `bvc-core`, driven by
//! [`crate::strategy::PointForge`].

use bvc_net::{AsyncProcess, Delivery, Outgoing, ProcessId, SyncProcess};

/// A synchronous process that behaves exactly like `inner` but stops sending
/// anything after round `last_round` (crash-stop).  `last_round = 0` silences
/// it from the start.
pub struct CrashAfterSync<P> {
    inner: P,
    last_round: usize,
}

impl<P> CrashAfterSync<P> {
    /// Wraps `inner`, participating through round `last_round` and silent
    /// afterwards.
    pub fn new(inner: P, last_round: usize) -> Self {
        Self { inner, last_round }
    }
}

impl<P: SyncProcess> SyncProcess for CrashAfterSync<P> {
    type Msg = P::Msg;
    type Output = P::Output;

    fn round(&mut self, round: usize, inbox: &[Delivery<Self::Msg>]) -> Vec<Outgoing<Self::Msg>> {
        let outgoing = self.inner.round(round, inbox);
        if round > self.last_round {
            Vec::new()
        } else {
            outgoing
        }
    }

    fn output(&self) -> Option<Self::Output> {
        // A crashed process never announces a decision.
        None
    }
}

/// A synchronous process that drops every message addressed to the victims
/// (selective silence / targeted partition attempt), forwarding the rest
/// unchanged.
pub struct SilenceTowardsSync<P> {
    inner: P,
    victims: Vec<ProcessId>,
}

impl<P> SilenceTowardsSync<P> {
    /// Wraps `inner`, dropping all messages to `victims`.
    pub fn new(inner: P, victims: Vec<ProcessId>) -> Self {
        Self { inner, victims }
    }
}

impl<P: SyncProcess> SyncProcess for SilenceTowardsSync<P> {
    type Msg = P::Msg;
    type Output = P::Output;

    fn round(&mut self, round: usize, inbox: &[Delivery<Self::Msg>]) -> Vec<Outgoing<Self::Msg>> {
        self.inner
            .round(round, inbox)
            .into_iter()
            .filter(|m| !self.victims.contains(&m.to))
            .collect()
    }

    fn output(&self) -> Option<Self::Output> {
        self.inner.output()
    }
}

/// A synchronous process that sends every outgoing message twice (a simple
/// replay/duplication attack; protocols relying on per-slot first-write-wins
/// must be immune to it).
pub struct DuplicateSync<P> {
    inner: P,
}

impl<P> DuplicateSync<P> {
    /// Wraps `inner`, duplicating everything it sends.
    pub fn new(inner: P) -> Self {
        Self { inner }
    }
}

impl<P: SyncProcess> SyncProcess for DuplicateSync<P>
where
    P::Msg: Clone,
{
    type Msg = P::Msg;
    type Output = P::Output;

    fn round(&mut self, round: usize, inbox: &[Delivery<Self::Msg>]) -> Vec<Outgoing<Self::Msg>> {
        let outgoing = self.inner.round(round, inbox);
        let mut doubled = Vec::with_capacity(outgoing.len() * 2);
        for m in outgoing {
            doubled.push(Outgoing::new(m.to, m.msg.clone()));
            doubled.push(m);
        }
        doubled
    }

    fn output(&self) -> Option<Self::Output> {
        self.inner.output()
    }
}

/// An asynchronous process that stops reacting after `max_deliveries`
/// messages have been delivered to it (asynchronous crash-stop).
pub struct CrashAfterAsync<P> {
    inner: P,
    max_deliveries: usize,
    seen: usize,
}

impl<P> CrashAfterAsync<P> {
    /// Wraps `inner`, which processes at most `max_deliveries` messages.
    pub fn new(inner: P, max_deliveries: usize) -> Self {
        Self {
            inner,
            max_deliveries,
            seen: 0,
        }
    }
}

impl<P: AsyncProcess> AsyncProcess for CrashAfterAsync<P> {
    type Msg = P::Msg;
    type Output = P::Output;

    fn on_start(&mut self) -> Vec<Outgoing<Self::Msg>> {
        if self.max_deliveries == 0 {
            return Vec::new();
        }
        self.inner.on_start()
    }

    fn on_message(&mut self, from: ProcessId, msg: Self::Msg) -> Vec<Outgoing<Self::Msg>> {
        if self.seen >= self.max_deliveries {
            return Vec::new();
        }
        self.seen += 1;
        self.inner.on_message(from, msg)
    }

    fn output(&self) -> Option<Self::Output> {
        None
    }
}

/// A fully silent asynchronous process: sends nothing, reacts to nothing.
/// This is the "process that takes no steps" adversary from the necessity
/// proof of Theorem 4.
pub struct SilentAsync<M, O> {
    _marker: std::marker::PhantomData<(M, O)>,
}

impl<M, O> SilentAsync<M, O> {
    /// Creates a silent process.
    pub fn new() -> Self {
        Self {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M, O> Default for SilentAsync<M, O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Clone, O: Clone> AsyncProcess for SilentAsync<M, O> {
    type Msg = M;
    type Output = O;

    fn on_start(&mut self) -> Vec<Outgoing<M>> {
        Vec::new()
    }

    fn on_message(&mut self, _from: ProcessId, _msg: M) -> Vec<Outgoing<M>> {
        Vec::new()
    }

    fn output(&self) -> Option<O> {
        None
    }
}

/// A fully silent synchronous process.
pub struct SilentSync<M, O> {
    _marker: std::marker::PhantomData<(M, O)>,
}

impl<M, O> SilentSync<M, O> {
    /// Creates a silent process.
    pub fn new() -> Self {
        Self {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M, O> Default for SilentSync<M, O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Clone, O: Clone> SyncProcess for SilentSync<M, O> {
    type Msg = M;
    type Output = O;

    fn round(&mut self, _round: usize, _inbox: &[Delivery<M>]) -> Vec<Outgoing<M>> {
        Vec::new()
    }

    fn output(&self) -> Option<O> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvc_net::broadcast_to_all;

    /// A simple honest process that broadcasts its id every round and never
    /// decides (enough to observe the wrappers' message-level effects).
    struct Chatter {
        id: ProcessId,
        n: usize,
    }

    impl SyncProcess for Chatter {
        type Msg = usize;
        type Output = usize;
        fn round(&mut self, _round: usize, _inbox: &[Delivery<usize>]) -> Vec<Outgoing<usize>> {
            broadcast_to_all(self.n, Some(self.id), &self.id.index())
        }
        fn output(&self) -> Option<usize> {
            Some(self.id.index())
        }
    }

    impl AsyncProcess for Chatter {
        type Msg = usize;
        type Output = usize;
        fn on_start(&mut self) -> Vec<Outgoing<usize>> {
            broadcast_to_all(self.n, Some(self.id), &self.id.index())
        }
        fn on_message(&mut self, _from: ProcessId, _msg: usize) -> Vec<Outgoing<usize>> {
            broadcast_to_all(self.n, Some(self.id), &self.id.index())
        }
        fn output(&self) -> Option<usize> {
            Some(self.id.index())
        }
    }

    fn chatter() -> Chatter {
        Chatter {
            id: ProcessId::new(0),
            n: 4,
        }
    }

    #[test]
    fn crash_after_sync_silences_later_rounds() {
        let mut p = CrashAfterSync::new(chatter(), 2);
        assert_eq!(p.round(1, &[]).len(), 3);
        assert_eq!(p.round(2, &[]).len(), 3);
        assert_eq!(p.round(3, &[]).len(), 0);
        assert!(p.output().is_none());
    }

    #[test]
    fn silence_towards_drops_only_victims() {
        let mut p = SilenceTowardsSync::new(chatter(), vec![ProcessId::new(2)]);
        let out = p.round(1, &[]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|m| m.to != ProcessId::new(2)));
        assert_eq!(p.output(), Some(0));
    }

    #[test]
    fn duplicate_sync_doubles_traffic() {
        let mut p = DuplicateSync::new(chatter());
        assert_eq!(p.round(1, &[]).len(), 6);
    }

    #[test]
    fn crash_after_async_limits_reactions() {
        let mut p = CrashAfterAsync::new(chatter(), 1);
        assert_eq!(p.on_start().len(), 3);
        assert_eq!(p.on_message(ProcessId::new(1), 5).len(), 3);
        assert_eq!(p.on_message(ProcessId::new(1), 5).len(), 0);
        assert!(AsyncProcess::output(&p).is_none());
    }

    #[test]
    fn crash_after_async_with_zero_budget_is_silent_from_start() {
        let mut p = CrashAfterAsync::new(chatter(), 0);
        assert!(p.on_start().is_empty());
    }

    #[test]
    fn silent_processes_do_nothing() {
        let mut s: SilentAsync<u8, u8> = SilentAsync::new();
        assert!(s.on_start().is_empty());
        assert!(s.on_message(ProcessId::new(0), 1).is_empty());
        assert!(s.output().is_none());
        let mut s: SilentSync<u8, u8> = SilentSync::default();
        assert!(s.round(1, &[]).is_empty());
        assert!(s.output().is_none());
    }
}
