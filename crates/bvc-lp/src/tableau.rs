//! Dense simplex tableau with Bland's anti-cycling pivot rule.
//!
//! The tableau stores the constraint matrix in *canonical form*: every row has
//! an associated basic variable whose column is a unit vector, and the last
//! column holds the (non-negative) right-hand side.  One extra row at the
//! bottom holds the reduced costs of the objective currently being minimised.
//!
//! The data lives in one contiguous row-major buffer (borrowed from a
//! [`SimplexWorkspace`] when driven by the two-phase solver), and the pivot
//! elimination walks whole row slices instead of per-element `get`/`set`
//! calls, which is what lets the compiler vectorise the inner loop.

use crate::workspace::SimplexWorkspace;
use crate::EPSILON;

/// Result of running the simplex iterations on a tableau.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PivotOutcome {
    /// An optimal basic feasible solution has been reached.
    Optimal,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// The iteration cap was reached before optimality: the current basic
    /// solution is feasible but nothing about the optimum is certified.
    Stalled,
}

/// A dense simplex tableau: `rows` constraint rows plus one objective row.
#[derive(Debug, Clone)]
pub(crate) struct Tableau {
    /// Number of constraint rows.
    rows: usize,
    /// Number of structural columns (excluding the RHS column).
    cols: usize,
    /// Row-major data: `(rows + 1) x (cols + 1)`; the last row is the
    /// objective row and the last column is the RHS.
    data: Vec<f64>,
    /// `basis[r]` is the column index of the basic variable of row `r`.
    basis: Vec<usize>,
    /// Pivots performed on this tableau (all phases), for solve profiling.
    pivots: u64,
}

impl Tableau {
    /// Creates a tableau of `rows` constraint rows and `cols` structural
    /// columns, all zeros, with an (invalid) all-zero basis that the caller
    /// must fill in.
    #[cfg(test)]
    pub(crate) fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; (rows + 1) * (cols + 1)],
            basis: vec![0; rows],
            pivots: 0,
        }
    }

    /// Like [`Tableau::zeros`] but with buffers leased from `workspace`;
    /// return them with [`Tableau::recycle`] when the solve is done.
    pub(crate) fn from_workspace(
        rows: usize,
        cols: usize,
        workspace: &mut SimplexWorkspace,
    ) -> Self {
        Self {
            rows,
            cols,
            data: workspace.take_f64((rows + 1) * (cols + 1)),
            basis: workspace.take_usize(rows),
            pivots: 0,
        }
    }

    /// Pivots performed so far (all phases).
    pub(crate) fn pivots(&self) -> u64 {
        self.pivots
    }

    /// Hands the tableau's buffers back to `workspace` for reuse.
    pub(crate) fn recycle(self, workspace: &mut SimplexWorkspace) {
        workspace.put_f64(self.data);
        workspace.put_usize(self.basis);
    }

    /// Zeroes every entry (constraint rows, objective row, RHS) while keeping
    /// the accumulated pivot count, so the two-phase driver can re-fill the
    /// tableau from the problem for a recovery run.  The basis is left to the
    /// subsequent re-fill to restore.
    pub(crate) fn clear(&mut self) {
        self.data.fill(0.0);
    }

    #[allow(dead_code)]
    pub(crate) fn rows(&self) -> usize {
        self.rows
    }

    pub(crate) fn cols(&self) -> usize {
        self.cols
    }

    /// Row stride: structural columns plus the RHS column.
    #[inline]
    fn stride(&self) -> usize {
        self.cols + 1
    }

    /// Constraint row `row` (including its RHS entry) as a slice.
    #[cfg(test)]
    #[inline]
    pub(crate) fn row(&self, row: usize) -> &[f64] {
        let stride = self.stride();
        &self.data[row * stride..(row + 1) * stride]
    }

    /// Constraint row `row` (including its RHS entry) as a mutable slice.
    #[inline]
    pub(crate) fn row_mut(&mut self, row: usize) -> &mut [f64] {
        let stride = self.stride();
        &mut self.data[row * stride..(row + 1) * stride]
    }

    #[inline]
    pub(crate) fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.stride() + col]
    }

    #[inline]
    pub(crate) fn set(&mut self, row: usize, col: usize, value: f64) {
        let i = row * self.stride() + col;
        self.data[i] = value;
    }

    /// Right-hand side of constraint row `row`.
    #[inline]
    pub(crate) fn rhs(&self, row: usize) -> f64 {
        self.get(row, self.cols)
    }

    /// Sets the right-hand side of constraint row `row`.
    #[inline]
    pub(crate) fn set_rhs(&mut self, row: usize, value: f64) {
        let c = self.cols;
        self.set(row, c, value);
    }

    /// Reduced cost of column `col` in the objective row.
    #[inline]
    pub(crate) fn objective_coefficient(&self, col: usize) -> f64 {
        self.get(self.rows, col)
    }

    /// Sets the reduced cost of column `col` in the objective row.
    #[inline]
    pub(crate) fn set_objective_coefficient(&mut self, col: usize, value: f64) {
        let r = self.rows;
        self.set(r, col, value);
    }

    /// Current value of the objective (negated RHS of the objective row, by
    /// the usual tableau convention the objective row stores `-z`).
    #[inline]
    pub(crate) fn objective_value(&self) -> f64 {
        -self.get(self.rows, self.cols)
    }

    /// The column currently basic in constraint row `row`.
    #[inline]
    pub(crate) fn basic_column(&self, row: usize) -> usize {
        self.basis[row]
    }

    /// Declares column `col` basic in row `row` (without pivoting; the caller
    /// is responsible for the column actually being a unit vector).
    #[inline]
    pub(crate) fn set_basic(&mut self, row: usize, col: usize) {
        self.basis[row] = col;
    }

    /// Value of structural variable `col` in the current basic solution.
    pub(crate) fn variable_value(&self, col: usize) -> f64 {
        for row in 0..self.rows {
            if self.basis[row] == col {
                return self.rhs(row);
            }
        }
        0.0
    }

    /// Eliminates the objective-row entries of all basic columns so that the
    /// objective row expresses reduced costs with respect to the current
    /// basis.  Used once after loading a new objective into the bottom row.
    pub(crate) fn price_out_basis(&mut self) {
        let stride = self.stride();
        for row in 0..self.rows {
            let col = self.basis[row];
            let coeff = self.objective_coefficient(col);
            if coeff.abs() > EPSILON {
                let (constraint_rows, objective_row) = self.data.split_at_mut(self.rows * stride);
                let source = &constraint_rows[row * stride..(row + 1) * stride];
                for (obj, &v) in objective_row.iter_mut().zip(source) {
                    if v != 0.0 {
                        *obj -= coeff * v;
                    }
                }
            }
        }
    }

    /// Performs a single pivot on `(pivot_row, pivot_col)`: scales the pivot
    /// row so the pivot element becomes `1` and eliminates the pivot column
    /// from every other row (including the objective row), walking contiguous
    /// row slices.
    pub(crate) fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        self.pivots += 1;
        let stride = self.stride();
        let pivot_element = self.get(pivot_row, pivot_col);
        debug_assert!(
            pivot_element.abs() > EPSILON,
            "pivot element must be non-zero"
        );
        // Scale the pivot row in place.
        {
            let prow = self.row_mut(pivot_row);
            if pivot_element != 1.0 {
                let inv = 1.0 / pivot_element;
                for v in prow.iter_mut() {
                    *v *= inv;
                }
            }
            prow[pivot_col] = 1.0;
        }
        // Eliminate the pivot column from every other row (objective row
        // included) with slice arithmetic: split the buffer around the pivot
        // row so its slice can be borrowed alongside the targets.
        let (before, rest) = self.data.split_at_mut(pivot_row * stride);
        let (prow, after) = rest.split_at_mut(stride);
        for target in before
            .chunks_exact_mut(stride)
            .chain(after.chunks_exact_mut(stride))
        {
            let factor = target[pivot_col];
            if factor.abs() <= EPSILON {
                // Clamp tiny residuals to exactly zero for numerical hygiene.
                target[pivot_col] = 0.0;
                continue;
            }
            for (t, &p) in target.iter_mut().zip(prow.iter()) {
                *t -= factor * p;
            }
            target[pivot_col] = 0.0;
        }
        self.basis[pivot_row] = pivot_col;
    }

    /// Runs simplex iterations (minimisation) until optimality or
    /// unboundedness, using Bland's rule: entering variable is the
    /// lowest-index column with a negative reduced cost, leaving variable is
    /// chosen by the minimum-ratio test with lowest basic index as the tie
    /// breaker.  `eligible` restricts the columns allowed to enter the basis
    /// (used by phase 2 to keep artificial columns out).
    ///
    /// Every solve that terminates within the iteration budget pivots exactly
    /// as it always has; [`PivotOutcome::Stalled`] hands control back to the
    /// two-phase driver, which rebuilds the tableau and re-runs it under the
    /// lexicographic rule ([`Tableau::run_simplex_lex`]) rather than letting
    /// a cycling pass keep grinding rounding error into the data.
    pub(crate) fn run_simplex(&mut self, eligible: &[bool]) -> PivotOutcome {
        debug_assert_eq!(eligible.len(), self.cols);
        let stride = self.stride();
        // An upper bound on iterations that is generous enough never to
        // trigger for well-conditioned inputs but protects against numerical
        // cycling.  Simplex visits O(rows) bases on the programs this crate
        // serves; a linear cap keeps the degenerate worst case (tolerance-
        // based Bland tie-breaking can stall on near-duplicate generators)
        // bounded in tens of milliseconds instead of seconds, while leaving
        // two orders of magnitude of headroom over the typical pivot count.
        let max_iterations = 1000 + 50 * (self.rows + self.cols);
        for _ in 0..max_iterations {
            // Bland's rule: first eligible column with negative reduced cost.
            let objective_row = &self.data[self.rows * stride..self.rows * stride + self.cols];
            let entering = objective_row
                .iter()
                .zip(eligible)
                .position(|(&cost, &ok)| ok && cost < -EPSILON);
            let entering = match entering {
                Some(col) => col,
                None => return PivotOutcome::Optimal,
            };
            match self.leaving_banded(entering) {
                Some(row) => self.pivot(row, entering),
                None => return PivotOutcome::Unbounded,
            }
        }
        // Reaching the iteration cap indicates numerical trouble (tolerance-
        // based Bland tie-breaking can stall on near-duplicate generators).
        // The current point is feasible but the objective value proves
        // nothing, so the caller must not read optimality — in particular a
        // stalled phase 1 must not be misread as an infeasibility
        // certificate.
        PivotOutcome::Stalled
    }

    /// [`Tableau::run_simplex`] with a caller-supplied **column priority**:
    /// the entering variable is the first column of `priority` (a permutation
    /// of `0..cols`) that is eligible with a negative reduced cost.  This is
    /// still Bland's rule — first negative cost under a total order of the
    /// columns that is fixed for the whole solve — so the anti-cycling
    /// property is unchanged; only the pivot *order* (and hence the pivot
    /// count) can differ from the identity-order walk.  Warm starts use it to
    /// revisit the columns that formed the previous solve's final basis
    /// first, which on the near-identical successive programs of a
    /// contracting round sequence skips most of the cold walk.
    pub(crate) fn run_simplex_priority(
        &mut self,
        eligible: &[bool],
        priority: &[usize],
    ) -> PivotOutcome {
        debug_assert_eq!(eligible.len(), self.cols);
        debug_assert_eq!(priority.len(), self.cols);
        let stride = self.stride();
        let max_iterations = 1000 + 50 * (self.rows + self.cols);
        for _ in 0..max_iterations {
            let objective_row = &self.data[self.rows * stride..self.rows * stride + self.cols];
            let entering = priority
                .iter()
                .copied()
                .find(|&col| eligible[col] && objective_row[col] < -EPSILON);
            let entering = match entering {
                Some(col) => col,
                None => return PivotOutcome::Optimal,
            };
            match self.leaving_banded(entering) {
                Some(row) => self.pivot(row, entering),
                None => return PivotOutcome::Unbounded,
            }
        }
        PivotOutcome::Stalled
    }

    /// The current basis columns, one per constraint row.
    pub(crate) fn basis_columns(&self) -> &[usize] {
        &self.basis
    }

    /// Runs simplex iterations under the **lexicographic** leaving rule: the
    /// leaving row minimises the ratio vector `(rhs, ref₀, ref₁, …) / aᵣ`
    /// lexicographically, where the reference columns are the basis columns
    /// at entry.  Started from the initial identity basis (slacks and
    /// artificials, non-negative RHS) the reference rows are lex-positive, so
    /// no basis ever repeats and the walk terminates without the long
    /// degenerate cycles that corrupt the tableau numerically.  This is the
    /// recovery path for solves the banded rule reported as stalled; the
    /// driver re-fills the tableau before calling it, because a stalled
    /// tableau has already accumulated unbounded rounding error.
    pub(crate) fn run_simplex_lex(&mut self, eligible: &[bool]) -> PivotOutcome {
        debug_assert_eq!(eligible.len(), self.cols);
        let stride = self.stride();
        let ref_cols = self.basis.clone();
        let max_iterations = 1000 + 50 * (self.rows + self.cols);
        for _ in 0..max_iterations {
            let objective_row = &self.data[self.rows * stride..self.rows * stride + self.cols];
            let entering = objective_row
                .iter()
                .zip(eligible)
                .position(|(&cost, &ok)| ok && cost < -EPSILON);
            let entering = match entering {
                Some(col) => col,
                None => return PivotOutcome::Optimal,
            };
            match self.leaving_lexicographic(entering, &ref_cols) {
                Some(row) => self.pivot(row, entering),
                None => return PivotOutcome::Unbounded,
            }
        }
        PivotOutcome::Stalled
    }

    /// Tolerance-banded minimum-ratio test.  Pivot elements below
    /// `PIVOT_TOLERANCE` are avoided (they amplify rounding error); if only
    /// tiny positive entries exist, the largest of them is used as a fallback
    /// rather than declaring the problem unbounded on numerical noise.  Rows
    /// whose ratios agree within `EPSILON` count as tied and the lowest basic
    /// variable index wins.
    fn leaving_banded(&self, entering: usize) -> Option<usize> {
        const PIVOT_TOLERANCE: f64 = 1e-7;
        let stride = self.stride();
        let mut leaving: Option<(usize, f64)> = None;
        for row in 0..self.rows {
            let a = self.data[row * stride + entering];
            if a > PIVOT_TOLERANCE {
                let ratio = self.data[row * stride + self.cols] / a;
                match leaving {
                    None => leaving = Some((row, ratio)),
                    Some((best_row, best_ratio)) => {
                        let better = ratio < best_ratio - EPSILON
                            || (ratio < best_ratio + EPSILON
                                && self.basis[row] < self.basis[best_row]);
                        if better {
                            leaving = Some((row, ratio));
                        }
                    }
                }
            }
        }
        if leaving.is_none() {
            // Fallback: the largest positive-but-tiny pivot entry.
            let mut best: Option<(usize, f64)> = None;
            for row in 0..self.rows {
                let a = self.data[row * stride + entering];
                if a > EPSILON && best.is_none_or(|(_, b)| a > b) {
                    best = Some((row, a));
                }
            }
            return best.map(|(row, _)| row);
        }
        leaving.map(|(row, _)| row)
    }

    /// Lexicographic minimum-ratio test.  Rows with a pivot entry above
    /// `PIVOT_TOLERANCE` compete (falling back to anything above `EPSILON`
    /// when none exist, mirroring the banded rule's tiny-pivot fallback);
    /// among them the winner minimises `(rhs, ref₀, ref₁, …) / aᵣ`
    /// lexicographically with exact comparisons at every level, which makes
    /// the selection a strict total order — the anti-cycling property the
    /// banded rule's ±EPSILON tie band gives up.
    fn leaving_lexicographic(&self, entering: usize, ref_cols: &[usize]) -> Option<usize> {
        const PIVOT_TOLERANCE: f64 = 1e-7;
        let stride = self.stride();
        let mut threshold = PIVOT_TOLERANCE;
        let mut best: Option<usize> = None;
        loop {
            for row in 0..self.rows {
                let a = self.data[row * stride + entering];
                if a <= threshold {
                    continue;
                }
                best = match best {
                    None => Some(row),
                    Some(b) => {
                        if self.lex_ratio_less(row, b, entering, ref_cols) {
                            Some(row)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
            if best.is_some() || threshold <= EPSILON {
                return best;
            }
            // No comfortably-sized pivot entry: admit tiny ones rather than
            // declaring unboundedness on numerical noise.
            threshold = EPSILON;
        }
    }

    /// Returns `true` when row `r`'s ratio vector `(rhs, ref₀, ref₁, …)/aᵣ`
    /// is lexicographically smaller than row `b`'s.  Comparisons are exact;
    /// equal prefixes fall through to the next reference column, and fully
    /// identical vectors keep the incumbent (stable choice).
    fn lex_ratio_less(&self, r: usize, b: usize, entering: usize, ref_cols: &[usize]) -> bool {
        let ar = self.get(r, entering);
        let ab = self.get(b, entering);
        let x = self.rhs(r) / ar;
        let y = self.rhs(b) / ab;
        if x != y {
            return x < y;
        }
        for &c in ref_cols {
            let x = self.get(r, c) / ar;
            let y = self.get(b, c) / ab;
            if x != y {
                return x < y;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the standard-form tableau for:
    /// minimise -3x0 - 2x1  s.t.  x0 + x1 + s0 = 4,  x0 + s1 = 2.
    fn example_tableau() -> Tableau {
        let mut t = Tableau::zeros(2, 4);
        // Row 0: x0 + x1 + s0 = 4
        t.set(0, 0, 1.0);
        t.set(0, 1, 1.0);
        t.set(0, 2, 1.0);
        t.set_rhs(0, 4.0);
        // Row 1: x0 + s1 = 2
        t.set(1, 0, 1.0);
        t.set(1, 3, 1.0);
        t.set_rhs(1, 2.0);
        // Objective: minimise -3x0 - 2x1
        t.set_objective_coefficient(0, -3.0);
        t.set_objective_coefficient(1, -2.0);
        t.set_basic(0, 2);
        t.set_basic(1, 3);
        t
    }

    #[test]
    fn simplex_reaches_known_optimum() {
        let mut t = example_tableau();
        let eligible = vec![true; 4];
        let outcome = t.run_simplex(&eligible);
        assert_eq!(outcome, PivotOutcome::Optimal);
        // Optimum of max 3x0+2x1 is 10 at (2, 2); we minimise the negation.
        assert!((t.objective_value() + 10.0).abs() < 1e-9);
        assert!((t.variable_value(0) - 2.0).abs() < 1e-9);
        assert!((t.variable_value(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unbounded_program_detected() {
        // minimise -x0 subject to x0 - x1 = 0 (x0 can grow without bound along
        // with x1).
        let mut t = Tableau::zeros(1, 2);
        t.set(0, 0, 1.0);
        t.set(0, 1, -1.0);
        t.set_rhs(0, 0.0);
        t.set_objective_coefficient(0, -1.0);
        t.set_basic(0, 0);
        // Price out the basis: column 0 is basic with cost -1.
        t.price_out_basis();
        let outcome = t.run_simplex(&[true; 2]);
        assert_eq!(outcome, PivotOutcome::Unbounded);
    }

    #[test]
    fn pivot_produces_unit_column() {
        let mut t = example_tableau();
        t.pivot(1, 0);
        assert!((t.get(1, 0) - 1.0).abs() < 1e-12);
        assert!(t.get(0, 0).abs() < 1e-12);
        assert_eq!(t.basic_column(1), 0);
    }

    #[test]
    fn variable_value_of_nonbasic_is_zero() {
        let t = example_tableau();
        assert_eq!(t.variable_value(0), 0.0);
        assert_eq!(t.variable_value(1), 0.0);
        assert!((t.variable_value(2) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn price_out_basis_clears_basic_costs() {
        let mut t = example_tableau();
        // Make a basic column carry an objective coefficient, then price out.
        t.set_objective_coefficient(2, 5.0);
        t.price_out_basis();
        assert!(t.objective_coefficient(2).abs() < 1e-12);
    }

    #[test]
    fn workspace_tableau_round_trips_buffers() {
        let mut ws = SimplexWorkspace::new();
        let t = Tableau::from_workspace(3, 5, &mut ws);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 5);
        assert!(t.row(0).iter().all(|&v| v == 0.0));
        t.recycle(&mut ws);
        let t2 = Tableau::from_workspace(3, 5, &mut ws);
        assert!(t2.row(2).iter().all(|&v| v == 0.0));
        assert!(ws.reuses() >= 2);
    }

    #[test]
    fn row_slices_cover_rhs_column() {
        let mut t = Tableau::zeros(2, 3);
        t.set_rhs(1, 7.0);
        assert_eq!(t.row(1)[3], 7.0);
        t.row_mut(0)[2] = 4.0;
        assert_eq!(t.get(0, 2), 4.0);
    }
}
