//! Tverberg partitions and Tverberg points (Theorem 2 of the paper).
//!
//! Tverberg's theorem: every multiset of at least `(d+1)f + 1` points in `R^d`
//! can be partitioned into `f + 1` non-empty parts whose convex hulls share a
//! common point (a *Tverberg point*).  Lemma 1 of the paper derives
//! `Γ(Y) ≠ ∅` from this, and the proof shows every Tverberg point lies in
//! `Γ(Y)`.
//!
//! The paper notes (end of Section 2.2) that no polynomial-time algorithm is
//! known for computing Tverberg points in arbitrary dimension; consistently
//! with that, this module implements a **brute-force search** over canonical
//! set partitions, intended for the small instances used in tests, the
//! Figure 1 reproduction and the geometry experiments.  The consensus
//! algorithms themselves never call it — they use the LP of
//! [`crate::gamma`] instead, exactly as the paper prescribes.

use crate::combinatorics::partitions_into_blocks;
use crate::gamma::SafeArea;
use crate::hull::ConvexHull;
use crate::multiset::PointMultiset;
use crate::point::Point;

/// A Tverberg partition of a multiset together with one common point of the
/// part hulls.
#[derive(Debug, Clone)]
pub struct TverbergPartition {
    /// Index lists of the parts (a partition of `0..y.len()`), ordered by
    /// smallest member.
    pub parts: Vec<Vec<usize>>,
    /// A point lying in the convex hull of every part.
    pub point: Point,
}

impl TverbergPartition {
    /// Number of parts in the partition.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }
}

/// Checks whether `parts` is a Tverberg partition of `y` (each part non-empty,
/// forming a partition, with intersecting hulls); returns a common point of
/// the part hulls if so.
///
/// # Panics
///
/// Panics if `parts` is not a partition of `0..y.len()`.
pub fn common_point_of_partition(y: &PointMultiset, parts: &[Vec<usize>]) -> Option<Point> {
    let part_multisets = y.partition(parts);
    let hulls: Vec<ConvexHull> = part_multisets.into_iter().map(ConvexHull::new).collect();
    ConvexHull::common_point(&hulls)
}

/// Searches for a Tverberg partition of `y` into `parts` non-empty parts by
/// exhaustive enumeration of canonical set partitions.
///
/// Returns the first partition (in canonical enumeration order) whose part
/// hulls intersect, together with a common point.  Returns `None` if no such
/// partition exists — which, by Tverberg's theorem, can only happen when
/// `|y| < (d+1)(parts−1) + 1`.
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn find_tverberg_partition(y: &PointMultiset, parts: usize) -> Option<TverbergPartition> {
    assert!(parts > 0, "a Tverberg partition needs at least one part");
    if parts > y.len() {
        return None;
    }
    for candidate in partitions_into_blocks(y.len(), parts) {
        if let Some(point) = common_point_of_partition(y, &candidate) {
            return Some(TverbergPartition {
                parts: candidate,
                point,
            });
        }
    }
    None
}

/// Radon's special case (`f = 1`): a partition of at least `d + 2` points into
/// two parts with intersecting hulls.
pub fn find_radon_partition(y: &PointMultiset) -> Option<TverbergPartition> {
    find_tverberg_partition(y, 2)
}

/// Verifies the containment `Tverberg points ⊆ Γ(Y)` asserted in the proof of
/// Lemma 1: returns `true` when `partition.point` lies in `Γ(y)` with fault
/// bound `parts − 1`.
pub fn tverberg_point_in_gamma(y: &PointMultiset, partition: &TverbergPartition) -> bool {
    let f = partition.num_parts().saturating_sub(1);
    if f >= y.len() {
        return false;
    }
    SafeArea::new(y.clone(), f).contains(&partition.point)
}

/// The threshold of Tverberg's theorem: the minimum multiset size
/// `(d+1)f + 1` that guarantees a partition into `f + 1` intersecting parts.
pub fn tverberg_threshold(d: usize, f: usize) -> usize {
    (d + 1) * f + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[&[f64]]) -> PointMultiset {
        PointMultiset::new(coords.iter().map(|c| Point::new(c.to_vec())).collect())
    }

    fn heptagon() -> PointMultiset {
        let pts: Vec<Point> = (0..7)
            .map(|k| {
                let theta = 2.0 * std::f64::consts::PI * k as f64 / 7.0;
                Point::new(vec![theta.cos(), theta.sin()])
            })
            .collect();
        PointMultiset::new(pts)
    }

    #[test]
    fn threshold_formula() {
        assert_eq!(tverberg_threshold(1, 1), 3);
        assert_eq!(tverberg_threshold(2, 2), 7);
        assert_eq!(tverberg_threshold(3, 1), 5);
    }

    #[test]
    fn radon_partition_of_four_points_in_the_plane() {
        // Radon's theorem: any 4 points in R^2 admit a partition into two
        // parts with intersecting hulls.
        let y = pts(&[&[0.0, 0.0], &[4.0, 0.0], &[0.0, 4.0], &[1.0, 1.0]]);
        let partition = find_radon_partition(&y).expect("Radon");
        assert_eq!(partition.num_parts(), 2);
        let p = common_point_of_partition(&y, &partition.parts).unwrap();
        // `p` and `partition.point` need not coincide, but each must be a
        // common point: inside the hull of every part.
        for part in &partition.parts {
            let hull = ConvexHull::new(PointMultiset::new(
                part.iter().map(|&i| y.points()[i].clone()).collect(),
            ));
            assert!(hull.contains(&p));
            assert!(hull.contains(&partition.point));
        }
    }

    #[test]
    fn heptagon_has_three_part_tverberg_partition() {
        // Figure 1 of the paper: 7 points in R^2, f = 2, partition into 3
        // parts with a common point.
        let y = heptagon();
        assert_eq!(y.len(), tverberg_threshold(2, 2));
        let partition = find_tverberg_partition(&y, 3).expect("Tverberg for the heptagon");
        assert_eq!(partition.num_parts(), 3);
        // The common point must be in each part hull.
        let part_sets = y.partition(&partition.parts);
        for part in part_sets {
            assert!(ConvexHull::new(part).contains(&partition.point));
        }
    }

    #[test]
    fn tverberg_point_lies_in_gamma() {
        let y = heptagon();
        let partition = find_tverberg_partition(&y, 3).unwrap();
        assert!(tverberg_point_in_gamma(&y, &partition));
    }

    #[test]
    fn no_partition_below_threshold_for_generic_points() {
        // 3 affinely independent points in R^2 cannot be split into two parts
        // with intersecting hulls (below the Radon threshold of 4).
        let y = pts(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]]);
        assert!(find_tverberg_partition(&y, 2).is_none());
    }

    #[test]
    fn degenerate_duplicate_points_partition_easily() {
        // Two identical points split into two singleton parts whose hulls are
        // the same point.
        let y = pts(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let partition = find_tverberg_partition(&y, 2).expect("duplicates intersect");
        assert!(partition.point.approx_eq(&Point::new(vec![1.0, 1.0]), 1e-6));
    }

    #[test]
    fn single_part_partition_always_exists() {
        let y = pts(&[&[0.0], &[3.0]]);
        let partition = find_tverberg_partition(&y, 1).unwrap();
        assert_eq!(partition.num_parts(), 1);
    }

    #[test]
    fn more_parts_than_points_returns_none() {
        let y = pts(&[&[0.0], &[1.0]]);
        assert!(find_tverberg_partition(&y, 3).is_none());
    }

    #[test]
    fn one_dimensional_tverberg_three_points() {
        // d = 1, f = 1, threshold 3: {0, 5, 10} partitions into {0,10} and {5}.
        let y = pts(&[&[0.0], &[5.0], &[10.0]]);
        let partition = find_tverberg_partition(&y, 2).expect("1-D Tverberg");
        let p = partition.point.coord(0);
        assert!((p - 5.0).abs() < 1e-6);
    }

    #[test]
    fn common_point_of_given_partition_detects_failure() {
        let y = pts(&[&[0.0], &[1.0], &[10.0]]);
        // Parts {0,1} (hull [0,1]) and {10} do not intersect.
        assert!(common_point_of_partition(&y, &[vec![0, 1], vec![2]]).is_none());
    }
}
