//! Graph-condition checkers for BVC on incomplete and directed graphs.
//!
//! Three solvability conditions live here, all instances of one 4-partition
//! schema in the style of Tseng & Vaidya (*Iterative Approximate Byzantine
//! Consensus in Arbitrary Directed Graphs*, arXiv:1208.5075): split the
//! processes into `F` (potentially faulty, `|F| ≤ f`) and three non-faulty
//! groups `L`, `C`, `R` with `L` and `R` non-empty, and require **for every
//! such partition** that information can cross the `L | R` divide:
//!
//! > some node of `L` has at least `threshold` in-neighbors in `R ∪ C`, or
//! > some node of `R` has at least `threshold` in-neighbors in `L ∪ C`.
//!
//! The three checkers differ only in the threshold and in global floors:
//!
//! * [`Topology::iterative_sufficiency`] — the iterative incomplete-graph
//!   protocol (Vaidya 2013, arXiv:1307.2483): threshold `(d+1)f + 1`, the
//!   Lemma-1 bound under which the safe area `Γ` of the values received
//!   across the divide survives trimming `f` of them.  On the complete graph
//!   this amounts to `n ≥ (2d+3)f + 1`.
//! * [`Topology::directed_exact_sufficiency`] — exact consensus on directed
//!   graphs under point-to-point channels (Tseng & Vaidya, arXiv:1208.5075):
//!   threshold `f + 1` (full relay, not local filtering), plus the global
//!   floors `n ≥ 3f + 1` (equivocation under point-to-point channels) and
//!   `n ≥ (d+1)f + 1` (the d-dimensional decision step).  On `K_n` this
//!   reduces exactly to the source paper's `n ≥ max(3f+1, (d+1)f+1)`.
//! * [`Topology::directed_exact_lb_sufficiency`] — the same protocol under
//!   the **local-broadcast** model (Khan, Tseng & Vaidya, arXiv:1911.07298),
//!   where every out-neighbor of a sender observes the same message and
//!   per-receiver equivocation is impossible.  The requirements provably
//!   weaken: the `3f + 1` floor drops to `2f + 1` and the crossing threshold
//!   halves to `⌊f/2⌋ + 1`.  Graphs satisfying this condition but not the
//!   point-to-point one are exactly the divergence the two papers prove.
//!
//! # The cut-based engine
//!
//! Checking the schema by brute enumeration costs `Σ C(n,k)·3^(n−k)` — the
//! historical implementation (kept as [`Topology::iterative_sufficiency_exhaustive`],
//! the test oracle) gives up beyond ~3M partitions.  The production engine
//! ([`Topology::partition_sufficiency`]) instead searches for a *violation*
//! directly.  Call a set `S ⊆ V∖F` **closed** when every node of `S` has
//! fewer than `threshold` in-neighbors in `(V∖F)∖S`.  A partition violates
//! the crossing condition iff `L` and `R` are two disjoint non-empty closed
//! sets (`C` is whatever remains) — for threshold 1 closed sets are exactly
//! the in-closed source components, so this is the source-component
//! formulation of the papers, generalised to higher thresholds.
//!
//! Closed sets are unions-closed, so each `F` has a unique maximal closed
//! set `M`, computable in polynomial time by peeling (repeatedly discard any
//! node with `threshold` in-neighbors outside the survivor set).  `M = ∅`
//! certifies the condition for that `F` outright; otherwise a
//! branch-and-bound over include/exclude decisions grows a minimal closed
//! `L` inside `M`, pruning any branch whose partial `L` already has no
//! disjoint closed partner (the peel of `V∖F∖L` is empty — sound because
//! peeling is antitone).  Verdicts stay exact far beyond the old budget; a
//! generous work budget still backstops adversarial inputs with
//! [`Sufficiency::Unknown`].

use crate::graph::Topology;

/// A partition `(F, L, C, R)` for which a sufficiency condition fails —
/// concrete evidence that the graph is *not* known to support the protocol
/// with the given parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWitness {
    /// The faulty set `F` (`|F| ≤ f`).
    pub faulty: Vec<usize>,
    /// The left group `L` (non-empty).
    pub left: Vec<usize>,
    /// The center group `C` (possibly empty).
    pub center: Vec<usize>,
    /// The right group `R` (non-empty).
    pub right: Vec<usize>,
}

/// Outcome of a graph-condition check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sufficiency {
    /// Every 4-partition satisfies the crossing condition: the protocol is
    /// expected to succeed on this topology.
    Satisfied,
    /// Some partition violates the condition; the witness names it.  A
    /// scenario on this topology is *expected-unsolvable* — a failed verdict
    /// is data, not a regression.
    Violated(PartitionWitness),
    /// The graph is too large for an exact verdict within the work budget.
    Unknown,
}

impl Sufficiency {
    /// Stable label for reports (`satisfied`, `violated`, `unknown`).
    pub fn label(&self) -> &'static str {
        match self {
            Sufficiency::Satisfied => "satisfied",
            Sufficiency::Violated(_) => "violated",
            Sufficiency::Unknown => "unknown",
        }
    }

    /// `true` only for [`Sufficiency::Satisfied`].
    pub fn is_satisfied(&self) -> bool {
        matches!(self, Sufficiency::Satisfied)
    }
}

/// Group of a node in the ternary assignment of `V ∖ F`.
const LEFT: u8 = 0;
const CENTER: u8 = 1;
const RIGHT: u8 = 2;
/// Marker for members of `F` in the assignment array.
const FAULTY: u8 = 3;

/// Work budget for the exhaustive enumeration oracle: partitions ×
/// per-partition cost is kept far below a second even in debug builds.
const ENUMERATION_BUDGET: u128 = 3_000_000;

/// Work budget for the cut-based engine, in elementary units (peeled nodes +
/// search nodes).  Generous — the engine is polynomial per faulty set on the
/// graph families shipped here — but still bounds adversarial inputs.
const PARTITION_SEARCH_BUDGET: u64 = 50_000_000;

/// Internal outcome of the violation search.
enum Search {
    Clear,
    Witness(PartitionWitness),
    Budget,
}

impl Topology {
    /// Whether every process can reach every other along directed links.
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.len();
        if n <= 1 {
            return true;
        }
        let reaches_all = |neighbors: &dyn Fn(usize) -> Vec<usize>| {
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            seen[0] = true;
            let mut count = 1;
            while let Some(v) = stack.pop() {
                for w in neighbors(v) {
                    if !seen[w] {
                        seen[w] = true;
                        count += 1;
                        stack.push(w);
                    }
                }
            }
            count == n
        };
        reaches_all(&|v| self.out_neighbors(v).to_vec())
            && reaches_all(&|v| self.in_neighbors(v).to_vec())
    }

    /// Checks the iterative-BVC sufficiency condition for fault bound `f` and
    /// dimension `d` (crossing threshold `(d+1)f + 1`; see the module docs)
    /// with the cut-based engine.
    ///
    /// # Panics
    ///
    /// Panics if `f >= n` or `d == 0`.
    pub fn iterative_sufficiency(&self, f: usize, d: usize) -> Sufficiency {
        let n = self.len();
        assert!(f < n, "fault bound f = {f} must be smaller than n = {n}");
        assert!(d > 0, "dimension must be positive");
        self.partition_sufficiency(f, (d + 1) * f + 1)
    }

    /// The historical exhaustive enumerator for the iterative condition —
    /// kept as the oracle the cut-based engine is pinned against.  Exponential
    /// in `n`: beyond ~3M partitions it reports [`Sufficiency::Unknown`].
    ///
    /// # Panics
    ///
    /// Panics if `f >= n` or `d == 0`.
    pub fn iterative_sufficiency_exhaustive(&self, f: usize, d: usize) -> Sufficiency {
        let n = self.len();
        assert!(f < n, "fault bound f = {f} must be smaller than n = {n}");
        assert!(d > 0, "dimension must be positive");
        if n == 1 {
            return Sufficiency::Satisfied;
        }
        if enumeration_work(n, f) > ENUMERATION_BUDGET {
            return Sufficiency::Unknown;
        }
        let threshold = (d + 1) * f + 1;
        let mut assignment = vec![LEFT; n];
        let mut faulty: Vec<usize> = Vec::with_capacity(f);
        if let Some(witness) =
            self.search_faulty_sets(&mut faulty, 0, f, threshold, &mut assignment)
        {
            Sufficiency::Violated(witness)
        } else {
            Sufficiency::Satisfied
        }
    }

    /// Checks the graph condition for **exact** directed BVC under
    /// point-to-point channels (Tseng & Vaidya, arXiv:1208.5075): global
    /// floors `n ≥ 3f + 1` and `n ≥ (d+1)f + 1`, plus the 4-partition
    /// crossing condition with threshold `f + 1`.  On `K_n` this reduces to
    /// the source paper's `n ≥ max(3f+1, (d+1)f+1)`.
    ///
    /// # Panics
    ///
    /// Panics if `f >= n` or `d == 0`.
    pub fn directed_exact_sufficiency(&self, f: usize, d: usize) -> Sufficiency {
        let n = self.len();
        assert!(f < n, "fault bound f = {f} must be smaller than n = {n}");
        assert!(d > 0, "dimension must be positive");
        if n == 1 {
            return Sufficiency::Satisfied;
        }
        if n < 3 * f + 1 || n < (d + 1) * f + 1 {
            return Sufficiency::Violated(floor_witness(n, f));
        }
        self.partition_sufficiency(f, f + 1)
    }

    /// Checks the graph condition for exact directed BVC under the
    /// **local-broadcast** model (Khan, Tseng & Vaidya, arXiv:1911.07298):
    /// equivocation is impossible, so the `3f + 1` floor weakens to
    /// `2f + 1` and the crossing threshold halves to `⌊f/2⌋ + 1`.  The
    /// `(d+1)f + 1` decision-step floor is model-independent and kept.
    /// Every graph satisfying [`Topology::directed_exact_sufficiency`] also
    /// satisfies this; the converse fails — that gap is the model divergence
    /// the two papers prove.
    ///
    /// # Panics
    ///
    /// Panics if `f >= n` or `d == 0`.
    pub fn directed_exact_lb_sufficiency(&self, f: usize, d: usize) -> Sufficiency {
        let n = self.len();
        assert!(f < n, "fault bound f = {f} must be smaller than n = {n}");
        assert!(d > 0, "dimension must be positive");
        if n == 1 {
            return Sufficiency::Satisfied;
        }
        if n < 2 * f + 1 || n < (d + 1) * f + 1 {
            return Sufficiency::Violated(floor_witness(n, f));
        }
        self.partition_sufficiency(f, f / 2 + 1)
    }

    /// The shared cut-based engine: checks the 4-partition crossing condition
    /// for fault bound `f` and the given in-neighbor `threshold` exactly,
    /// reporting [`Sufficiency::Unknown`] only past a generous work budget
    /// (see the module docs for the closed-set formulation it searches).
    ///
    /// # Panics
    ///
    /// Panics if `f >= n` or `threshold == 0`.
    pub fn partition_sufficiency(&self, f: usize, threshold: usize) -> Sufficiency {
        let n = self.len();
        assert!(f < n, "fault bound f = {f} must be smaller than n = {n}");
        assert!(threshold > 0, "crossing threshold must be positive");
        if n == 1 {
            return Sufficiency::Satisfied;
        }
        let mut work: u64 = 0;
        let mut faulty: Vec<usize> = Vec::with_capacity(f);
        match self.search_pruned_faulty_sets(&mut faulty, 0, f, threshold, &mut work) {
            Search::Clear => Sufficiency::Satisfied,
            Search::Witness(witness) => Sufficiency::Violated(witness),
            Search::Budget => Sufficiency::Unknown,
        }
    }

    /// Enumerates faulty sets `F` of size `0..=f` (members chosen in
    /// increasing order starting at `from`) for the cut-based engine,
    /// running the closed-pair search at every prefix.
    fn search_pruned_faulty_sets(
        &self,
        faulty: &mut Vec<usize>,
        from: usize,
        f: usize,
        threshold: usize,
        work: &mut u64,
    ) -> Search {
        match self.disjoint_closed_pair(faulty, threshold, work) {
            Search::Clear => {}
            found => return found,
        }
        if faulty.len() == f {
            return Search::Clear;
        }
        for next in from..self.len() {
            faulty.push(next);
            let found = self.search_pruned_faulty_sets(faulty, next + 1, f, threshold, work);
            faulty.pop();
            match found {
                Search::Clear => {}
                found => return found,
            }
        }
        Search::Clear
    }

    /// For a fixed `F`, decides whether two disjoint non-empty closed sets
    /// exist (⇔ some partition violates the crossing condition), returning
    /// the witness partition when they do.
    fn disjoint_closed_pair(&self, faulty: &[usize], threshold: usize, work: &mut u64) -> Search {
        let n = self.len();
        let mut ground = vec![true; n];
        for &v in faulty {
            ground[v] = false;
        }
        let ground_size = n - faulty.len();
        if ground_size < 2 {
            return Search::Clear;
        }
        // Size floor per member: v ∈ S closed forces |in(v) ∩ S| >
        // indeg_ground(v) − threshold, so |S| ≥ indeg_ground(v) − threshold
        // + 2.  Two disjoint closed sets must fit side by side in the ground
        // set — the prune that settles dense graphs (K_n in particular)
        // without any branching.
        let need: Vec<usize> = (0..n)
            .map(|v| {
                if !ground[v] {
                    return usize::MAX;
                }
                let indeg = self.in_neighbors(v).iter().filter(|&&u| ground[u]).count();
                (indeg + 2).saturating_sub(threshold).max(1)
            })
            .collect();
        let mut needs: Vec<usize> = (0..n).filter(|&v| ground[v]).map(|v| need[v]).collect();
        needs.sort_unstable();
        if needs[0] + needs[1] > ground_size {
            return Search::Clear;
        }
        // Grow a closed L whose minimum member is v, for each candidate v in
        // ascending order (any violating (L, R) can be flipped so that the
        // smallest member of L ∪ R lies in L, so this sweep is complete).
        let mut in_l = vec![false; n];
        let mut excluded = vec![false; n];
        for v in 0..n {
            if !ground[v] {
                continue;
            }
            let partner_floor = (0..n)
                .filter(|&u| ground[u] && u != v)
                .map(|u| need[u])
                .min()
                .unwrap_or(usize::MAX);
            if need[v].saturating_add(partner_floor) > ground_size {
                continue;
            }
            for (u, slot) in excluded.iter_mut().enumerate() {
                // Nodes below v are barred from L so that v is its minimum.
                *slot = u < v;
            }
            in_l[v] = true;
            let mut l_nodes = vec![v];
            let found = self.grow_closed_left(
                &ground,
                threshold,
                &need,
                ground_size,
                &mut in_l,
                &mut excluded,
                &mut l_nodes,
                faulty,
                work,
            );
            in_l[v] = false;
            debug_assert_eq!(l_nodes, vec![v]);
            match found {
                Search::Clear => {}
                found => return found,
            }
        }
        Search::Clear
    }

    /// Branch-and-bound step: either the partial `L` is already closed (then
    /// any non-empty peel of the remainder completes a witness), or some
    /// member has `threshold` in-neighbors outside — branch on moving one of
    /// its undecided in-neighbors into `L` versus excluding it forever.
    #[allow(clippy::too_many_arguments)]
    fn grow_closed_left(
        &self,
        ground: &[bool],
        threshold: usize,
        need: &[usize],
        ground_size: usize,
        in_l: &mut [bool],
        excluded: &mut [bool],
        l_nodes: &mut Vec<usize>,
        faulty: &[usize],
        work: &mut u64,
    ) -> Search {
        *work += 1;
        if *work > PARTITION_SEARCH_BUDGET {
            return Search::Budget;
        }
        // Size prune: the final L is at least as large as the floor forced by
        // any current member, and must leave room for some disjoint partner.
        let l_floor = l_nodes
            .iter()
            .map(|&s| need[s])
            .max()
            .unwrap_or(1)
            .max(l_nodes.len());
        let partner_floor = (0..self.len())
            .filter(|&u| ground[u] && !in_l[u])
            .map(|u| need[u])
            .min()
            .unwrap_or(usize::MAX);
        if l_floor.saturating_add(partner_floor) > ground_size {
            return Search::Clear;
        }
        // Find the first deficit member: perm counts in-neighbors that can
        // never join L (branch dead if perm alone reaches the threshold),
        // undecided ones could still be pulled in.
        let mut branch_on: Option<usize> = None;
        for &s in l_nodes.iter() {
            let mut perm = 0usize;
            let mut first_undecided: Option<usize> = None;
            for &u in self.in_neighbors(s) {
                if !ground[u] || in_l[u] {
                    continue;
                }
                if excluded[u] {
                    perm += 1;
                } else if first_undecided.is_none() {
                    first_undecided = Some(u);
                }
            }
            if perm >= threshold {
                return Search::Clear;
            }
            let undecided_total = self
                .in_neighbors(s)
                .iter()
                .filter(|&&u| ground[u] && !in_l[u] && !excluded[u])
                .count();
            if perm + undecided_total >= threshold {
                branch_on = first_undecided;
                break;
            }
        }
        let Some(u) = branch_on else {
            // L is closed as it stands; a non-empty maximal closed set in the
            // remainder is the partner R (and if it is empty no superset of L
            // can do better — peeling is antitone).
            let partner = match self.max_closed(ground, in_l, threshold, work) {
                Some(p) => p,
                None => return Search::Budget,
            };
            let right: Vec<usize> = (0..self.len()).filter(|&i| partner[i]).collect();
            if right.is_empty() {
                return Search::Clear;
            }
            let left = l_nodes.clone();
            let center: Vec<usize> = (0..self.len())
                .filter(|&i| ground[i] && !in_l[i] && !partner[i])
                .collect();
            return Search::Witness(PartitionWitness {
                faulty: faulty.to_vec(),
                left,
                center,
                right,
            });
        };
        // Prune: if even the current partial L admits no disjoint closed
        // partner, no extension will (the peel only shrinks as L grows).
        let partner = match self.max_closed(ground, in_l, threshold, work) {
            Some(p) => p,
            None => return Search::Budget,
        };
        if !partner.iter().any(|&p| p) {
            return Search::Clear;
        }
        // Branch A: u joins L.
        in_l[u] = true;
        l_nodes.push(u);
        let found = self.grow_closed_left(
            ground,
            threshold,
            need,
            ground_size,
            in_l,
            excluded,
            l_nodes,
            faulty,
            work,
        );
        l_nodes.pop();
        in_l[u] = false;
        match found {
            Search::Clear => {}
            found => return found,
        }
        // Branch B: u is excluded from L for good.
        excluded[u] = true;
        let found = self.grow_closed_left(
            ground,
            threshold,
            need,
            ground_size,
            in_l,
            excluded,
            l_nodes,
            faulty,
            work,
        );
        excluded[u] = false;
        found
    }

    /// Peels the maximal closed subset of `ground ∖ barred`: repeatedly
    /// discard any survivor with `threshold` in-neighbors among non-survivor
    /// ground nodes.  Returns `None` on budget exhaustion.
    fn max_closed(
        &self,
        ground: &[bool],
        barred: &[bool],
        threshold: usize,
        work: &mut u64,
    ) -> Option<Vec<bool>> {
        let n = self.len();
        let mut alive: Vec<bool> = (0..n)
            .map(|v| ground[v] && !barred.get(v).copied().unwrap_or(false))
            .collect();
        loop {
            let mut changed = false;
            for v in 0..n {
                if !alive[v] {
                    continue;
                }
                *work += 1;
                if *work > PARTITION_SEARCH_BUDGET {
                    return None;
                }
                let outside = self
                    .in_neighbors(v)
                    .iter()
                    .filter(|&&u| ground[u] && !alive[u])
                    .count();
                if outside >= threshold {
                    alive[v] = false;
                    changed = true;
                }
            }
            if !changed {
                return Some(alive);
            }
        }
    }

    /// Enumerates faulty sets `F` of size `0..=f` (members chosen in
    /// increasing order starting at `from`), then the ternary assignments of
    /// the remainder.  Returns the first violating partition found.
    fn search_faulty_sets(
        &self,
        faulty: &mut Vec<usize>,
        from: usize,
        f: usize,
        threshold: usize,
        assignment: &mut [u8],
    ) -> Option<PartitionWitness> {
        if let Some(witness) = self.search_assignments(faulty, threshold, assignment) {
            return Some(witness);
        }
        if faulty.len() == f {
            return None;
        }
        for next in from..self.len() {
            faulty.push(next);
            let witness = self.search_faulty_sets(faulty, next + 1, f, threshold, assignment);
            faulty.pop();
            if witness.is_some() {
                return witness;
            }
        }
        None
    }

    /// For a fixed `F`, walks every `L/C/R` assignment of the other nodes and
    /// returns the first one that violates the crossing condition.
    fn search_assignments(
        &self,
        faulty: &[usize],
        threshold: usize,
        assignment: &mut [u8],
    ) -> Option<PartitionWitness> {
        let n = self.len();
        let rest: Vec<usize> = (0..n).filter(|i| !faulty.contains(i)).collect();
        for (i, slot) in assignment.iter_mut().enumerate().take(n) {
            *slot = if faulty.contains(&i) { FAULTY } else { LEFT };
        }
        let combos = 3usize.pow(rest.len() as u32);
        for combo in 0..combos {
            let mut code = combo;
            let mut left_count = 0usize;
            let mut right_count = 0usize;
            for &node in &rest {
                let group = (code % 3) as u8;
                code /= 3;
                assignment[node] = group;
                match group {
                    LEFT => left_count += 1,
                    RIGHT => right_count += 1,
                    _ => {}
                }
            }
            if left_count == 0 || right_count == 0 {
                continue;
            }
            if !self.partition_condition_holds(assignment, threshold) {
                let collect = |group: u8| -> Vec<usize> {
                    (0..n).filter(|&i| assignment[i] == group).collect()
                };
                return Some(PartitionWitness {
                    faulty: faulty.to_vec(),
                    left: collect(LEFT),
                    center: collect(CENTER),
                    right: collect(RIGHT),
                });
            }
        }
        None
    }

    /// The crossing condition for one partition: a node of `L` with
    /// `threshold` in-neighbors in `R ∪ C`, or a node of `R` with `threshold`
    /// in-neighbors in `L ∪ C`.
    fn partition_condition_holds(&self, assignment: &[u8], threshold: usize) -> bool {
        for (node, &group) in assignment.iter().enumerate() {
            let across = match group {
                LEFT => RIGHT,
                RIGHT => LEFT,
                _ => continue,
            };
            let crossing = self
                .in_neighbors(node)
                .iter()
                .filter(|&&p| assignment[p] == across || assignment[p] == CENTER)
                .count();
            if crossing >= threshold {
                return true;
            }
        }
        false
    }
}

/// Canonical witness for a global-floor failure (`n < 3f+1`, `n < 2f+1` or
/// `n < (d+1)f+1`): the equal-split partition the impossibility arguments
/// use — the highest-indexed processes (at most `f`, leaving two) are `F`,
/// the remainder splits into `L` and `R` with `C` empty.
fn floor_witness(n: usize, f: usize) -> PartitionWitness {
    let faulty_len = f.min(n.saturating_sub(2));
    let rest = n - faulty_len;
    PartitionWitness {
        faulty: (rest..n).collect(),
        left: (0..rest / 2).collect(),
        center: Vec::new(),
        right: (rest / 2..rest).collect(),
    }
}

/// Upper bound on the enumeration work: `Σ_{k ≤ f} C(n, k) · 3^(n−k)`,
/// saturating.
fn enumeration_work(n: usize, f: usize) -> u128 {
    let mut total: u128 = 0;
    for k in 0..=f.min(n) {
        let choose = binomial_u128(n, k);
        let per = 3u128.checked_pow((n - k) as u32).unwrap_or(u128::MAX);
        total = total.saturating_add(choose.saturating_mul(per));
    }
    total
}

fn binomial_u128(n: usize, k: usize) -> u128 {
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result.saturating_mul((n - i) as u128) / (i as u128 + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Asserts that a witness is a genuine partition of `0..n` that violates
    /// the crossing condition at the given threshold.
    fn assert_valid_witness(t: &Topology, f: usize, threshold: usize, w: &PartitionWitness) {
        let n = t.len();
        assert!(w.faulty.len() <= f, "|F| > f in {w:?}");
        assert!(
            !w.left.is_empty() && !w.right.is_empty(),
            "empty side: {w:?}"
        );
        let mut all: Vec<usize> = w
            .faulty
            .iter()
            .chain(&w.left)
            .chain(&w.center)
            .chain(&w.right)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "not a partition: {w:?}");
        let side = |set: &[usize], opposite: &[usize]| {
            for &node in set {
                let crossing = t
                    .in_neighbors(node)
                    .iter()
                    .filter(|&&p| opposite.contains(&p) || w.center.contains(&p))
                    .count();
                assert!(
                    crossing < threshold,
                    "witness not violating: node {node} crosses with {crossing} ≥ {threshold}"
                );
            }
        };
        side(&w.left, &w.right);
        side(&w.right, &w.left);
    }

    #[test]
    fn strong_connectivity_basic_cases() {
        assert!(Topology::complete(4).is_strongly_connected());
        assert!(Topology::ring(7).is_strongly_connected());
        // A directed cycle is strongly connected; a directed path is not.
        let cycle = Topology::from_edges(3, &[(0, 1), (1, 2), (2, 0)], false).unwrap();
        assert!(cycle.is_strongly_connected());
        let path = Topology::from_edges(3, &[(0, 1), (1, 2)], false).unwrap();
        assert!(!path.is_strongly_connected());
    }

    #[test]
    fn complete_graph_threshold_matches_the_closed_form() {
        // On K_n the condition amounts to n ≥ (2d+3)f + 1.
        for (n, f, d, expected) in [
            (5usize, 1usize, 1usize, false),
            (6, 1, 1, true),
            (7, 2, 1, false),
            (11, 2, 1, true),
            (7, 1, 2, false),
            (8, 1, 2, true),
        ] {
            let verdict = Topology::complete(n).iterative_sufficiency(f, d);
            assert_eq!(
                verdict.is_satisfied(),
                expected,
                "K_{n} with f = {f}, d = {d}: {verdict:?}"
            );
        }
    }

    #[test]
    fn ring_is_violated_with_any_fault() {
        let verdict = Topology::ring(8).iterative_sufficiency(1, 1);
        let Sufficiency::Violated(witness) = verdict else {
            panic!("a ring cannot satisfy the condition with f = 1: {verdict:?}");
        };
        assert_valid_witness(&Topology::ring(8), 1, 3, &witness);
    }

    #[test]
    fn f_zero_reduces_to_crossing_edges() {
        // Strongly connected ⇒ satisfied at f = 0 (threshold 1).
        assert!(Topology::ring(6).iterative_sufficiency(0, 3).is_satisfied());
        // a → b alone is fine (b adopts a), but two isolated nodes are not.
        let one_way = Topology::from_edges(2, &[(0, 1)], false).unwrap();
        assert!(one_way.iterative_sufficiency(0, 1).is_satisfied());
        let isolated = Topology::from_edges(2, &[], false).unwrap();
        assert!(!isolated.iterative_sufficiency(0, 1).is_satisfied());
    }

    #[test]
    fn any_six_regular_graph_on_eight_nodes_is_satisfied() {
        // In-degree n − 2 leaves at most one missing in-neighbor per node, so
        // no partition can starve both sides (see the README derivation).
        for seed in 0..5 {
            let t = Topology::random_regular(8, 6, seed).unwrap();
            assert!(t.iterative_sufficiency(1, 1).is_satisfied(), "seed {seed}");
        }
    }

    #[test]
    fn sparse_torus_is_violated_at_f_one() {
        let t = Topology::torus(2, 4).unwrap();
        assert!(matches!(
            t.iterative_sufficiency(1, 1),
            Sufficiency::Violated(_)
        ));
    }

    #[test]
    fn oversized_graphs_get_exact_verdicts_where_the_oracle_gives_up() {
        // ring(40) with f = 2 was Unknown under exhaustive enumeration (the
        // headline retreat of the cut-based engine): the pruned search settles
        // it instantly, and the verdict is a checked violation witness.
        let t = Topology::ring(40);
        assert_eq!(
            t.iterative_sufficiency_exhaustive(2, 2),
            Sufficiency::Unknown
        );
        let verdict = t.iterative_sufficiency(2, 2);
        let Sufficiency::Violated(witness) = verdict else {
            panic!("a 40-ring cannot satisfy the condition with f = 2: {verdict:?}");
        };
        assert_valid_witness(&t, 2, 3 * 2 + 1, &witness);
        assert_eq!(Sufficiency::Unknown.label(), "unknown");
    }

    #[test]
    fn large_dense_graphs_stay_satisfied_beyond_the_oracle_budget() {
        // K_40 is far beyond the 3M-partition budget but trivially dense: the
        // peel empties every maximal closed set and the engine answers
        // exactly.
        let t = Topology::complete(40);
        assert_eq!(
            t.iterative_sufficiency_exhaustive(2, 2),
            Sufficiency::Unknown
        );
        assert!(t.iterative_sufficiency(2, 2).is_satisfied());
    }

    #[test]
    fn pruned_engine_matches_the_exhaustive_oracle() {
        // Every family small enough for the oracle: statuses must agree, and
        // every violation witness (from either engine) must check out.
        let mut cases: Vec<Topology> = vec![
            Topology::complete(4),
            Topology::complete(6),
            Topology::complete(8),
            Topology::ring(5),
            Topology::ring(8),
            Topology::torus(2, 4).unwrap(),
            Topology::torus(3, 3).unwrap(),
            Topology::from_edges(3, &[(0, 1), (1, 2), (2, 0)], false).unwrap(),
            Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)], true).unwrap(),
        ];
        for seed in 0..4 {
            cases.push(Topology::random_regular(8, 4, seed).unwrap());
            cases.push(Topology::random_regular(9, 6, seed).unwrap());
        }
        for t in &cases {
            for f in 0..=2usize.min(t.len() - 1) {
                for d in 1..=2usize {
                    let oracle = t.iterative_sufficiency_exhaustive(f, d);
                    if matches!(oracle, Sufficiency::Unknown) {
                        continue;
                    }
                    let pruned = t.iterative_sufficiency(f, d);
                    assert_eq!(
                        oracle.is_satisfied(),
                        pruned.is_satisfied(),
                        "{} f={f} d={d}: oracle {oracle:?} vs pruned {pruned:?}",
                        t.label(),
                    );
                    if let Sufficiency::Violated(w) = &pruned {
                        assert_valid_witness(t, f, (d + 1) * f + 1, w);
                    }
                }
            }
        }
    }

    #[test]
    fn directed_exact_on_complete_graphs_matches_the_paper_bound() {
        // On K_n the point-to-point condition must reduce to the source
        // paper's n ≥ max(3f+1, (d+1)f+1).
        for n in 2..=10usize {
            for f in 0..n.min(3) {
                for d in 1..=3usize {
                    let expected = n >= (3 * f + 1).max((d + 1) * f + 1);
                    let verdict = Topology::complete(n).directed_exact_sufficiency(f, d);
                    assert_eq!(
                        verdict.is_satisfied(),
                        expected,
                        "K_{n} f={f} d={d}: {verdict:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn local_broadcast_beats_point_to_point_on_small_complete_graphs() {
        // K_3 with f = 1 is the classic impossibility under point-to-point
        // channels; local broadcast makes equivocation impossible and the
        // 3f+1 floor evaporates (n ≥ 2f+1 remains).
        let k3 = Topology::complete(3);
        assert!(matches!(
            k3.directed_exact_sufficiency(1, 1),
            Sufficiency::Violated(_)
        ));
        assert!(k3.directed_exact_lb_sufficiency(1, 1).is_satisfied());
        // K_2 fails both: below even the 2f+1 floor.
        let k2 = Topology::complete(2);
        assert!(matches!(
            k2.directed_exact_lb_sufficiency(1, 1),
            Sufficiency::Violated(_)
        ));
    }

    /// The committed divergence digraph (scenarios/directed_divergence.toml):
    /// two directed 4-cliques bridged by a perfect matching, so every node
    /// has exactly one in-neighbor across the bridge.
    fn divergence_digraph() -> Topology {
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for base in [0usize, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        for i in 0..4 {
            edges.push((i, i + 4));
        }
        Topology::from_edges(8, &edges, true).unwrap()
    }

    #[test]
    fn divergence_family_separates_the_two_models() {
        // The matching bridge gives every node exactly one cross in-neighbor:
        // below the point-to-point threshold f + 1 = 2 (the clique-vs-clique
        // partition is the witness), but enough for local broadcast, whose
        // threshold ⌊f/2⌋ + 1 = 1 only requires *some* crossing edge into
        // every closed set — and the only closed set here is everything.
        let t = divergence_digraph();
        let p2p = t.directed_exact_sufficiency(1, 2);
        let Sufficiency::Violated(witness) = p2p else {
            panic!("divergence digraph must violate the point-to-point condition: {p2p:?}");
        };
        assert_valid_witness(&t, 1, 2, &witness);
        assert!(t.directed_exact_lb_sufficiency(1, 2).is_satisfied());
    }

    #[test]
    fn local_broadcast_condition_is_never_stronger_than_point_to_point() {
        let mut cases: Vec<Topology> = vec![
            Topology::complete(3),
            Topology::complete(5),
            Topology::ring(6),
            Topology::torus(2, 4).unwrap(),
            divergence_digraph(),
        ];
        for seed in 0..3 {
            cases.push(Topology::random_regular(7, 4, seed).unwrap());
        }
        for t in &cases {
            for f in 0..=2usize.min(t.len() - 1) {
                for d in 1..=2usize {
                    let p2p = t.directed_exact_sufficiency(f, d);
                    let lb = t.directed_exact_lb_sufficiency(f, d);
                    assert!(
                        !p2p.is_satisfied() || lb.is_satisfied(),
                        "{} f={f} d={d}: p2p satisfied but lb {lb:?}",
                        t.label(),
                    );
                    if let Sufficiency::Violated(w) = &lb {
                        if t.len() >= (2 * f + 1).max((d + 1) * f + 1) {
                            assert_valid_witness(t, f, f / 2 + 1, w);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn singleton_graph_is_trivially_satisfied() {
        assert!(Topology::complete(1)
            .iterative_sufficiency(0, 2)
            .is_satisfied());
        assert!(Topology::complete(1)
            .directed_exact_sufficiency(0, 2)
            .is_satisfied());
        assert!(Topology::complete(1)
            .directed_exact_lb_sufficiency(0, 2)
            .is_satisfied());
    }
}
