//! The safe-area operator `Γ(Y)` (equation (1) of the paper).
//!
//! For a multiset `Y` of points in `R^d` and a fault bound `f`,
//!
//! ```text
//! Γ(Y) = ∩_{T ⊆ Y, |T| = |Y| − f}  H(T)
//! ```
//!
//! is the intersection of the convex hulls of all sub-multisets obtained by
//! removing `f` members.  Lemma 1 of the paper shows that `Γ(Y) ≠ ∅` whenever
//! `|Y| ≥ (d+1)f + 1` (a corollary of Tverberg's theorem), and both the exact
//! and approximate BVC algorithms pick their decision/update points inside
//! `Γ` of suitable multisets.
//!
//! This module provides membership tests, emptiness checks, and the
//! deterministic point-selection rule shared by all non-faulty processes.  It
//! also exposes [`lp_size`], the size of the single "joint" linear program of
//! Section 2.2, which experiment E7 compares against the paper's formula.

use crate::combinatorics::{binomial, combinations};
use crate::hull::ConvexHull;
use crate::multiset::PointMultiset;
use crate::point::Point;

/// The safe area `Γ(Y)` for a multiset `Y` and fault bound `f`, represented
/// implicitly by its defining hulls.
#[derive(Debug, Clone)]
pub struct SafeArea {
    source: PointMultiset,
    f: usize,
    hulls: Vec<ConvexHull>,
}

impl SafeArea {
    /// Builds `Γ(Y)` for the multiset `y` tolerating `f` removals.
    ///
    /// # Panics
    ///
    /// Panics if `f >= y.len()` (there must be at least one remaining member).
    pub fn new(y: PointMultiset, f: usize) -> Self {
        assert!(
            f < y.len(),
            "fault bound f = {f} must be smaller than |Y| = {}",
            y.len()
        );
        let subset_size = y.len() - f;
        let hulls = y
            .subsets_of_size(subset_size)
            .into_iter()
            .map(ConvexHull::new)
            .collect();
        Self {
            source: y,
            f,
            hulls,
        }
    }

    /// The source multiset `Y`.
    pub fn source(&self) -> &PointMultiset {
        &self.source
    }

    /// The fault bound `f`.
    pub fn fault_bound(&self) -> usize {
        self.f
    }

    /// The defining hulls `H(T)`, one per `(|Y|−f)`-subset `T`.
    pub fn hulls(&self) -> &[ConvexHull] {
        &self.hulls
    }

    /// Returns `true` if `point` lies in `Γ(Y)`, i.e. in every defining hull.
    pub fn contains(&self, point: &Point) -> bool {
        self.hulls.iter().all(|h| h.contains(point))
    }

    /// Returns a deterministically chosen point of `Γ(Y)`, or `None` when the
    /// safe area is empty.
    ///
    /// The point is produced by the joint linear program of Section 2.2
    /// (variables `z ∈ R^d` plus convex-combination coefficients per subset),
    /// solved by the deterministic simplex pivoting rule, so every caller that
    /// supplies the same multiset obtains the same point — which is exactly
    /// the "deterministic function" the Exact BVC algorithm requires in
    /// Step 2.
    pub fn find_point(&self) -> Option<Point> {
        ConvexHull::common_point(&self.hulls)
    }

    /// Returns `true` if `Γ(Y)` is empty.
    pub fn is_empty_region(&self) -> bool {
        self.find_point().is_none()
    }

    /// Lemma 1 precondition: `|Y| ≥ (d+1)f + 1` guarantees `Γ(Y) ≠ ∅`.
    pub fn lemma1_applies(&self) -> bool {
        self.source.len() > (self.source.dim() + 1) * self.f
    }
}

/// Convenience wrapper: a deterministically chosen point of `Γ(y)` with fault
/// bound `f`, or `None` if the safe area is empty.
///
/// # Panics
///
/// Panics if `f >= y.len()`.
pub fn gamma_point(y: &PointMultiset, f: usize) -> Option<Point> {
    SafeArea::new(y.clone(), f).find_point()
}

/// Returns `true` if `point ∈ Γ(y)` with fault bound `f`.
///
/// # Panics
///
/// Panics if `f >= y.len()`.
pub fn gamma_contains(y: &PointMultiset, f: usize, point: &Point) -> bool {
    SafeArea::new(y.clone(), f).contains(point)
}

/// Returns `true` if `Γ(y)` is empty for fault bound `f`.
///
/// # Panics
///
/// Panics if `f >= y.len()`.
pub fn gamma_is_empty(y: &PointMultiset, f: usize) -> bool {
    SafeArea::new(y.clone(), f).is_empty_region()
}

/// A deterministically chosen common point of the hulls of the *given*
/// sub-multisets of `y` (identified by index lists), or `None` if they do not
/// intersect.
///
/// This is the primitive behind the witness-optimised Step 2 of the
/// asynchronous algorithm (Appendix F): instead of intersecting the hulls of
/// *all* `(n−f)`-subsets, only the subsets advertised by witnesses are used.
///
/// # Panics
///
/// Panics if `subsets` is empty or any index list is empty/out of range.
pub fn common_point_of_subsets(y: &PointMultiset, subsets: &[Vec<usize>]) -> Option<Point> {
    assert!(!subsets.is_empty(), "need at least one subset");
    let hulls: Vec<ConvexHull> = subsets
        .iter()
        .map(|idx| ConvexHull::new(y.select(idx)))
        .collect();
    ConvexHull::common_point(&hulls)
}

/// The intersection `∩_i H(Y − {i})` of the *leave-one-out* hulls of `y`
/// (used by the necessity argument of Theorem 1, equation (16) in Appendix C):
/// returns a point of the intersection, or `None` when it is empty.
pub fn leave_one_out_intersection(y: &PointMultiset) -> Option<Point> {
    let n = y.len();
    assert!(
        n >= 2,
        "leave-one-out intersection needs at least two points"
    );
    let all: Vec<usize> = (0..n).collect();
    let subsets: Vec<Vec<usize>> = (0..n)
        .map(|drop| all.iter().copied().filter(|&i| i != drop).collect())
        .collect();
    common_point_of_subsets(y, &subsets)
}

/// Size of the joint linear program of Section 2.2 for parameters
/// `(n, f, d)`: returns `(variables, constraints)` where
/// `variables = d + C(n, n−f)·(n−f)` and
/// `constraints = C(n, n−f)·(d + 1 + n − f)`.
///
/// Saturates at `u128::MAX` for out-of-range parameters.
pub fn lp_size(n: usize, f: usize, d: usize) -> (u128, u128) {
    assert!(f < n, "f must be smaller than n");
    let subsets = binomial(n, n - f);
    let vars = (d as u128).saturating_add(subsets.saturating_mul((n - f) as u128));
    let cons = subsets.saturating_mul((d + 1 + n - f) as u128);
    (vars, cons)
}

/// Enumerates the index sets of all `(|y|−f)`-subsets of `y`, in the canonical
/// (lexicographic) order used by [`SafeArea`].
pub fn gamma_subset_indices(len: usize, f: usize) -> Vec<Vec<usize>> {
    assert!(
        f < len,
        "fault bound must be smaller than the multiset size"
    );
    combinations(len, len - f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[&[f64]]) -> PointMultiset {
        PointMultiset::new(coords.iter().map(|c| Point::new(c.to_vec())).collect())
    }

    #[test]
    fn gamma_with_f_zero_is_the_full_hull() {
        let y = pts(&[&[0.0, 0.0], &[2.0, 0.0], &[0.0, 2.0]]);
        let area = SafeArea::new(y, 0);
        assert_eq!(area.hulls().len(), 1);
        assert!(area.contains(&Point::new(vec![0.5, 0.5])));
        assert!(!area.contains(&Point::new(vec![2.0, 2.0])));
    }

    #[test]
    fn gamma_scalar_case_is_trimmed_interval() {
        // d = 1, f = 1, Y = {0, 1, 2, 3, 10}. Γ is the intersection of hulls of
        // all 4-subsets = [1, 3]: dropping the largest still leaves [0,3];
        // dropping the smallest leaves [1,10]; intersection [1,3].
        let y = pts(&[&[0.0], &[1.0], &[2.0], &[3.0], &[10.0]]);
        let area = SafeArea::new(y, 1);
        assert!(area.contains(&Point::new(vec![1.0])));
        assert!(area.contains(&Point::new(vec![2.5])));
        assert!(area.contains(&Point::new(vec![3.0])));
        assert!(!area.contains(&Point::new(vec![0.5])));
        assert!(!area.contains(&Point::new(vec![3.5])));
        let p = area.find_point().expect("non-empty by Lemma 1");
        assert!(p.coord(0) >= 1.0 - 1e-6 && p.coord(0) <= 3.0 + 1e-6);
    }

    #[test]
    fn lemma1_guarantees_nonempty_gamma_in_2d() {
        // d = 2, f = 1, need |Y| ≥ 4. Use 4 generic points.
        let y = pts(&[&[0.0, 0.0], &[4.0, 0.0], &[0.0, 4.0], &[4.0, 4.0]]);
        let area = SafeArea::new(y, 1);
        assert!(area.lemma1_applies());
        let p = area.find_point().expect("Lemma 1");
        assert!(area.contains(&p));
    }

    #[test]
    fn lemma1_guarantees_nonempty_gamma_for_f_two() {
        // d = 2, f = 2, need |Y| ≥ 7: regular heptagon (the Figure 1 setup).
        let y = heptagon();
        let area = SafeArea::new(y, 2);
        assert!(area.lemma1_applies());
        let p = area.find_point().expect("Lemma 1 for the heptagon");
        assert!(area.contains(&p));
    }

    fn heptagon() -> PointMultiset {
        let pts: Vec<Point> = (0..7)
            .map(|k| {
                let theta = 2.0 * std::f64::consts::PI * k as f64 / 7.0;
                Point::new(vec![theta.cos(), theta.sin()])
            })
            .collect();
        PointMultiset::new(pts)
    }

    #[test]
    fn gamma_can_be_empty_below_lemma1_threshold() {
        // Theorem 1's construction: d = 2, the standard basis plus the origin
        // gives |Y| = d + 1 = 3 points. With f = 1, the leave-one-out hulls
        // have empty intersection, and so does Γ (|T| = 2 here).
        let y = pts(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]);
        assert!(gamma_is_empty(&y, 1));
        assert!(leave_one_out_intersection(&y).is_none());
    }

    #[test]
    fn leave_one_out_intersection_nonempty_with_enough_points() {
        // d = 2, n = 4 = d + 2: Theorem 1 says n ≥ d+2 is needed for f = 1;
        // with the basis vectors plus two interior points the intersection is
        // non-empty for this particular input set.
        let y = pts(&[&[1.0, 0.0], &[0.0, 1.0], &[0.3, 0.3], &[0.4, 0.2]]);
        let p = leave_one_out_intersection(&y);
        assert!(p.is_some());
    }

    #[test]
    fn gamma_point_is_deterministic() {
        let y = pts(&[
            &[0.0, 0.0],
            &[4.0, 0.0],
            &[0.0, 4.0],
            &[4.0, 4.0],
            &[2.0, 2.0],
        ]);
        let p1 = gamma_point(&y, 1).unwrap();
        let p2 = gamma_point(&y, 1).unwrap();
        assert!(p1.approx_eq(&p2, 1e-12));
    }

    #[test]
    fn gamma_point_lies_in_hull_of_every_subset() {
        let y = pts(&[
            &[0.0, 0.0],
            &[4.0, 0.0],
            &[0.0, 4.0],
            &[4.0, 4.0],
            &[2.0, 2.0],
        ]);
        let area = SafeArea::new(y, 1);
        let p = area.find_point().unwrap();
        for hull in area.hulls() {
            assert!(hull.contains(&p));
        }
    }

    #[test]
    fn gamma_contains_helper_agrees_with_safe_area() {
        let y = pts(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        assert!(gamma_contains(&y, 1, &Point::new(vec![1.5])));
        assert!(!gamma_contains(&y, 1, &Point::new(vec![0.1])));
    }

    #[test]
    fn common_point_of_selected_subsets() {
        let y = pts(&[&[0.0], &[1.0], &[2.0], &[3.0], &[4.0]]);
        // Two overlapping subsets: {0,1,2} (hull [0,2]) and {2,3,4} (hull [2,4]).
        let p = common_point_of_subsets(&y, &[vec![0, 1, 2], vec![2, 3, 4]]).unwrap();
        assert!((p.coord(0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn lp_size_matches_paper_formula() {
        // n = 4, f = 1, d = 3: C(4,3) = 4 subsets,
        // vars = 3 + 4*3 = 15, constraints = 4*(3+1+3) = 28.
        assert_eq!(lp_size(4, 1, 3), (15, 28));
        // n = 7, f = 2, d = 2: C(7,5) = 21, vars = 2 + 21*5 = 107,
        // constraints = 21*(2+1+5) = 168.
        assert_eq!(lp_size(7, 2, 2), (107, 168));
    }

    #[test]
    fn gamma_subset_indices_counts() {
        assert_eq!(gamma_subset_indices(5, 1).len(), 5);
        assert_eq!(gamma_subset_indices(7, 2).len(), 21);
    }

    #[test]
    #[should_panic(expected = "smaller than")]
    fn fault_bound_too_large_panics() {
        let y = pts(&[&[0.0], &[1.0]]);
        let _ = SafeArea::new(y, 2);
    }

    #[test]
    fn duplicate_points_respect_multiplicity() {
        // Y = {0, 0, 5}, f = 1: subsets of size 2 are {0,0}, {0,5}, {0,5};
        // Γ = {0} ∩ [0,5] ∩ [0,5] = {0}.
        let y = pts(&[&[0.0], &[0.0], &[5.0]]);
        let area = SafeArea::new(y, 1);
        assert!(area.contains(&Point::new(vec![0.0])));
        assert!(!area.contains(&Point::new(vec![1.0])));
        let p = area.find_point().unwrap();
        assert!(p.coord(0).abs() < 1e-6);
    }
}
