//! The service core: batched admission into a sharded work-stealing pool,
//! with in-order streaming emission.

use crate::config::{CacheMode, ServiceConfig, ServiceError};
use crate::sink::{ReorderBuffer, VerdictSink};
use crate::stats::{
    escape_json, fmt_f64, CacheStats, LatencyStats, QueueStats, ServiceStats, WorkerStats,
};
use bvc_adversary::ByzantineStrategy;
use bvc_core::{BvcSession, RunReport};
use bvc_geometry::{GammaCache, SharedGammaCache};
use bvc_net::ExecutionStats;
use std::any::Any;
use std::collections::VecDeque;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Instant;

/// A validated multi-shot consensus service.
///
/// Construction ([`BvcService::new`]) is the admission point: every
/// instance of the stream is checked against the protocol's resilience
/// bound up front, so [`run`](Self::run) executes an already-admitted
/// stream and can only fail on sink I/O.
#[derive(Debug, Clone)]
pub struct BvcService {
    config: ServiceConfig,
}

/// One admitted unit of work.
struct Job {
    seq: usize,
    admitted: Instant,
}

/// Admission/completion watermarks shared by the admitter and the workers,
/// plus the queue-depth samples taken whenever either watermark moves.
#[derive(Default)]
struct Coord {
    admitted: usize,
    completed: usize,
    queue_depth: Vec<usize>,
}

impl Coord {
    fn sample_depth(&mut self) {
        self.queue_depth.push(self.admitted - self.completed);
    }
}

/// The emission side: reorder buffer + sink + first I/O error, under one
/// lock so lines leave in admission order no matter which worker emits.
struct EmitState<'a> {
    reorder: ReorderBuffer,
    sink: &'a mut dyn VerdictSink,
    error: Option<io::Error>,
}

/// Everything one worker measures locally (merged after the pool joins).
#[derive(Default)]
struct WorkerTally {
    instances: usize,
    decided: usize,
    violated: usize,
    panicked: usize,
    busy_ms: f64,
    latencies_ms: Vec<f64>,
    local_hits: u64,
    local_misses: u64,
    messages: ExecutionStats,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn ms(duration: std::time::Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}

/// Pops the worker's own queue front, else steals from another queue's
/// back (oldest-first locally, newest-first when stealing — the classic
/// split that keeps stolen work coarse).
fn take_job(shards: &[Mutex<VecDeque<Job>>], me: usize) -> Option<Job> {
    if let Some(job) = lock(&shards[me]).pop_front() {
        return Some(job);
    }
    for offset in 1..shards.len() {
        let victim = (me + offset) % shards.len();
        if let Some(job) = lock(&shards[victim]).pop_back() {
            return Some(job);
        }
    }
    None
}

/// One instance's verdict line.  Deliberately timing-free: the line is a
/// pure function of the instance configuration, which is what makes the
/// stream byte-identical across worker counts and batch sizes.
fn verdict_line(label: &str, seq: usize, report: &RunReport) -> String {
    let config = report.config();
    let verdict = report.verdict();
    let strategy = match config.adversary {
        ByzantineStrategy::Crash(k) => format!("crash:{k}"),
        ByzantineStrategy::SplitBrain(mask) => format!("split-brain:{mask}"),
        other => other.name().to_string(),
    };
    let epsilon = match report.epsilon() {
        Some(e) => fmt_f64(e),
        None => "null".to_string(),
    };
    let stats = report.stats();
    format!(
        "{{\"service\": \"{}\", \"instance\": {seq}, \"protocol\": \"{}\", \
         \"n\": {}, \"f\": {}, \"d\": {}, \"seed\": {}, \"strategy\": \"{strategy}\", \
         \"validity\": \"{}\", \"epsilon\": {epsilon}, \
         \"verdict\": {{\"agreement\": {}, \"validity\": {}, \"termination\": {}, \
         \"max_pairwise_distance\": {}}}, \"rounds\": {}, \
         \"messages\": {{\"sent\": {}, \"delivered\": {}, \"dropped\": {}}}}}",
        escape_json(label),
        report.protocol().name(),
        config.n,
        config.f,
        config.d,
        config.seed,
        report.validity_mode().label(),
        verdict.agreement,
        verdict.validity,
        verdict.termination,
        fmt_f64(verdict.max_pairwise_distance),
        report.rounds(),
        stats.messages_sent,
        stats.messages_delivered,
        stats.messages_dropped,
    )
}

/// The verdict line for a contained instance panic: an all-false verdict
/// carrying the panic message.  Still timing-free and deterministic for a
/// deterministic panic, so pinned streams stay byte-identical.
fn panic_line(label: &str, seq: usize, message: &str) -> String {
    format!(
        "{{\"service\": \"{}\", \"instance\": {seq}, \"panic\": \"{}\", \
         \"verdict\": {{\"agreement\": false, \"validity\": false, \"termination\": false, \
         \"max_pairwise_distance\": null}}}}",
        escape_json(label),
        escape_json(message),
    )
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

impl BvcService {
    /// Validates the stream ([`ServiceConfig::validate`]) and builds the
    /// service.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`ServiceConfig::validate`].
    pub fn new(config: ServiceConfig) -> Result<Self, ServiceError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The validated configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Runs the whole stream: admits instances in batches into the worker
    /// pool, streams one verdict line per instance into `sink` in
    /// admission order, and returns the aggregate statistics.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] when the sink fails; the stream still drains
    /// (already-running instances complete) but further emission stops at
    /// the first error.
    pub fn run(&self, sink: &mut dyn VerdictSink) -> Result<ServiceStats, ServiceError> {
        let config = &self.config;
        let total = config.instances.len();
        let workers = if config.workers == 0 {
            thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let workers = workers.min(total).max(1);
        let batch = config.batch;
        // Backpressure: at most two batches admitted but not yet completed,
        // so a slow sink or a long instance bounds queue memory.
        let high_water = batch.saturating_mul(2).max(1);

        // The parent outlives every instance, so it gets a much larger
        // capacity than the per-instance children: entries must survive a
        // whole seed cycle to ever be reused (eviction is wholesale-clear).
        let shared_capacity = match config.shared_capacity {
            0 => ServiceConfig::DEFAULT_SHARED_CAPACITY,
            capacity => capacity,
        };
        let shared_cache: Option<SharedGammaCache> = match config.cache_mode {
            CacheMode::Shared => Some(Arc::new(GammaCache::with_capacity(shared_capacity))),
            CacheMode::PerInstance => None,
        };

        let shards: Vec<Mutex<VecDeque<Job>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        let coord = Mutex::new(Coord::default());
        let cv_work = Condvar::new();
        let cv_space = Condvar::new();
        let emit = Mutex::new(EmitState {
            reorder: ReorderBuffer::new(),
            sink,
            error: None,
        });

        let started = Instant::now();
        let mut tallies: Vec<WorkerTally> = Vec::with_capacity(workers);

        // When the caller runs the stream under a trace scope, each instance
        // traces into its own slot (admission seq + 1): the sorted stream is
        // then byte-identical across worker counts and batch sizes, because
        // per-slot sequence numbers restart at every install.
        let trace = bvc_trace::current_handle();

        thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for me in 0..workers {
                let (shards, coord, cv_work, cv_space, emit, shared_cache, trace) = (
                    &shards,
                    &coord,
                    &cv_work,
                    &cv_space,
                    &emit,
                    &shared_cache,
                    &trace,
                );
                handles.push(scope.spawn(move || {
                    let mut tally = WorkerTally::default();
                    loop {
                        let job = loop {
                            if let Some(job) = take_job(shards, me) {
                                break Some(job);
                            }
                            let guard = lock(coord);
                            if guard.admitted >= total {
                                drop(guard);
                                // Every push happened before the watermark
                                // we just read; one final scan decides.
                                break take_job(shards, me);
                            }
                            drop(cv_work.wait(guard).unwrap_or_else(PoisonError::into_inner));
                        };
                        let Some(job) = job else { break };
                        let seq = job.seq;

                        let overrides = &config.instances[seq];
                        let mut run_config = config.template.for_instance(overrides);
                        // A per-instance child cache either chains to the
                        // service-lifetime parent (cross-instance reuse,
                        // measurable) or stands alone (the control group).
                        let child: SharedGammaCache = match shared_cache {
                            Some(parent) => Arc::new(GammaCache::with_parent(Arc::clone(parent))),
                            None => GammaCache::shared(),
                        };
                        run_config.gamma_cache = Some(Arc::clone(&child));

                        let _trace_scope = trace.as_ref().map(|h| {
                            bvc_trace::install(
                                h.clone(),
                                u32::try_from(seq + 1).unwrap_or(u32::MAX),
                            )
                        });
                        bvc_trace::emit(|| bvc_trace::TraceEvent::SpanOpen {
                            instance: seq as u64,
                            label: config.label.clone(),
                        });

                        let exec_started = Instant::now();
                        // Contain instance panics to the instance: a panic
                        // becomes a failed verdict line and the stream keeps
                        // draining.  AssertUnwindSafe is sound because the
                        // panicking closure's state (run config, child
                        // cache) is either dropped with the payload or only
                        // read through monotone counters afterwards.
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            if config.panic_instance == Some(seq) {
                                panic!("panic injected by ServiceConfig::inject_panic({seq})");
                            }
                            BvcSession::new(config.protocol, run_config)
                                .expect("admission validated every instance")
                                .run()
                        }));
                        tally.busy_ms += ms(exec_started.elapsed());
                        tally.latencies_ms.push(ms(job.admitted.elapsed()));
                        tally.instances += 1;
                        tally.local_hits += child.hits();
                        tally.local_misses += child.misses();

                        let line = match &outcome {
                            Ok(report) => {
                                if report.verdict().termination {
                                    tally.decided += 1;
                                }
                                if !report.verdict().all_hold() {
                                    tally.violated += 1;
                                }
                                tally.messages.absorb(report.stats());
                                verdict_line(&config.label, seq, report)
                            }
                            Err(payload) => {
                                // A panic is a failed verdict: it violates
                                // termination at the very least.
                                tally.violated += 1;
                                tally.panicked += 1;
                                panic_line(&config.label, seq, panic_message(payload.as_ref()))
                            }
                        };
                        bvc_trace::emit(|| {
                            let (decided, violated, rounds) = match &outcome {
                                Ok(report) => (
                                    report.verdict().termination,
                                    !report.verdict().all_hold(),
                                    Some(report.rounds()),
                                ),
                                Err(_) => (false, true, None),
                            };
                            bvc_trace::TraceEvent::SpanClose {
                                instance: seq as u64,
                                decided,
                                violated,
                                rounds,
                            }
                        });
                        {
                            let mut state = lock(emit);
                            if state.error.is_none() {
                                let EmitState {
                                    reorder,
                                    sink,
                                    error,
                                } = &mut *state;
                                if let Err(e) = reorder.push(seq as u64, Some(line), &mut **sink) {
                                    *error = Some(e);
                                }
                            }
                        }

                        let mut guard = lock(coord);
                        guard.completed += 1;
                        guard.sample_depth();
                        drop(guard);
                        cv_space.notify_all();
                    }
                    tally
                }));
            }

            // Batched admission, on this thread: release `batch` jobs
            // round-robin across the shards, then wait for completions to
            // fall back under the high-water mark.
            let mut next = 0usize;
            while next < total {
                {
                    let mut guard = lock(&coord);
                    while guard.admitted - guard.completed >= high_water {
                        guard = cv_space.wait(guard).unwrap_or_else(PoisonError::into_inner);
                    }
                }
                let end = (next + batch).min(total);
                for seq in next..end {
                    lock(&shards[seq % workers]).push_back(Job {
                        seq,
                        admitted: Instant::now(),
                    });
                }
                {
                    let mut guard = lock(&coord);
                    guard.admitted = end;
                    guard.sample_depth();
                }
                cv_work.notify_all();
                next = end;
            }

            for handle in handles {
                tallies.push(handle.join().expect("service worker panicked"));
            }
        });

        let wall_ms = ms(started.elapsed());
        let queue_samples = coord
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .queue_depth;

        let mut state = emit.into_inner().unwrap_or_else(PoisonError::into_inner);
        if let Some(e) = state.error.take() {
            return Err(ServiceError::Io(e));
        }
        debug_assert!(state.reorder.is_drained(), "every sequence was released");
        state.sink.finish()?;

        let mut latencies = Vec::with_capacity(total);
        let mut cache = CacheStats::default();
        let mut messages = ExecutionStats::default();
        let (mut decided, mut violated, mut panicked) = (0usize, 0usize, 0usize);
        let worker_stats = tallies
            .iter()
            .map(|tally| WorkerStats {
                instances: tally.instances,
                busy_ms: tally.busy_ms,
                utilization: if wall_ms > 0.0 {
                    tally.busy_ms / wall_ms
                } else {
                    0.0
                },
            })
            .collect();
        for mut tally in tallies {
            latencies.append(&mut tally.latencies_ms);
            cache.local_hits += tally.local_hits;
            cache.local_misses += tally.local_misses;
            messages.absorb(&tally.messages);
            decided += tally.decided;
            violated += tally.violated;
            panicked += tally.panicked;
        }
        if let Some(shared) = &shared_cache {
            cache.shared_hits = shared.hits();
            cache.shared_misses = shared.misses();
        }

        Ok(ServiceStats {
            label: config.label.clone(),
            instances: total,
            decided,
            violated,
            panicked,
            wall_ms,
            decisions_per_sec: if wall_ms > 0.0 {
                decided as f64 * 1e3 / wall_ms
            } else {
                0.0
            },
            latency: LatencyStats::from_samples(latencies),
            cache,
            queue: QueueStats::from_samples(&queue_samples),
            workers: worker_stats,
            messages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use bvc_core::{InstanceOverrides, ProtocolKind, RunConfig};
    use bvc_geometry::Point;

    fn stream_config(instances: usize) -> ServiceConfig {
        let template = RunConfig::new(5, 1, 2).epsilon(0.1);
        let overrides = (0..instances as u64)
            .map(|seed| InstanceOverrides {
                seed,
                honest_inputs: Some(
                    (0..4)
                        .map(|i| {
                            Point::new(vec![
                                (seed as f64 * 0.37 + i as f64 * 0.11) % 1.0,
                                (seed as f64 * 0.53 + i as f64 * 0.19) % 1.0,
                            ])
                        })
                        .collect(),
                ),
                ..InstanceOverrides::default()
            })
            .collect();
        ServiceConfig::new(ProtocolKind::RestrictedSync, template)
            .instances(overrides)
            .label("unit")
    }

    #[test]
    fn streams_one_line_per_instance_in_admission_order() {
        let config = stream_config(12).workers(3).batch(4);
        let mut sink = MemorySink::new();
        let stats = BvcService::new(config).unwrap().run(&mut sink).unwrap();
        assert_eq!(stats.instances, 12);
        assert_eq!(stats.decided, 12);
        assert_eq!(stats.violated, 0);
        assert_eq!(sink.lines().len(), 12);
        for (seq, line) in sink.lines().iter().enumerate() {
            assert!(
                line.starts_with(&format!("{{\"service\": \"unit\", \"instance\": {seq}, ")),
                "line {seq} out of order: {line}"
            );
        }
        assert!(stats.decisions_per_sec > 0.0);
        assert!(stats.latency.p50_ms <= stats.latency.p99_ms);
        assert!(stats.latency.p99_ms <= stats.latency.max_ms);
        assert_eq!(stats.workers.iter().map(|w| w.instances).sum::<usize>(), 12);
    }

    #[test]
    fn shared_cache_sees_cross_instance_hits_on_repeated_seeds() {
        // Two passes over the same five seeds: the second pass's multisets
        // were all computed in the first, so the parent cache must hit.
        let mut config = stream_config(5);
        let repeat = config.instances.clone();
        config.instances.extend(repeat);
        let stats = BvcService::new(config)
            .unwrap()
            .run(&mut MemorySink::new())
            .unwrap();
        assert!(
            stats.cache.shared_hits > 0,
            "repeated instances must hit the shared parent: {:?}",
            stats.cache
        );
        assert!(stats.cache.cross_instance_hit_rate() > 0.0);
    }

    #[test]
    fn a_panicking_instance_is_contained_and_the_stream_drains() {
        let config = stream_config(8).workers(2).batch(4).inject_panic(3);
        let mut sink = MemorySink::new();
        let stats = BvcService::new(config).unwrap().run(&mut sink).unwrap();
        assert_eq!(stats.instances, 8);
        assert_eq!(stats.panicked, 1);
        assert_eq!(stats.violated, 1);
        assert_eq!(stats.decided, 7);
        assert_eq!(sink.lines().len(), 8, "stream must drain past the panic");
        let line = &sink.lines()[3];
        assert!(
            line.contains("\"panic\": \"panic injected by ServiceConfig::inject_panic(3)\""),
            "panic line must carry the message: {line}"
        );
        assert!(line.contains("\"termination\": false"));
        assert!(sink.lines()[4].starts_with("{\"service\": \"unit\", \"instance\": 4, "));
    }

    #[test]
    fn queue_depth_is_sampled_and_bounded_by_backpressure() {
        let config = stream_config(12).workers(3).batch(2);
        let stats = BvcService::new(config)
            .unwrap()
            .run(&mut MemorySink::new())
            .unwrap();
        assert!(!stats.queue.series.is_empty());
        assert!(stats.queue.max_depth >= 1);
        // Admission holds while depth ≥ high_water (2 batches), then admits
        // one more batch: depth never exceeds 3 batches − 1.
        assert!(
            stats.queue.max_depth <= 5,
            "backpressure must bound the queue: {:?}",
            stats.queue
        );
        assert!(stats.queue.mean_depth > 0.0);
    }

    #[test]
    fn sink_errors_surface_as_service_errors() {
        struct FailingSink;
        impl VerdictSink for FailingSink {
            fn emit(&mut self, _line: &str) -> io::Result<()> {
                Err(io::Error::other("sink closed"))
            }
        }
        let config = stream_config(4).workers(2);
        let result = BvcService::new(config).unwrap().run(&mut FailingSink);
        assert!(matches!(result, Err(ServiceError::Io(_))));
    }
}
