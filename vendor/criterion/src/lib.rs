//! Workspace-local stand-in for the slice of the Criterion API the benches in
//! `bvc-bench` use (`criterion_group!`/`criterion_main!`, benchmark groups
//! with `bench_with_input`, `BenchmarkId`, `Bencher::iter`).
//!
//! The build environment has no crates.io access, so instead of statistical
//! sampling this harness runs a fixed warm-up plus a time-boxed measurement
//! loop and prints mean wall-clock time per iteration.  That is enough to
//! compare orders of magnitude between revisions; it makes no claim to
//! Criterion's rigour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter description.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// The timing driver handed to the measurement closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it for a warm-up and then a time-boxed
    /// measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..3 {
            black_box(routine());
        }
        let budget = Duration::from_millis(120);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }

    fn report(&self, label: &str) {
        let per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        println!(
            "bench {label:<48} {:>12.1} ns/iter ({} iters)",
            per_iter, self.iters
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness is time-boxed, not
    /// sample-counted, so the value is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.name));
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle passed to every benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        bencher.report(&name.to_string());
        self
    }
}

/// Bundles benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `fn main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
