//! A minimal TOML-subset parser for scenario files.
//!
//! The build environment has no crates.io access, so scenario files are read
//! with this small hand-rolled parser instead of the `toml` crate.  The
//! supported subset is exactly what the scenario schema needs:
//!
//! * `#` comments, blank lines;
//! * `[table]` and dotted `[table.subtable]` headers;
//! * `[[array-of-tables]]` headers;
//! * `key = value` pairs with bare keys;
//! * values: basic `"strings"` (with `\" \\ \n \t` escapes), integers,
//!   floats, booleans, and (possibly nested, possibly multi-line) arrays.
//!
//! Inline tables, literal strings, dates and dotted keys on the left-hand
//! side are intentionally out of scope and produce a parse error.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A basic string.
    String(String),
    /// An integer.
    Integer(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Boolean(bool),
    /// An array of values.
    Array(Vec<TomlValue>),
    /// A table (sorted by key for deterministic iteration).
    Table(BTreeMap<String, TomlValue>),
}

impl TomlValue {
    /// The table contents, if this is a table.
    pub fn as_table(&self) -> Option<&BTreeMap<String, TomlValue>> {
        match self {
            TomlValue::Table(map) => Some(map),
            _ => None,
        }
    }

    /// The array contents, if this is an array.
    pub fn as_array(&self) -> Option<&[TomlValue]> {
        match self {
            TomlValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            TomlValue::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as an `f64` (integers coerce).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            TomlValue::Float(x) => Some(*x),
            TomlValue::Integer(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            TomlValue::Boolean(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure with its (1-based) line number.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    /// 1-based line where parsing failed.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TOML parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TomlError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, TomlError> {
    Err(TomlError {
        line,
        message: message.into(),
    })
}

/// Strips a `#` comment that is outside any string.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Net `[`/`]` balance outside strings, used to join multi-line arrays.
fn bracket_balance(text: &str) -> i64 {
    let mut balance = 0;
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '[' if !in_string => balance += 1,
            ']' if !in_string => balance -= 1,
            _ => {}
        }
        escaped = false;
    }
    balance
}

/// Parses a TOML document into its root table.
///
/// # Errors
///
/// Returns a [`TomlError`] naming the offending line for any construct
/// outside the supported subset.
pub fn parse(text: &str) -> Result<BTreeMap<String, TomlValue>, TomlError> {
    let mut root: BTreeMap<String, TomlValue> = BTreeMap::new();
    let mut current_path: Vec<String> = Vec::new();

    let mut lines = text.lines().enumerate().peekable();
    while let Some((index, raw)) = lines.next() {
        let line_no = index + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }

        if let Some(header) = line.strip_prefix("[[") {
            let Some(name) = header.strip_suffix("]]") else {
                return err(line_no, "unterminated [[array-of-tables]] header");
            };
            let path = parse_key_path(name.trim(), line_no)?;
            open_array_table(&mut root, &path, line_no)?;
            current_path = path;
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let Some(name) = header.strip_suffix(']') else {
                return err(line_no, "unterminated [table] header");
            };
            let path = parse_key_path(name.trim(), line_no)?;
            let table = navigate(&mut root, &path, line_no)?;
            let _ = table;
            current_path = path;
            continue;
        }

        let Some(eq) = line.find('=') else {
            return err(line_no, format!("expected `key = value`, got `{line}`"));
        };
        let key = line[..eq].trim();
        if key.is_empty() || !is_bare_key(key) {
            return err(
                line_no,
                format!("unsupported key `{key}` (bare keys only: A-Z a-z 0-9 _ -)"),
            );
        }
        // Join continuation lines while an array is unterminated.
        let mut value_text = line[eq + 1..].trim().to_string();
        while bracket_balance(&value_text) > 0 {
            let Some((_, next_raw)) = lines.next() else {
                return err(line_no, "unterminated array");
            };
            value_text.push(' ');
            value_text.push_str(strip_comment(next_raw).trim());
        }
        let mut cursor = Cursor::new(&value_text, line_no);
        let value = cursor.parse_value()?;
        cursor.skip_whitespace();
        if !cursor.at_end() {
            return err(
                line_no,
                format!("trailing characters after value: `{}`", cursor.rest()),
            );
        }

        let table = navigate(&mut root, &current_path, line_no)?;
        if table.insert(key.to_string(), value).is_some() {
            return err(line_no, format!("duplicate key `{key}`"));
        }
    }
    Ok(root)
}

fn is_bare_key(key: &str) -> bool {
    !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn parse_key_path(name: &str, line_no: usize) -> Result<Vec<String>, TomlError> {
    let parts: Vec<String> = name.split('.').map(|p| p.trim().to_string()).collect();
    if parts.iter().any(|p| !is_bare_key(p)) {
        return err(line_no, format!("unsupported table name `{name}`"));
    }
    Ok(parts)
}

/// Walks (creating as needed) to the table at `path`; a path segment that is
/// an array-of-tables resolves to its last element, per TOML semantics.
fn navigate<'a>(
    root: &'a mut BTreeMap<String, TomlValue>,
    path: &[String],
    line_no: usize,
) -> Result<&'a mut BTreeMap<String, TomlValue>, TomlError> {
    let mut table = root;
    for segment in path {
        let entry = table
            .entry(segment.clone())
            .or_insert_with(|| TomlValue::Table(BTreeMap::new()));
        table = match entry {
            TomlValue::Table(map) => map,
            TomlValue::Array(items) => match items.last_mut() {
                Some(TomlValue::Table(map)) => map,
                _ => return err(line_no, format!("`{segment}` is not a table")),
            },
            _ => return err(line_no, format!("`{segment}` is not a table")),
        };
    }
    Ok(table)
}

fn open_array_table(
    root: &mut BTreeMap<String, TomlValue>,
    path: &[String],
    line_no: usize,
) -> Result<(), TomlError> {
    let (last, parents) = path.split_last().ok_or(TomlError {
        line: line_no,
        message: "empty [[array-of-tables]] name".into(),
    })?;
    let parent = navigate(root, parents, line_no)?;
    let entry = parent
        .entry(last.clone())
        .or_insert_with(|| TomlValue::Array(Vec::new()));
    match entry {
        TomlValue::Array(items) => {
            items.push(TomlValue::Table(BTreeMap::new()));
            Ok(())
        }
        _ => err(line_no, format!("`{last}` is not an array of tables")),
    }
}

struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    line_no: usize,
    _text: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str, line_no: usize) -> Self {
        Self {
            chars: text.chars().collect(),
            pos: 0,
            line_no,
            _text: text,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn rest(&self) -> String {
        self.chars[self.pos.min(self.chars.len())..]
            .iter()
            .collect()
    }

    fn parse_value(&mut self) -> Result<TomlValue, TomlError> {
        self.skip_whitespace();
        match self.peek() {
            Some('"') => self.parse_string(),
            Some('[') => self.parse_array(),
            Some('{') => err(self.line_no, "inline tables are not supported"),
            Some(c) if c == 't' || c == 'f' => self.parse_bool(),
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' || c == '.' => {
                self.parse_number()
            }
            Some(c) => err(self.line_no, format!("unexpected character `{c}` in value")),
            None => err(self.line_no, "missing value"),
        }
    }

    fn parse_string(&mut self) -> Result<TomlValue, TomlError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(TomlValue::String(out)),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some(other) => {
                        return err(self.line_no, format!("unsupported escape `\\{other}`"))
                    }
                    None => return err(self.line_no, "unterminated string"),
                },
                Some(c) => out.push(c),
                None => return err(self.line_no, "unterminated string"),
            }
        }
    }

    fn parse_array(&mut self) -> Result<TomlValue, TomlError> {
        self.bump(); // opening bracket
        let mut items = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(']') => {
                    self.bump();
                    return Ok(TomlValue::Array(items));
                }
                None => return err(self.line_no, "unterminated array"),
                _ => {}
            }
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some(']') => {}
                Some(c) => {
                    return err(
                        self.line_no,
                        format!("expected `,` or `]` in array, got `{c}`"),
                    )
                }
                None => return err(self.line_no, "unterminated array"),
            }
        }
    }

    fn parse_bool(&mut self) -> Result<TomlValue, TomlError> {
        let word: String = self
            .rest()
            .chars()
            .take_while(|c| c.is_ascii_alphabetic())
            .collect();
        self.pos += word.len();
        match word.as_str() {
            "true" => Ok(TomlValue::Boolean(true)),
            "false" => Ok(TomlValue::Boolean(false)),
            other => err(self.line_no, format!("unexpected value `{other}`")),
        }
    }

    fn parse_number(&mut self) -> Result<TomlValue, TomlError> {
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | '_' | 'e' | 'E') {
                word.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        let cleaned: String = word.chars().filter(|&c| c != '_').collect();
        if cleaned.contains('.') || cleaned.contains('e') || cleaned.contains('E') {
            cleaned
                .parse::<f64>()
                .map(TomlValue::Float)
                .or_else(|_| err(self.line_no, format!("invalid float `{word}`")))
        } else {
            cleaned
                .parse::<i64>()
                .map(TomlValue::Integer)
                .or_else(|_| err(self.line_no, format!("invalid integer `{word}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_comments() {
        let doc = r#"
# a scenario
[scenario]
name = "partition-heal"   # trailing comment
n = 5
epsilon = 0.05
sync = true
ratio = -1.5e-2
big = 1_000
"#;
        let root = parse(doc).unwrap();
        let scenario = root["scenario"].as_table().unwrap();
        assert_eq!(scenario["name"].as_str(), Some("partition-heal"));
        assert_eq!(scenario["n"].as_integer(), Some(5));
        assert_eq!(scenario["epsilon"].as_float(), Some(0.05));
        assert_eq!(scenario["sync"].as_bool(), Some(true));
        assert_eq!(scenario["ratio"].as_float(), Some(-0.015));
        assert_eq!(scenario["big"].as_integer(), Some(1000));
    }

    #[test]
    fn parses_arrays_nested_and_multiline() {
        let doc = "
groups = [[0, 1], [2, 3, 4]]
seeds = [
  1, 2, # comment inside
  3,
]
mixed = [\"a\", \"b\"]
";
        let root = parse(doc).unwrap();
        let groups = root["groups"].as_array().unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[1].as_array().unwrap().len(), 3);
        let seeds: Vec<i64> = root["seeds"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_integer().unwrap())
            .collect();
        assert_eq!(seeds, vec![1, 2, 3]);
        assert_eq!(root["mixed"].as_array().unwrap()[0].as_str(), Some("a"));
    }

    #[test]
    fn parses_arrays_of_tables() {
        let doc = r#"
[[faults]]
kind = "drop"
rate = 0.5

[[faults]]
kind = "partition"
"#;
        let root = parse(doc).unwrap();
        let faults = root["faults"].as_array().unwrap();
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].as_table().unwrap()["kind"].as_str(), Some("drop"));
        assert_eq!(
            faults[1].as_table().unwrap()["kind"].as_str(),
            Some("partition")
        );
    }

    #[test]
    fn parses_dotted_table_headers() {
        let doc = "
[a.b]
x = 1
";
        let root = parse(doc).unwrap();
        let a = root["a"].as_table().unwrap();
        let b = a["b"].as_table().unwrap();
        assert_eq!(b["x"].as_integer(), Some(1));
    }

    #[test]
    fn string_escapes_and_hash_inside_strings() {
        let root = parse("s = \"a # not a comment \\\"q\\\" \\n\"").unwrap();
        assert_eq!(root["s"].as_str(), Some("a # not a comment \"q\" \n"));
    }

    #[test]
    fn rejects_unsupported_constructs() {
        assert!(parse("t = { a = 1 }").is_err());
        assert!(parse("bad").is_err());
        assert!(parse("x = [1, 2").is_err());
        assert!(parse("x = 1\nx = 2").is_err());
        assert!(parse("[unclosed").is_err());
        let error = parse("\n\nboom").unwrap_err();
        assert_eq!(error.line, 3);
    }
}
