//! The declarative scenario schema and its TOML binding.
//!
//! A scenario file names a protocol, its parameters, an honest-input
//! generator, a Byzantine strategy, a delivery schedule and an optional list
//! of injected network faults; an optional `[campaign]` section turns one
//! file into a seed × strategy × policy sweep.  See the crate-level docs for
//! the full reference and a worked example.

use crate::toml::{parse, TomlValue};
use bvc_adversary::ByzantineStrategy;
use bvc_core::ValidityMode;
use bvc_net::{DeliveryPolicy, FaultEvent, FaultKind, FaultPlan, LinkSelector, ProcessId};
use bvc_topology::TopologySpec;
use std::collections::BTreeMap;
use std::fmt;

/// Which algorithm a scenario exercises: the source paper's four, the
/// iterative incomplete-graph protocol (Vaidya 2013), or the directed-graph
/// exact protocols (point-to-point and local-broadcast delivery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Exact BVC, synchronous (Theorems 1/3).
    Exact,
    /// Approximate BVC, asynchronous (Theorems 4/5).
    Approx,
    /// Restricted-round approximate BVC, synchronous (Theorem 6).
    RestrictedSync,
    /// Restricted-round approximate BVC, asynchronous (Theorem 6).
    RestrictedAsync,
    /// Iterative BVC over a declared topology (incomplete graphs, synchronous).
    Iterative,
    /// Exact BVC over a declared directed topology under point-to-point
    /// delivery (arXiv:1208.5075), synchronous.
    DirectedExact,
    /// Exact BVC over a declared directed topology under local-broadcast
    /// delivery (arXiv:1911.07298), synchronous.
    DirectedExactLb,
}

impl Protocol {
    /// The stable schema name (`exact`, `approx`, `restricted-sync`,
    /// `restricted-async`, `iterative`, `directed-exact`,
    /// `directed-exact-lb`).
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Exact => "exact",
            Protocol::Approx => "approx",
            Protocol::RestrictedSync => "restricted-sync",
            Protocol::RestrictedAsync => "restricted-async",
            Protocol::Iterative => "iterative",
            Protocol::DirectedExact => "directed-exact",
            Protocol::DirectedExactLb => "directed-exact-lb",
        }
    }

    /// Whether the protocol runs on the asynchronous executor.
    pub fn is_async(self) -> bool {
        matches!(self, Protocol::Approx | Protocol::RestrictedAsync)
    }

    /// The broadcast model the protocol assumes of the network, or `None`
    /// for the complete-graph protocols where the distinction never arises.
    pub fn broadcast_model(self) -> Option<BroadcastModel> {
        match self {
            Protocol::DirectedExact => Some(BroadcastModel::PointToPoint),
            Protocol::DirectedExactLb => Some(BroadcastModel::Local),
            _ => None,
        }
    }

    /// The same protocol under a different broadcast model, or `None` when
    /// the protocol has no broadcast axis (everything but the directed pair).
    pub fn with_broadcast(self, model: BroadcastModel) -> Option<Self> {
        match self {
            Protocol::DirectedExact | Protocol::DirectedExactLb => Some(match model {
                BroadcastModel::PointToPoint => Protocol::DirectedExact,
                BroadcastModel::Local => Protocol::DirectedExactLb,
            }),
            _ => None,
        }
    }

    /// Parses a stable schema name back to a protocol (the inverse of
    /// [`Protocol::name`]), or `None` for unknown names — also the form
    /// CLI knobs like `chaos-run --protocols` accept.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "exact" => Some(Protocol::Exact),
            "approx" => Some(Protocol::Approx),
            "restricted-sync" => Some(Protocol::RestrictedSync),
            "restricted-async" => Some(Protocol::RestrictedAsync),
            "iterative" => Some(Protocol::Iterative),
            "directed-exact" => Some(Protocol::DirectedExact),
            "directed-exact-lb" => Some(Protocol::DirectedExactLb),
            _ => None,
        }
    }
}

/// The delivery guarantee a directed-graph protocol assumes: classical
/// point-to-point channels, or local broadcast (every transmission reaches
/// all out-neighbours identically, so a faulty process cannot equivocate
/// between them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BroadcastModel {
    /// Independent per-edge channels (arXiv:1208.5075's model).
    PointToPoint,
    /// Local broadcast (arXiv:1911.07298's model).
    Local,
}

impl BroadcastModel {
    /// The stable schema name (`point-to-point`, `local`).
    pub fn name(self) -> &'static str {
        match self {
            BroadcastModel::PointToPoint => "point-to-point",
            BroadcastModel::Local => "local",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "point-to-point" | "p2p" => Some(BroadcastModel::PointToPoint),
            "local" | "local-broadcast" => Some(BroadcastModel::Local),
            _ => None,
        }
    }
}

/// How the `n − f` honest inputs are generated.
#[derive(Debug, Clone, PartialEq)]
pub enum InputSpec {
    /// The first `n − f` points of an axis-aligned lattice over the value
    /// box, in row-major order (deterministic, seed-independent).
    Grid,
    /// Probability vectors (points of the standard simplex), drawn from the
    /// scenario seed — the paper's distributed-optimisation workload.
    Simplex,
    /// Points within `radius` (L∞) of `center`, drawn from the scenario seed.
    RandomBall {
        /// Centre of the ball (dimension must equal `d`).
        center: Vec<f64>,
        /// L∞ radius.
        radius: f64,
    },
    /// Opposite corners of the value box, cycling through the `2^d` corners —
    /// the adversarial maximum-spread workload.
    Corners,
    /// Explicitly listed points.
    Explicit {
        /// The points (each of dimension `d`; exactly `n − f` of them).
        points: Vec<Vec<f64>>,
    },
}

impl InputSpec {
    /// The stable schema name of the generator.
    pub fn name(&self) -> &'static str {
        match self {
            InputSpec::Grid => "grid",
            InputSpec::Simplex => "simplex",
            InputSpec::RandomBall { .. } => "random-ball",
            InputSpec::Corners => "corners",
            InputSpec::Explicit { .. } => "explicit",
        }
    }
}

/// A campaign sweep: the cartesian product of the listed axes, each
/// defaulting to the scenario's single base value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignSpec {
    /// Seeds to sweep (empty ⇒ just the scenario seed).
    pub seeds: Vec<u64>,
    /// Byzantine strategies to sweep (empty ⇒ the scenario strategy).
    pub strategies: Vec<ByzantineStrategy>,
    /// Delivery policies to sweep (empty ⇒ the scenario policy).
    pub policies: Vec<DeliveryPolicy>,
    /// Topologies to sweep (empty ⇒ the scenario topology), in the compact
    /// string form of [`TopologySpec::parse`].
    pub topologies: Vec<TopologySpec>,
    /// `(1+α)`-relaxed validity values to sweep (`alphas = [..]`).
    pub alphas: Vec<f64>,
    /// `k`-relaxed validity values to sweep (`ks = [..]`).  `alphas` and
    /// `ks` together form one validity axis (alphas first, then ks); when
    /// both are empty the scenario's base `validity` is used.
    pub ks: Vec<usize>,
    /// Broadcast models to sweep (`broadcast = [..]`; directed protocols
    /// only).  Each value rewrites the instance's protocol to the directed
    /// kind assuming that model (empty ⇒ the scenario protocol's own model).
    pub broadcasts: Vec<BroadcastModel>,
}

impl CampaignSpec {
    /// The validity axis of the sweep: the declared `alphas` (as
    /// [`ValidityMode::AlphaScaled`]) followed by the declared `ks` (as
    /// [`ValidityMode::KRelaxed`]), or empty when neither was given.
    pub fn validity_axis(&self) -> Vec<ValidityMode> {
        let mut axis: Vec<ValidityMode> = self
            .alphas
            .iter()
            .map(|&a| ValidityMode::AlphaScaled(a))
            .collect();
        axis.extend(self.ks.iter().map(|&k| ValidityMode::KRelaxed(k)));
        axis
    }
}

/// A `[service]` section: turns one scenario file into a multi-shot
/// consensus stream for `service-run` (see `bvc-service`).
///
/// The scenario's `[scenario]` / `[inputs]` / `[adversary]` / `[topology]`
/// tables describe the persistent configuration every instance shares; the
/// `[service]` table describes the stream itself.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSpec {
    /// Number of consensus instances in the stream (≥ 1).
    pub instances: usize,
    /// Admission batch size (≥ 1; default 64).
    pub batch: usize,
    /// Worker threads (`0` ⇒ available parallelism; default 0).
    pub workers: usize,
    /// Seed cycle length: instance `i` runs at seed `base + (i % cycle)`;
    /// `0` (the default) disables cycling (seed `base + i`).  A short cycle
    /// repeats instance configurations, making the shared Γ-cache's
    /// cross-instance reuse visible in the stats.
    pub seed_cycle: u64,
    /// Strategy rotation: instance `i` uses `strategies[i % len]` (empty ⇒
    /// every instance uses the scenario's base strategy).
    pub strategies: Vec<ByzantineStrategy>,
    /// Whether instances chain their Γ caches to one service-lifetime
    /// parent (default `true`); `false` gives every instance a cold cache.
    pub shared_cache: bool,
    /// Default verdict destination: `None` (also spelled `"stdout"` or
    /// `"-"`) streams to stdout; a path streams to that JSONL file.  The
    /// CLI's `--out` overrides it.
    pub sink: Option<String>,
}

/// A fully parsed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (reported in the JSON verdict).
    pub name: String,
    /// The algorithm under test.
    pub protocol: Protocol,
    /// Total number of processes.
    pub n: usize,
    /// Number of Byzantine processes.
    pub f: usize,
    /// Input/decision dimension.
    pub d: usize,
    /// ε of ε-agreement (ignored by `exact`).
    pub epsilon: f64,
    /// Base seed (the CLI can override it per run).
    pub seed: u64,
    /// Step cap for the asynchronous executor.
    pub max_steps: usize,
    /// A-priori value bounds `[ν, U]`.
    pub value_bounds: (f64, f64),
    /// Honest-input generator.
    pub inputs: InputSpec,
    /// Byzantine strategy of the `f` faulty processes.
    pub strategy: ByzantineStrategy,
    /// Delivery schedule (asynchronous protocols only).
    pub policy: DeliveryPolicy,
    /// Injected network faults.
    pub faults: FaultPlan,
    /// Declared communication topology (`None` ⇒ the paper's complete graph;
    /// verdicts then stay byte-identical to the pre-topology schema).
    pub topology: Option<TopologySpec>,
    /// Declared validity condition (`None` ⇒ strict scoring with no validity
    /// metadata in the verdict, byte-identical to the pre-validity schema).
    pub validity: Option<ValidityMode>,
    /// Optional sweep axes.
    pub campaign: Option<CampaignSpec>,
    /// Optional multi-shot service stream.
    pub service: Option<ServiceSpec>,
}

/// A schema-level error: the file parsed as TOML but is not a valid scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaError(pub String);

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario schema error: {}", self.0)
    }
}

impl std::error::Error for SchemaError {}

fn bad<T>(message: impl Into<String>) -> Result<T, SchemaError> {
    Err(SchemaError(message.into()))
}

type Table = BTreeMap<String, TomlValue>;

fn get_usize(table: &Table, key: &str) -> Result<Option<usize>, SchemaError> {
    match table.get(key) {
        None => Ok(None),
        Some(value) => match value.as_integer() {
            Some(i) if i >= 0 => Ok(Some(i as usize)),
            _ => bad(format!("`{key}` must be a non-negative integer")),
        },
    }
}

fn get_u64(table: &Table, key: &str) -> Result<Option<u64>, SchemaError> {
    match table.get(key) {
        None => Ok(None),
        Some(value) => match value.as_integer() {
            Some(i) if i >= 0 => Ok(Some(i as u64)),
            _ => bad(format!("`{key}` must be a non-negative integer")),
        },
    }
}

fn get_f64(table: &Table, key: &str) -> Result<Option<f64>, SchemaError> {
    match table.get(key) {
        None => Ok(None),
        Some(value) => match value.as_float() {
            Some(x) => Ok(Some(x)),
            None => bad(format!("`{key}` must be a number")),
        },
    }
}

fn get_str<'a>(table: &'a Table, key: &str) -> Result<Option<&'a str>, SchemaError> {
    match table.get(key) {
        None => Ok(None),
        Some(value) => match value.as_str() {
            Some(s) => Ok(Some(s)),
            None => bad(format!("`{key}` must be a string")),
        },
    }
}

fn require<T>(value: Option<T>, key: &str, section: &str) -> Result<T, SchemaError> {
    value.ok_or_else(|| SchemaError(format!("missing `{key}` in [{section}]")))
}

fn float_list(value: &TomlValue, key: &str) -> Result<Vec<f64>, SchemaError> {
    let Some(items) = value.as_array() else {
        return bad(format!("`{key}` must be an array of numbers"));
    };
    items
        .iter()
        .map(|v| {
            v.as_float()
                .ok_or_else(|| SchemaError(format!("`{key}` must contain only numbers")))
        })
        .collect()
}

fn process_list(value: &TomlValue, key: &str) -> Result<Vec<ProcessId>, SchemaError> {
    let Some(items) = value.as_array() else {
        return bad(format!("`{key}` must be an array of process indices"));
    };
    items
        .iter()
        .map(|v| match v.as_integer() {
            Some(i) if i >= 0 => Ok(ProcessId::new(i as usize)),
            _ => bad(format!("`{key}` must contain non-negative process indices")),
        })
        .collect()
}

/// Parses a Byzantine strategy name: `silent`, `fixed-outlier`,
/// `random-noise`, `equivocate`, `anti-convergence`, `split-brain:MASK`
/// (receiver-partition bit mask), `benign` or `crash:K` (crash after round
/// `K`).
pub fn parse_strategy(name: &str) -> Result<ByzantineStrategy, SchemaError> {
    if let Some(round) = name.strip_prefix("crash:") {
        return match round.parse::<usize>() {
            Ok(k) => Ok(ByzantineStrategy::Crash(k)),
            Err(_) => bad(format!("invalid crash round in `{name}`")),
        };
    }
    if let Some(mask) = name.strip_prefix("split-brain:") {
        return match mask.parse::<u64>() {
            Ok(m) => Ok(ByzantineStrategy::SplitBrain(m)),
            Err(_) => bad(format!("invalid split-brain mask in `{name}`")),
        };
    }
    match name {
        "crash" => Ok(ByzantineStrategy::Crash(1)),
        "silent" => Ok(ByzantineStrategy::Silent),
        "fixed-outlier" => Ok(ByzantineStrategy::FixedOutlier),
        "random-noise" => Ok(ByzantineStrategy::RandomNoise),
        "equivocate" => Ok(ByzantineStrategy::Equivocate),
        "anti-convergence" => Ok(ByzantineStrategy::AntiConvergence),
        "benign" => Ok(ByzantineStrategy::Benign),
        _ => bad(format!(
            "unknown strategy `{name}` (expected crash[:K], silent, fixed-outlier, \
             random-noise, equivocate, anti-convergence, split-brain:MASK or benign)"
        )),
    }
}

/// A stable display name for a delivery policy.
pub fn policy_name(policy: &DeliveryPolicy) -> String {
    match policy {
        DeliveryPolicy::RandomFair => "random-fair".into(),
        DeliveryPolicy::RoundRobin => "round-robin".into(),
        DeliveryPolicy::DelayFrom(ids) => format!(
            "delay-from:{}",
            ids.iter()
                .map(|p| p.index().to_string())
                .collect::<Vec<_>>()
                .join("+")
        ),
        DeliveryPolicy::DelayTo(ids) => format!(
            "delay-to:{}",
            ids.iter()
                .map(|p| p.index().to_string())
                .collect::<Vec<_>>()
                .join("+")
        ),
    }
}

fn parse_policy(table: &Table) -> Result<DeliveryPolicy, SchemaError> {
    let name = require(get_str(table, "policy")?, "policy", "delivery")?;
    parse_policy_name(name, table.get("processes"))
}

fn parse_policy_name(
    name: &str,
    processes: Option<&TomlValue>,
) -> Result<DeliveryPolicy, SchemaError> {
    let listed = |value: Option<&TomlValue>| -> Result<Vec<ProcessId>, SchemaError> {
        match value {
            Some(v) => process_list(v, "processes"),
            None => bad(format!("policy `{name}` needs a `processes` array")),
        }
    };
    match name {
        "random-fair" => Ok(DeliveryPolicy::RandomFair),
        "round-robin" => Ok(DeliveryPolicy::RoundRobin),
        "delay-from" => Ok(DeliveryPolicy::DelayFrom(listed(processes)?)),
        "delay-to" => Ok(DeliveryPolicy::DelayTo(listed(processes)?)),
        _ => bad(format!(
            "unknown delivery policy `{name}` (expected random-fair, round-robin, \
             delay-from or delay-to)"
        )),
    }
}

fn parse_link_selector(table: &Table) -> Result<LinkSelector, SchemaError> {
    let from = table.get("from");
    let to = table.get("to");
    match (from, to) {
        (None, None) => Ok(LinkSelector::All),
        (Some(f), None) => Ok(LinkSelector::From(process_list(f, "from")?)),
        (None, Some(t)) => Ok(LinkSelector::To(process_list(t, "to")?)),
        // `from` + `to` together select only the directed links from × to —
        // replies travel the reverse links and stay unaffected.
        (Some(f), Some(t)) => Ok(LinkSelector::Directed(
            process_list(f, "from")?,
            process_list(t, "to")?,
        )),
    }
}

fn parse_fault(table: &Table) -> Result<FaultEvent, SchemaError> {
    let kind_name = require(get_str(table, "kind")?, "kind", "faults")?;
    let kind = match kind_name {
        "drop" => {
            let rate = require(get_f64(table, "rate")?, "rate", "faults")?;
            FaultKind::Drop {
                rate,
                links: parse_link_selector(table)?,
            }
        }
        "latency" => {
            let extra = require(get_usize(table, "extra")?, "extra", "faults")?;
            FaultKind::Latency {
                extra,
                links: parse_link_selector(table)?,
            }
        }
        "partition" => {
            let Some(groups_value) = table.get("groups") else {
                return bad("partition fault needs a `groups` array of process-index arrays");
            };
            let Some(items) = groups_value.as_array() else {
                return bad("`groups` must be an array of process-index arrays");
            };
            let groups = items
                .iter()
                .map(|g| process_list(g, "groups"))
                .collect::<Result<Vec<_>, _>>()?;
            FaultKind::Partition { groups }
        }
        other => {
            return bad(format!(
                "unknown fault kind `{other}` (expected drop, latency or partition)"
            ))
        }
    };
    let start = get_usize(table, "start")?.unwrap_or(0);
    let duration = require(get_usize(table, "duration")?, "duration", "faults")?;
    Ok(FaultEvent {
        kind,
        start,
        duration,
    })
}

fn parse_inputs(table: Option<&Table>, d: usize) -> Result<InputSpec, SchemaError> {
    let Some(table) = table else {
        return Ok(InputSpec::Grid);
    };
    let generator = get_str(table, "generator")?.unwrap_or("grid");
    match generator {
        "grid" => Ok(InputSpec::Grid),
        "simplex" => Ok(InputSpec::Simplex),
        "corners" => Ok(InputSpec::Corners),
        "random-ball" => {
            let center = match table.get("center") {
                Some(value) => float_list(value, "center")?,
                None => vec![0.5; d],
            };
            if center.len() != d {
                return bad(format!(
                    "`center` has dimension {}, expected {d}",
                    center.len()
                ));
            }
            let radius = get_f64(table, "radius")?.unwrap_or(0.1);
            if !(radius >= 0.0 && radius.is_finite()) {
                return bad("`radius` must be a non-negative finite number");
            }
            Ok(InputSpec::RandomBall { center, radius })
        }
        "explicit" => {
            let Some(points_value) = table.get("points") else {
                return bad("explicit inputs need a `points` array of coordinate arrays");
            };
            let Some(items) = points_value.as_array() else {
                return bad("`points` must be an array of coordinate arrays");
            };
            let points = items
                .iter()
                .map(|p| float_list(p, "points"))
                .collect::<Result<Vec<_>, _>>()?;
            if let Some(wrong) = points.iter().find(|p| p.len() != d) {
                return bad(format!(
                    "explicit point {wrong:?} has dimension {}, expected {d}",
                    wrong.len()
                ));
            }
            Ok(InputSpec::Explicit { points })
        }
        other => bad(format!(
            "unknown input generator `{other}` (expected grid, simplex, random-ball, \
             corners or explicit)"
        )),
    }
}

/// Parses a `[topology]` section.  `kind` accepts both the long form with
/// parameter keys (`kind = "torus"` with `rows`/`cols`, `kind =
/// "random-regular"` with `degree`, `kind = "explicit"` with
/// `edges`/`undirected`) and the compact string form of campaign axes
/// (`"torus:2x4"`, `"random-regular:4"`).
fn parse_topology(table: &Table) -> Result<TopologySpec, SchemaError> {
    let kind = require(get_str(table, "kind")?, "kind", "topology")?;
    match kind {
        "torus" => {
            let rows = require(get_usize(table, "rows")?, "rows", "topology")?;
            let cols = require(get_usize(table, "cols")?, "cols", "topology")?;
            Ok(TopologySpec::Torus { rows, cols })
        }
        "random-regular" => {
            let degree = require(get_usize(table, "degree")?, "degree", "topology")?;
            Ok(TopologySpec::RandomRegular { degree })
        }
        "explicit" => {
            let Some(edges_value) = table.get("edges") else {
                return bad("explicit topology needs an `edges` array of [from, to] pairs");
            };
            let Some(items) = edges_value.as_array() else {
                return bad("`edges` must be an array of [from, to] pairs");
            };
            let mut edges = Vec::with_capacity(items.len());
            for item in items {
                let pair = process_list(item, "edges")?;
                if pair.len() != 2 {
                    return bad("each `edges` entry must be a [from, to] pair");
                }
                edges.push((pair[0].index(), pair[1].index()));
            }
            let undirected = match table.get("undirected") {
                None => false,
                Some(value) => value
                    .as_bool()
                    .ok_or_else(|| SchemaError("`undirected` must be a boolean".into()))?,
            };
            Ok(TopologySpec::Explicit { edges, undirected })
        }
        other => TopologySpec::parse(other).map_err(SchemaError),
    }
}

/// Parses the `[scenario]` table's validity declaration: `validity =
/// "strict" | "(1+α)-relaxed" | "k-relaxed"` (ASCII alias `alpha-relaxed`
/// accepted), with companion keys `alpha` (default `0.0`) and `k` (default
/// `1`).
fn parse_validity(table: &Table) -> Result<Option<ValidityMode>, SchemaError> {
    let Some(name) = get_str(table, "validity")? else {
        return Ok(None);
    };
    match name {
        "strict" => Ok(Some(ValidityMode::Strict)),
        "(1+α)-relaxed" | "(1+a)-relaxed" | "alpha-relaxed" => {
            let alpha = get_f64(table, "alpha")?.unwrap_or(0.0);
            if !(alpha.is_finite() && alpha >= 0.0) {
                return bad(format!("`alpha` must be finite and >= 0, got {alpha}"));
            }
            Ok(Some(ValidityMode::AlphaScaled(alpha)))
        }
        "k-relaxed" => {
            let k = get_usize(table, "k")?.unwrap_or(1);
            if k == 0 {
                return bad("`k` must be at least 1");
            }
            Ok(Some(ValidityMode::KRelaxed(k)))
        }
        other => bad(format!(
            "unknown validity `{other}` (expected strict, (1+α)-relaxed / \
             alpha-relaxed, or k-relaxed)"
        )),
    }
}

fn parse_campaign(table: &Table) -> Result<CampaignSpec, SchemaError> {
    let mut campaign = CampaignSpec::default();
    if let Some(value) = table.get("seeds") {
        let Some(items) = value.as_array() else {
            return bad("`seeds` must be an array of integers");
        };
        for item in items {
            match item.as_integer() {
                Some(i) if i >= 0 => campaign.seeds.push(i as u64),
                _ => return bad("`seeds` must contain non-negative integers"),
            }
        }
    }
    if let Some(range) = table.get("seed_range") {
        let items = range
            .as_array()
            .ok_or_else(|| SchemaError("`seed_range` must be [first, last]".into()))?;
        let bounds: Vec<i64> = items
            .iter()
            .map(|v| {
                v.as_integer()
                    .ok_or_else(|| SchemaError("`seed_range` bounds must be integers".into()))
            })
            .collect::<Result<_, _>>()?;
        if bounds.len() != 2 || bounds[0] < 0 || bounds[1] < bounds[0] {
            return bad("`seed_range` must be [first, last] with 0 <= first <= last");
        }
        let (first, last) = (bounds[0] as u64, bounds[1] as u64);
        campaign.seeds.extend(first..=last);
    }
    if let Some(value) = table.get("strategies") {
        let Some(items) = value.as_array() else {
            return bad("`strategies` must be an array of strategy names");
        };
        for item in items {
            let Some(name) = item.as_str() else {
                return bad("`strategies` must contain strategy names");
            };
            campaign.strategies.push(parse_strategy(name)?);
        }
    }
    if let Some(value) = table.get("policies") {
        let Some(items) = value.as_array() else {
            return bad("`policies` must be an array of policy names");
        };
        for item in items {
            let Some(name) = item.as_str() else {
                return bad("`policies` must contain policy names");
            };
            campaign.policies.push(parse_policy_name(name, None)?);
        }
    }
    if let Some(value) = table.get("topologies") {
        let Some(items) = value.as_array() else {
            return bad("`topologies` must be an array of topology names");
        };
        for item in items {
            let Some(name) = item.as_str() else {
                return bad("`topologies` must contain topology names");
            };
            campaign
                .topologies
                .push(TopologySpec::parse(name).map_err(SchemaError)?);
        }
    }
    if let Some(value) = table.get("alphas") {
        let Some(items) = value.as_array() else {
            return bad("`alphas` must be an array of numbers");
        };
        for item in items {
            match item.as_float() {
                Some(a) if a.is_finite() && a >= 0.0 => campaign.alphas.push(a),
                _ => return bad("`alphas` must contain finite numbers >= 0"),
            }
        }
    }
    if let Some(value) = table.get("ks") {
        let Some(items) = value.as_array() else {
            return bad("`ks` must be an array of positive integers");
        };
        for item in items {
            match item.as_integer() {
                Some(k) if k >= 1 => campaign.ks.push(k as usize),
                _ => return bad("`ks` must contain positive integers"),
            }
        }
    }
    if let Some(value) = table.get("broadcast") {
        let Some(items) = value.as_array() else {
            return bad("`broadcast` must be an array of broadcast model names");
        };
        for item in items {
            let Some(name) = item.as_str() else {
                return bad("`broadcast` must contain broadcast model names");
            };
            let model = BroadcastModel::from_name(name).ok_or_else(|| {
                SchemaError(format!(
                    "unknown broadcast model `{name}` (expected point-to-point or local)"
                ))
            })?;
            campaign.broadcasts.push(model);
        }
    }
    Ok(campaign)
}

fn parse_service(table: &Table) -> Result<ServiceSpec, SchemaError> {
    let instances = require(get_usize(table, "instances")?, "instances", "service")?;
    if instances == 0 {
        return bad("`instances` must be at least 1");
    }
    let batch = get_usize(table, "batch")?.unwrap_or(64);
    if batch == 0 {
        return bad("`batch` must be at least 1");
    }
    let workers = get_usize(table, "workers")?.unwrap_or(0);
    let seed_cycle = get_u64(table, "seed_cycle")?.unwrap_or(0);
    let mut strategies = Vec::new();
    if let Some(value) = table.get("strategies") {
        let Some(items) = value.as_array() else {
            return bad("`strategies` must be an array of strategy names");
        };
        for item in items {
            let Some(name) = item.as_str() else {
                return bad("`strategies` must contain strategy names");
            };
            strategies.push(parse_strategy(name)?);
        }
    }
    let shared_cache = match table.get("shared_cache") {
        None => true,
        Some(value) => value
            .as_bool()
            .ok_or_else(|| SchemaError("`shared_cache` must be a boolean".into()))?,
    };
    let sink = match get_str(table, "sink")? {
        None | Some("stdout") | Some("-") => None,
        Some(path) => Some(path.to_string()),
    };
    Ok(ServiceSpec {
        instances,
        batch,
        workers,
        seed_cycle,
        strategies,
        shared_cache,
        sink,
    })
}

impl ScenarioSpec {
    /// Parses a scenario from TOML text.
    ///
    /// # Errors
    ///
    /// Returns an error describing the first TOML or schema violation.
    pub fn from_toml(text: &str) -> Result<Self, SchemaError> {
        let root = parse(text).map_err(|e| SchemaError(e.to_string()))?;
        let scenario = root
            .get("scenario")
            .and_then(|v| v.as_table())
            .ok_or_else(|| SchemaError("missing [scenario] section".into()))?;

        let name = require(get_str(scenario, "name")?, "name", "scenario")?.to_string();
        let protocol_name = require(get_str(scenario, "protocol")?, "protocol", "scenario")?;
        let protocol = Protocol::from_name(protocol_name).ok_or_else(|| {
            SchemaError(format!(
                "unknown protocol `{protocol_name}` (expected exact, approx, \
                 restricted-sync, restricted-async, iterative, directed-exact \
                 or directed-exact-lb)"
            ))
        })?;
        let n = require(get_usize(scenario, "n")?, "n", "scenario")?;
        let f = require(get_usize(scenario, "f")?, "f", "scenario")?;
        let d = require(get_usize(scenario, "d")?, "d", "scenario")?;
        let epsilon = get_f64(scenario, "epsilon")?.unwrap_or(0.01);
        let seed = get_u64(scenario, "seed")?.unwrap_or(0);
        let max_steps = get_usize(scenario, "max_steps")?.unwrap_or(5_000_000);
        let value_bounds = match scenario.get("value_bounds") {
            None => (0.0, 1.0),
            Some(value) => {
                let bounds = float_list(value, "value_bounds")?;
                if bounds.len() != 2 {
                    return bad("`value_bounds` must be [lower, upper]");
                }
                (bounds[0], bounds[1])
            }
        };

        let inputs = parse_inputs(root.get("inputs").and_then(|v| v.as_table()), d)?;

        let strategy = match root.get("adversary").and_then(|v| v.as_table()) {
            Some(adversary) => parse_strategy(require(
                get_str(adversary, "strategy")?,
                "strategy",
                "adversary",
            )?)?,
            None => ByzantineStrategy::Equivocate,
        };

        let policy = match root.get("delivery").and_then(|v| v.as_table()) {
            Some(delivery) => parse_policy(delivery)?,
            None => DeliveryPolicy::RandomFair,
        };

        let mut faults = FaultPlan::new();
        if let Some(entries) = root.get("faults") {
            let Some(items) = entries.as_array() else {
                return bad("`faults` must be written as [[faults]] tables");
            };
            for item in items {
                let Some(table) = item.as_table() else {
                    return bad("`faults` must be written as [[faults]] tables");
                };
                let event = parse_fault(table)?;
                faults.push(event).map_err(|e| SchemaError(e.to_string()))?;
            }
        }

        let topology = match root.get("topology").and_then(|v| v.as_table()) {
            Some(table) => Some(parse_topology(table)?),
            None => None,
        };

        let validity = parse_validity(scenario)?;

        let campaign = match root.get("campaign").and_then(|v| v.as_table()) {
            Some(table) => Some(parse_campaign(table)?),
            None => None,
        };
        if let Some(spec) = &campaign {
            if !spec.broadcasts.is_empty() && protocol.broadcast_model().is_none() {
                return bad(format!(
                    "`broadcast` axis requires a directed protocol, got `{}`",
                    protocol.name()
                ));
            }
        }

        let service = match root.get("service").and_then(|v| v.as_table()) {
            Some(table) => Some(parse_service(table)?),
            None => None,
        };

        Ok(Self {
            name,
            protocol,
            n,
            f,
            d,
            epsilon,
            seed,
            max_steps,
            value_bounds,
            inputs,
            strategy,
            policy,
            faults,
            topology,
            validity,
            campaign,
            service,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
[scenario]
name = "example"
protocol = "approx"
n = 5
f = 1
d = 2
epsilon = 0.05
seed = 7
max_steps = 100000
value_bounds = [0.0, 1.0]

[inputs]
generator = "random-ball"
center = [0.5, 0.5]
radius = 0.25

[adversary]
strategy = "anti-convergence"

[delivery]
policy = "delay-from"
processes = [4]

[[faults]]
kind = "partition"
groups = [[0, 1]]
start = 0
duration = 200

[[faults]]
kind = "drop"
rate = 0.25
from = [4]
start = 0
duration = 100

[campaign]
seed_range = [0, 4]
strategies = ["equivocate", "silent"]
"#;

    #[test]
    fn full_example_parses() {
        let spec = ScenarioSpec::from_toml(EXAMPLE).unwrap();
        assert_eq!(spec.name, "example");
        assert_eq!(spec.protocol, Protocol::Approx);
        assert_eq!((spec.n, spec.f, spec.d), (5, 1, 2));
        assert_eq!(spec.epsilon, 0.05);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.max_steps, 100_000);
        assert!(
            matches!(spec.inputs, InputSpec::RandomBall { ref center, radius }
            if center == &vec![0.5, 0.5] && radius == 0.25)
        );
        assert_eq!(spec.strategy, ByzantineStrategy::AntiConvergence);
        assert_eq!(
            spec.policy,
            DeliveryPolicy::DelayFrom(vec![ProcessId::new(4)])
        );
        assert_eq!(spec.faults.events().len(), 2);
        let campaign = spec.campaign.unwrap();
        assert_eq!(campaign.seeds, vec![0, 1, 2, 3, 4]);
        assert_eq!(campaign.strategies.len(), 2);
    }

    #[test]
    fn minimal_scenario_gets_defaults() {
        let spec = ScenarioSpec::from_toml(
            "[scenario]\nname = \"tiny\"\nprotocol = \"exact\"\nn = 5\nf = 1\nd = 2\n",
        )
        .unwrap();
        assert_eq!(spec.inputs, InputSpec::Grid);
        assert_eq!(spec.strategy, ByzantineStrategy::Equivocate);
        assert_eq!(spec.policy, DeliveryPolicy::RandomFair);
        assert!(spec.faults.is_empty());
        assert!(spec.campaign.is_none());
        assert!(spec.topology.is_none(), "no [topology] ⇒ complete graph");
        assert!(
            spec.validity.is_none(),
            "no `validity` ⇒ strict, no metadata"
        );
        assert_eq!(spec.value_bounds, (0.0, 1.0));
    }

    #[test]
    fn validity_declarations_parse() {
        let base = "[scenario]\nname = \"v\"\nprotocol = \"exact\"\nn = 8\nf = 2\nd = 3\n";
        let strict = format!("{base}validity = \"strict\"\n");
        assert_eq!(
            ScenarioSpec::from_toml(&strict).unwrap().validity,
            Some(ValidityMode::Strict)
        );
        let alpha = format!("{base}validity = \"(1+α)-relaxed\"\nalpha = 0.5\n");
        assert_eq!(
            ScenarioSpec::from_toml(&alpha).unwrap().validity,
            Some(ValidityMode::AlphaScaled(0.5))
        );
        let ascii = format!("{base}validity = \"alpha-relaxed\"\n");
        assert_eq!(
            ScenarioSpec::from_toml(&ascii).unwrap().validity,
            Some(ValidityMode::AlphaScaled(0.0)),
            "alpha defaults to 0"
        );
        let k = format!("{base}validity = \"k-relaxed\"\nk = 2\n");
        assert_eq!(
            ScenarioSpec::from_toml(&k).unwrap().validity,
            Some(ValidityMode::KRelaxed(2))
        );
        let bad_name = format!("{base}validity = \"loose\"\n");
        assert!(ScenarioSpec::from_toml(&bad_name).is_err());
        let bad_alpha = format!("{base}validity = \"alpha-relaxed\"\nalpha = -1.0\n");
        assert!(ScenarioSpec::from_toml(&bad_alpha).is_err());
        let bad_k = format!("{base}validity = \"k-relaxed\"\nk = 0\n");
        assert!(ScenarioSpec::from_toml(&bad_k).is_err());
    }

    #[test]
    fn campaign_validity_axes_parse() {
        let text = "[scenario]\nname = \"v\"\nprotocol = \"exact\"\nn = 8\nf = 2\nd = 3\n\
            validity = \"(1+α)-relaxed\"\n\
            [campaign]\nalphas = [0.0, 0.5, 1.0]\nks = [1, 2]\n";
        let spec = ScenarioSpec::from_toml(text).unwrap();
        let campaign = spec.campaign.unwrap();
        assert_eq!(campaign.alphas, vec![0.0, 0.5, 1.0]);
        assert_eq!(campaign.ks, vec![1, 2]);
        assert_eq!(
            campaign.validity_axis(),
            vec![
                ValidityMode::AlphaScaled(0.0),
                ValidityMode::AlphaScaled(0.5),
                ValidityMode::AlphaScaled(1.0),
                ValidityMode::KRelaxed(1),
                ValidityMode::KRelaxed(2),
            ]
        );
        let bad = "[scenario]\nname = \"v\"\nprotocol = \"exact\"\nn = 8\nf = 2\nd = 3\n\
            [campaign]\nalphas = [-0.5]\n";
        assert!(ScenarioSpec::from_toml(bad).is_err());
        let bad_k = "[scenario]\nname = \"v\"\nprotocol = \"exact\"\nn = 8\nf = 2\nd = 3\n\
            [campaign]\nks = [0]\n";
        assert!(ScenarioSpec::from_toml(bad_k).is_err());
    }

    #[test]
    fn topology_sections_parse_in_long_and_compact_form() {
        let torus = "[scenario]\nname = \"t\"\nprotocol = \"iterative\"\nn = 8\nf = 1\nd = 1\n\
            [topology]\nkind = \"torus\"\nrows = 2\ncols = 4\n";
        let spec = ScenarioSpec::from_toml(torus).unwrap();
        assert_eq!(spec.protocol, Protocol::Iterative);
        assert!(!spec.protocol.is_async());
        assert_eq!(
            spec.topology,
            Some(TopologySpec::Torus { rows: 2, cols: 4 })
        );

        let compact = "[scenario]\nname = \"t\"\nprotocol = \"iterative\"\nn = 8\nf = 1\nd = 1\n\
            [topology]\nkind = \"random-regular:4\"\n";
        let spec = ScenarioSpec::from_toml(compact).unwrap();
        assert_eq!(
            spec.topology,
            Some(TopologySpec::RandomRegular { degree: 4 })
        );

        let explicit = "[scenario]\nname = \"t\"\nprotocol = \"iterative\"\nn = 3\nf = 0\nd = 1\n\
            [topology]\nkind = \"explicit\"\nedges = [[0, 1], [1, 2]]\nundirected = true\n";
        let spec = ScenarioSpec::from_toml(explicit).unwrap();
        assert_eq!(
            spec.topology,
            Some(TopologySpec::Explicit {
                edges: vec![(0, 1), (1, 2)],
                undirected: true,
            })
        );
    }

    #[test]
    fn bad_topology_sections_are_rejected() {
        let unknown = "[scenario]\nname = \"t\"\nprotocol = \"iterative\"\nn = 8\nf = 1\nd = 1\n\
            [topology]\nkind = \"moebius\"\n";
        assert!(ScenarioSpec::from_toml(unknown).is_err());
        let bad_edges = "[scenario]\nname = \"t\"\nprotocol = \"iterative\"\nn = 3\nf = 0\nd = 1\n\
            [topology]\nkind = \"explicit\"\nedges = [[0, 1, 2]]\n";
        assert!(ScenarioSpec::from_toml(bad_edges).is_err());
    }

    #[test]
    fn campaign_topology_axis_parses() {
        let text = "[scenario]\nname = \"t\"\nprotocol = \"iterative\"\nn = 8\nf = 1\nd = 1\n\
            [campaign]\ntopologies = [\"complete\", \"ring\", \"torus:2x4\"]\n";
        let spec = ScenarioSpec::from_toml(text).unwrap();
        let campaign = spec.campaign.unwrap();
        assert_eq!(
            campaign.topologies,
            vec![
                TopologySpec::Complete,
                TopologySpec::Ring,
                TopologySpec::Torus { rows: 2, cols: 4 },
            ]
        );
        let bad = "[scenario]\nname = \"t\"\nprotocol = \"iterative\"\nn = 8\nf = 1\nd = 1\n\
            [campaign]\ntopologies = [\"klein-bottle\"]\n";
        assert!(ScenarioSpec::from_toml(bad).is_err());
    }

    #[test]
    fn directed_protocols_and_the_broadcast_axis_parse() {
        let text =
            "[scenario]\nname = \"dir\"\nprotocol = \"directed-exact\"\nn = 8\nf = 1\nd = 2\n\
            [topology]\nkind = \"ring\"\n\
            [campaign]\nbroadcast = [\"point-to-point\", \"local\"]\n";
        let spec = ScenarioSpec::from_toml(text).unwrap();
        assert_eq!(spec.protocol, Protocol::DirectedExact);
        assert!(!spec.protocol.is_async());
        assert_eq!(
            spec.protocol.broadcast_model(),
            Some(BroadcastModel::PointToPoint)
        );
        let campaign = spec.campaign.unwrap();
        assert_eq!(
            campaign.broadcasts,
            vec![BroadcastModel::PointToPoint, BroadcastModel::Local]
        );

        let lb =
            "[scenario]\nname = \"dir\"\nprotocol = \"directed-exact-lb\"\nn = 8\nf = 1\nd = 2\n";
        let spec = ScenarioSpec::from_toml(lb).unwrap();
        assert_eq!(spec.protocol, Protocol::DirectedExactLb);
        assert_eq!(spec.protocol.broadcast_model(), Some(BroadcastModel::Local));
    }

    #[test]
    fn with_broadcast_flips_only_the_directed_pair() {
        assert_eq!(
            Protocol::DirectedExact.with_broadcast(BroadcastModel::Local),
            Some(Protocol::DirectedExactLb)
        );
        assert_eq!(
            Protocol::DirectedExactLb.with_broadcast(BroadcastModel::PointToPoint),
            Some(Protocol::DirectedExact)
        );
        assert_eq!(
            Protocol::DirectedExactLb.with_broadcast(BroadcastModel::Local),
            Some(Protocol::DirectedExactLb)
        );
        for protocol in [
            Protocol::Exact,
            Protocol::Approx,
            Protocol::RestrictedSync,
            Protocol::RestrictedAsync,
            Protocol::Iterative,
        ] {
            assert_eq!(protocol.with_broadcast(BroadcastModel::Local), None);
            assert_eq!(protocol.broadcast_model(), None);
        }
    }

    #[test]
    fn broadcast_axis_is_rejected_off_the_directed_protocols() {
        let wrong_protocol =
            "[scenario]\nname = \"b\"\nprotocol = \"exact\"\nn = 5\nf = 1\nd = 2\n\
            [campaign]\nbroadcast = [\"local\"]\n";
        let err = ScenarioSpec::from_toml(wrong_protocol).unwrap_err();
        assert!(err.to_string().contains("requires a directed protocol"));
        let unknown_model =
            "[scenario]\nname = \"b\"\nprotocol = \"directed-exact\"\nn = 8\nf = 1\nd = 2\n\
            [campaign]\nbroadcast = [\"telepathy\"]\n";
        let err = ScenarioSpec::from_toml(unknown_model).unwrap_err();
        assert!(err.to_string().contains("unknown broadcast model"));
    }

    #[test]
    fn strategy_names_round_trip() {
        assert_eq!(
            parse_strategy("crash:3").unwrap(),
            ByzantineStrategy::Crash(3)
        );
        assert_eq!(parse_strategy("silent").unwrap(), ByzantineStrategy::Silent);
        assert_eq!(
            parse_strategy("split-brain:6").unwrap(),
            ByzantineStrategy::SplitBrain(6),
        );
        assert!(parse_strategy("nope").is_err());
        assert!(parse_strategy("crash:x").is_err());
        assert!(parse_strategy("split-brain:x").is_err());
    }

    #[test]
    fn from_plus_to_selects_directed_links_only() {
        let text = "[scenario]\nname = \"a\"\nprotocol = \"approx\"\nn = 5\nf = 1\nd = 1\n\
            [[faults]]\nkind = \"drop\"\nrate = 1.0\nfrom = [0]\nto = [1]\n\
            start = 0\nduration = 10\n";
        let spec = ScenarioSpec::from_toml(text).unwrap();
        // The fault covers 0 → 1 but must leave the reply link 1 → 0 alone.
        assert_eq!(spec.faults.drop_probability(0, 0, 1), 1.0);
        assert_eq!(spec.faults.drop_probability(0, 1, 0), 0.0);
    }

    #[test]
    fn seed_range_rejects_non_integers() {
        let text = "[scenario]\nname = \"a\"\nprotocol = \"approx\"\nn = 5\nf = 1\nd = 1\n\
            [campaign]\nseed_range = [0, 24.9]\n";
        assert!(ScenarioSpec::from_toml(text).is_err());
    }

    #[test]
    fn schema_violations_are_reported() {
        assert!(ScenarioSpec::from_toml("x = 1").is_err());
        let missing_n = "[scenario]\nname = \"a\"\nprotocol = \"exact\"\nf = 1\nd = 2\n";
        assert!(ScenarioSpec::from_toml(missing_n).is_err());
        let bad_protocol =
            "[scenario]\nname = \"a\"\nprotocol = \"quantum\"\nn = 4\nf = 1\nd = 2\n";
        assert!(ScenarioSpec::from_toml(bad_protocol).is_err());
        let never_expires =
            "[scenario]\nname = \"a\"\nprotocol = \"approx\"\nn = 4\nf = 1\nd = 1\n\
            [[faults]]\nkind = \"partition\"\ngroups = [[0]]\nstart = 0\nduration = 0\n";
        assert!(ScenarioSpec::from_toml(never_expires).is_err());
    }

    #[test]
    fn service_sections_parse_with_defaults_and_rotation() {
        let base =
            "[scenario]\nname = \"svc\"\nprotocol = \"restricted-sync\"\nn = 5\nf = 1\nd = 2\n";
        let minimal = format!("{base}[service]\ninstances = 10\n");
        let spec = ScenarioSpec::from_toml(&minimal).unwrap();
        let service = spec.service.unwrap();
        assert_eq!(service.instances, 10);
        assert_eq!(service.batch, 64);
        assert_eq!(service.workers, 0);
        assert_eq!(service.seed_cycle, 0);
        assert!(service.strategies.is_empty());
        assert!(service.shared_cache);
        assert_eq!(service.sink, None, "default sink is stdout");

        let full = format!(
            "{base}[service]\ninstances = 200\nbatch = 32\nworkers = 4\nseed_cycle = 20\n\
             strategies = [\"equivocate\", \"crash:2\"]\nshared_cache = false\n\
             sink = \"out.jsonl\"\n"
        );
        let service = ScenarioSpec::from_toml(&full).unwrap().service.unwrap();
        assert_eq!(
            (service.instances, service.batch, service.workers),
            (200, 32, 4)
        );
        assert_eq!(service.seed_cycle, 20);
        assert_eq!(
            service.strategies,
            vec![ByzantineStrategy::Equivocate, ByzantineStrategy::Crash(2)]
        );
        assert!(!service.shared_cache);
        assert_eq!(service.sink.as_deref(), Some("out.jsonl"));

        let stdout = format!("{base}[service]\ninstances = 1\nsink = \"-\"\n");
        assert_eq!(
            ScenarioSpec::from_toml(&stdout)
                .unwrap()
                .service
                .unwrap()
                .sink,
            None
        );
    }

    #[test]
    fn degenerate_service_sections_are_rejected() {
        let base = "[scenario]\nname = \"svc\"\nprotocol = \"exact\"\nn = 5\nf = 1\nd = 2\n";
        for body in [
            "[service]\n",                           // missing instances
            "[service]\ninstances = 0\n",            // empty stream
            "[service]\ninstances = 5\nbatch = 0\n", // zero batch
            "[service]\ninstances = 5\nstrategies = [\"nope\"]\n",
        ] {
            let text = format!("{base}{body}");
            assert!(ScenarioSpec::from_toml(&text).is_err(), "accepted: {body}");
        }
    }

    #[test]
    fn explicit_inputs_must_match_dimension() {
        let text = "[scenario]\nname = \"a\"\nprotocol = \"exact\"\nn = 5\nf = 1\nd = 2\n\
            [inputs]\ngenerator = \"explicit\"\npoints = [[0.0, 0.0], [1.0]]\n";
        assert!(ScenarioSpec::from_toml(text).is_err());
    }
}
