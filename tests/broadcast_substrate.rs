//! Integration tests: the Byzantine-broadcast substrate keeps its two
//! defining properties when driven through the synchronous network executor
//! with protocol-aware Byzantine processes (not just the hand-rolled loops of
//! the unit tests), and the payload-agnostic adversary wrappers compose with
//! it.

use bvc::adversary::{CrashAfterSync, DuplicateSync, SilenceTowardsSync};
use bvc::broadcast::{BroadcastInstance, BroadcastMessage};
use bvc::geometry::Point;
use bvc::net::{broadcast_to_all, Delivery, Outgoing, ProcessId, SyncNetwork, SyncProcess};

/// A process participating in a single Byzantine-broadcast instance with a
/// designated source, over the synchronous executor.
struct BroadcastParticipant {
    me: usize,
    n: usize,
    instance: BroadcastInstance<Point>,
}

impl BroadcastParticipant {
    fn new(n: usize, f: usize, me: usize, source: usize, input: Option<Point>) -> Self {
        let mut instance = BroadcastInstance::new(n, f, me, source, Point::new(vec![0.0]));
        if let Some(value) = input {
            instance.set_input(value);
        }
        Self { me, n, instance }
    }
}

impl SyncProcess for BroadcastParticipant {
    type Msg = BroadcastMessage<Point>;
    type Output = Point;

    fn round(
        &mut self,
        round: usize,
        inbox: &[Delivery<BroadcastMessage<Point>>],
    ) -> Vec<Outgoing<BroadcastMessage<Point>>> {
        if round >= 2 {
            for delivery in inbox {
                self.instance
                    .receive(round - 1, delivery.from.index(), &delivery.msg);
            }
            self.instance.end_round(round - 1);
        }
        if round <= self.instance.rounds() {
            if let Some(msg) = self.instance.message_for_round(round) {
                return broadcast_to_all(self.n, Some(ProcessId::new(self.me)), &msg);
            }
        }
        Vec::new()
    }

    fn output(&self) -> Option<Point> {
        self.instance.decision().cloned()
    }
}

fn run_instance(
    n: usize,
    f: usize,
    source: usize,
    value: Point,
    wrap: impl Fn(
        usize,
        BroadcastParticipant,
    ) -> Box<dyn SyncProcess<Msg = BroadcastMessage<Point>, Output = Point>>,
) -> Vec<Option<Point>> {
    let processes: Vec<Box<dyn SyncProcess<Msg = BroadcastMessage<Point>, Output = Point>>> = (0
        ..n)
        .map(|me| {
            let input = if me == source {
                Some(value.clone())
            } else {
                None
            };
            wrap(me, BroadcastParticipant::new(n, f, me, source, input))
        })
        .collect();
    let wait: Vec<usize> = (0..n).collect();
    let outcome = SyncNetwork::new(processes, f + 4).run(&wait);
    outcome.outputs
}

#[test]
fn honest_source_value_adopted_over_the_executor() {
    let value = Point::new(vec![0.25]);
    let outputs = run_instance(4, 1, 0, value.clone(), |_, p| Box::new(p));
    for out in outputs {
        assert!(out.expect("decided").approx_eq(&value, 1e-12));
    }
}

#[test]
fn crashing_relay_does_not_break_agreement() {
    // Process 2 crashes after round 1 (it relays nothing in the EIG rounds).
    let value = Point::new(vec![0.75]);
    let outputs = run_instance(4, 1, 0, value.clone(), |me, p| {
        if me == 2 {
            Box::new(CrashAfterSync::new(p, 1))
        } else {
            Box::new(p)
        }
    });
    // The three live processes decide the source's value.
    for (i, out) in outputs.iter().enumerate() {
        if i == 2 {
            continue;
        }
        assert!(out.as_ref().expect("decided").approx_eq(&value, 1e-12));
    }
}

#[test]
fn selective_silence_towards_one_victim_does_not_break_agreement() {
    // Process 3 drops all its messages to process 1; with an honest source the
    // decision must still be the source's value everywhere.
    let value = Point::new(vec![0.5, 0.5]);
    let outputs = run_instance(4, 1, 0, value.clone(), |me, p| {
        if me == 3 {
            Box::new(SilenceTowardsSync::new(p, vec![ProcessId::new(1)]))
        } else {
            Box::new(p)
        }
    });
    for out in outputs.iter().take(3) {
        assert!(out.as_ref().expect("decided").approx_eq(&value, 1e-12));
    }
}

#[test]
fn duplicated_messages_are_harmless() {
    // Process 1 sends everything twice; first-write-wins in the EIG tree must
    // keep the outcome unchanged.
    let value = Point::new(vec![0.1, 0.9]);
    let outputs = run_instance(4, 1, 0, value.clone(), |me, p| {
        if me == 1 {
            Box::new(DuplicateSync::new(p))
        } else {
            Box::new(p)
        }
    });
    for out in outputs {
        assert!(out.expect("decided").approx_eq(&value, 1e-12));
    }
}

#[test]
fn seven_processes_two_crashing_relays() {
    let value = Point::new(vec![0.3, 0.3, 0.4]);
    let outputs = run_instance(7, 2, 1, value.clone(), |me, p| {
        if me == 5 || me == 6 {
            Box::new(CrashAfterSync::new(p, 2))
        } else {
            Box::new(p)
        }
    });
    for (i, out) in outputs.iter().enumerate() {
        if i == 5 || i == 6 {
            continue;
        }
        assert!(out.as_ref().expect("decided").approx_eq(&value, 1e-12));
    }
}
