//! Driver for the restricted-round synchronous algorithm (Section 4,
//! Theorem 6).

use super::{make_forge, BvcSession, DriverOutcome, ProtocolDriver};
use crate::restricted::{ByzantineRestrictedSync, RestrictedSyncProcess, StateMsg};
use bvc_geometry::Point;
use bvc_net::{SyncNetwork, SyncProcess, SyncScratch};
use std::cell::RefCell;

thread_local! {
    // Per-thread executor buffers: a worker thread deciding a stream of
    // instances (the service / campaign pools) reuses the n² per-link
    // queues across instances instead of reallocating them every run.
    static SCRATCH: RefCell<SyncScratch<StateMsg>> = RefCell::new(SyncScratch::new());
}

pub(super) struct RestrictedSyncDriver;

impl ProtocolDriver for RestrictedSyncDriver {
    fn execute(&self, session: &BvcSession) -> DriverOutcome {
        let config = session.params();
        let rc = session.config();
        // In a synchronous round every honest process sees the same states,
        // so each round's C(n, n−f) safe-area solves happen once system-wide
        // instead of once per process.
        let gamma_cache = session.gamma_cache().clone();
        let mut processes: Vec<Box<dyn SyncProcess<Msg = StateMsg, Output = Point>>> = Vec::new();
        for (i, input) in rc.honest_inputs.iter().enumerate() {
            processes.push(Box::new(
                RestrictedSyncProcess::new(config.clone(), i, input.clone())
                    .with_gamma_cache(gamma_cache.clone()),
            ));
        }
        for b in 0..config.f {
            let me = config.honest_count() + b;
            let forge = make_forge(rc.adversary, config, rc.seed, b);
            processes.push(Box::new(ByzantineRestrictedSync::new(
                config.clone(),
                me,
                forge,
            )));
        }
        let honest = session.honest_indices();
        let network = SyncNetwork::new(processes, RestrictedSyncProcess::total_rounds(config) + 1)
            .with_topology(session.topology().as_ref().clone())
            .with_faults(rc.faults.clone(), rc.seed);
        let outcome =
            SCRATCH.with(|scratch| network.run_with_scratch(&honest, &mut scratch.borrow_mut()));
        let decisions = session.honest_decisions(&outcome.outputs);
        let terminated = decisions.len() == honest.len();
        DriverOutcome {
            decisions,
            terminated,
            tolerance: config.epsilon,
            rounds: outcome.rounds,
            stats: outcome.stats,
            round_budget: None,
            outputs: Vec::new(),
            sufficiency: None,
        }
    }
}
