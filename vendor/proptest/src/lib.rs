//! Workspace-local stand-in for the slice of the `proptest` API this
//! repository uses: the [`proptest!`] macro with `#![proptest_config(...)]`,
//! range strategies, `prop::collection::vec`, `prop_map`, and the
//! `prop_assert!` family.
//!
//! The build environment has no crates.io access.  This harness generates
//! deterministic pseudo-random cases (seeded from the test name and the case
//! index, so failures are reproducible run-over-run) and panics on the first
//! failing case, printing the case number.  It does **not** shrink failing
//! inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic case generation internals.
pub mod test_runner {
    /// SplitMix64 generator used to derive test-case values.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator determined by the test name and case index.
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
            Self {
                state: hash ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Strategies: composable generators of test-case values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_strategy!(usize, u64, u32, i32);
}

/// The `prop` namespace (`prop::collection::vec`), mirroring
/// `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for fixed-length vectors of an element strategy.
        pub struct VecStrategy<S> {
            element: S,
            len: usize,
        }

        /// `len` independent draws from `element`.
        pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                (0..self.len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Per-block configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut proptest_rng =
                        $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut proptest_rng,
                        );
                    )+
                    let _ = case;
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 0.0f64..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec(0u64..100, 5)) {
            prop_assert_eq!(v.len(), 5);
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name_and_case() {
        let a = crate::test_runner::TestRng::deterministic("t", 3).next_u64();
        let b = crate::test_runner::TestRng::deterministic("t", 3).next_u64();
        let c = crate::test_runner::TestRng::deterministic("t", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
