//! Process-shareable memoisation of Γ queries.
//!
//! In a synchronous round every honest process receives the same broadcast
//! state vectors, so all of them evaluate `Γ` of *identical* multisets —
//! today's protocols would recompute the same intersection `n − f` times per
//! round.  [`GammaCache`] memoises [`find_point`](GammaCache::find_point) and
//! [`contains`](GammaCache::contains) results keyed by a **canonical multiset
//! key**: the members are sorted lexicographically (under `f64::total_cmp`)
//! and their coordinate bit patterns concatenated, so two multisets that
//! differ only in member order share one entry.  Because every Γ query is a
//! deterministic, order-invariant function of the multiset (see
//! [`crate::gamma`]), serving a result from the cache is observationally
//! identical to recomputing it — which is what makes the cache safe to share
//! across processes, rounds, and threads (`Arc<GammaCache>` =
//! [`SharedGammaCache`]).
//!
//! Memory is bounded: when a map reaches the configured capacity it is
//! wholesale-cleared (deterministically; eviction can never change results,
//! only cost).

use crate::gamma::{contains_impl, find_point_presorted};
use crate::multiset::PointMultiset;
use crate::point::Point;
use crate::relaxed::{k_relaxed_point, relaxed_gamma_point, ValidityPredicate};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A Γ-results cache shared between the processes of a run.
pub type SharedGammaCache = Arc<GammaCache>;

/// The validity regime of a cached point query.  Modes that are
/// semantically strict (`AlphaScaled(0)`, `KRelaxed(k ≥ d)`) normalise to
/// [`ModeKey::Strict`] so they share the strict entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ModeKey {
    Strict,
    Alpha(u64),
    K(usize),
}

impl ModeKey {
    fn normalise(mode: &ValidityPredicate, dim: usize) -> Self {
        match mode {
            ValidityPredicate::Strict => ModeKey::Strict,
            ValidityPredicate::AlphaScaled(alpha) if *alpha == 0.0 => ModeKey::Strict,
            ValidityPredicate::AlphaScaled(alpha) => ModeKey::Alpha(alpha.to_bits()),
            ValidityPredicate::KRelaxed(k) if *k >= dim => ModeKey::Strict,
            ValidityPredicate::KRelaxed(k) => ModeKey::K(*k),
        }
    }
}

/// Canonical identity of a `(Y, f, mode)` query: the fault bound, the
/// dimension, the validity regime, and the bit patterns of the canonically
/// ordered members.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MultisetKey {
    f: usize,
    dim: usize,
    mode: ModeKey,
    bits: Vec<u64>,
}

/// Key from a multiset already in canonical order (callers that need the
/// canonical multiset anyway — the miss path hands it to the engine —
/// canonicalise once and reuse it here).
fn key_of_canonical(canon: &PointMultiset, f: usize, mode: ModeKey) -> MultisetKey {
    let bits = canon
        .iter()
        .flat_map(|p| p.coords().iter().map(|c| c.to_bits()))
        .collect();
    MultisetKey {
        f,
        dim: canon.dim(),
        mode,
        bits,
    }
}

fn multiset_key(y: &PointMultiset, f: usize) -> MultisetKey {
    key_of_canonical(&crate::gamma::canonical_order(y), f, ModeKey::Strict)
}

fn point_bits(p: &Point) -> Vec<u64> {
    p.coords().iter().map(|c| c.to_bits()).collect()
}

/// Memoises safe-area queries across processes and rounds.
///
/// A cache may chain to a **parent** ([`Self::with_parent`]): misses are
/// answered by the parent (which memoises them in turn) instead of the Γ
/// engine.  A long-lived parent shared by many runs then measures exactly
/// the *cross-run* reuse — same-run repeats are absorbed by the per-run
/// child, so every parent hit is a query some earlier run already paid for.
#[derive(Debug)]
pub struct GammaCache {
    points: Mutex<HashMap<MultisetKey, Option<Point>>>,
    membership: Mutex<HashMap<(MultisetKey, Vec<u64>), bool>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    parent: Option<SharedGammaCache>,
}

impl Default for GammaCache {
    fn default() -> Self {
        Self::new()
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // The cached values are plain data; a panic elsewhere cannot leave them
    // half-written, so poisoning is ignorable.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl GammaCache {
    /// Default capacity: enough for the longest restricted-round executions
    /// the scenario engine drives (tens of thousands of distinct multisets)
    /// while staying far below typical memory budgets.
    const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Creates a cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a cache holding at most `capacity` entries per query kind.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            points: Mutex::new(HashMap::new()),
            membership: Mutex::new(HashMap::new()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            parent: None,
        }
    }

    /// Creates a cache ready for sharing across processes.
    pub fn shared() -> SharedGammaCache {
        Arc::new(Self::new())
    }

    /// Creates a default-capacity cache whose misses are resolved (and
    /// memoised) by `parent` instead of the Γ engine.
    ///
    /// Chaining is observationally transparent — every Γ query is a pure
    /// function of `(Y, f, mode)`, so a parent answer is identical to a
    /// recomputation.  The parent's hit counter counts exactly the queries
    /// that this child missed but some earlier sibling already computed.
    pub fn with_parent(parent: SharedGammaCache) -> Self {
        Self {
            parent: Some(parent),
            ..Self::new()
        }
    }

    /// The parent cache misses are delegated to, if any.
    pub fn parent(&self) -> Option<&SharedGammaCache> {
        self.parent.as_ref()
    }

    /// Memoised [`gamma_point`](crate::gamma_point): the deterministically
    /// chosen point of `Γ(y)`, or `None` when the safe area is empty.
    ///
    /// # Panics
    ///
    /// Panics if `f >= y.len()`.
    pub fn find_point(&self, y: &PointMultiset, f: usize) -> Option<Point> {
        assert!(
            f < y.len(),
            "fault bound f = {f} must be smaller than |Y| = {}",
            y.len()
        );
        // Canonicalise once: the key and the (miss-path) engine both need
        // the canonical order.
        let canon = crate::gamma::canonical_order(y);
        let key = key_of_canonical(&canon, f, ModeKey::Strict);
        if let Some(cached) = lock(&self.points).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = match &self.parent {
            Some(parent) => parent.find_point(&canon, f),
            None => find_point_presorted(canon, f),
        };
        let mut map = lock(&self.points);
        if map.len() >= self.capacity {
            map.clear();
        }
        map.insert(key, value.clone());
        value
    }

    /// Memoised [`decision_point`](crate::relaxed::decision_point): the
    /// deterministic Step-2 decision value for `(y, f)` under the given
    /// validity mode.  Modes that are semantically strict (`Strict`,
    /// `AlphaScaled(0)`, `KRelaxed(k ≥ d)`) share the strict
    /// [`find_point`](Self::find_point) entries; genuinely relaxed modes get
    /// their own — which is what lets the `n − f` honest processes of an
    /// exact run below the strict threshold compute the relaxed safe-area
    /// intersection once system-wide instead of once each.
    ///
    /// # Panics
    ///
    /// Panics if `f >= y.len()` or the mode's parameter is invalid.
    pub fn decision_point(
        &self,
        y: &PointMultiset,
        f: usize,
        mode: &ValidityPredicate,
    ) -> Option<Point> {
        let mode_key = ModeKey::normalise(mode, y.dim());
        if mode_key == ModeKey::Strict {
            return self.find_point(y, f);
        }
        assert!(
            f < y.len(),
            "fault bound f = {f} must be smaller than |Y| = {}",
            y.len()
        );
        let canon = crate::gamma::canonical_order(y);
        let key = key_of_canonical(&canon, f, mode_key.clone());
        if let Some(cached) = lock(&self.points).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = match (&self.parent, &mode_key) {
            (Some(parent), _) => parent.decision_point(&canon, f, mode),
            (None, ModeKey::Strict) => unreachable!("strict-normalised modes return above"),
            (None, ModeKey::Alpha(bits)) => relaxed_gamma_point(&canon, f, f64::from_bits(*bits)),
            // The k-relaxed rule prefers the strict Γ point; route that leg
            // through the cache so it shares the ModeKey::Strict entry
            // instead of re-solving the strict LP on every relaxed miss.
            (None, ModeKey::K(k)) => self
                .find_point(&canon, f)
                .or_else(|| k_relaxed_point(&canon, f, *k)),
        };
        let mut map = lock(&self.points);
        if map.len() >= self.capacity {
            map.clear();
        }
        map.insert(key, value.clone());
        value
    }

    /// Memoised [`gamma_contains`](crate::gamma_contains).
    ///
    /// # Panics
    ///
    /// Panics if `f >= y.len()` or the dimensions disagree.
    pub fn contains(&self, y: &PointMultiset, f: usize, point: &Point) -> bool {
        let key = (multiset_key(y, f), point_bits(point));
        if let Some(&cached) = lock(&self.membership).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = match &self.parent {
            Some(parent) => parent.contains(y, f, point),
            None => contains_impl(y, f, point),
        };
        let mut map = lock(&self.membership);
        if map.len() >= self.capacity {
            map.clear();
        }
        map.insert(key, value);
        value
    }

    /// Memoised [`gamma_is_empty`](crate::gamma_is_empty) (piggybacks on the
    /// `find_point` entry).
    ///
    /// # Panics
    ///
    /// Panics if `f >= y.len()`.
    pub fn is_empty_region(&self, y: &PointMultiset, f: usize) -> bool {
        self.find_point(y, f).is_none()
    }

    /// Queries answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Queries that had to be computed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries currently stored across both query kinds.
    pub fn len(&self) -> usize {
        lock(&self.points).len() + lock(&self.membership).len()
    }

    /// `true` when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma_point;

    fn square_plus_centre() -> PointMultiset {
        PointMultiset::new(vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![4.0, 0.0]),
            Point::new(vec![0.0, 4.0]),
            Point::new(vec![4.0, 4.0]),
            Point::new(vec![2.0, 2.0]),
        ])
    }

    #[test]
    fn cached_find_point_matches_uncached() {
        let cache = GammaCache::new();
        let y = square_plus_centre();
        let direct = gamma_point(&y, 1).unwrap();
        let cached = cache.find_point(&y, 1).unwrap();
        assert!(direct.approx_eq(&cached, 1e-15));
        assert_eq!(cache.misses(), 1);
        let again = cache.find_point(&y, 1).unwrap();
        assert!(direct.approx_eq(&again, 1e-15));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn reordered_multisets_share_an_entry() {
        let cache = GammaCache::new();
        let y = square_plus_centre();
        let mut reordered = y.points().to_vec();
        reordered.reverse();
        let reordered = PointMultiset::new(reordered);
        let a = cache.find_point(&y, 1).unwrap();
        let b = cache.find_point(&reordered, 1).unwrap();
        assert!(a.approx_eq(&b, 1e-15));
        assert_eq!(cache.misses(), 1, "canonical keying shares the entry");
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn membership_queries_are_cached_per_point() {
        let cache = GammaCache::new();
        let y = square_plus_centre();
        let inside = Point::new(vec![2.0, 2.0]);
        let outside = Point::new(vec![9.0, 9.0]);
        assert!(cache.contains(&y, 1, &inside));
        assert!(!cache.contains(&y, 1, &outside));
        assert_eq!(cache.misses(), 2);
        assert!(cache.contains(&y, 1, &inside));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_eviction_keeps_answers_correct() {
        let cache = GammaCache::with_capacity(2);
        for i in 0..5u8 {
            let y = PointMultiset::new(vec![
                Point::new(vec![0.0]),
                Point::new(vec![f64::from(i)]),
                Point::new(vec![2.0]),
            ]);
            let cached = cache.find_point(&y, 1);
            let direct = gamma_point(&y, 1);
            assert_eq!(cached.is_some(), direct.is_some());
            if let (Some(c), Some(d)) = (cached, direct) {
                assert!(c.approx_eq(&d, 1e-15));
            }
        }
        assert!(cache.len() <= 2);
    }

    #[test]
    fn empty_regions_are_cached_too() {
        let cache = GammaCache::new();
        let y = PointMultiset::new(vec![
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![0.0, 1.0]),
            Point::new(vec![0.0, 0.0]),
        ]);
        assert!(cache.is_empty_region(&y, 1));
        assert!(cache.is_empty_region(&y, 1));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn relaxed_decision_points_are_cached_per_mode() {
        let cache = GammaCache::new();
        let y = square_plus_centre();
        // Strict-normalised modes share the strict entry.
        let strict = cache.find_point(&y, 1).unwrap();
        let zero = cache
            .decision_point(&y, 1, &ValidityPredicate::AlphaScaled(0.0))
            .unwrap();
        assert_eq!(strict.coords(), zero.coords());
        assert_eq!(cache.misses(), 1, "α = 0 shares the strict entry");
        assert_eq!(cache.hits(), 1);
        // A genuinely relaxed mode gets its own entry, then hits it.
        let first = cache.decision_point(&y, 2, &ValidityPredicate::AlphaScaled(2.0));
        let again = cache.decision_point(&y, 2, &ValidityPredicate::AlphaScaled(2.0));
        assert_eq!(
            first.as_ref().map(|p| p.coords()),
            again.as_ref().map(|p| p.coords())
        );
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 2);
        // The cached relaxed value equals the uncached decision rule.
        let direct = crate::relaxed::decision_point(&y, 2, &ValidityPredicate::AlphaScaled(2.0));
        assert_eq!(
            first.map(|p| p.coords().to_vec()),
            direct.map(|p| p.coords().to_vec())
        );
    }

    #[test]
    fn parent_chaining_answers_child_misses_and_counts_cross_run_reuse() {
        let parent = GammaCache::shared();
        let y = square_plus_centre();

        // First "run": a fresh child misses, the parent misses, the engine
        // answers; both layers memoise.
        let first = GammaCache::with_parent(Arc::clone(&parent));
        let a = first.find_point(&y, 1).unwrap();
        assert_eq!((first.hits(), first.misses()), (0, 1));
        assert_eq!((parent.hits(), parent.misses()), (0, 1));
        // Same-run repeat: absorbed by the child, parent untouched.
        let _ = first.find_point(&y, 1);
        assert_eq!(first.hits(), 1);
        assert_eq!(parent.hits(), 0);

        // Second "run": a new child misses but the parent hits — the hit
        // counts exactly the cross-run reuse.
        let second = GammaCache::with_parent(Arc::clone(&parent));
        let b = second.find_point(&y, 1).unwrap();
        assert!(a.approx_eq(&b, 0.0), "parent answers are bit-identical");
        assert_eq!((second.hits(), second.misses()), (0, 1));
        assert_eq!((parent.hits(), parent.misses()), (1, 1));
        assert!(second.parent().is_some());
    }

    #[test]
    fn parent_chaining_is_observationally_transparent() {
        let parent = GammaCache::shared();
        let chained = GammaCache::with_parent(Arc::clone(&parent));
        let cold = GammaCache::new();
        let y = square_plus_centre();
        for (f, alpha) in [(1usize, 0.0), (1, 2.0), (2, 2.0)] {
            let mode = ValidityPredicate::AlphaScaled(alpha);
            let via_parent = chained.decision_point(&y, f, &mode);
            let direct = cold.decision_point(&y, f, &mode);
            assert_eq!(
                via_parent.map(|p| p.coords().to_vec()),
                direct.map(|p| p.coords().to_vec())
            );
        }
        let probe = Point::new(vec![2.0, 2.0]);
        assert_eq!(
            chained.contains(&y, 1, &probe),
            cold.contains(&y, 1, &probe)
        );
    }

    #[test]
    #[should_panic(expected = "smaller than")]
    fn oversized_fault_bound_panics() {
        let cache = GammaCache::new();
        let y = PointMultiset::new(vec![Point::new(vec![0.0])]);
        let _ = cache.find_point(&y, 1);
    }
}
