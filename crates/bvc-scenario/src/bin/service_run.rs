//! `service-run` — run a `[service]` scenario as a multi-shot consensus
//! stream with batched admission and streaming JSONL verdicts.
//!
//! ```text
//! cargo run --release -p bvc-scenario --bin service-run -- \
//!     --scenario scenarios/service/restricted_stream.toml \
//!     [--instances N] [--workers N] [--batch N] [--cold-cache] \
//!     [--out verdicts.jsonl] [--stats stats.json] [--trace trace.jsonl]
//! ```
//!
//! `--trace` writes the stream's deterministic `bvc-trace/v1` event trace:
//! each instance traces into its own slot (admission sequence + 1), so the
//! sorted trace is byte-identical across `--workers` settings.
//!
//! Verdict lines stream to stdout (default), or to the scenario's declared
//! `sink`, or to `--out` (highest precedence) — one JSON object per
//! instance, in admission order, written as each instance's turn comes up.
//! The aggregate [`ServiceStats`](bvc_service::ServiceStats) — decisions/sec,
//! latency percentiles, Γ-cache reuse, per-worker load — go to stderr as a
//! human summary and, with `--stats`, to a JSON file.  Exit code 0 means
//! every verdict held; 1 means some verdict was violated; 2 means the
//! stream could not be loaded or admitted.

use bvc_scenario::{service_config_from_spec, ScenarioSpec};
use bvc_service::{BvcService, CacheMode, JsonlSink, ServiceStats, VerdictSink};
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: service-run --scenario <file.toml> [--instances <n>] [--workers <n>] \
         [--batch <n>] [--cold-cache] [--out <file>] [--stats <file>] [--trace <file>]"
    );
    std::process::exit(2);
}

fn parse_count(value: Option<String>, flag: &str) -> usize {
    let value = value.unwrap_or_else(|| usage());
    value.parse().unwrap_or_else(|_| {
        eprintln!("service-run: invalid {flag} `{value}`");
        std::process::exit(2);
    })
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut scenario: Option<PathBuf> = None;
    let mut instances: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut batch: Option<usize> = None;
    let mut cold_cache = false;
    let mut out_path: Option<PathBuf> = None;
    let mut stats_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => scenario = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--instances" => instances = Some(parse_count(args.next(), "--instances")),
            "--workers" => workers = Some(parse_count(args.next(), "--workers")),
            "--batch" => batch = Some(parse_count(args.next(), "--batch")),
            "--cold-cache" => cold_cache = true,
            "--out" => out_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--stats" => stats_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--trace" => trace_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("service-run: unknown argument `{other}`");
                usage();
            }
        }
    }
    let Some(path) = scenario else { usage() };

    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("service-run: cannot read `{}`: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let mut spec = match ScenarioSpec::from_toml(&text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("service-run: `{}`: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    if let (Some(n), Some(service)) = (instances, spec.service.as_mut()) {
        service.instances = n;
    }

    let mut config = match service_config_from_spec(&spec) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("service-run: `{}`: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    if let Some(workers) = workers {
        config = config.workers(workers);
    }
    if let Some(batch) = batch {
        config = config.batch(batch);
    }
    if cold_cache {
        config = config.cache_mode(CacheMode::PerInstance);
    }

    let service = match BvcService::new(config) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("service-run: {e}");
            return ExitCode::from(2);
        }
    };

    // --out beats the scenario's declared sink; both beat stdout.
    let file_target = out_path.or_else(|| spec.service.as_ref()?.sink.as_ref().map(PathBuf::from));
    let stats = bvc_trace::run_traced(trace_path.as_deref(), || match file_target {
        Some(target) => {
            let file = match File::create(&target) {
                Ok(file) => file,
                Err(e) => {
                    eprintln!("service-run: cannot write `{}`: {e}", target.display());
                    std::process::exit(2);
                }
            };
            run(&service, &mut JsonlSink::new(BufWriter::new(file)))
        }
        None => run(&service, &mut JsonlSink::new(BufWriter::new(io::stdout()))),
    });
    let stats = match stats {
        Ok(Ok(stats)) => stats,
        Ok(Err(e)) => {
            eprintln!("service-run: {e}");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("service-run: cannot write trace: {e}");
            return ExitCode::from(2);
        }
    };

    eprintln!(
        "service-run: {} instance(s) in {:.1} ms → {:.1} decisions/sec \
         (latency p50 {:.3} ms, p99 {:.3} ms, max {:.3} ms)",
        stats.instances,
        stats.wall_ms,
        stats.decisions_per_sec,
        stats.latency.p50_ms,
        stats.latency.p99_ms,
        stats.latency.max_ms,
    );
    eprintln!(
        "service-run: {} decided, {} violated ({} contained panic(s)); \
         Γ-cache hit rate {:.1}% (cross-instance {:.1}%, {} shared hits); {} workers",
        stats.decided,
        stats.violated,
        stats.panicked,
        100.0 * stats.cache.hit_rate(),
        100.0 * stats.cache.cross_instance_hit_rate(),
        stats.cache.shared_hits,
        stats.workers.len(),
    );
    eprintln!(
        "service-run: backpressure queue depth max {}, mean {:.1} \
         (over {} sample(s))",
        stats.queue.max_depth,
        stats.queue.mean_depth,
        stats.queue.series.len(),
    );
    if let Some(path) = &stats_path {
        let mut json = stats.to_json();
        json.push('\n');
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("service-run: cannot write `{}`: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    let _ = io::stderr().flush();
    if stats.violated == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn run(
    service: &BvcService,
    sink: &mut dyn VerdictSink,
) -> Result<ServiceStats, bvc_service::ServiceError> {
    service.run(sink)
}
