//! Process identities and message envelopes.
//!
//! The paper's system model (Section 1): `n` processes
//! `P = {p_1, …, p_n}`, every pair connected by a reliable FIFO channel
//! (complete graph).  Processes are identified here by a zero-based
//! [`ProcessId`]; the paper's `p_i` corresponds to `ProcessId::new(i - 1)`.

use std::fmt;

/// Identifier of a process in the system (zero-based index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process id from its zero-based index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The zero-based index of the process.
    pub fn index(self) -> usize {
        self.0
    }

    /// All process ids `0..n`.
    pub fn all(n: usize) -> Vec<ProcessId> {
        (0..n).map(ProcessId::new).collect()
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // One-based in display, matching the paper's p_1..p_n.
        write!(f, "p{}", self.0 + 1)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        Self::new(index)
    }
}

/// A message queued for sending: destination plus payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Outgoing<M> {
    /// Destination process.
    pub to: ProcessId,
    /// Message payload.
    pub msg: M,
}

impl<M> Outgoing<M> {
    /// Creates an outgoing message.
    pub fn new(to: ProcessId, msg: M) -> Self {
        Self { to, msg }
    }
}

/// A delivered message: original sender plus payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery<M> {
    /// The process that sent the message.
    pub from: ProcessId,
    /// Message payload.
    pub msg: M,
}

impl<M> Delivery<M> {
    /// Creates a delivery record.
    pub fn new(from: ProcessId, msg: M) -> Self {
        Self { from, msg }
    }
}

/// Builds one copy of `msg` addressed to every process in `0..n` except
/// (optionally) the sender itself.
pub fn broadcast_to_all<M: Clone>(n: usize, exclude: Option<ProcessId>, msg: &M) -> Vec<Outgoing<M>> {
    ProcessId::all(n)
        .into_iter()
        .filter(|&p| Some(p) != exclude)
        .map(|p| Outgoing::new(p, msg.clone()))
        .collect()
}

/// Execution statistics common to the synchronous and asynchronous executors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionStats {
    /// Total number of messages delivered.
    pub messages_delivered: usize,
    /// Total number of messages sent (may exceed deliveries if the execution
    /// was cut off).
    pub messages_sent: usize,
    /// Number of synchronous rounds executed, or of scheduler steps for the
    /// asynchronous executor.
    pub steps: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip_and_display() {
        let p = ProcessId::new(2);
        assert_eq!(p.index(), 2);
        assert_eq!(format!("{p}"), "p3");
        let q: ProcessId = 5usize.into();
        assert_eq!(q.index(), 5);
    }

    #[test]
    fn all_ids_enumerates_in_order() {
        let ids = ProcessId::all(3);
        assert_eq!(ids, vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]);
    }

    #[test]
    fn broadcast_excludes_sender_when_requested() {
        let msgs = broadcast_to_all(4, Some(ProcessId::new(1)), &"hello");
        assert_eq!(msgs.len(), 3);
        assert!(msgs.iter().all(|m| m.to != ProcessId::new(1)));
    }

    #[test]
    fn broadcast_includes_everyone_without_exclusion() {
        let msgs = broadcast_to_all(3, None, &7u32);
        assert_eq!(msgs.len(), 3);
    }

    #[test]
    fn outgoing_and_delivery_constructors() {
        let out = Outgoing::new(ProcessId::new(0), 42);
        assert_eq!(out.to.index(), 0);
        assert_eq!(out.msg, 42);
        let del = Delivery::new(ProcessId::new(1), "x");
        assert_eq!(del.from.index(), 1);
    }

    #[test]
    fn stats_default_is_zeroed() {
        let s = ExecutionStats::default();
        assert_eq!(s.messages_delivered, 0);
        assert_eq!(s.messages_sent, 0);
        assert_eq!(s.steps, 0);
    }
}
