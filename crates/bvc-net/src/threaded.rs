//! Thread-backed runtime for asynchronous protocols.
//!
//! The event-queue simulator in [`crate::asim`] is the reference executor:
//! deterministic, seeded, adversarially scheduled.  This module provides a
//! second executor that runs every process on its own OS thread and carries
//! messages over `std::sync::mpsc` channels — i.e. real concurrency, real
//! non-determinism.  The examples use it to demonstrate that the protocol
//! implementations do not depend on any property of the simulator, and the
//! integration tests run both executors on identical inputs and compare
//! verdicts.
//!
//! Channels are reliable and per-sender FIFO (each sender pushes into the
//! receiver's queue in program order), matching the paper's model.

use crate::asim::AsyncProcess;
use crate::process::{enforce_local_broadcast, ExecutionStats, Outgoing, ProcessId};
use bvc_topology::Topology;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Outcome of a threaded execution.
#[derive(Debug, Clone)]
pub struct ThreadedOutcome<O> {
    /// Output of each process, by index (`None` if it never decided before
    /// the deadline).
    pub outputs: Vec<Option<O>>,
    /// Whether every waited-for process decided before the deadline.
    pub completed: bool,
    /// Aggregate statistics (`steps` counts delivered messages).
    pub stats: ExecutionStats,
}

struct Envelope<M> {
    from: ProcessId,
    msg: M,
}

/// Runs the given processes on one thread each until every process listed in
/// `wait_for` has produced an output or `deadline` elapses.
///
/// # Panics
///
/// Panics if `processes` is empty or any index in `wait_for` is out of range.
pub fn run_threaded<M, O>(
    processes: Vec<Box<dyn AsyncProcess<Msg = M, Output = O> + Send>>,
    wait_for: &[usize],
    deadline: Duration,
) -> ThreadedOutcome<O>
where
    M: Clone + Send + 'static,
    O: Clone + Send + 'static,
{
    let topology = Topology::complete(processes.len().max(1));
    run_threaded_on(processes, topology, wait_for, deadline)
}

/// [`run_threaded`] restricted to the links of `topology`: a message
/// addressed across a missing link is discarded instead of sent (it still
/// counts in `messages_sent`, matching the simulated executors).
///
/// # Panics
///
/// Panics if `processes` is empty, any index in `wait_for` is out of range,
/// or `topology.len()` differs from the process count.
pub fn run_threaded_on<M, O>(
    processes: Vec<Box<dyn AsyncProcess<Msg = M, Output = O> + Send>>,
    topology: Topology,
    wait_for: &[usize],
    deadline: Duration,
) -> ThreadedOutcome<O>
where
    M: Clone + Send + 'static,
    O: Clone + Send + 'static,
{
    run_threaded_with(processes, topology, false, wait_for, deadline)
}

/// [`run_threaded_on`] with a selectable delivery model: with
/// `local_broadcast` every outgoing batch is canonicalised with
/// [`enforce_local_broadcast`] before it is fanned out over the real
/// channels, so a sender cannot tell different receivers different things in
/// the same dispatch.
///
/// # Panics
///
/// Panics if `processes` is empty, any index in `wait_for` is out of range,
/// or `topology.len()` differs from the process count.
pub fn run_threaded_with<M, O>(
    processes: Vec<Box<dyn AsyncProcess<Msg = M, Output = O> + Send>>,
    topology: Topology,
    local_broadcast: bool,
    wait_for: &[usize],
    deadline: Duration,
) -> ThreadedOutcome<O>
where
    M: Clone + Send + 'static,
    O: Clone + Send + 'static,
{
    let n = processes.len();
    assert!(n > 0, "need at least one process");
    assert_eq!(
        topology.len(),
        n,
        "topology size must match the process count"
    );
    assert!(
        wait_for.iter().all(|&i| i < n),
        "wait_for indices must be valid process indices"
    );

    let mut senders: Vec<Sender<Envelope<M>>> = Vec::with_capacity(n);
    let mut receivers: Vec<Receiver<Envelope<M>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(rx);
    }

    let outputs: Arc<Mutex<Vec<Option<O>>>> = Arc::new(Mutex::new(vec![None; n]));
    let stop = Arc::new(AtomicBool::new(false));
    let delivered = Arc::new(AtomicUsize::new(0));
    let sent = Arc::new(AtomicUsize::new(0));

    let topology = Arc::new(topology);
    // Hand the caller's trace scope (if any) to the worker threads: each
    // process traces into its own slot (index + 1; slot 0 stays with the
    // spawning thread), so a sorted trace groups events per process in a
    // canonical order.  Event *content* still reflects real scheduling and
    // is not byte-deterministic — see the bvc-trace determinism contract.
    let trace_handle = bvc_trace::current_handle();
    let mut handles = Vec::with_capacity(n);
    for ((index, mut process), my_rx) in processes.into_iter().enumerate().zip(receivers) {
        let all_tx = senders.clone();
        let outputs = Arc::clone(&outputs);
        let stop = Arc::clone(&stop);
        let delivered = Arc::clone(&delivered);
        let sent = Arc::clone(&sent);
        let topology = Arc::clone(&topology);
        let trace_handle = trace_handle.clone();
        let handle = thread::spawn(move || {
            let slot = u32::try_from(index + 1).unwrap_or(u32::MAX);
            let _trace_scope = trace_handle.map(|h| bvc_trace::install(h, slot));
            let me = ProcessId::new(index);
            // Local logical clock: deliveries handled by this thread so far.
            let mut local_step = 0usize;
            let dispatch = |local_step: usize, mut outgoing: Vec<Outgoing<M>>| {
                if local_broadcast {
                    if let Some((receivers, slots)) = enforce_local_broadcast(&mut outgoing) {
                        bvc_trace::emit(|| bvc_trace::TraceEvent::LocalBroadcast {
                            time: local_step,
                            from: index,
                            receivers,
                            slots,
                        });
                    }
                }
                for Outgoing { to, msg } in outgoing {
                    if to.index() < all_tx.len() {
                        sent.fetch_add(1, Ordering::Relaxed);
                        bvc_trace::emit(|| bvc_trace::TraceEvent::Send {
                            time: local_step,
                            from: index,
                            to: to.index(),
                        });
                        if !topology.has_edge(index, to.index()) {
                            bvc_trace::emit(|| bvc_trace::TraceEvent::Vanish {
                                time: local_step,
                                from: index,
                                to: to.index(),
                            });
                            continue;
                        }
                        // A send only fails if the receiver hung up, which
                        // happens at shutdown; losing the message then is fine.
                        let _ = all_tx[to.index()].send(Envelope { from: me, msg });
                    }
                }
            };
            dispatch(local_step, process.on_start());
            if let Some(out) = process.output() {
                outputs.lock().expect("outputs lock poisoned")[index] = Some(out);
            }
            while !stop.load(Ordering::Relaxed) {
                match my_rx.recv_timeout(Duration::from_millis(5)) {
                    Ok(envelope) => {
                        delivered.fetch_add(1, Ordering::Relaxed);
                        local_step += 1;
                        bvc_trace::emit(|| bvc_trace::TraceEvent::Deliver {
                            time: local_step,
                            from: envelope.from.index(),
                            to: index,
                        });
                        let outgoing = process.on_message(envelope.from, envelope.msg);
                        dispatch(local_step, outgoing);
                        if let Some(out) = process.output() {
                            outputs.lock().expect("outputs lock poisoned")[index] = Some(out);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        });
        handles.push(handle);
    }

    // Supervise: wait until the waited-for processes have all decided or the
    // deadline passes.
    let start = Instant::now();
    let completed = loop {
        {
            let outs = outputs.lock().expect("outputs lock poisoned");
            if wait_for.iter().all(|&i| outs[i].is_some()) {
                break true;
            }
        }
        if start.elapsed() >= deadline {
            break false;
        }
        thread::sleep(Duration::from_millis(2));
    };

    stop.store(true, Ordering::Relaxed);
    drop(senders);
    for handle in handles {
        let _ = handle.join();
    }

    let outputs = match Arc::try_unwrap(outputs) {
        Ok(mutex) => mutex.into_inner().expect("outputs lock poisoned"),
        Err(arc) => arc.lock().expect("outputs lock poisoned").clone(),
    };
    let delivered_count = delivered.load(Ordering::Relaxed);
    ThreadedOutcome {
        outputs,
        completed,
        stats: ExecutionStats {
            messages_delivered: delivered_count,
            messages_sent: sent.load(Ordering::Relaxed),
            steps: delivered_count,
            ..ExecutionStats::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::broadcast_to_all;

    /// Same toy protocol as in the simulator tests: broadcast one value, sum
    /// the first n-1 received values.
    struct Summer {
        id: ProcessId,
        n: usize,
        value: u64,
        received: Vec<u64>,
        result: Option<u64>,
    }

    impl AsyncProcess for Summer {
        type Msg = u64;
        type Output = u64;

        fn on_start(&mut self) -> Vec<Outgoing<u64>> {
            broadcast_to_all(self.n, Some(self.id), &self.value)
        }

        fn on_message(&mut self, _from: ProcessId, msg: u64) -> Vec<Outgoing<u64>> {
            if self.result.is_none() {
                self.received.push(msg);
                if self.received.len() == self.n - 1 {
                    self.result = Some(self.received.iter().sum::<u64>() + self.value);
                }
            }
            Vec::new()
        }

        fn output(&self) -> Option<u64> {
            self.result
        }
    }

    fn summers(values: &[u64]) -> Vec<Box<dyn AsyncProcess<Msg = u64, Output = u64> + Send>> {
        let n = values.len();
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                Box::new(Summer {
                    id: ProcessId::new(i),
                    n,
                    value: v,
                    received: Vec::new(),
                    result: None,
                }) as Box<dyn AsyncProcess<Msg = u64, Output = u64> + Send>
            })
            .collect()
    }

    #[test]
    fn threads_exchange_messages_and_decide() {
        let outcome = run_threaded(
            summers(&[1, 2, 3, 4]),
            &[0, 1, 2, 3],
            Duration::from_secs(5),
        );
        assert!(outcome.completed);
        assert_eq!(
            outcome.outputs,
            vec![Some(10), Some(10), Some(10), Some(10)]
        );
        assert!(outcome.stats.messages_delivered >= 12);
    }

    #[test]
    fn deadline_is_respected_when_processes_cannot_decide() {
        // Two processes each expecting 2 messages but only one peer exists:
        // they can never decide.
        struct Stuck;
        impl AsyncProcess for Stuck {
            type Msg = u64;
            type Output = u64;
            fn on_start(&mut self) -> Vec<Outgoing<u64>> {
                Vec::new()
            }
            fn on_message(&mut self, _f: ProcessId, _m: u64) -> Vec<Outgoing<u64>> {
                Vec::new()
            }
            fn output(&self) -> Option<u64> {
                None
            }
        }
        let procs: Vec<Box<dyn AsyncProcess<Msg = u64, Output = u64> + Send>> =
            vec![Box::new(Stuck), Box::new(Stuck)];
        let outcome = run_threaded(procs, &[0, 1], Duration::from_millis(100));
        assert!(!outcome.completed);
        assert_eq!(outcome.outputs, vec![None, None]);
    }

    #[test]
    fn waiting_for_subset_only() {
        let outcome = run_threaded(summers(&[5, 6, 7]), &[1], Duration::from_secs(5));
        assert!(outcome.completed);
        assert_eq!(outcome.outputs[1], Some(18));
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_process_set_panics() {
        let procs: Vec<Box<dyn AsyncProcess<Msg = u64, Output = u64> + Send>> = Vec::new();
        let _ = run_threaded(procs, &[], Duration::from_millis(10));
    }

    #[test]
    fn local_broadcast_mode_still_decides() {
        let outcome = run_threaded_with(
            summers(&[1, 2, 3, 4]),
            Topology::complete(4),
            true,
            &[0, 1, 2, 3],
            Duration::from_secs(5),
        );
        assert!(outcome.completed);
        assert_eq!(
            outcome.outputs,
            vec![Some(10), Some(10), Some(10), Some(10)]
        );
    }

    #[test]
    fn topology_restricts_real_channels_too() {
        // On a 4-ring every Summer receives only its two neighbors' values —
        // one short of the n − 1 it waits for — so the deadline expires.
        let outcome = run_threaded_on(
            summers(&[1, 2, 3, 4]),
            Topology::ring(4),
            &[0, 1, 2, 3],
            Duration::from_millis(150),
        );
        assert!(!outcome.completed);
        assert!(outcome.outputs.iter().all(|o| o.is_none()));
    }
}
