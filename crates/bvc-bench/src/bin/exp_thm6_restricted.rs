//! E6 — Theorem 6: the restricted (simple) round structure.
//!
//! The simple all-to-all exchange needs more processes: `n ≥ (d+2)f+1`
//! synchronous and `n ≥ (d+4)f+1` asynchronous — a cost of `2f` relative to
//! the AAD-based algorithm in the asynchronous case.  This experiment runs
//! both restricted algorithms at their tight bounds under attack and shows
//! the builders reject configurations below the bounds.

use bvc_adversary::ByzantineStrategy;
use bvc_bench::{experiment_header, fmt, honest_workload, mark, Table};
use bvc_core::{BvcError, BvcSession, ProtocolKind, RunConfig, Setting};

fn main() {
    experiment_header(
        "E6: Theorem 6 — restricted round structure",
        "simple rounds need n ≥ (d+2)f+1 (sync) and n ≥ (d+4)f+1 (async); the asynchronous \
         structure costs 2f extra processes relative to the AAD-based algorithm of Theorem 5",
    );

    println!("### sufficiency at the tight bounds\n");
    let mut table = Table::new(&[
        "setting",
        "d",
        "f",
        "n (tight)",
        "adversary",
        "ε-agreement",
        "validity",
        "termination",
        "final spread",
    ]);
    let eps = 0.1;
    for &(d, f) in &[(1usize, 1usize), (2, 1)] {
        for strategy in [
            ByzantineStrategy::FixedOutlier,
            ByzantineStrategy::AntiConvergence,
        ] {
            // Synchronous restricted.
            let n = Setting::RestrictedSync.min_processes(d, f);
            let run = BvcSession::new(
                ProtocolKind::RestrictedSync,
                RunConfig::new(n, f, d)
                    .honest_inputs(honest_workload(600 + d as u64, n - f, d))
                    .adversary(strategy)
                    .epsilon(eps)
                    .seed(5),
            )
            .expect("bound satisfied")
            .run();
            let v = run.verdict();
            table.row(&[
                "sync".into(),
                d.to_string(),
                f.to_string(),
                n.to_string(),
                strategy.name().into(),
                mark(v.agreement),
                mark(v.validity),
                mark(v.termination),
                fmt(v.max_pairwise_distance, 6),
            ]);
            // Asynchronous restricted.
            let n = Setting::RestrictedAsync.min_processes(d, f);
            let run = BvcSession::new(
                ProtocolKind::RestrictedAsync,
                RunConfig::new(n, f, d)
                    .honest_inputs(honest_workload(700 + d as u64, n - f, d))
                    .adversary(strategy)
                    .epsilon(eps)
                    .seed(5),
            )
            .expect("bound satisfied")
            .run();
            let v = run.verdict();
            table.row(&[
                "async".into(),
                d.to_string(),
                f.to_string(),
                n.to_string(),
                strategy.name().into(),
                mark(v.agreement),
                mark(v.validity),
                mark(v.termination),
                fmt(v.max_pairwise_distance, 6),
            ]);
        }
    }
    table.print();

    println!("\n### the bounds are enforced (the session rejects n below the bound)\n");
    let mut table = Table::new(&["setting", "d", "f", "n requested", "required", "rejected"]);
    for &(d, f) in &[(1usize, 1usize), (2, 1)] {
        let n_sync = Setting::RestrictedSync.min_processes(d, f);
        let err = BvcSession::new(
            ProtocolKind::RestrictedSync,
            RunConfig::new(n_sync - 1, f, d).honest_inputs(honest_workload(3, n_sync - 1 - f, d)),
        );
        table.row(&[
            "sync".into(),
            d.to_string(),
            f.to_string(),
            (n_sync - 1).to_string(),
            n_sync.to_string(),
            mark(matches!(err, Err(BvcError::InsufficientProcesses { .. }))),
        ]);
        let n_async = Setting::RestrictedAsync.min_processes(d, f);
        let err = BvcSession::new(
            ProtocolKind::RestrictedAsync,
            RunConfig::new(n_async - 1, f, d).honest_inputs(honest_workload(4, n_async - 1 - f, d)),
        );
        table.row(&[
            "async".into(),
            d.to_string(),
            f.to_string(),
            (n_async - 1).to_string(),
            n_async.to_string(),
            mark(matches!(err, Err(BvcError::InsufficientProcesses { .. }))),
        ]);
    }
    table.print();

    println!("\n### the 2f gap vs the AAD-based algorithm (d = 1, f = 1)\n");
    let mut table = Table::new(&["algorithm", "processes required"]);
    table.row(&[
        "approximate BVC with AAD exchange (Thm 5)".into(),
        Setting::ApproxAsync.min_processes(1, 1).to_string(),
    ]);
    table.row(&[
        "restricted asynchronous rounds (Thm 6)".into(),
        Setting::RestrictedAsync.min_processes(1, 1).to_string(),
    ]);
    table.print();
    println!();
    println!(
        "The restricted structure trades 2f extra processes for one message delay per round \
         instead of the three causally chained delays of the AAD exchange — the trade-off the \
         paper highlights at the end of Section 1."
    );
}
