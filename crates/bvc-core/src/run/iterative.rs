//! Driver for iterative BVC on a (possibly incomplete) graph (Vaidya 2013,
//! arXiv:1307.2483).
//!
//! Unlike the paper's four complete-graph algorithms this driver accepts
//! `f = 0` (the fault-free baseline of the convergence analysis) and imposes
//! no closed-form resilience bound: solvability is governed by the
//! topology's `iterative_sufficiency` check, whose verdict the report
//! records.  A topology that *violates* the condition is not an error — the
//! run executes and the recorded sufficiency tells the caller the verdict
//! was expected-unsolvable.

use super::{make_forge, BvcSession, DriverOutcome, ProtocolDriver};
use crate::iterative::{iterative_round_budget, ByzantineIterativeProcess, IterativeBvcProcess};
use crate::restricted::StateMsg;
use bvc_geometry::Point;
use bvc_net::{SyncNetwork, SyncProcess};
use std::sync::Arc;

pub(super) struct IterativeDriver;

impl ProtocolDriver for IterativeDriver {
    fn execute(&self, session: &BvcSession) -> DriverOutcome {
        let config = session.params();
        let rc = session.config();
        let topology = Arc::clone(session.topology());
        // The sufficiency condition keeps the strict dimension regardless of
        // the validity mode: the update rule has no relaxed variant, so a
        // sparser graph does not become expected-solvable under lenient
        // scoring.
        let sufficiency = topology.iterative_sufficiency(config.f, config.d);

        // Neighborhood multisets overlap across processes and recur across
        // rounds once the states cluster; the run's cache deduplicates them.
        let gamma_cache = session.gamma_cache().clone();
        let mut processes: Vec<Box<dyn SyncProcess<Msg = StateMsg, Output = Point>>> = Vec::new();
        for (i, input) in rc.honest_inputs.iter().enumerate() {
            processes.push(Box::new(
                IterativeBvcProcess::new(config.clone(), i, input.clone(), Arc::clone(&topology))
                    .with_gamma_cache(gamma_cache.clone()),
            ));
        }
        for b in 0..config.f {
            let me = config.honest_count() + b;
            let forge = make_forge(rc.adversary, config, rc.seed, b);
            processes.push(Box::new(ByzantineIterativeProcess::new(
                me,
                Arc::clone(&topology),
                forge,
            )));
        }
        let honest = session.honest_indices();
        let outcome = SyncNetwork::new(processes, IterativeBvcProcess::total_rounds(config))
            .with_topology(topology.as_ref().clone())
            .with_faults(rc.faults.clone(), rc.seed)
            .run(&honest);
        let decisions = session.honest_decisions(&outcome.outputs);
        let terminated = decisions.len() == honest.len();
        DriverOutcome {
            decisions,
            terminated,
            tolerance: config.epsilon,
            rounds: outcome.rounds,
            stats: outcome.stats,
            round_budget: Some(iterative_round_budget(config)),
            outputs: Vec::new(),
            sufficiency: Some(sufficiency),
        }
    }
}
