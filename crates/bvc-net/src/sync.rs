//! Lock-step synchronous round executor.
//!
//! In the paper's synchronous model, computation proceeds in rounds: in every
//! round each process sends messages that are delivered before the next round
//! begins, and message delays are bounded by the round structure.  The
//! [`SyncNetwork`] executor reproduces this: it calls every process once per
//! round with the messages sent to it in the previous round, collects the
//! messages it wants to send, and delivers them (per-sender FIFO, complete
//! graph) at the start of the next round.
//!
//! Byzantine processes are ordinary [`SyncProcess`] implementations — they may
//! return arbitrary messages, including different messages to different
//! receivers (equivocation) or none at all (silence/crash); the adversary
//! crate provides reusable wrappers.

use crate::process::{Delivery, ExecutionStats, Outgoing, ProcessId};

/// A deterministic state machine driven by the synchronous executor.
///
/// `round` is called once per round, starting at round `1`, with the messages
/// delivered to this process at the start of the round (i.e. the messages sent
/// to it during the previous round, ordered by sender id, preserving
/// per-sender FIFO order).  It returns the messages to send during this round.
pub trait SyncProcess {
    /// Message payload type exchanged by the protocol.
    type Msg: Clone;
    /// Decision/output type of the protocol.
    type Output: Clone;

    /// Executes one synchronous round.
    fn round(&mut self, round: usize, inbox: &[Delivery<Self::Msg>]) -> Vec<Outgoing<Self::Msg>>;

    /// The process's decision, once reached.
    fn output(&self) -> Option<Self::Output>;
}

/// Outcome of running a synchronous execution to completion.
#[derive(Debug, Clone)]
pub struct SyncOutcome<O> {
    /// Output of each process, by process index (None if it never decided —
    /// e.g. a crashed or silent Byzantine process).
    pub outputs: Vec<Option<O>>,
    /// Number of rounds actually executed.
    pub rounds: usize,
    /// Message statistics.
    pub stats: ExecutionStats,
}

impl<O> SyncOutcome<O> {
    /// Outputs of the processes whose indices appear in `indices`, in order;
    /// `None` entries are skipped.
    pub fn outputs_of(&self, indices: &[usize]) -> Vec<&O> {
        indices
            .iter()
            .filter_map(|&i| self.outputs.get(i).and_then(|o| o.as_ref()))
            .collect()
    }
}

/// The synchronous executor over a complete graph of `n` processes.
pub struct SyncNetwork<M, O> {
    processes: Vec<Box<dyn SyncProcess<Msg = M, Output = O>>>,
    max_rounds: usize,
}

impl<M: Clone, O: Clone> SyncNetwork<M, O> {
    /// Creates an executor over the given processes (index = process id) with
    /// a safety cap on the number of rounds.
    ///
    /// # Panics
    ///
    /// Panics if `processes` is empty or `max_rounds == 0`.
    pub fn new(
        processes: Vec<Box<dyn SyncProcess<Msg = M, Output = O>>>,
        max_rounds: usize,
    ) -> Self {
        assert!(!processes.is_empty(), "need at least one process");
        assert!(max_rounds > 0, "max_rounds must be positive");
        Self {
            processes,
            max_rounds,
        }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// Always `false`; the constructor rejects empty process sets.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Runs rounds until every process listed in `wait_for` has produced an
    /// output, or the round cap is reached.  Typically `wait_for` is the set
    /// of non-faulty process indices (Byzantine processes need not terminate).
    pub fn run(mut self, wait_for: &[usize]) -> SyncOutcome<O> {
        let n = self.processes.len();
        let mut stats = ExecutionStats::default();
        // inboxes[i] = messages delivered to process i at the start of the
        // upcoming round.
        let mut inboxes: Vec<Vec<Delivery<M>>> = vec![Vec::new(); n];
        let mut rounds_executed = 0;

        for round in 1..=self.max_rounds {
            rounds_executed = round;
            let mut next_inboxes: Vec<Vec<Delivery<M>>> = vec![Vec::new(); n];
            for (index, process) in self.processes.iter_mut().enumerate() {
                let outgoing = process.round(round, &inboxes[index]);
                stats.messages_sent += outgoing.len();
                for Outgoing { to, msg } in outgoing {
                    if to.index() < n {
                        next_inboxes[to.index()].push(Delivery::new(ProcessId::new(index), msg));
                        stats.messages_delivered += 1;
                    }
                }
            }
            // Deterministic delivery order: sort by sender id (stable sort
            // preserves per-sender FIFO order).
            for inbox in next_inboxes.iter_mut() {
                inbox.sort_by_key(|d| d.from.index());
            }
            inboxes = next_inboxes;

            let all_decided = wait_for
                .iter()
                .all(|&i| self.processes[i].output().is_some());
            if all_decided {
                break;
            }
        }

        stats.steps = rounds_executed;
        let outputs = self.processes.iter().map(|p| p.output()).collect();
        SyncOutcome {
            outputs,
            rounds: rounds_executed,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::broadcast_to_all;

    /// A toy protocol: every process broadcasts its value each round; after
    /// `target_rounds` rounds it outputs the sum of everything it received in
    /// the last round plus its own value.
    struct SummingProcess {
        id: ProcessId,
        n: usize,
        value: u64,
        target_rounds: usize,
        result: Option<u64>,
    }

    impl SyncProcess for SummingProcess {
        type Msg = u64;
        type Output = u64;

        fn round(&mut self, round: usize, inbox: &[Delivery<u64>]) -> Vec<Outgoing<u64>> {
            if round > self.target_rounds {
                return Vec::new();
            }
            if round == self.target_rounds {
                let sum: u64 = inbox.iter().map(|d| d.msg).sum::<u64>() + self.value;
                self.result = Some(sum);
            }
            broadcast_to_all(self.n, Some(self.id), &self.value)
        }

        fn output(&self) -> Option<u64> {
            self.result
        }
    }

    fn summing_network(values: &[u64], target_rounds: usize) -> SyncNetwork<u64, u64> {
        let n = values.len();
        let processes: Vec<Box<dyn SyncProcess<Msg = u64, Output = u64>>> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                Box::new(SummingProcess {
                    id: ProcessId::new(i),
                    n,
                    value: v,
                    target_rounds,
                    result: None,
                }) as Box<dyn SyncProcess<Msg = u64, Output = u64>>
            })
            .collect();
        SyncNetwork::new(processes, 10)
    }

    #[test]
    fn all_processes_receive_all_messages_each_round() {
        let outcome = summing_network(&[1, 2, 3, 4], 2).run(&[0, 1, 2, 3]);
        // After round 2 every process has the other three values plus its own.
        assert_eq!(outcome.outputs, vec![Some(10), Some(10), Some(10), Some(10)]);
        assert_eq!(outcome.rounds, 2);
    }

    #[test]
    fn run_stops_as_soon_as_waited_processes_decide() {
        let outcome = summing_network(&[5, 6], 1).run(&[0, 1]);
        assert_eq!(outcome.rounds, 1);
        // Round 1 has an empty inbox, so each output is just its own value.
        assert_eq!(outcome.outputs, vec![Some(5), Some(6)]);
    }

    #[test]
    fn round_cap_prevents_infinite_runs() {
        // target_rounds beyond the cap: nobody decides, executor stops at cap.
        let outcome = summing_network(&[1, 1, 1], 99).run(&[0, 1, 2]);
        assert_eq!(outcome.rounds, 10);
        assert!(outcome.outputs.iter().all(|o| o.is_none()));
    }

    #[test]
    fn stats_count_messages() {
        let outcome = summing_network(&[1, 2, 3], 2).run(&[0, 1, 2]);
        // 3 processes broadcast to 2 others for 2 rounds = 12 messages.
        assert_eq!(outcome.stats.messages_sent, 12);
        assert_eq!(outcome.stats.messages_delivered, 12);
        assert_eq!(outcome.stats.steps, 2);
    }

    #[test]
    fn outputs_of_selects_indices() {
        let outcome = summing_network(&[1, 2, 3, 4], 2).run(&[0, 1, 2, 3]);
        let selected = outcome.outputs_of(&[1, 3]);
        assert_eq!(selected, vec![&10, &10]);
    }

    #[test]
    fn inbox_is_sorted_by_sender() {
        struct Recorder {
            id: ProcessId,
            n: usize,
            seen: Vec<usize>,
            done: Option<Vec<usize>>,
        }
        impl SyncProcess for Recorder {
            type Msg = ();
            type Output = Vec<usize>;
            fn round(&mut self, round: usize, inbox: &[Delivery<()>]) -> Vec<Outgoing<()>> {
                if round == 2 {
                    self.seen = inbox.iter().map(|d| d.from.index()).collect();
                    self.done = Some(self.seen.clone());
                    return Vec::new();
                }
                broadcast_to_all(self.n, Some(self.id), &())
            }
            fn output(&self) -> Option<Vec<usize>> {
                self.done.clone()
            }
        }
        let n = 4;
        let processes: Vec<Box<dyn SyncProcess<Msg = (), Output = Vec<usize>>>> = (0..n)
            .map(|i| {
                Box::new(Recorder {
                    id: ProcessId::new(i),
                    n,
                    seen: Vec::new(),
                    done: None,
                }) as Box<dyn SyncProcess<Msg = (), Output = Vec<usize>>>
            })
            .collect();
        let outcome = SyncNetwork::new(processes, 5).run(&(0..n).collect::<Vec<_>>());
        for (i, out) in outcome.outputs.iter().enumerate() {
            let senders = out.as_ref().unwrap();
            let expected: Vec<usize> = (0..n).filter(|&j| j != i).collect();
            assert_eq!(senders, &expected);
        }
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_network_panics() {
        let processes: Vec<Box<dyn SyncProcess<Msg = (), Output = ()>>> = Vec::new();
        let _ = SyncNetwork::new(processes, 1);
    }
}
