//! Declarative topology descriptions, materialised from the scenario seed.
//!
//! A [`TopologySpec`] names a topology *family*; [`TopologySpec::build`]
//! instantiates it for a concrete process count and seed.  Every family is a
//! deterministic function of `(n, seed)` — the random-regular family draws
//! its wiring from the seed, the others ignore it — so scenario verdicts
//! remain byte-identical for identical inputs.

use crate::graph::{Topology, TopologyError};

/// A topology family, as declared by a scenario file or a campaign axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologySpec {
    /// The complete graph (the paper's setting; the executor default).
    Complete,
    /// The bidirectional ring.
    Ring,
    /// The `rows × cols` torus (requires `rows * cols == n`).
    Torus {
        /// Number of grid rows.
        rows: usize,
        /// Number of grid columns.
        cols: usize,
    },
    /// A seeded random `degree`-regular undirected graph.
    RandomRegular {
        /// The uniform in- and out-degree.
        degree: usize,
    },
    /// An explicit edge list.
    Explicit {
        /// The `(from, to)` pairs.
        edges: Vec<(usize, usize)>,
        /// Whether each pair also adds the reverse link.
        undirected: bool,
    },
}

impl TopologySpec {
    /// The stable display name of the family, matching
    /// [`Topology::label`] (`complete`, `ring`, `torus:RxC`,
    /// `random-regular:K`, `explicit`).
    pub fn name(&self) -> String {
        match self {
            TopologySpec::Complete => "complete".into(),
            TopologySpec::Ring => "ring".into(),
            TopologySpec::Torus { rows, cols } => format!("torus:{rows}x{cols}"),
            TopologySpec::RandomRegular { degree } => format!("random-regular:{degree}"),
            TopologySpec::Explicit { .. } => "explicit".into(),
        }
    }

    /// Parses the compact string form used by campaign axes: `complete`,
    /// `ring`, `torus:RxC`, `random-regular:K`.  (Explicit edge lists are
    /// only expressible in a `[topology]` section, not as a sweep value.)
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed name.
    pub fn parse(name: &str) -> Result<Self, String> {
        if let Some(dims) = name.strip_prefix("torus:") {
            let Some((rows, cols)) = dims.split_once('x') else {
                return Err(format!("torus spec `{name}` must be torus:RxC"));
            };
            let parse = |s: &str| {
                s.parse::<usize>()
                    .map_err(|_| format!("torus spec `{name}` has a non-integer dimension"))
            };
            return Ok(TopologySpec::Torus {
                rows: parse(rows)?,
                cols: parse(cols)?,
            });
        }
        if let Some(degree) = name.strip_prefix("random-regular:") {
            let degree = degree
                .parse::<usize>()
                .map_err(|_| format!("random-regular spec `{name}` has a non-integer degree"))?;
            return Ok(TopologySpec::RandomRegular { degree });
        }
        match name {
            "complete" => Ok(TopologySpec::Complete),
            "ring" => Ok(TopologySpec::Ring),
            _ => Err(format!(
                "unknown topology `{name}` (expected complete, ring, torus:RxC or \
                 random-regular:K)"
            )),
        }
    }

    /// Materialises the family for `n` processes; `seed` drives the
    /// random-regular construction and is ignored by the seed-independent
    /// families.
    ///
    /// # Errors
    ///
    /// Propagates constructor rejections and a torus whose `rows * cols`
    /// does not equal `n`.
    pub fn build(&self, n: usize, seed: u64) -> Result<Topology, TopologyError> {
        if n == 0 {
            return Err(TopologyError::Invalid("need at least one process".into()));
        }
        match self {
            TopologySpec::Complete => Ok(Topology::complete(n)),
            TopologySpec::Ring => Ok(Topology::ring(n)),
            TopologySpec::Torus { rows, cols } => {
                if rows * cols != n {
                    return Err(TopologyError::Invalid(format!(
                        "torus {rows}x{cols} covers {} processes, scenario has n = {n}",
                        rows * cols
                    )));
                }
                Topology::torus(*rows, *cols)
            }
            TopologySpec::RandomRegular { degree } => Topology::random_regular(n, *degree, seed),
            TopologySpec::Explicit { edges, undirected } => {
                Topology::from_edges(n, edges, *undirected)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for name in ["complete", "ring", "torus:2x4", "random-regular:3"] {
            let spec = TopologySpec::parse(name).unwrap();
            assert_eq!(spec.name(), name);
        }
        assert!(TopologySpec::parse("moebius").is_err());
        assert!(TopologySpec::parse("torus:2by4").is_err());
        assert!(TopologySpec::parse("random-regular:x").is_err());
    }

    #[test]
    fn build_is_deterministic_in_n_and_seed() {
        let spec = TopologySpec::RandomRegular { degree: 4 };
        let a = spec.build(9, 3).unwrap();
        let b = spec.build(9, 3).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.label(), "random-regular:4");
    }

    #[test]
    fn torus_dimensions_must_cover_n() {
        let spec = TopologySpec::Torus { rows: 2, cols: 4 };
        assert!(spec.build(8, 0).is_ok());
        assert!(spec.build(9, 0).is_err());
    }

    #[test]
    fn explicit_spec_builds_directed_graphs() {
        let spec = TopologySpec::Explicit {
            edges: vec![(0, 1), (1, 2), (2, 0)],
            undirected: false,
        };
        let t = spec.build(3, 0).unwrap();
        assert!(t.has_edge(0, 1) && !t.has_edge(1, 0));
        assert_eq!(spec.name(), "explicit");
    }
}
