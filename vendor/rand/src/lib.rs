//! Workspace-local stand-in for the tiny slice of the `rand` crate API this
//! repository uses.
//!
//! The build environment for this reproduction has no access to crates.io, so
//! the workspace vendors the few interfaces it needs: a seeded deterministic
//! generator ([`rngs::StdRng`]), the [`SeedableRng`] construction trait and
//! the [`Rng`] sampling trait with `gen_range`/`gen_bool`.
//!
//! The generator is **not** the upstream `StdRng` stream (upstream makes no
//! cross-version stream guarantee either); it is a SplitMix64-scrambled
//! xoshiro256++ — statistically solid for simulation workloads and, most
//! importantly here, fully deterministic for a given seed on every platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from the range.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> Self::Output;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++ seeded
    /// via SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state; the
            // all-zero state is unreachable because SplitMix64 is a bijection
            // chain over distinct increments.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn integer_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_calibrated_roughly() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(3usize..3);
    }
}
