//! Full-corpus trace-transparency pin: the entire 178-instance campaign
//! expansion, executed **under an installed trace scope**, reproduces the
//! committed verdict corpus byte for byte.
//!
//! The cheap per-scenario version of this property (plus a proptest over
//! seeds) lives in `trace_pins.rs` and runs in tier-1; this test replays
//! the whole expansion including the n = 9 f = 2 sweep cells, which cost
//! minutes in debug builds, so it is ignored by default and meant to be
//! run in release mode:
//!
//! ```text
//! cargo test --release -p bvc-scenario --test traced_corpus -- --ignored
//! ```

use bvc_scenario::{expand, run_scenario_instance, ScenarioSpec};
use bvc_trace::TraceHandle;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
#[ignore]
fn traced_campaign_expansion_matches_the_committed_corpus() {
    let corpus: Vec<String> = std::fs::read_to_string(
        workspace_root().join("crates/bvc-scenario/tests/corpus/campaign_verdicts.jsonl"),
    )
    .expect("committed campaign corpus readable")
    .lines()
    .map(str::to_owned)
    .collect();

    let mut paths: Vec<PathBuf> = std::fs::read_dir(workspace_root().join("scenarios"))
        .expect("scenarios/ directory exists")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| path.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();

    let mut offset = 0usize;
    for (scenario_index, path) in paths.iter().enumerate() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(path).expect("scenario file readable");
        let spec = ScenarioSpec::from_toml(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        for (index, instance) in expand(scenario_index, &spec).iter().enumerate() {
            let handle = TraceHandle::jsonl();
            let fresh = {
                let _scope = bvc_trace::install(handle.clone(), 0);
                run_scenario_instance(
                    &instance.spec,
                    instance.seed,
                    instance.strategy,
                    instance.policy.clone(),
                    instance.topology.as_ref(),
                    instance.validity.as_ref(),
                )
                .unwrap_or_else(|e| panic!("{name}[{index}]: {e}"))
                .to_json()
            };
            assert_eq!(
                fresh, corpus[offset],
                "{name}[{index}]: tracing must not perturb the verdict"
            );
            assert!(
                !handle.finish().is_empty(),
                "{name}[{index}]: the traced run emitted no events"
            );
            offset += 1;
        }
    }
    assert_eq!(offset, corpus.len(), "corpus covers the whole expansion");
}
