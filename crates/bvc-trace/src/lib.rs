//! Deterministic structured tracing for the BVC stack.
//!
//! Every layer of the system — the simplex solver, the Γ engine and its
//! caches, the three network executors, the session drivers, the scenario
//! runner, and the multi-shot service — emits typed [`TraceEvent`]s through
//! a thread-local scope ([`scope::emit`]).  When no scope is installed
//! (the default), emission is one thread-local read and a branch; the event
//! closure is never evaluated, so an untraced run pays nothing and its
//! verdict stream is byte-identical to a traced one.
//!
//! # Determinism contract
//!
//! Events carry only *logical* time: rounds, delivery steps, and the
//! per-slot sequence numbers scopes assign at emission.  [`JsonlTracer`]
//! sorts its buffer by `(slot, seq)` before serialization, so the same
//! scenario + seed yields a byte-identical `bvc-trace/v1` document — across
//! runs, and (for the service, which reorders per-instance chunks by
//! admission sequence) across worker counts.  Wall-clock measurements are
//! quarantined on the optional timing channel
//! ([`TraceHandle::record_timing`]), which is *not* covered by the
//! byte-identity contract.
//!
//! See `crates/bvc-trace/README.md` for the full event schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod scope;
pub mod tracer;

pub use event::{CacheLevel, GammaPath, GammaQueryKind, TraceEvent, SCHEMA};
pub use json::{check_trace, parse_flat, JsonValue};
pub use scope::{
    current_handle, current_slot, emit, emit_timing, install, is_active, scope_token, ScopeGuard,
};
pub use tracer::{
    render_trace, run_traced, JsonlTracer, NoopTracer, TimingEntry, TraceHandle, Tracer,
};
