//! Graph-condition checkers for iterative BVC in incomplete graphs.
//!
//! *Iterative Byzantine Vector Consensus in Incomplete Graphs* (Vaidya 2013)
//! characterises solvability through 4-partition conditions in the style of
//! the directed-graph conditions of Tseng & Vaidya: split the processes into
//! `F` (potentially faulty, `|F| ≤ f`), and three non-faulty groups `L`, `C`,
//! `R` with `L` and `R` non-empty.  The sufficiency condition checked here
//! requires, **for every such partition**, that information can cross the
//! `L | R` divide strongly enough to survive trimming `f` values:
//!
//! > some node of `L` has at least `(d+1)f + 1` in-neighbors in `R ∪ C`, or
//! > some node of `R` has at least `(d+1)f + 1` in-neighbors in `L ∪ C`.
//!
//! The threshold `(d+1)f + 1` is exactly the Lemma-1 bound under which the
//! safe area `Γ` of the values received *across the divide* is guaranteed
//! non-empty after removing `f` of them — the step the convergence argument
//! of the iterative update needs.  With `d = 1` and threshold `f + 1` this is
//! the scalar condition of Vaidya–Liang–Tseng; the vector form is strictly
//! stronger (on the complete graph it amounts to `n ≥ (2d+3)f + 1`).  For
//! `f = 0` the threshold degenerates to 1 and the condition reduces to "every
//! `L | R` split is crossed by some edge", which every strongly connected
//! graph satisfies.
//!
//! The check enumerates all partitions exactly (choose `F`, then a ternary
//! assignment of the rest), so it is exponential in `n`; beyond a work budget
//! it reports [`Sufficiency::Unknown`] instead of guessing.

use crate::graph::Topology;

/// A partition `(F, L, C, R)` for which the sufficiency condition fails —
/// concrete evidence that the graph is *not* known to support iterative BVC
/// with the given `(f, d)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWitness {
    /// The faulty set `F` (`|F| ≤ f`).
    pub faulty: Vec<usize>,
    /// The left group `L` (non-empty).
    pub left: Vec<usize>,
    /// The center group `C` (possibly empty).
    pub center: Vec<usize>,
    /// The right group `R` (non-empty).
    pub right: Vec<usize>,
}

/// Outcome of the iterative-BVC sufficiency check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sufficiency {
    /// Every 4-partition satisfies the crossing condition: the iterative
    /// algorithm is expected to converge.
    Satisfied,
    /// Some partition violates the condition; the witness names it.  A
    /// scenario on this topology is *expected-unsolvable* — a failed verdict
    /// is data, not a regression.
    Violated(PartitionWitness),
    /// The graph is too large for exact enumeration within the work budget.
    Unknown,
}

impl Sufficiency {
    /// Stable label for reports (`satisfied`, `violated`, `unknown`).
    pub fn label(&self) -> &'static str {
        match self {
            Sufficiency::Satisfied => "satisfied",
            Sufficiency::Violated(_) => "violated",
            Sufficiency::Unknown => "unknown",
        }
    }

    /// `true` only for [`Sufficiency::Satisfied`].
    pub fn is_satisfied(&self) -> bool {
        matches!(self, Sufficiency::Satisfied)
    }
}

/// Group of a node in the ternary assignment of `V ∖ F`.
const LEFT: u8 = 0;
const CENTER: u8 = 1;
const RIGHT: u8 = 2;
/// Marker for members of `F` in the assignment array.
const FAULTY: u8 = 3;

/// Work budget for the exact enumeration: partitions × per-partition cost is
/// kept far below a second even in debug builds.
const ENUMERATION_BUDGET: u128 = 3_000_000;

impl Topology {
    /// Whether every process can reach every other along directed links.
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.len();
        if n <= 1 {
            return true;
        }
        let reaches_all = |neighbors: &dyn Fn(usize) -> Vec<usize>| {
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            seen[0] = true;
            let mut count = 1;
            while let Some(v) = stack.pop() {
                for w in neighbors(v) {
                    if !seen[w] {
                        seen[w] = true;
                        count += 1;
                        stack.push(w);
                    }
                }
            }
            count == n
        };
        reaches_all(&|v| self.out_neighbors(v).to_vec())
            && reaches_all(&|v| self.in_neighbors(v).to_vec())
    }

    /// Checks the iterative-BVC sufficiency condition for fault bound `f` and
    /// dimension `d` by exact enumeration of all `(F, L, C, R)` partitions
    /// (see the module docs for the condition and its provenance).
    ///
    /// # Panics
    ///
    /// Panics if `f >= n` or `d == 0`.
    pub fn iterative_sufficiency(&self, f: usize, d: usize) -> Sufficiency {
        let n = self.len();
        assert!(f < n, "fault bound f = {f} must be smaller than n = {n}");
        assert!(d > 0, "dimension must be positive");
        if n == 1 {
            return Sufficiency::Satisfied;
        }
        if enumeration_work(n, f) > ENUMERATION_BUDGET {
            return Sufficiency::Unknown;
        }
        let threshold = (d + 1) * f + 1;
        let mut assignment = vec![LEFT; n];
        let mut faulty: Vec<usize> = Vec::with_capacity(f);
        if let Some(witness) =
            self.search_faulty_sets(&mut faulty, 0, f, threshold, &mut assignment)
        {
            Sufficiency::Violated(witness)
        } else {
            Sufficiency::Satisfied
        }
    }

    /// Enumerates faulty sets `F` of size `0..=f` (members chosen in
    /// increasing order starting at `from`), then the ternary assignments of
    /// the remainder.  Returns the first violating partition found.
    fn search_faulty_sets(
        &self,
        faulty: &mut Vec<usize>,
        from: usize,
        f: usize,
        threshold: usize,
        assignment: &mut [u8],
    ) -> Option<PartitionWitness> {
        if let Some(witness) = self.search_assignments(faulty, threshold, assignment) {
            return Some(witness);
        }
        if faulty.len() == f {
            return None;
        }
        for next in from..self.len() {
            faulty.push(next);
            let witness = self.search_faulty_sets(faulty, next + 1, f, threshold, assignment);
            faulty.pop();
            if witness.is_some() {
                return witness;
            }
        }
        None
    }

    /// For a fixed `F`, walks every `L/C/R` assignment of the other nodes and
    /// returns the first one that violates the crossing condition.
    fn search_assignments(
        &self,
        faulty: &[usize],
        threshold: usize,
        assignment: &mut [u8],
    ) -> Option<PartitionWitness> {
        let n = self.len();
        let rest: Vec<usize> = (0..n).filter(|i| !faulty.contains(i)).collect();
        for (i, slot) in assignment.iter_mut().enumerate().take(n) {
            *slot = if faulty.contains(&i) { FAULTY } else { LEFT };
        }
        let combos = 3usize.pow(rest.len() as u32);
        for combo in 0..combos {
            let mut code = combo;
            let mut left_count = 0usize;
            let mut right_count = 0usize;
            for &node in &rest {
                let group = (code % 3) as u8;
                code /= 3;
                assignment[node] = group;
                match group {
                    LEFT => left_count += 1,
                    RIGHT => right_count += 1,
                    _ => {}
                }
            }
            if left_count == 0 || right_count == 0 {
                continue;
            }
            if !self.partition_condition_holds(assignment, threshold) {
                let collect = |group: u8| -> Vec<usize> {
                    (0..n).filter(|&i| assignment[i] == group).collect()
                };
                return Some(PartitionWitness {
                    faulty: faulty.to_vec(),
                    left: collect(LEFT),
                    center: collect(CENTER),
                    right: collect(RIGHT),
                });
            }
        }
        None
    }

    /// The crossing condition for one partition: a node of `L` with
    /// `threshold` in-neighbors in `R ∪ C`, or a node of `R` with `threshold`
    /// in-neighbors in `L ∪ C`.
    fn partition_condition_holds(&self, assignment: &[u8], threshold: usize) -> bool {
        for (node, &group) in assignment.iter().enumerate() {
            let across = match group {
                LEFT => RIGHT,
                RIGHT => LEFT,
                _ => continue,
            };
            let crossing = self
                .in_neighbors(node)
                .iter()
                .filter(|&&p| assignment[p] == across || assignment[p] == CENTER)
                .count();
            if crossing >= threshold {
                return true;
            }
        }
        false
    }
}

/// Upper bound on the enumeration work: `Σ_{k ≤ f} C(n, k) · 3^(n−k)`,
/// saturating.
fn enumeration_work(n: usize, f: usize) -> u128 {
    let mut total: u128 = 0;
    for k in 0..=f.min(n) {
        let choose = binomial_u128(n, k);
        let per = 3u128.checked_pow((n - k) as u32).unwrap_or(u128::MAX);
        total = total.saturating_add(choose.saturating_mul(per));
    }
    total
}

fn binomial_u128(n: usize, k: usize) -> u128 {
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result.saturating_mul((n - i) as u128) / (i as u128 + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_connectivity_basic_cases() {
        assert!(Topology::complete(4).is_strongly_connected());
        assert!(Topology::ring(7).is_strongly_connected());
        // A directed cycle is strongly connected; a directed path is not.
        let cycle = Topology::from_edges(3, &[(0, 1), (1, 2), (2, 0)], false).unwrap();
        assert!(cycle.is_strongly_connected());
        let path = Topology::from_edges(3, &[(0, 1), (1, 2)], false).unwrap();
        assert!(!path.is_strongly_connected());
    }

    #[test]
    fn complete_graph_threshold_matches_the_closed_form() {
        // On K_n the condition amounts to n ≥ (2d+3)f + 1.
        for (n, f, d, expected) in [
            (5usize, 1usize, 1usize, false),
            (6, 1, 1, true),
            (7, 2, 1, false),
            (11, 2, 1, true),
            (7, 1, 2, false),
            (8, 1, 2, true),
        ] {
            let verdict = Topology::complete(n).iterative_sufficiency(f, d);
            assert_eq!(
                verdict.is_satisfied(),
                expected,
                "K_{n} with f = {f}, d = {d}: {verdict:?}"
            );
        }
    }

    #[test]
    fn ring_is_violated_with_any_fault() {
        let verdict = Topology::ring(8).iterative_sufficiency(1, 1);
        let Sufficiency::Violated(witness) = verdict else {
            panic!("a ring cannot satisfy the condition with f = 1: {verdict:?}");
        };
        // The witness must be a genuine partition: F ≤ f, L and R non-empty,
        // groups disjoint and jointly exhaustive.
        assert!(witness.faulty.len() <= 1);
        assert!(!witness.left.is_empty() && !witness.right.is_empty());
        let mut all: Vec<usize> = witness
            .faulty
            .iter()
            .chain(&witness.left)
            .chain(&witness.center)
            .chain(&witness.right)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn f_zero_reduces_to_crossing_edges() {
        // Strongly connected ⇒ satisfied at f = 0 (threshold 1).
        assert!(Topology::ring(6).iterative_sufficiency(0, 3).is_satisfied());
        // a → b alone is fine (b adopts a), but two isolated nodes are not.
        let one_way = Topology::from_edges(2, &[(0, 1)], false).unwrap();
        assert!(one_way.iterative_sufficiency(0, 1).is_satisfied());
        let isolated = Topology::from_edges(2, &[], false).unwrap();
        assert!(!isolated.iterative_sufficiency(0, 1).is_satisfied());
    }

    #[test]
    fn any_six_regular_graph_on_eight_nodes_is_satisfied() {
        // In-degree n − 2 leaves at most one missing in-neighbor per node, so
        // no partition can starve both sides (see the README derivation).
        for seed in 0..5 {
            let t = Topology::random_regular(8, 6, seed).unwrap();
            assert!(t.iterative_sufficiency(1, 1).is_satisfied(), "seed {seed}");
        }
    }

    #[test]
    fn sparse_torus_is_violated_at_f_one() {
        let t = Topology::torus(2, 4).unwrap();
        assert!(matches!(
            t.iterative_sufficiency(1, 1),
            Sufficiency::Violated(_)
        ));
    }

    #[test]
    fn oversized_graphs_report_unknown() {
        let t = Topology::ring(40);
        assert_eq!(t.iterative_sufficiency(2, 2), Sufficiency::Unknown);
        assert_eq!(Sufficiency::Unknown.label(), "unknown");
    }

    #[test]
    fn singleton_graph_is_trivially_satisfied() {
        assert!(Topology::complete(1)
            .iterative_sufficiency(0, 2)
            .is_satisfied());
    }
}
