//! Simulated message-passing substrate for Byzantine vector consensus.
//!
//! The paper's model (Section 1): `n` processes on a **complete graph** with
//! **reliable FIFO channels**, in either a synchronous or an asynchronous
//! timing model.  This crate provides that substrate three ways:
//!
//! * [`SyncNetwork`] — a lock-step synchronous round executor (Section 2's
//!   model).
//! * [`AsyncNetwork`] — a deterministic, seeded, adversarially scheduled
//!   event simulator (Section 3's model); the [`DeliveryPolicy`] controls the
//!   scheduling adversary.
//! * [`run_threaded`] — a thread-per-process runtime over `std::sync::mpsc`
//!   channels, used by the examples and the cross-executor integration tests.
//!
//! Every executor is adjacency-aware: the complete graph is the default, and
//! a declared [`Topology`] (from `bvc-topology`) restricts delivery to the
//! declared links — see [`SyncNetwork::with_topology`],
//! [`AsyncNetwork::with_topology`] and [`run_threaded_on`].  Messages
//! addressed across a missing link vanish silently (the channel does not
//! exist), which makes the fault layer's scripted `Partition` the degenerate
//! time-windowed case of a static incomplete topology.
//!
//! Scenario-style adversarial *network* conditions — message drops, per-link
//! latency, scripted partitions — can be layered over either simulated
//! executor with a [`FaultPlan`] (see [`faults`]).
//!
//! Every executor also supports the **local-broadcast** delivery model of
//! Khan, Tseng & Vaidya (arXiv:1911.07298): with
//! [`SyncNetwork::with_local_broadcast`],
//! [`AsyncNetwork::with_local_broadcast`] or [`run_threaded_with`], each
//! sender's per-step outgoing batch is canonicalised by
//! [`enforce_local_broadcast`] so all receivers observe the same payloads —
//! per-receiver Byzantine equivocation becomes structurally impossible.
//! Canonicalisation happens *before* per-link faults, so drop/latency/
//! partition plans still compose per link.
//!
//! Protocols are written once against the [`SyncProcess`] / [`AsyncProcess`]
//! traits and can run on any of the executors that match their timing model.
//!
//! # Example
//!
//! A two-process echo protocol on the asynchronous simulator:
//!
//! ```
//! use bvc_net::{AsyncNetwork, AsyncProcess, DeliveryPolicy, Outgoing, ProcessId};
//!
//! struct Echo { done: Option<u32> }
//! impl AsyncProcess for Echo {
//!     type Msg = u32;
//!     type Output = u32;
//!     fn on_start(&mut self) -> Vec<Outgoing<u32>> {
//!         vec![Outgoing::new(ProcessId::new(1), 7)]
//!     }
//!     fn on_message(&mut self, _from: ProcessId, msg: u32) -> Vec<Outgoing<u32>> {
//!         self.done = Some(msg);
//!         Vec::new()
//!     }
//!     fn output(&self) -> Option<u32> { self.done }
//! }
//!
//! let processes: Vec<Box<dyn AsyncProcess<Msg = u32, Output = u32>>> =
//!     vec![Box::new(Echo { done: None }), Box::new(Echo { done: None })];
//! let outcome = AsyncNetwork::new(processes, DeliveryPolicy::RandomFair, 1, 100).run(&[1]);
//! assert_eq!(outcome.outputs[1], Some(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asim;
pub mod faults;
pub mod process;
pub mod sync;
pub mod threaded;

pub use asim::{AsyncNetwork, AsyncOutcome, AsyncProcess, DeliveryPolicy};
pub use bvc_topology::Topology;
pub use faults::{FaultError, FaultEvent, FaultKind, FaultPlan, LinkSelector};
pub use process::{
    broadcast_to_all, enforce_local_broadcast, Delivery, ExecutionStats, Outgoing, ProcessCounters,
    ProcessId,
};
pub use sync::{SyncNetwork, SyncOutcome, SyncProcess, SyncScratch};
pub use threaded::{run_threaded, run_threaded_on, run_threaded_with, ThreadedOutcome};
