//! Aggregate service statistics and the crate's deterministic JSON rules.

use bvc_net::ExecutionStats;
use std::fmt::Write as _;

/// Instance-latency percentiles, measured admission → verdict emission
/// hand-off (wall clock on the deciding worker).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyStats {
    /// Median instance latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile instance latency, milliseconds (nearest-rank).
    pub p99_ms: f64,
    /// Worst instance latency, milliseconds.
    pub max_ms: f64,
    /// Mean instance latency, milliseconds.
    pub mean_ms: f64,
}

impl LatencyStats {
    /// Nearest-rank percentiles over a latency sample (milliseconds).
    /// Returns zeros for an empty sample.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_by(f64::total_cmp);
        let rank = |q: f64| {
            let position = (q * samples.len() as f64).ceil() as usize;
            samples[position.clamp(1, samples.len()) - 1]
        };
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        Self {
            p50_ms: rank(0.50),
            p99_ms: rank(0.99),
            max_ms: *samples.last().expect("non-empty"),
            mean_ms: mean,
        }
    }
}

/// Two-level Γ-cache counters: `local` is the sum over per-instance child
/// caches, `shared` is the service-lifetime parent.  Every `shared` hit is
/// a query some earlier instance already computed — the cross-instance
/// reuse the service exists to measure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered by a per-instance cache.
    pub local_hits: u64,
    /// Queries that missed the per-instance cache.
    pub local_misses: u64,
    /// Local misses answered by the shared parent (cross-instance reuse).
    pub shared_hits: u64,
    /// Queries no instance had computed before (Γ-engine work).
    pub shared_misses: u64,
}

impl CacheStats {
    /// Fraction of instance-level queries answered without running the Γ
    /// engine (local or shared hit).  Zero for an empty stream.
    pub fn hit_rate(&self) -> f64 {
        let total = self.local_hits + self.local_misses;
        if total == 0 {
            return 0.0;
        }
        (self.local_hits + self.shared_hits) as f64 / total as f64
    }

    /// Fraction of parent-level queries answered by the shared cache —
    /// the cross-instance reuse rate.  Zero without a shared cache.
    pub fn cross_instance_hit_rate(&self) -> f64 {
        let total = self.shared_hits + self.shared_misses;
        if total == 0 {
            return 0.0;
        }
        self.shared_hits as f64 / total as f64
    }
}

/// Backpressure telemetry: the admitted-but-not-completed queue depth,
/// sampled once at every admission wave and once at every instance
/// completion.  The series is decimated to at most
/// [`MAX_SERIES`](Self::MAX_SERIES) bucket maxima so the JSON stays small
/// on long streams while the peaks (the interesting part of backpressure)
/// survive.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueueStats {
    /// Deepest observed queue (admitted − completed).
    pub max_depth: usize,
    /// Mean observed queue depth.
    pub mean_depth: f64,
    /// Decimated depth-over-time series, in sample order; each entry is
    /// the maximum of one contiguous bucket of raw samples.
    pub series: Vec<usize>,
}

impl QueueStats {
    /// Upper bound on the decimated series length.
    pub const MAX_SERIES: usize = 32;

    /// Aggregates a raw sample series (in observation order).
    pub fn from_samples(samples: &[usize]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let bucket = samples.len().div_ceil(Self::MAX_SERIES);
        let series = samples
            .chunks(bucket)
            .map(|chunk| *chunk.iter().max().expect("non-empty chunk"))
            .collect();
        Self {
            max_depth: *samples.iter().max().expect("non-empty"),
            mean_depth: samples.iter().sum::<usize>() as f64 / samples.len() as f64,
            series,
        }
    }
}

/// One worker's share of the stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerStats {
    /// Instances this worker decided.
    pub instances: usize,
    /// Wall-clock time spent executing instances, milliseconds.
    pub busy_ms: f64,
    /// `busy_ms` over the stream's wall time (0..=1, roughly).
    pub utilization: f64,
}

/// Aggregate outcome of one service stream.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Stream label (echoed from the config).
    pub label: String,
    /// Instances executed.
    pub instances: usize,
    /// Instances whose every honest process decided in budget.
    pub decided: usize,
    /// Instances whose verdict violated agreement, validity or
    /// termination.
    pub violated: usize,
    /// Instances that panicked inside the pool and were contained (each is
    /// also counted in `violated`: a panic is a failed verdict).
    pub panicked: usize,
    /// Stream wall time, milliseconds.
    pub wall_ms: f64,
    /// Decided instances per wall-clock second — the service's primary
    /// throughput metric.
    pub decisions_per_sec: f64,
    /// Instance-latency percentiles.
    pub latency: LatencyStats,
    /// Two-level Γ-cache counters.
    pub cache: CacheStats,
    /// Backpressure queue-depth telemetry.
    pub queue: QueueStats,
    /// Per-worker load split, by worker index.
    pub workers: Vec<WorkerStats>,
    /// Message totals summed over every instance execution.
    pub messages: ExecutionStats,
}

impl ServiceStats {
    /// Renders the stats as one deterministic-key-order JSON object
    /// (values are measurements and vary run to run; the *shape* is
    /// stable).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"schema\": \"bvc-service-stats/v1\", \"service\": \"");
        out.push_str(&escape_json(&self.label));
        let _ = write!(
            out,
            "\", \"instances\": {}, \"decided\": {}, \"violated\": {}, \"panicked\": {}, \
             \"wall_ms\": {}, \"decisions_per_sec\": {}",
            self.instances,
            self.decided,
            self.violated,
            self.panicked,
            fmt_f64(self.wall_ms),
            fmt_f64(self.decisions_per_sec),
        );
        let _ = write!(
            out,
            ", \"latency\": {{\"p50_ms\": {}, \"p99_ms\": {}, \"max_ms\": {}, \"mean_ms\": {}}}",
            fmt_f64(self.latency.p50_ms),
            fmt_f64(self.latency.p99_ms),
            fmt_f64(self.latency.max_ms),
            fmt_f64(self.latency.mean_ms),
        );
        let _ = write!(
            out,
            ", \"cache\": {{\"local_hits\": {}, \"local_misses\": {}, \"shared_hits\": {}, \
             \"shared_misses\": {}, \"hit_rate\": {}, \"cross_instance_hit_rate\": {}}}",
            self.cache.local_hits,
            self.cache.local_misses,
            self.cache.shared_hits,
            self.cache.shared_misses,
            fmt_f64(self.cache.hit_rate()),
            fmt_f64(self.cache.cross_instance_hit_rate()),
        );
        let _ = write!(
            out,
            ", \"messages\": {{\"sent\": {}, \"delivered\": {}, \"dropped\": {}, \
             \"gamma_queries\": {}}}",
            self.messages.messages_sent,
            self.messages.messages_delivered,
            self.messages.messages_dropped,
            self.messages.gamma_queries,
        );
        let _ = write!(
            out,
            ", \"queue\": {{\"max_depth\": {}, \"mean_depth\": {}, \"series\": [",
            self.queue.max_depth,
            fmt_f64(self.queue.mean_depth),
        );
        for (i, depth) in self.queue.series.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{depth}");
        }
        out.push_str("]}");
        out.push_str(", \"workers\": [");
        for (i, worker) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"instances\": {}, \"busy_ms\": {}, \"utilization\": {}}}",
                worker.instances,
                fmt_f64(worker.busy_ms),
                fmt_f64(worker.utilization),
            );
        }
        out.push_str("]}");
        out
    }
}

/// Shortest-round-trip float formatting matching the scenario verdict
/// rules: non-finite renders as `null`, whole numbers keep a `.0`.
pub(crate) fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    let mut s = format!("{x}");
    if !s.contains(['.', 'e', 'E']) {
        s.push_str(".0");
    }
    s
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let latency = LatencyStats::from_samples(samples);
        assert_eq!(latency.p50_ms, 50.0);
        assert_eq!(latency.p99_ms, 99.0);
        assert_eq!(latency.max_ms, 100.0);
        assert_eq!(latency.mean_ms, 50.5);
        assert_eq!(LatencyStats::from_samples(vec![7.5]).p99_ms, 7.5);
        assert_eq!(
            LatencyStats::from_samples(Vec::new()),
            LatencyStats::default()
        );
    }

    #[test]
    fn cache_rates_count_engine_avoidance_and_cross_instance_reuse() {
        let cache = CacheStats {
            local_hits: 60,
            local_misses: 40,
            shared_hits: 30,
            shared_misses: 10,
        };
        assert!((cache.hit_rate() - 0.9).abs() < 1e-12);
        assert!((cache.cross_instance_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert_eq!(CacheStats::default().cross_instance_hit_rate(), 0.0);
    }

    #[test]
    fn stats_json_shape_is_stable() {
        let stats = ServiceStats {
            label: "smoke".into(),
            instances: 2,
            decided: 2,
            violated: 0,
            panicked: 0,
            wall_ms: 1.5,
            decisions_per_sec: 1333.0,
            latency: LatencyStats::from_samples(vec![0.5, 1.0]),
            cache: CacheStats::default(),
            queue: QueueStats::from_samples(&[1, 2, 1]),
            workers: vec![WorkerStats {
                instances: 2,
                busy_ms: 1.0,
                utilization: 0.66,
            }],
            messages: ExecutionStats::default(),
        };
        let json = stats.to_json();
        assert!(json.starts_with("{\"schema\": \"bvc-service-stats/v1\", \"service\": \"smoke\""));
        assert!(json.contains("\"decisions_per_sec\": 1333.0"));
        assert!(json.contains("\"panicked\": 0"));
        assert!(json.contains("\"p99_ms\": 1.0"));
        assert!(json.contains("\"queue\": {\"max_depth\": 2, "));
        assert!(json.ends_with("\"utilization\": 0.66}]}"));
    }

    #[test]
    fn queue_stats_decimate_with_bucket_maxima() {
        let raw: Vec<usize> = (0..100).map(|i| if i == 77 { 40 } else { i % 5 }).collect();
        let queue = QueueStats::from_samples(&raw);
        assert_eq!(queue.max_depth, 40);
        assert!(queue.series.len() <= QueueStats::MAX_SERIES);
        assert!(
            queue.series.contains(&40),
            "decimation must preserve the peak: {:?}",
            queue.series
        );
        assert!(queue.mean_depth > 0.0);
        assert_eq!(QueueStats::from_samples(&[]), QueueStats::default());
    }

    #[test]
    fn float_formatting_matches_the_verdict_rules() {
        assert_eq!(fmt_f64(1.0), "1.0");
        assert_eq!(fmt_f64(0.05), "0.05");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
