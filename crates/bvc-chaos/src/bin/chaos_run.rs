//! `chaos-run` — the chaos lab CLI.
//!
//! Three modes:
//!
//! ```text
//! chaos-run --search [--seed S] [--restarts R] [--iters I]
//!           [--repros DIR] [--pin] [--protocols LIST]
//!     Hill-climbing adversary search.  Every genuine violation is shrunk
//!     to a minimal reproducer and matched (by family signature) against
//!     the reproducers already committed under DIR (default
//!     scenarios/repros).  New families exit 1 — unless --pin, which
//!     writes the shrunk reproducer + pinned verdict there instead.
//!     --protocols takes a comma-separated list of schema protocol names
//!     to attack (default exact,restricted-sync,approx — the pinned CI
//!     trajectory).  Listing a directed kind (directed-exact,
//!     directed-exact-lb) additionally unlocks the digraph-aware genome
//!     operators: topology sampling/rewiring and broadcast-model flips.
//!
//! chaos-run --churn [--seed S] [--waves W] [--per-wave P] [--jobs J]
//!           [--label L] [--metrics PATH] [--dashboard PATH]
//!     Seeded chaos campaign (alternating campaign/service waves).
//!     Emits bvc-chaos-metrics/v1 JSON (stdout, or PATH) and appends one
//!     longitudinal row to the Markdown dashboard at PATH.  Exits 1 if
//!     the session surfaced a genuine violation.
//!
//! chaos-run --replay DIR
//!     Replays every committed reproducer in DIR and byte-compares each
//!     verdict against its pinned .expected file.  Exits 1 on any drift.
//! ```
//!
//! All modes accept `--trace PATH`: the whole session runs under a trace
//! scope and its deterministic `bvc-trace/v1` event stream is written to
//! PATH (verdicts and metrics stay byte-identical with and without it).

use bvc_chaos::{
    churn, dashboard_header, evaluate, known_signatures, replay_dir, search, shrink, write_repro,
    ChurnConfig, SearchConfig,
};
use bvc_scenario::Protocol;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: chaos-run --search [--seed S] [--restarts R] [--iters I] [--repros DIR] [--pin]\n\
         \x20                [--protocols LIST]\n\
         \x20      chaos-run --churn [--seed S] [--waves W] [--per-wave P] [--jobs J] [--label L]\n\
         \x20                [--metrics PATH] [--dashboard PATH]\n\
         \x20      chaos-run --replay DIR\n\
         \x20      (any mode) --trace PATH"
    );
    ExitCode::from(2)
}

struct Args {
    flags: Vec<String>,
}

impl Args {
    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.flags.get(i + 1))
            .map(String::as_str)
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value for {name}: {raw}")),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|a| a == name)
    }
}

fn main() -> ExitCode {
    let args = Args {
        flags: std::env::args().skip(1).collect(),
    };
    let trace = args.value("--trace").map(PathBuf::from);
    let run = bvc_trace::run_traced(trace.as_deref(), || {
        if args.has("--search") {
            Some(run_search(&args))
        } else if args.has("--churn") {
            Some(run_churn(&args))
        } else if args.has("--replay") {
            Some(run_replay(&args))
        } else {
            None
        }
    });
    match run {
        Ok(None) => usage(),
        Ok(Some(Ok(code))) => code,
        Ok(Some(Err(message))) => {
            eprintln!("chaos-run: {message}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("chaos-run: cannot write trace: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_search(args: &Args) -> Result<ExitCode, String> {
    let seed = args.parsed("--seed", 0u64)?;
    let restarts = args.parsed("--restarts", 24usize)?;
    let iters = args.parsed("--iters", 40usize)?;
    let repros = PathBuf::from(args.value("--repros").unwrap_or("scenarios/repros"));
    let pin = args.has("--pin");

    let mut config = SearchConfig::new(seed, restarts, iters);
    if let Some(raw) = args.value("--protocols") {
        config.space.protocols = raw
            .split(',')
            .map(|name| {
                let name = name.trim();
                Protocol::from_name(name)
                    .ok_or_else(|| format!("unknown protocol `{name}` in --protocols"))
            })
            .collect::<Result<Vec<_>, _>>()?;
    }
    let report = search(&config);
    println!(
        "chaos-run: search seed {seed}: {} evaluation(s), best score {:.3}, {} finding(s)",
        report.evaluations,
        report.best_score,
        report.findings.len()
    );

    let known = known_signatures(&repros).map_err(|e| e.to_string())?;
    let mut unpinned = 0usize;
    for finding in &report.findings {
        let shrunk = shrink(&finding.genome, finding.flags);
        let signature = shrunk.genome.signature();
        println!(
            "chaos-run: violation {} (flags a={} v={} t={}) shrunk to {} in {} step(s) \
             [{} evaluation(s)]",
            finding.signature,
            finding.flags.0,
            finding.flags.1,
            finding.flags.2,
            signature,
            shrunk.steps.len(),
            shrunk.evaluations,
        );
        if known.contains(&signature) || known.contains(&finding.signature) {
            println!(
                "chaos-run:   family already pinned under {}",
                repros.display()
            );
            continue;
        }
        if pin {
            let eval = evaluate(&shrunk.genome);
            let outcome = eval
                .outcome
                .ok_or_else(|| "shrunk genome no longer runs".to_string())?;
            let path = write_repro(&repros, &shrunk.genome, &outcome.to_json(), seed)
                .map_err(|e| e.to_string())?;
            println!("chaos-run:   pinned new reproducer {}", path.display());
        } else {
            println!("chaos-run:   UNPINNED new violation family — rerun with --pin to commit it");
            unpinned += 1;
        }
    }
    if unpinned > 0 {
        eprintln!("chaos-run: {unpinned} unpinned violation family(ies)");
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

fn run_churn(args: &Args) -> Result<ExitCode, String> {
    let mut config = ChurnConfig::new(
        args.parsed("--seed", 0u64)?,
        args.parsed("--waves", 8usize)?,
        args.parsed("--per-wave", 32usize)?,
    );
    config.jobs = args.parsed("--jobs", 0usize)?;
    config.label = args.value("--label").unwrap_or("local").to_string();

    let report = churn(&config);
    let json = report.to_json();
    match args.value("--metrics") {
        None => println!("{json}"),
        Some(path) => {
            fs::write(path, format!("{json}\n")).map_err(|e| format!("{path}: {e}"))?;
            println!("chaos-run: metrics written to {path}");
        }
    }
    if let Some(path) = args.value("--dashboard") {
        append_dashboard_row(Path::new(path), &report.dashboard_row())
            .map_err(|e| format!("{path}: {e}"))?;
        println!("chaos-run: dashboard row appended to {path}");
    }
    let genuine = report.genuine_signatures();
    println!(
        "chaos-run: churn seed {} over {} wave(s): {} genuine violation family(ies)",
        config.master_seed,
        report.waves.len(),
        genuine.len()
    );
    if genuine.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        for signature in genuine {
            eprintln!("chaos-run: genuine violation family {signature}");
        }
        Ok(ExitCode::from(1))
    }
}

/// Appends a dashboard row, creating the file (with its preamble and table
/// header) on first use.
fn append_dashboard_row(path: &Path, row: &str) -> std::io::Result<()> {
    if !path.exists() {
        let preamble = format!(
            "# Chaos dashboard\n\n\
             Longitudinal results of `chaos-run --churn` sessions, one row per run\n\
             (append-only; newest last).  Regenerate a row's session exactly with\n\
             `chaos-run --churn --seed <seed> --label <label>` — every session is\n\
             deterministic from its master seed.\n\n{}\n",
            dashboard_header()
        );
        fs::write(path, preamble)?;
    }
    let mut file = fs::OpenOptions::new().append(true).open(path)?;
    writeln!(file, "{row}")
}

fn run_replay(args: &Args) -> Result<ExitCode, String> {
    let dir = args
        .value("--replay")
        .ok_or_else(|| "--replay needs a directory".to_string())?;
    let results = replay_dir(Path::new(dir)).map_err(|e| format!("{dir}: {e}"))?;
    if results.is_empty() {
        println!("chaos-run: no reproducers under {dir}");
        return Ok(ExitCode::SUCCESS);
    }
    let mut failed = 0usize;
    for result in &results {
        if result.matched {
            println!("chaos-run: replay {} OK", result.path.display());
        } else {
            eprintln!(
                "chaos-run: replay {} FAILED: {}",
                result.path.display(),
                result.detail
            );
            failed += 1;
        }
    }
    println!(
        "chaos-run: {}/{} reproducer(s) byte-identical",
        results.len() - failed,
        results.len()
    );
    Ok(if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}
