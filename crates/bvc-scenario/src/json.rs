//! A tiny deterministic JSON writer.
//!
//! Verdicts must be **byte-identical** for identical scenario + seed (the
//! determinism property tests pin this), so the writer keeps insertion order,
//! formats floats with Rust's shortest-round-trip `Display`, and maps
//! non-finite floats to `null` (JSON has no `Infinity`).

use std::fmt::Write as _;

/// A JSON value being assembled.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (64-bit seeds exceed `i64`).
    UInt(u64),
    /// A float (`null` when not finite).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object preserving insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Self {
        Json::Object(Vec::new())
    }

    /// Appends a field to an object (panics if `self` is not an object —
    /// builder misuse, not input-dependent).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::field called on a non-object"),
        }
        self
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    let mut s = String::new();
                    let _ = write!(s, "{x}");
                    // Keep round floats visibly floats ("1" → "1.0").
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        s.push_str(".0");
                    }
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    Json::Str(key.clone()).write(out);
                    out.push_str(": ");
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serialises compactly on a single line (`to_string()` comes with it);
/// identical values always produce identical bytes.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Self {
        Json::Int(i)
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Self {
        Json::Int(i as i64)
    }
}

impl From<u64> for Json {
    fn from(i: u64) -> Self {
        Json::UInt(i)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Self {
        Json::Array(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_keep_insertion_order() {
        let json = Json::object()
            .field("b", 1usize)
            .field("a", "x")
            .field("c", true);
        assert_eq!(json.to_string(), r#"{"b": 1, "a": "x", "c": true}"#);
    }

    #[test]
    fn floats_round_trip_and_infinities_are_null() {
        assert_eq!(Json::Float(0.05).to_string(), "0.05");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(1.0).to_string(), "1.0");
        assert_eq!(Json::Float(-2.0).to_string(), "-2.0");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::Str("a\"b\\c\n".into()).to_string(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn u64_seeds_above_i64_max_survive() {
        assert_eq!(
            Json::from(u64::MAX).to_string(),
            u64::MAX.to_string(),
            "seeds must round-trip so recorded verdicts stay replayable"
        );
    }

    #[test]
    fn arrays_nest() {
        let json = Json::Array(vec![Json::Int(1), Json::Array(vec![Json::Null])]);
        assert_eq!(json.to_string(), "[1, [null]]");
    }
}
