//! Executable versions of the paper's impossibility constructions.
//!
//! The necessity halves of Theorems 1 and 4 are proved with explicit
//! adversarial input configurations.  This module materialises those
//! configurations so the experiments can *demonstrate* the impossibility
//! numerically rather than merely cite it:
//!
//! * **Theorem 1** (`n ≥ (d+1)f + 1` needed for Exact BVC, synchronous): with
//!   `n = d + 1` processes and `f = 1`, inputs `e_1, …, e_d, 0` (standard
//!   basis plus the origin) make the intersection of the leave-one-out hulls
//!   `∩_i H(X_i)` empty — no decision vector can satisfy agreement and
//!   validity simultaneously.
//! * **Theorem 4** (`n ≥ (d+2)f + 1` needed for Approximate BVC,
//!   asynchronous): with `n = d + 2` and `f = 1`, inputs `4ε·e_i` for
//!   `i ≤ d` and `0` for the last two processes force each process `p_i`
//!   (`i ≤ d+1`) to decide exactly its own input, so two decisions differ by
//!   `4ε` in some coordinate and ε-agreement fails.

use bvc_geometry::{leave_one_out_intersection, ConvexHull, Point, PointMultiset};

/// The Theorem 1 input configuration for dimension `d`: the `d` standard
/// basis vectors followed by the origin (`n = d + 1` points).
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn theorem1_inputs(d: usize) -> PointMultiset {
    assert!(d > 0, "dimension must be positive");
    let mut points: Vec<Point> = (0..d).map(|i| Point::standard_basis(d, i)).collect();
    points.push(Point::origin(d));
    PointMultiset::new(points)
}

/// Result of evaluating the Theorem 1 construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Theorem1Evidence {
    /// Number of processes in the construction (`d + 1`).
    pub n: usize,
    /// Whether the intersection of the leave-one-out hulls is empty (the
    /// theorem says it must be for this input configuration).
    pub intersection_empty: bool,
    /// A point of the intersection when it is non-empty (counter-evidence;
    /// never produced for the paper's construction).
    pub witness: Option<Point>,
}

/// Evaluates the Theorem 1 construction for dimension `d`: checks whether any
/// vector could simultaneously satisfy validity with respect to every
/// candidate non-faulty set of `n − 1` processes.
pub fn theorem1_evidence(d: usize) -> Theorem1Evidence {
    let inputs = theorem1_inputs(d);
    let witness = leave_one_out_intersection(&inputs);
    Theorem1Evidence {
        n: d + 1,
        intersection_empty: witness.is_none(),
        witness,
    }
}

/// A control configuration with `n = d + 2` processes (the basis vectors, the
/// origin, and the barycentre of the basis), for which the leave-one-out
/// intersection is non-empty — showing that the emptiness in
/// [`theorem1_evidence`] is a property of the construction, not of the
/// machinery.
pub fn theorem1_control_inputs(d: usize) -> PointMultiset {
    assert!(d > 0, "dimension must be positive");
    let mut points: Vec<Point> = (0..d).map(|i| Point::standard_basis(d, i)).collect();
    points.push(Point::origin(d));
    points.push(Point::uniform(d, 1.0 / (d as f64 + 1.0)));
    PointMultiset::new(points)
}

/// The Theorem 4 input configuration for dimension `d` and agreement
/// parameter `ε`: `x_i = 4ε·e_i` for `1 ≤ i ≤ d`, and `x_{d+1} = x_{d+2} = 0`
/// (`n = d + 2` points).
///
/// # Panics
///
/// Panics if `d == 0` or `epsilon <= 0`.
pub fn theorem4_inputs(d: usize, epsilon: f64) -> PointMultiset {
    assert!(d > 0, "dimension must be positive");
    assert!(epsilon > 0.0, "epsilon must be positive");
    let mut points: Vec<Point> = (0..d)
        .map(|i| Point::standard_basis(d, i).scale(4.0 * epsilon))
        .collect();
    points.push(Point::origin(d));
    points.push(Point::origin(d));
    PointMultiset::new(points)
}

/// Result of evaluating the Theorem 4 construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Theorem4Evidence {
    /// Number of processes in the construction (`d + 2`).
    pub n: usize,
    /// For each process `p_i`, `1 ≤ i ≤ d + 1`: whether the admissible
    /// decision region (equation (6)) collapses to the process's own input.
    pub forced_to_own_input: Vec<bool>,
    /// The maximum L∞ distance between two forced decisions — the paper shows
    /// this is `4ε`, violating ε-agreement.
    pub max_pairwise_distance: f64,
    /// The ε used.
    pub epsilon: f64,
}

impl Theorem4Evidence {
    /// `true` when the construction indeed forces an ε-agreement violation:
    /// every admissible region collapses and two decisions are further apart
    /// than ε.
    pub fn violates_epsilon_agreement(&self) -> bool {
        self.forced_to_own_input.iter().all(|&b| b) && self.max_pairwise_distance > self.epsilon
    }
}

/// Evaluates the Theorem 4 construction: for each process `p_i`
/// (`1 ≤ i ≤ d+1`), intersects the convex hulls `H(X_i^j)` over all
/// `j ≠ i, j ≤ d+1` (equation (6)), where `X_i^j` drops both `x_j` and
/// `x_{d+2}`, and checks that the only admissible decision is `x_i` itself.
pub fn theorem4_evidence(d: usize, epsilon: f64) -> Theorem4Evidence {
    let inputs = theorem4_inputs(d, epsilon);
    let mut forced = Vec::with_capacity(d + 1);
    let mut forced_points: Vec<Point> = Vec::with_capacity(d + 1);
    for i in 0..=d {
        // Admissible region of p_{i+1}: ∩_{j ≠ i, j ≤ d} H({x_k : k ≤ d, k ≠ j}).
        let hulls: Vec<ConvexHull> = (0..=d)
            .filter(|&j| j != i)
            .map(|j| {
                let indices: Vec<usize> = (0..=d).filter(|&k| k != j).collect();
                ConvexHull::new(inputs.select(&indices))
            })
            .collect();
        let own_input = inputs.point(i).clone();
        // The intersection must contain the process's own input...
        let contains_own = hulls.iter().all(|h| h.contains(&own_input));
        // ...and nothing that differs from it: check that the intersection's
        // every point coincides with the input by asking the LP for a common
        // point and comparing, and additionally verifying that no other input
        // point is admissible.
        let common = ConvexHull::common_point(&hulls);
        let collapses = match &common {
            Some(p) => p.approx_eq(&own_input, 1e-6),
            None => false,
        };
        let no_other_input_admissible = (0..=d)
            .filter(|&k| k != i)
            .all(|k| !hulls.iter().all(|h| h.contains(inputs.point(k))));
        forced.push(contains_own && collapses && no_other_input_admissible);
        forced_points.push(own_input);
    }
    let mut max_distance: f64 = 0.0;
    for i in 0..forced_points.len() {
        for j in (i + 1)..forced_points.len() {
            max_distance = max_distance.max(forced_points[i].linf_distance(&forced_points[j]));
        }
    }
    Theorem4Evidence {
        n: d + 2,
        forced_to_own_input: forced,
        max_pairwise_distance: max_distance,
        epsilon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_construction_has_empty_intersection_for_small_dimensions() {
        for d in 1..=4 {
            let evidence = theorem1_evidence(d);
            assert_eq!(evidence.n, d + 1);
            assert!(
                evidence.intersection_empty,
                "d = {d}: intersection should be empty"
            );
            assert!(evidence.witness.is_none());
        }
    }

    #[test]
    fn theorem1_control_with_one_extra_point_is_nonempty() {
        for d in 1..=4 {
            let control = theorem1_control_inputs(d);
            assert_eq!(control.len(), d + 2);
            assert!(
                leave_one_out_intersection(&control).is_some(),
                "d = {d}: control intersection should be non-empty"
            );
        }
    }

    #[test]
    fn theorem1_inputs_are_the_standard_basis_plus_origin() {
        let inputs = theorem1_inputs(3);
        assert_eq!(inputs.len(), 4);
        assert_eq!(inputs.point(0).coords(), &[1.0, 0.0, 0.0]);
        assert_eq!(inputs.point(3).coords(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn theorem4_construction_forces_epsilon_violation() {
        for d in 1..=4 {
            let evidence = theorem4_evidence(d, 0.01);
            assert_eq!(evidence.n, d + 2);
            assert!(
                evidence.violates_epsilon_agreement(),
                "d = {d}: evidence {evidence:?}"
            );
            assert!((evidence.max_pairwise_distance - 0.04).abs() < 1e-9);
        }
    }

    #[test]
    fn theorem4_inputs_shape() {
        let inputs = theorem4_inputs(2, 0.5);
        assert_eq!(inputs.len(), 4);
        assert_eq!(inputs.point(0).coords(), &[2.0, 0.0]);
        assert_eq!(inputs.point(1).coords(), &[0.0, 2.0]);
        assert_eq!(inputs.point(2).coords(), &[0.0, 0.0]);
        assert_eq!(inputs.point(3).coords(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn theorem4_rejects_nonpositive_epsilon() {
        let _ = theorem4_inputs(2, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn theorem1_rejects_zero_dimension() {
        let _ = theorem1_inputs(0);
    }
}
