//! Byzantine fault-strategy library for the BVC reproduction.
//!
//! The paper tolerates up to `f` processes that "may behave arbitrarily".
//! This crate provides the concrete adversaries the experiments and tests use
//! to attack the algorithms of `bvc-core`:
//!
//! * [`ByzantineStrategy`] — named attacks on validity (outliers), agreement
//!   (equivocation, anti-convergence corners) and liveness (crash, silence).
//! * [`PointForge`] — deterministic, seeded forging of adversarial points for
//!   a given strategy (used by the protocol-aware Byzantine processes in
//!   `bvc-core`).
//! * payload-agnostic wrappers ([`CrashAfterSync`], [`SilenceTowardsSync`],
//!   [`DuplicateSync`], [`CrashAfterAsync`], [`SilentSync`], [`SilentAsync`])
//!   that mutate the message schedule of any inner process without needing to
//!   understand its payloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod wrappers;

pub use strategy::{ByzantineStrategy, PointForge};
pub use wrappers::{
    CrashAfterAsync, CrashAfterSync, DuplicateSync, SilenceTowardsSync, SilentAsync, SilentSync,
};
