//! Asynchronous reliable broadcast (Bracha-style echo broadcast).
//!
//! The asynchronous Approximate BVC algorithm (Section 3.2 of the paper)
//! borrows "Component #1" of the Abraham–Amit–Dolev (AAD) algorithm: a
//! per-round exchange through which each process `p_i` obtains a set `B_i[t]`
//! of tuples `(p_j, w_j, t)` satisfying three properties.  The first building
//! block of that exchange is a *reliable broadcast* primitive with the
//! classical guarantees (for `n ≥ 3f + 1`):
//!
//! * **Consistency** — no two non-faulty processes deliver different values
//!   for the same `(sender, tag)`, even if the sender is Byzantine.
//! * **Validity** — if the sender is non-faulty, every non-faulty process
//!   eventually delivers the sender's value.
//! * **Totality** — if any non-faulty process delivers a value for
//!   `(sender, tag)`, every non-faulty process eventually delivers it.
//!
//! Consistency gives AAD's Property 2 and 3; totality is what lets the
//! witness mechanism (in `bvc-core::aad`) establish Property 1.
//!
//! [`ReliableBroadcastInstance`] is a pure state machine for a single
//! `(sender, tag)` slot; the caller routes [`RbMessage`]s between processes.

/// Message kinds of the echo-broadcast protocol for one `(sender, tag)` slot.
#[derive(Debug, Clone, PartialEq)]
pub enum RbMessage<V> {
    /// Sent by the designated sender to everyone: its proposed value.
    Init(V),
    /// Echoed by every receiver of an `Init`.
    Echo(V),
    /// Sent once a process has seen enough matching echoes (or enough
    /// `Ready`s to amplify).
    Ready(V),
}

/// Actions a caller must carry out after feeding a message into the instance.
#[derive(Debug, Clone, PartialEq)]
pub struct RbStep<V> {
    /// Messages to broadcast to **all** processes (including self-delivery,
    /// which the instance performs internally; the caller only needs to send
    /// them to the other processes).
    pub broadcast: Vec<RbMessage<V>>,
    /// Value delivered by this step, if the delivery threshold was reached.
    pub delivered: Option<V>,
}

impl<V> RbStep<V> {
    fn empty() -> Self {
        Self {
            broadcast: Vec::new(),
            delivered: None,
        }
    }
}

/// Per-process state machine for one reliable-broadcast slot.
#[derive(Debug, Clone)]
pub struct ReliableBroadcastInstance<V> {
    n: usize,
    f: usize,
    /// Echo records: (process index, value).
    echoes: Vec<(usize, V)>,
    /// Ready records: (process index, value).
    readies: Vec<(usize, V)>,
    sent_echo: bool,
    sent_ready: bool,
    delivered: Option<V>,
}

impl<V: Clone + PartialEq> ReliableBroadcastInstance<V> {
    /// Creates the state machine for a system of `n` processes tolerating `f`
    /// Byzantine faults.
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ 3f + 1` and `f ≥ 1`.
    pub fn new(n: usize, f: usize) -> Self {
        assert!(f >= 1, "reliable broadcast instance expects f >= 1");
        assert!(
            n > 3 * f,
            "reliable broadcast requires n >= 3f + 1 (n = {n}, f = {f})"
        );
        Self {
            n,
            f,
            echoes: Vec::new(),
            readies: Vec::new(),
            sent_echo: false,
            sent_ready: false,
            delivered: None,
        }
    }

    /// Starts the broadcast as the designated sender with value `value`:
    /// returns the `Init` to broadcast (the instance also processes its own
    /// `Init`/`Echo` internally).
    pub fn start_as_sender(&mut self, me: usize, value: V) -> RbStep<V> {
        let mut step = self.handle(me, me, &RbMessage::Init(value.clone()));
        step.broadcast.insert(0, RbMessage::Init(value));
        step
    }

    /// Handles a protocol message for this slot received from `from` (use
    /// `from == me` for self-delivery of one's own broadcasts).  Returns the
    /// messages to broadcast in response and the delivered value, if any.
    pub fn handle(&mut self, me: usize, from: usize, msg: &RbMessage<V>) -> RbStep<V> {
        if from >= self.n {
            return RbStep::empty();
        }
        let mut step = RbStep::empty();
        match msg {
            RbMessage::Init(value) => {
                // Echo the first Init seen (Byzantine senders may send several
                // different Inits; only the first is echoed).
                if !self.sent_echo {
                    self.sent_echo = true;
                    let echo = RbMessage::Echo(value.clone());
                    step.broadcast.push(echo.clone());
                    // Self-deliver the echo.
                    let follow_up = self.handle(me, me, &echo);
                    step.broadcast.extend(follow_up.broadcast);
                    step.delivered = step.delivered.or(follow_up.delivered);
                }
            }
            RbMessage::Echo(value) => {
                if !self.echoes.iter().any(|(p, _)| *p == from) {
                    self.echoes.push((from, value.clone()));
                    let matching = self.echoes.iter().filter(|(_, v)| v == value).count();
                    // Quorum of n − f matching echoes triggers Ready.
                    if matching >= self.n - self.f && !self.sent_ready {
                        self.send_ready(me, value.clone(), &mut step);
                    }
                }
            }
            RbMessage::Ready(value) => {
                if !self.readies.iter().any(|(p, _)| *p == from) {
                    self.readies.push((from, value.clone()));
                    let matching = self.readies.iter().filter(|(_, v)| v == value).count();
                    // Amplification: f + 1 Readys for a value we have not
                    // endorsed yet ⇒ send our own Ready.
                    if matching > self.f && !self.sent_ready {
                        self.send_ready(me, value.clone(), &mut step);
                    }
                    // Delivery: 2f + 1 matching Readys.
                    let matching = self.readies.iter().filter(|(_, v)| v == value).count();
                    if matching > 2 * self.f && self.delivered.is_none() {
                        self.delivered = Some(value.clone());
                        step.delivered = Some(value.clone());
                    }
                }
            }
        }
        step
    }

    fn send_ready(&mut self, me: usize, value: V, step: &mut RbStep<V>) {
        self.sent_ready = true;
        let ready = RbMessage::Ready(value);
        step.broadcast.push(ready.clone());
        let follow_up = self.handle(me, me, &ready);
        step.broadcast.extend(follow_up.broadcast);
        if step.delivered.is_none() {
            step.delivered = follow_up.delivered;
        }
    }

    /// The value this process has delivered for this slot, if any.
    pub fn delivered(&self) -> Option<&V> {
        self.delivered.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Runs one reliable-broadcast slot among `n` processes with `byzantine`
    /// processes dropping all their protocol duties (silent faults), and the
    /// (possibly Byzantine) sender injecting `inits[to]` as the Init it sends
    /// to process `to`.  Messages are delivered in FIFO order per channel by a
    /// simple queue.  Returns the delivered value per process.
    fn run_slot(
        n: usize,
        f: usize,
        sender: usize,
        inits: &dyn Fn(usize) -> Option<i32>,
        byzantine: &[usize],
    ) -> Vec<Option<i32>> {
        let mut instances: Vec<ReliableBroadcastInstance<i32>> = (0..n)
            .map(|_| ReliableBroadcastInstance::new(n, f))
            .collect();
        let mut queue: VecDeque<(usize, usize, RbMessage<i32>)> = VecDeque::new();

        // Sender injects its Inits (a Byzantine sender may equivocate).
        for to in 0..n {
            if to == sender {
                continue;
            }
            if let Some(v) = inits(to) {
                queue.push_back((sender, to, RbMessage::Init(v)));
            }
        }
        // An honest sender also processes its own Init.
        if !byzantine.contains(&sender) {
            if let Some(v) = inits(sender) {
                let step = instances[sender].start_as_sender(sender, v);
                for m in step.broadcast {
                    if matches!(m, RbMessage::Init(_)) {
                        continue; // already queued above
                    }
                    for to in 0..n {
                        if to != sender {
                            queue.push_back((sender, to, m.clone()));
                        }
                    }
                }
            }
        }

        while let Some((from, to, msg)) = queue.pop_front() {
            if byzantine.contains(&to) {
                continue; // silent Byzantine processes do nothing
            }
            let step = instances[to].handle(to, from, &msg);
            for m in step.broadcast {
                for dest in 0..n {
                    if dest != to {
                        queue.push_back((to, dest, m.clone()));
                    }
                }
            }
        }
        instances.iter().map(|i| i.delivered().copied()).collect()
    }

    #[test]
    fn honest_sender_delivers_to_all_honest() {
        let delivered = run_slot(4, 1, 0, &|_| Some(9), &[]);
        assert_eq!(delivered, vec![Some(9); 4]);
    }

    #[test]
    fn honest_sender_with_silent_byzantine_peer() {
        let delivered = run_slot(4, 1, 0, &|_| Some(5), &[2]);
        for (i, d) in delivered.iter().enumerate() {
            if i == 2 {
                continue;
            }
            assert_eq!(*d, Some(5), "process {i} must deliver the sender's value");
        }
    }

    #[test]
    fn equivocating_sender_never_causes_divergent_deliveries() {
        // The Byzantine sender sends value 1 to half the processes and 2 to
        // the rest. With n = 7, f = 2, no two honest processes may deliver
        // different values (they may deliver nothing).
        let delivered = run_slot(7, 2, 6, &|to| Some(if to % 2 == 0 { 1 } else { 2 }), &[6]);
        let honest: Vec<i32> = delivered[..6].iter().filter_map(|d| *d).collect();
        assert!(
            honest.windows(2).all(|w| w[0] == w[1]),
            "honest deliveries must agree: {honest:?}"
        );
    }

    #[test]
    fn totality_holds_when_sender_equivocates_but_one_value_wins() {
        // Sender sends the same value to enough processes that a delivery
        // happens; then all honest processes must deliver it.
        let delivered = run_slot(4, 1, 3, &|_to| Some(8), &[3]);
        let honest: Vec<Option<i32>> = delivered[..3].to_vec();
        assert!(honest.iter().all(|d| *d == Some(8)));
    }

    #[test]
    fn no_delivery_without_a_sender() {
        let delivered = run_slot(4, 1, 1, &|_| None, &[1]);
        assert!(delivered.iter().all(|d| d.is_none()));
    }

    #[test]
    fn duplicate_echoes_from_one_process_count_once() {
        let mut inst = ReliableBroadcastInstance::new(4, 1);
        // Three echoes are needed (n − f = 3); two copies from the same
        // process must not suffice together with one other.
        let _ = inst.handle(0, 1, &RbMessage::Echo(7));
        let _ = inst.handle(0, 1, &RbMessage::Echo(7));
        let step = inst.handle(0, 2, &RbMessage::Echo(7));
        assert!(step.broadcast.is_empty(), "quorum must not be reached yet");
        let step = inst.handle(0, 3, &RbMessage::Echo(7));
        assert!(
            step.broadcast
                .iter()
                .any(|m| matches!(m, RbMessage::Ready(7))),
            "third distinct echo reaches the quorum"
        );
    }

    #[test]
    fn ready_amplification_from_f_plus_one_readys() {
        let mut inst = ReliableBroadcastInstance::new(4, 1);
        // f + 1 = 2 Readys for value 3 must trigger our own Ready even though
        // we never saw an Init or enough Echos.
        let _ = inst.handle(0, 1, &RbMessage::Ready(3));
        let step = inst.handle(0, 2, &RbMessage::Ready(3));
        assert!(step
            .broadcast
            .iter()
            .any(|m| matches!(m, RbMessage::Ready(3))));
        // With our own Ready that is 3 = 2f + 1 matching Readys: delivered.
        assert_eq!(inst.delivered(), Some(&3));
    }

    #[test]
    #[should_panic(expected = "n >= 3f + 1")]
    fn insufficient_processes_panics() {
        let _ = ReliableBroadcastInstance::<i32>::new(5, 2);
    }
}
