//! Convex hulls of point multisets, represented implicitly.
//!
//! The consensus algorithms never need an explicit facet representation of a
//! convex hull; they only need to answer two questions about `H(T)`, the hull
//! of a multiset `T`:
//!
//! 1. *membership*: is a given point `p` inside `H(T)`?
//! 2. *witness*: exhibit convex-combination weights showing `p ∈ H(T)`.
//!
//! Both reduce to a small linear-programming feasibility problem (find
//! `α ≥ 0`, `Σα = 1`, `Σ α_i t_i = p`), which is how Section 2.2 of the paper
//! treats them.  This module also provides the common-point query used by the
//! Tverberg search: a single LP that decides whether several hulls share a
//! point and, if so, produces one.

use crate::multiset::PointMultiset;
use crate::point::Point;
use bvc_lp::{LinearProgram, Objective, Relation, SolveStatus};

/// Tolerance used when verifying convex-combination witnesses.
pub const HULL_TOLERANCE: f64 = 1e-6;

/// A convex hull `H(T)` of a multiset of points, represented implicitly by its
/// generating points.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexHull {
    generators: PointMultiset,
}

impl ConvexHull {
    /// Creates the hull of the given generating multiset.
    pub fn new(generators: PointMultiset) -> Self {
        Self { generators }
    }

    /// The generating points.
    pub fn generators(&self) -> &PointMultiset {
        &self.generators
    }

    /// The ambient dimension `d`.
    pub fn dim(&self) -> usize {
        self.generators.dim()
    }

    /// Returns `true` if `point` lies in this hull (within LP tolerance).
    ///
    /// # Panics
    ///
    /// Panics if `point.dim()` differs from the hull's dimension.
    pub fn contains(&self, point: &Point) -> bool {
        self.convex_combination(point).is_some()
    }

    /// Returns convex-combination weights `α` over the generators such that
    /// `Σ α_i g_i = point`, or `None` if `point` is outside the hull.
    ///
    /// # Panics
    ///
    /// Panics if `point.dim()` differs from the hull's dimension.
    pub fn convex_combination(&self, point: &Point) -> Option<Vec<f64>> {
        assert_eq!(
            point.dim(),
            self.dim(),
            "query point dimension must match the hull dimension"
        );
        let k = self.generators.len();
        let d = self.dim();
        // Variables: α_0 .. α_{k-1} ≥ 0.
        let mut lp = LinearProgram::new(k, Objective::Minimize);
        // Σ α_i = 1
        lp.add_constraint(vec![1.0; k], Relation::Equal, 1.0);
        // For each coordinate l: Σ α_i g_i[l] = point[l]
        for l in 0..d {
            let coeffs: Vec<f64> = self.generators.iter().map(|g| g.coord(l)).collect();
            lp.add_constraint(coeffs, Relation::Equal, point.coord(l));
        }
        let solution = lp.solve();
        if solution.status != SolveStatus::Optimal {
            return None;
        }
        let weights: Vec<f64> = solution.values.iter().map(|&w| w.max(0.0)).collect();
        // Double-check the witness numerically before handing it out.
        let reconstructed =
            Point::convex_combination(self.generators.points(), &normalise(&weights));
        if reconstructed.approx_eq(point, HULL_TOLERANCE) {
            Some(normalise(&weights))
        } else {
            None
        }
    }

    /// Returns a point common to all the given hulls, if one exists.
    ///
    /// This solves a single LP with a free point variable `z ∈ R^d` and one
    /// block of convex-combination variables per hull, mirroring the linear
    /// program of Section 2.2 of the paper (there the hulls are the
    /// `H(T)` for all `(n−f)`-subsets `T`).
    ///
    /// # Panics
    ///
    /// Panics if `hulls` is empty or the hulls disagree on dimension.
    pub fn common_point(hulls: &[ConvexHull]) -> Option<Point> {
        assert!(!hulls.is_empty(), "need at least one hull");
        let d = hulls[0].dim();
        assert!(
            hulls.iter().all(|h| h.dim() == d),
            "all hulls must share a dimension"
        );
        // Variable layout: z_0..z_{d-1} free, then per hull a block of α's.
        let total_alpha: usize = hulls.iter().map(|h| h.generators.len()).sum();
        let num_vars = d + total_alpha;
        let mut lp = LinearProgram::new(num_vars, Objective::Minimize);
        for zi in 0..d {
            lp.mark_free(zi);
        }
        let mut offset = d;
        for hull in hulls {
            let k = hull.generators.len();
            // Σ α = 1 for this hull.
            let mut row = vec![0.0; num_vars];
            for a in 0..k {
                row[offset + a] = 1.0;
            }
            lp.add_constraint(row, Relation::Equal, 1.0);
            // z - Σ α_i g_i = 0 per coordinate.
            for l in 0..d {
                let mut row = vec![0.0; num_vars];
                row[l] = 1.0;
                for (a, g) in hull.generators.iter().enumerate() {
                    row[offset + a] = -g.coord(l);
                }
                lp.add_constraint(row, Relation::Equal, 0.0);
            }
            offset += k;
        }
        let solution = lp.solve();
        if solution.status != SolveStatus::Optimal {
            return None;
        }
        let z = Point::new(solution.values[..d].to_vec());
        // Verify the candidate against every hull with an independent
        // membership query; the combined LP can in rare cases report a point
        // whose per-hull witnesses are slightly off numerically.
        if hulls.iter().all(|h| h.contains(&z)) {
            Some(z)
        } else {
            None
        }
    }
}

fn normalise(weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return weights.to_vec();
    }
    weights.iter().map(|w| w / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> ConvexHull {
        ConvexHull::new(PointMultiset::new(vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![2.0, 0.0]),
            Point::new(vec![0.0, 2.0]),
        ]))
    }

    #[test]
    fn vertices_and_interior_are_inside() {
        let hull = triangle();
        assert!(hull.contains(&Point::new(vec![0.0, 0.0])));
        assert!(hull.contains(&Point::new(vec![2.0, 0.0])));
        assert!(hull.contains(&Point::new(vec![0.5, 0.5])));
        assert!(hull.contains(&Point::new(vec![1.0, 1.0]))); // on the hypotenuse
    }

    #[test]
    fn outside_points_are_rejected() {
        let hull = triangle();
        assert!(!hull.contains(&Point::new(vec![1.5, 1.5])));
        assert!(!hull.contains(&Point::new(vec![-0.1, 0.0])));
        assert!(!hull.contains(&Point::new(vec![3.0, 0.0])));
    }

    #[test]
    fn convex_combination_witness_reconstructs_the_point() {
        let hull = triangle();
        let p = Point::new(vec![0.4, 0.6]);
        let weights = hull.convex_combination(&p).expect("p is inside");
        assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(weights.iter().all(|&w| w >= 0.0));
        let rebuilt = Point::convex_combination(hull.generators().points(), &weights);
        assert!(rebuilt.approx_eq(&p, 1e-6));
    }

    #[test]
    fn degenerate_hull_of_single_point() {
        let hull = ConvexHull::new(PointMultiset::new(vec![Point::new(vec![1.0, 2.0, 3.0])]));
        assert!(hull.contains(&Point::new(vec![1.0, 2.0, 3.0])));
        assert!(!hull.contains(&Point::new(vec![1.0, 2.0, 3.1])));
    }

    #[test]
    fn segment_hull_in_three_dimensions() {
        let hull = ConvexHull::new(PointMultiset::new(vec![
            Point::new(vec![0.0, 0.0, 0.0]),
            Point::new(vec![2.0, 2.0, 2.0]),
        ]));
        assert!(hull.contains(&Point::new(vec![1.0, 1.0, 1.0])));
        assert!(!hull.contains(&Point::new(vec![1.0, 1.0, 1.2])));
    }

    #[test]
    fn duplicate_generators_do_not_confuse_membership() {
        let hull = ConvexHull::new(PointMultiset::new(vec![
            Point::new(vec![0.0]),
            Point::new(vec![0.0]),
            Point::new(vec![1.0]),
        ]));
        assert!(hull.contains(&Point::new(vec![0.5])));
        assert!(!hull.contains(&Point::new(vec![1.5])));
    }

    #[test]
    #[should_panic(expected = "dimension must match")]
    fn dimension_mismatch_panics() {
        let hull = triangle();
        let _ = hull.contains(&Point::new(vec![0.0]));
    }

    #[test]
    fn common_point_of_overlapping_segments() {
        let h1 = ConvexHull::new(PointMultiset::new(vec![
            Point::new(vec![0.0]),
            Point::new(vec![2.0]),
        ]));
        let h2 = ConvexHull::new(PointMultiset::new(vec![
            Point::new(vec![1.0]),
            Point::new(vec![3.0]),
        ]));
        let p = ConvexHull::common_point(&[h1.clone(), h2.clone()]).expect("they overlap");
        assert!(h1.contains(&p) && h2.contains(&p));
        assert!(p.coord(0) >= 1.0 - 1e-6 && p.coord(0) <= 2.0 + 1e-6);
    }

    #[test]
    fn common_point_absent_for_disjoint_hulls() {
        let h1 = ConvexHull::new(PointMultiset::new(vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.0]),
        ]));
        let h2 = ConvexHull::new(PointMultiset::new(vec![
            Point::new(vec![3.0, 3.0]),
            Point::new(vec![4.0, 3.0]),
        ]));
        assert!(ConvexHull::common_point(&[h1, h2]).is_none());
    }

    #[test]
    fn common_point_of_three_triangles_sharing_centre() {
        // Three triangles around the origin that all contain the origin.
        let mk = |pts: Vec<Vec<f64>>| {
            ConvexHull::new(PointMultiset::new(
                pts.into_iter().map(Point::new).collect(),
            ))
        };
        let h1 = mk(vec![vec![-1.0, -1.0], vec![2.0, 0.0], vec![0.0, 2.0]]);
        let h2 = mk(vec![vec![1.0, 1.0], vec![-2.0, 0.0], vec![0.0, -2.0]]);
        let h3 = mk(vec![vec![0.0, 1.5], vec![1.5, -1.0], vec![-1.5, -1.0]]);
        let p = ConvexHull::common_point(&[h1.clone(), h2.clone(), h3.clone()])
            .expect("all contain a neighbourhood of the origin");
        assert!(h1.contains(&p) && h2.contains(&p) && h3.contains(&p));
    }

    #[test]
    fn common_point_single_hull_returns_member() {
        let hull = triangle();
        let p = ConvexHull::common_point(std::slice::from_ref(&hull)).unwrap();
        assert!(hull.contains(&p));
    }
}
