//! Criterion bench: end-to-end Exact BVC executions (Theorem 3) on the
//! synchronous simulator, as a function of `(n, f, d)` and adversary.

use bvc_adversary::ByzantineStrategy;
use bvc_bench::honest_workload;
use bvc_core::{BvcSession, ProtocolKind, RunConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_exact_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_bvc");
    group.sample_size(10);
    for &(n, f, d) in &[(4usize, 1usize, 2usize), (5, 1, 3), (6, 1, 2), (7, 2, 2)] {
        let inputs = honest_workload(5, n - f, d);
        group.bench_with_input(
            BenchmarkId::new("equivocate", format!("n{n}_f{f}_d{d}")),
            &inputs,
            |b, inputs| {
                b.iter(|| {
                    let run = BvcSession::new(
                        ProtocolKind::Exact,
                        RunConfig::new(n, f, d)
                            .honest_inputs(inputs.clone())
                            .adversary(ByzantineStrategy::Equivocate)
                            .seed(1),
                    )
                    .expect("bound satisfied")
                    .run();
                    assert!(run.verdict().all_hold());
                })
            },
        );
    }
    group.finish();
}

fn bench_exact_adversaries(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_bvc_adversaries");
    group.sample_size(10);
    let (n, f, d) = (5usize, 1usize, 2usize);
    let inputs = honest_workload(6, n - f, d);
    for strategy in ByzantineStrategy::active_attacks() {
        group.bench_with_input(
            BenchmarkId::new("strategy", strategy.name()),
            &inputs,
            |b, inputs| {
                b.iter(|| {
                    let run = BvcSession::new(
                        ProtocolKind::Exact,
                        RunConfig::new(n, f, d)
                            .honest_inputs(inputs.clone())
                            .adversary(strategy)
                            .seed(2),
                    )
                    .expect("bound satisfied")
                    .run();
                    assert!(run.verdict().all_hold());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact_end_to_end, bench_exact_adversaries);
criterion_main!(benches);
