//! The search genome: everything the optimizing adversary may mutate.
//!
//! A [`ChaosGenome`] is one fully-specified adversarial consensus instance —
//! protocol, shape, the explicit honest input points, the Byzantine strategy
//! (including the searchable split-brain receiver mask), the validity knob,
//! per-link latency fault windows, the delivery schedule and the executor
//! seed.  Its single serialised form is a **standard scenario TOML**
//! ([`ChaosGenome::to_toml`]): evaluation parses that TOML back through
//! [`ScenarioSpec::from_toml`] and runs it through the ordinary scenario
//! runner, so a genome, its committed reproducer file, and a `scenario-run`
//! replay of that file are guaranteed to execute byte-identically.

use bvc_scenario::{Protocol, ScenarioSpec, SchemaError};
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Write as _;

/// The validity knob of a genome, mirroring the scenario schema's
/// `strict` / `alpha-relaxed` / `k-relaxed` axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValidityGene {
    /// Strict validity (decision in the honest hull).
    Strict,
    /// `(1+α)`-relaxed validity with the given α.
    Alpha(f64),
    /// `k`-relaxed validity with the given k.
    K(usize),
}

impl ValidityGene {
    /// Coarse family label used in reproducer signatures (`strict`,
    /// `alpha`, `k1`, `k2`, …) — deliberately independent of the α value,
    /// so every small-α variant of one failure family shares a signature.
    pub fn family(&self) -> String {
        match self {
            ValidityGene::Strict => "strict".to_string(),
            ValidityGene::Alpha(_) => "alpha".to_string(),
            ValidityGene::K(k) => format!("k{k}"),
        }
    }
}

/// One per-link latency fault window (a directed `from → to` link).  The
/// genome only carries latency faults: drop faults break the reliable-channel
/// assumption, so any violation under them is expected data and would poison
/// the search objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultGene {
    /// Sending process index.
    pub from: usize,
    /// Receiving process index.
    pub to: usize,
    /// Extra delivery delay (scheduler ticks / rounds).
    pub extra: usize,
    /// Window start (1-based rounds for sync protocols; keep ≥ 1 so the
    /// TOML round-trips without the sync round-shift rewriting it).
    pub start: usize,
    /// Window length; must be finite and ≥ 1 (the fairness contract).
    pub duration: usize,
}

/// A fully-specified adversarial consensus instance, mutable by the search.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosGenome {
    /// The protocol under attack.
    pub protocol: Protocol,
    /// Total processes.
    pub n: usize,
    /// Byzantine processes (the last `f` ids).
    pub f: usize,
    /// Input dimension.
    pub d: usize,
    /// ε of ε-agreement (ignored by `exact`).
    pub epsilon: f64,
    /// Executor / forge seed.
    pub seed: u64,
    /// Explicit honest inputs: exactly `n − f` points of dimension `d`,
    /// each coordinate in `[0, 1]`.
    pub points: Vec<Vec<f64>>,
    /// The Byzantine strategy, in its stable label form (`equivocate`,
    /// `split-brain:MASK`, `crash:K`, …) so the mask and crash-round knobs
    /// are part of the genome.
    pub strategy: String,
    /// The validity knob.
    pub validity: ValidityGene,
    /// Declared communication topology, in the campaign-compact label form
    /// (`ring`, `random-regular:4`, …) of `TopologySpec::parse`.  `None` is
    /// the paper's complete graph and keeps the serialised TOML
    /// byte-identical to pre-digraph genomes; the search only declares a
    /// topology for the directed protocol kinds, where the graph condition
    /// is the whole game.
    pub topology: Option<String>,
    /// Per-link latency fault windows.
    pub faults: Vec<FaultGene>,
    /// `true` selects the round-robin delivery schedule (async protocols;
    /// ignored by the synchronous ones).
    pub round_robin: bool,
    /// Async delivery-step cap.
    pub max_steps: usize,
}

/// TOML float formatting: shortest round-trip, always with a decimal point
/// so the value parses back as a float (matching the verdict JSON rules).
fn toml_f64(x: f64) -> String {
    let mut s = format!("{x}");
    if !s.contains(['.', 'e', 'E']) {
        s.push_str(".0");
    }
    s
}

impl ChaosGenome {
    /// The honest process count `n − f` (the required `points` length).
    pub fn honest(&self) -> usize {
        self.n - self.f
    }

    /// The family signature used to name reproducers and to match freshly
    /// found violations against committed ones:
    /// `<protocol>-n<n>f<f>d<d>-<validity family>`, with a `-<topology>`
    /// suffix (`:` flattened to `-` so the signature stays a valid file
    /// stem) when the genome declares one.
    pub fn signature(&self) -> String {
        let mut signature = format!(
            "{}-n{}f{}d{}-{}",
            self.protocol.name(),
            self.n,
            self.f,
            self.d,
            self.validity.family()
        );
        if let Some(topology) = &self.topology {
            let _ = write!(signature, "-{}", topology.replace(':', "-"));
        }
        signature
    }

    /// Serialises the genome as a standard scenario TOML document.  This is
    /// the genome's only serialised form: evaluation, shrinking and the
    /// committed reproducer all go through this exact text, which is what
    /// makes a pinned reproducer replay the search's finding byte for byte.
    pub fn to_toml(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("[scenario]\nname = \"");
        out.push_str(&self.signature());
        out.push_str("\"\n");
        let _ = writeln!(out, "protocol = \"{}\"", self.protocol.name());
        let _ = writeln!(out, "n = {}", self.n);
        let _ = writeln!(out, "f = {}", self.f);
        let _ = writeln!(out, "d = {}", self.d);
        let _ = writeln!(out, "epsilon = {}", toml_f64(self.epsilon));
        let _ = writeln!(out, "seed = {}", self.seed);
        let _ = writeln!(out, "max_steps = {}", self.max_steps);
        match self.validity {
            ValidityGene::Strict => {}
            ValidityGene::Alpha(alpha) => {
                let _ = writeln!(
                    out,
                    "validity = \"alpha-relaxed\"\nalpha = {}",
                    toml_f64(alpha)
                );
            }
            ValidityGene::K(k) => {
                let _ = writeln!(out, "validity = \"k-relaxed\"\nk = {k}");
            }
        }
        out.push_str("\n[inputs]\ngenerator = \"explicit\"\npoints = [\n");
        for point in &self.points {
            out.push_str("    [");
            for (i, c) in point.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&toml_f64(*c));
            }
            out.push_str("],\n");
        }
        out.push_str("]\n");
        let _ = writeln!(out, "\n[adversary]\nstrategy = \"{}\"", self.strategy);
        if let Some(topology) = &self.topology {
            let _ = writeln!(out, "\n[topology]\nkind = \"{topology}\"");
        }
        if self.round_robin {
            out.push_str("\n[delivery]\npolicy = \"round-robin\"\n");
        }
        for fault in &self.faults {
            let _ = writeln!(
                out,
                "\n[[faults]]\nkind = \"latency\"\nextra = {}\nfrom = [{}]\nto = [{}]\n\
                 start = {}\nduration = {}",
                fault.extra, fault.from, fault.to, fault.start, fault.duration,
            );
        }
        out
    }

    /// Parses the genome's TOML form back into a runnable [`ScenarioSpec`].
    ///
    /// # Errors
    ///
    /// A genome whose parameters the scenario schema rejects (malformed
    /// points, bad strategy label…) — the search scores such genomes as
    /// rejected rather than panicking.
    pub fn to_spec(&self) -> Result<ScenarioSpec, SchemaError> {
        ScenarioSpec::from_toml(&self.to_toml())
    }

    /// Resizes `points` to `n − f` entries of dimension `d`, drawing any
    /// new coordinates uniformly from `[0, 1]` — called after every shape
    /// mutation so the genome stays well-formed.
    pub fn fix_points(&mut self, rng: &mut StdRng) {
        let honest = self.honest();
        self.points.truncate(honest);
        while self.points.len() < honest {
            let point = (0..self.d).map(|_| rng.gen_range(0.0..=1.0)).collect();
            self.points.push(point);
        }
        for point in &mut self.points {
            point.truncate(self.d);
            while point.len() < self.d {
                point.push(rng.gen_range(0.0..=1.0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn genome() -> ChaosGenome {
        ChaosGenome {
            protocol: Protocol::Exact,
            n: 5,
            f: 1,
            d: 2,
            epsilon: 0.1,
            seed: 3,
            points: vec![
                vec![0.1, 0.2],
                vec![0.3, 0.4],
                vec![0.5, 0.6],
                vec![0.7, 0.8],
            ],
            strategy: "split-brain:5".to_string(),
            validity: ValidityGene::Alpha(0.5),
            topology: None,
            faults: vec![FaultGene {
                from: 0,
                to: 2,
                extra: 2,
                start: 1,
                duration: 3,
            }],
            round_robin: false,
            max_steps: 200_000,
        }
    }

    #[test]
    fn toml_round_trips_through_the_scenario_schema() {
        let g = genome();
        let spec = g.to_spec().expect("genome TOML parses");
        assert_eq!(spec.n, 5);
        assert_eq!(spec.f, 1);
        assert_eq!(spec.d, 2);
        assert_eq!(spec.seed, 3);
        assert_eq!(bvc_scenario::strategy_label(spec.strategy), "split-brain:5");
        assert_eq!(spec.faults.events().len(), 1);
        assert!(spec.validity.is_some());
    }

    #[test]
    fn signatures_name_the_failure_family_not_the_alpha_value() {
        let mut a = genome();
        let mut b = genome();
        a.validity = ValidityGene::Alpha(0.25);
        b.validity = ValidityGene::Alpha(3.0);
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.signature(), "exact-n5f1d2-alpha");
        b.validity = ValidityGene::K(1);
        assert_eq!(b.signature(), "exact-n5f1d2-k1");
    }

    #[test]
    fn a_directed_genome_round_trips_with_its_topology() {
        let mut g = genome();
        g.protocol = Protocol::DirectedExactLb;
        g.n = 8;
        g.f = 1;
        g.strategy = "crash:1".to_string();
        g.validity = ValidityGene::Strict;
        g.topology = Some("random-regular:4".to_string());
        g.faults.clear();
        g.fix_points(&mut StdRng::seed_from_u64(5));
        let spec = g.to_spec().expect("directed genome TOML parses");
        assert_eq!(spec.protocol.name(), "directed-exact-lb");
        assert_eq!(
            spec.topology.as_ref().map(|t| t.name()),
            Some("random-regular:4".to_string())
        );
        assert_eq!(
            g.signature(),
            "directed-exact-lb-n8f1d2-strict-random-regular-4",
            "the topology suffix flattens `:` into a file-stem-safe `-`"
        );
    }

    #[test]
    fn fix_points_restores_the_shape_invariant() {
        let mut g = genome();
        let mut rng = StdRng::seed_from_u64(1);
        g.n = 7;
        g.d = 3;
        g.fix_points(&mut rng);
        assert_eq!(g.points.len(), 6);
        assert!(g.points.iter().all(|p| p.len() == 3));
        assert!(g.points.iter().flatten().all(|c| (0.0..=1.0).contains(c)));
    }
}
