//! Property-based tests (proptest) over the core invariants:
//!
//! * geometry — Γ points always lie inside the source hull and inside every
//!   defining subset hull; Tverberg thresholds; convex-combination witnesses.
//! * algorithms — for random inputs, seeds and adversaries at the resilience
//!   bound, Exact BVC satisfies Agreement + Validity and Approximate BVC
//!   satisfies ε-Agreement + Validity.

use bvc::adversary::ByzantineStrategy;
use bvc::core::{BvcSession, ProtocolKind, RunConfig, UpdateRule};
use bvc::geometry::{ConvexHull, Point, PointMultiset, SafeArea};
use proptest::prelude::*;

fn point_strategy(d: usize) -> impl Strategy<Value = Point> {
    prop::collection::vec(0.0f64..1.0, d).prop_map(Point::new)
}

fn multiset_strategy(len: usize, d: usize) -> impl Strategy<Value = PointMultiset> {
    prop::collection::vec(point_strategy(d), len).prop_map(PointMultiset::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lemma 1: with |Y| ≥ (d+1)f+1 the safe area is non-empty, and its
    /// chosen point lies in the hull of every (|Y|−f)-subset.
    #[test]
    fn gamma_point_exists_and_is_in_every_subset_hull(
        y in multiset_strategy(4, 1),
    ) {
        let area = SafeArea::new(y, 1);
        let p = area.find_point().expect("Lemma 1: |Y| = 4 >= (1+1)*1+1");
        prop_assert!(area.contains(&p));
        for hull in area.hulls() {
            prop_assert!(hull.contains(&p));
        }
    }

    /// Same in two dimensions with |Y| = (d+1)f+1 = 4.
    #[test]
    fn gamma_point_exists_in_two_dimensions(
        y in multiset_strategy(4, 2),
    ) {
        let area = SafeArea::new(y, 1);
        let p = area.find_point().expect("Lemma 1: |Y| = 4 >= (2+1)*1+1... ");
        prop_assert!(area.contains(&p));
    }

    /// A convex-combination witness returned by the hull reconstructs the
    /// queried point.
    #[test]
    fn convex_combination_witness_reconstructs(
        y in multiset_strategy(5, 2),
        w in prop::collection::vec(0.01f64..1.0, 5),
    ) {
        let total: f64 = w.iter().sum();
        let weights: Vec<f64> = w.iter().map(|x| x / total).collect();
        let target = Point::convex_combination(y.points(), &weights);
        let hull = ConvexHull::new(y);
        let witness = hull.convex_combination(&target).expect("target is inside by construction");
        let rebuilt = Point::convex_combination(hull.generators().points(), &witness);
        prop_assert!(rebuilt.approx_eq(&target, 1e-5));
    }

    /// Points strictly outside the bounding box of the generators are never
    /// reported as hull members.
    #[test]
    fn points_outside_bounding_box_are_rejected(
        y in multiset_strategy(4, 2),
        shift in 0.5f64..10.0,
    ) {
        let hull = ConvexHull::new(y.clone());
        let max = y.coordinate_max();
        let outside = Point::new(vec![max.coord(0) + shift, max.coord(1) + shift]);
        prop_assert!(!hull.contains(&outside));
    }
}

proptest! {
    // End-to-end protocol executions are comparatively expensive; keep the
    // case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Exact BVC at the tight bound satisfies agreement and validity for
    /// random inputs, seeds and active adversaries (d = 2, f = 1, n = 4).
    #[test]
    fn exact_bvc_holds_for_random_inputs(
        inputs in prop::collection::vec(point_strategy(2), 3),
        seed in 0u64..1000,
        strategy_index in 0usize..4,
    ) {
        let strategy = ByzantineStrategy::active_attacks()[strategy_index];
        let run = BvcSession::new(
            ProtocolKind::Exact,
            RunConfig::new(4, 1, 2)
                .honest_inputs(inputs)
                .adversary(strategy)
                .seed(seed),
        )
        .expect("parameters satisfy the bound")
        .run();
        prop_assert!(run.verdict().agreement, "agreement failed: {:?}", run.verdict());
        prop_assert!(run.verdict().validity, "validity failed: {:?}", run.verdict());
        prop_assert!(run.verdict().termination);
    }

    /// Approximate BVC at the tight bound satisfies ε-agreement and validity
    /// for random scalar inputs and adversaries (d = 1, f = 1, n = 4).
    #[test]
    fn approx_bvc_holds_for_random_inputs(
        values in prop::collection::vec(0.0f64..1.0, 3),
        seed in 0u64..1000,
        strategy_index in 0usize..4,
    ) {
        let strategy = ByzantineStrategy::active_attacks()[strategy_index];
        let inputs: Vec<Point> = values.iter().map(|&v| Point::new(vec![v])).collect();
        let run = BvcSession::new(
            ProtocolKind::Approx,
            RunConfig::new(4, 1, 1)
                .honest_inputs(inputs)
                .adversary(strategy)
                .epsilon(0.1)
                .update_rule(UpdateRule::WitnessOptimized)
                .seed(seed),
        )
        .expect("parameters satisfy the bound")
        .run();
        prop_assert!(run.verdict().agreement, "ε-agreement failed: {:?}", run.verdict());
        prop_assert!(run.verdict().validity, "validity failed: {:?}", run.verdict());
    }
}
