//! Verdict analytics: aggregate campaign JSONL into violation-rate tables.
//!
//! `campaign-run --out verdicts.jsonl` leaves one JSON verdict per instance;
//! this module rolls those lines up into a violation-rate table keyed by
//! **strategy × fault kinds × topology × validity mode × broadcast model** —
//! the adversarial axes the scenario engine sweeps — and renders it as the
//! Markdown that `campaign-report` writes into `EXPERIMENTS.md`.  The
//! broadcast model is not its own verdict field: it is derived from the
//! `protocol` name (`directed-exact` ⇒ point-to-point, `directed-exact-lb`
//! ⇒ local, anything else ⇒ `—`), so old corpora aggregate unchanged.
//!
//! Rates are reported separately for instances the up-front checks declared
//! solvable and for *expected-unsolvable* ones — incomplete topologies that
//! fail the iterative sufficiency check, or runs below the (possibly
//! relaxed) resource bound of their declared validity mode: a violation in
//! the former column is a finding, in the latter it is the anticipated
//! outcome.

use crate::json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated counts for one `(strategy, faults, topology, validity,
/// broadcast)` cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellStats {
    /// Verdicts observed on expected-solvable substrates.
    pub runs: usize,
    /// Of [`runs`](Self::runs), how many violated a condition.
    pub violations: usize,
    /// Verdicts observed on expected-unsolvable substrates.
    pub unsolvable_runs: usize,
    /// Of [`unsolvable_runs`](Self::unsolvable_runs), how many violated.
    pub unsolvable_violations: usize,
}

/// The key of one aggregation cell: `(strategy, faults, topology, validity,
/// broadcast)`.
pub type CellKey = (String, String, String, String, String);

/// The full violation-rate table, keyed `(strategy, faults, topology,
/// validity, broadcast)` in sorted order (deterministic rendering).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViolationTable {
    cells: BTreeMap<CellKey, CellStats>,
    /// Lines that could not be parsed as verdicts (counted, not fatal).
    pub skipped: usize,
}

impl ViolationTable {
    /// Builds the table from campaign JSONL (one verdict object per line;
    /// blank lines ignored, malformed lines counted in `skipped`).
    pub fn from_jsonl(text: &str) -> Self {
        let mut table = Self::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match Json::parse(line) {
                Ok(json) => table.add(&json),
                Err(_) => table.skipped += 1,
            }
        }
        table
    }

    /// Folds one verdict object into the table.
    pub fn add(&mut self, verdict: &Json) {
        let Some(strategy) = verdict.get("strategy").and_then(Json::as_str) else {
            self.skipped += 1;
            return;
        };
        let faults = match verdict.get("faults").and_then(Json::as_array) {
            Some(kinds) if !kinds.is_empty() => kinds
                .iter()
                .filter_map(Json::as_str)
                .collect::<Vec<_>>()
                .join("+"),
            _ => "none".to_string(),
        };
        let (topology, topology_solvable) = match verdict.get("topology") {
            Some(meta) => (
                meta.get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                meta.get("expected_solvable")
                    .and_then(Json::as_bool)
                    .unwrap_or(true),
            ),
            None => ("complete".to_string(), true),
        };
        let (validity, validity_satisfied) = match verdict.get("validity") {
            Some(meta) => (
                meta.get("mode")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                meta.get("satisfied")
                    .and_then(Json::as_bool)
                    .unwrap_or(true),
            ),
            None => ("strict".to_string(), true),
        };
        let broadcast = match verdict.get("protocol").and_then(Json::as_str) {
            Some("directed-exact") => "point-to-point",
            Some("directed-exact-lb") => "local",
            _ => "—",
        }
        .to_string();
        let expected_solvable = topology_solvable && validity_satisfied;
        let holds = |key: &str| {
            verdict
                .get("verdict")
                .and_then(|v| v.get(key))
                .and_then(Json::as_bool)
                .unwrap_or(false)
        };
        let violated = !(holds("agreement") && holds("validity") && holds("termination"));
        let cell = self
            .cells
            .entry((strategy.to_string(), faults, topology, validity, broadcast))
            .or_default();
        if expected_solvable {
            cell.runs += 1;
            cell.violations += usize::from(violated);
        } else {
            cell.unsolvable_runs += 1;
            cell.unsolvable_violations += usize::from(violated);
        }
    }

    /// The aggregated cells in key order.
    pub fn cells(&self) -> impl Iterator<Item = (&CellKey, &CellStats)> {
        self.cells.iter()
    }

    /// Total number of verdicts folded in.
    pub fn total_runs(&self) -> usize {
        self.cells
            .values()
            .map(|c| c.runs + c.unsolvable_runs)
            .sum()
    }

    /// Renders the Markdown section `campaign-report` writes to
    /// `EXPERIMENTS.md`.
    pub fn to_markdown(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {title}");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{} verdicts aggregated per strategy × fault kinds × topology × \
             validity mode × broadcast model.  `violation rate` counts failed \
             verdicts on substrates the up-front checks declared solvable; \
             `expected-unsolvable` runs (topologies failing their protocol's \
             sufficiency check, or runs below their validity mode's resource \
             bound) are tallied separately — violations there are the \
             anticipated outcome, not findings.  `broadcast` is the delivery \
             model of the directed protocols (`—` for the complete-graph \
             protocols, where the distinction never arises).",
            self.total_runs()
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "| strategy | faults | topology | validity | broadcast | runs | violations | violation rate | expected-unsolvable (violated/runs) |"
        );
        let _ = writeln!(
            out,
            "|----------|--------|----------|----------|-----------|-----:|-----------:|---------------:|------------------------------------:|"
        );
        for ((strategy, faults, topology, validity, broadcast), cell) in &self.cells {
            let rate = if cell.runs == 0 {
                "—".to_string()
            } else {
                format!("{:.1}%", 100.0 * cell.violations as f64 / cell.runs as f64)
            };
            let unsolvable = if cell.unsolvable_runs == 0 {
                "—".to_string()
            } else {
                format!("{}/{}", cell.unsolvable_violations, cell.unsolvable_runs)
            };
            let _ = writeln!(
                out,
                "| {strategy} | {faults} | {topology} | {validity} | {broadcast} | {} | {} | {rate} | {unsolvable} |",
                cell.runs, cell.violations
            );
        }
        if self.skipped > 0 {
            let _ = writeln!(out);
            let _ = writeln!(out, "({} malformed line(s) skipped.)", self.skipped);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict_line(
        strategy: &str,
        fault: Option<&str>,
        topology: Option<(&str, bool)>,
        ok: bool,
    ) -> String {
        verdict_line_with_validity(strategy, fault, topology, None, ok)
    }

    fn verdict_line_with_validity(
        strategy: &str,
        fault: Option<&str>,
        topology: Option<(&str, bool)>,
        validity: Option<(&str, bool)>,
        ok: bool,
    ) -> String {
        let faults = match fault {
            Some(f) => format!("[\"{f}\"]"),
            None => "[]".into(),
        };
        let topo = match topology {
            Some((kind, solvable)) => format!(
                ", \"topology\": {{\"kind\": \"{kind}\", \"expected_solvable\": {solvable}}}"
            ),
            None => String::new(),
        };
        let val = match validity {
            Some((mode, satisfied)) => {
                format!(", \"validity\": {{\"mode\": \"{mode}\", \"satisfied\": {satisfied}}}")
            }
            None => String::new(),
        };
        format!(
            "{{\"strategy\": \"{strategy}\", \"faults\": {faults}{topo}{val}, \
             \"verdict\": {{\"agreement\": {ok}, \"validity\": true, \"termination\": {ok}}}}}"
        )
    }

    #[test]
    fn aggregation_buckets_by_all_axes() {
        let lines = [
            verdict_line("equivocate", Some("drop"), None, true),
            verdict_line("equivocate", Some("drop"), None, false),
            verdict_line("equivocate", None, Some(("ring", false)), false),
            verdict_line("silent", Some("drop"), None, true),
            "not json".to_string(),
        ]
        .join("\n");
        let table = ViolationTable::from_jsonl(&lines);
        assert_eq!(table.skipped, 1);
        assert_eq!(table.total_runs(), 4);
        let cells: Vec<_> = table.cells().collect();
        assert_eq!(cells.len(), 3);
        // BTreeMap order: (equivocate, drop, complete, strict),
        // (equivocate, none, ring, strict), (silent, drop, complete, strict).
        assert_eq!(
            cells[0].0,
            &(
                "equivocate".to_string(),
                "drop".to_string(),
                "complete".to_string(),
                "strict".to_string(),
                "—".to_string()
            )
        );
        assert_eq!(cells[0].1.runs, 2);
        assert_eq!(cells[0].1.violations, 1);
        assert_eq!(cells[1].1.unsolvable_runs, 1);
        assert_eq!(cells[1].1.unsolvable_violations, 1);
        assert_eq!(
            cells[1].1.runs, 0,
            "flagged runs stay out of the rate column"
        );
    }

    #[test]
    fn validity_modes_split_cells_and_unsatisfied_runs_are_expected() {
        let lines = [
            verdict_line_with_validity(
                "equivocate",
                None,
                None,
                Some(("(1+0)-relaxed", false)),
                false,
            ),
            verdict_line_with_validity(
                "equivocate",
                None,
                None,
                Some(("(1+0.5)-relaxed", true)),
                true,
            ),
        ]
        .join("\n");
        let table = ViolationTable::from_jsonl(&lines);
        let cells: Vec<_> = table.cells().collect();
        assert_eq!(cells.len(), 2, "each α gets its own row");
        let zero = &cells[0];
        assert_eq!(zero.0 .3, "(1+0)-relaxed");
        assert_eq!(zero.1.runs, 0, "below-bound runs are expected data");
        assert_eq!(zero.1.unsolvable_runs, 1);
        assert_eq!(zero.1.unsolvable_violations, 1);
        let half = &cells[1];
        assert_eq!(half.0 .3, "(1+0.5)-relaxed");
        assert_eq!(half.1.runs, 1);
        assert_eq!(half.1.violations, 0);
    }

    #[test]
    fn markdown_renders_rates_and_dashes() {
        let lines = [
            verdict_line("equivocate", Some("latency"), None, true),
            verdict_line("equivocate", Some("latency"), None, false),
        ]
        .join("\n");
        let md = ViolationTable::from_jsonl(&lines).to_markdown("Smoke");
        assert!(md.contains("## Smoke"));
        assert!(md.contains("| equivocate | latency | complete | strict | — | 2 | 1 | 50.0% | — |"));
    }

    #[test]
    fn broadcast_model_is_derived_from_the_protocol_name() {
        let lines = [
            "{\"scenario\": \"div\", \"protocol\": \"directed-exact\", \"strategy\": \"crash:1\", \
             \"faults\": [], \"verdict\": {\"agreement\": false, \"validity\": true, \
             \"termination\": false}}",
            "{\"scenario\": \"div\", \"protocol\": \"directed-exact-lb\", \"strategy\": \"crash:1\", \
             \"faults\": [], \"verdict\": {\"agreement\": true, \"validity\": true, \
             \"termination\": true}}",
        ]
        .join("\n");
        let table = ViolationTable::from_jsonl(&lines);
        let cells: Vec<_> = table.cells().collect();
        assert_eq!(cells.len(), 2, "the two delivery models get separate rows");
        assert_eq!(
            cells[0].0 .4, "local",
            "BTreeMap order: local < point-to-point"
        );
        assert_eq!(cells[1].0 .4, "point-to-point");
        let md = table.to_markdown("Directed");
        assert!(md.contains("| crash:1 | none | complete | strict | local | 1 | 0 | 0.0% | — |"));
        assert!(md.contains(
            "| crash:1 | none | complete | strict | point-to-point | 1 | 1 | 100.0% | — |"
        ));
    }

    #[test]
    fn markdown_is_deterministic() {
        let lines = [
            verdict_line("silent", None, None, true),
            verdict_line("benign", None, None, true),
        ]
        .join("\n");
        let a = ViolationTable::from_jsonl(&lines).to_markdown("T");
        let b = ViolationTable::from_jsonl(&lines).to_markdown("T");
        assert_eq!(a, b);
        // benign sorts before silent regardless of input order.
        let benign = a.find("| benign |").unwrap();
        let silent = a.find("| silent |").unwrap();
        assert!(benign < silent);
    }
}
