//! Driver for the restricted-round synchronous algorithm (Section 4,
//! Theorem 6).

use super::{make_forge, BvcSession, DriverOutcome, ProtocolDriver};
use crate::restricted::{ByzantineRestrictedSync, RestrictedSyncProcess, StateMsg};
use bvc_geometry::Point;
use bvc_net::{SyncNetwork, SyncProcess};

pub(super) struct RestrictedSyncDriver;

impl ProtocolDriver for RestrictedSyncDriver {
    fn execute(&self, session: &BvcSession) -> DriverOutcome {
        let config = session.params();
        let rc = session.config();
        // In a synchronous round every honest process sees the same states,
        // so each round's C(n, n−f) safe-area solves happen once system-wide
        // instead of once per process.
        let gamma_cache = session.gamma_cache().clone();
        let mut processes: Vec<Box<dyn SyncProcess<Msg = StateMsg, Output = Point>>> = Vec::new();
        for (i, input) in rc.honest_inputs.iter().enumerate() {
            processes.push(Box::new(
                RestrictedSyncProcess::new(config.clone(), i, input.clone())
                    .with_gamma_cache(gamma_cache.clone()),
            ));
        }
        for b in 0..config.f {
            let me = config.honest_count() + b;
            let forge = make_forge(rc.adversary, config, rc.seed, b);
            processes.push(Box::new(ByzantineRestrictedSync::new(
                config.clone(),
                me,
                forge,
            )));
        }
        let honest = session.honest_indices();
        let outcome = SyncNetwork::new(processes, RestrictedSyncProcess::total_rounds(config) + 1)
            .with_topology(session.topology().as_ref().clone())
            .with_faults(rc.faults.clone(), rc.seed)
            .run(&honest);
        let decisions = session.honest_decisions(&outcome.outputs);
        let terminated = decisions.len() == honest.len();
        DriverOutcome {
            decisions,
            terminated,
            tolerance: config.epsilon,
            rounds: outcome.rounds,
            stats: outcome.stats,
            round_budget: None,
            outputs: Vec::new(),
            sufficiency: None,
        }
    }
}
