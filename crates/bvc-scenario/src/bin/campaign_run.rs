//! `campaign-run` — expand scenarios into their campaign matrices and run
//! the whole lot across worker threads.
//!
//! ```text
//! cargo run -p bvc-scenario --bin campaign-run -- \
//!     [--dir scenarios] [file.toml ...] [--jobs 8] [--out verdicts.jsonl]
//! ```
//!
//! Scenario files can be named directly (positional `.toml` paths), pulled
//! from a directory with `--dir`, or both.
//!
//! stdout carries exactly one JSON line per instance, in deterministic
//! instance order (scenario files sorted by name, then the scenario's own
//! sweep order) regardless of thread interleaving; the human-readable
//! summary goes to stderr.  Verdicts **stream**: each line is written as
//! soon as it is next in instance order, so a long campaign produces output
//! while it runs instead of buffering every result.  Exit code 0 means
//! every instance ran and every verdict held; 1 means some verdict was
//! violated or some instance was rejected; 2 means the campaign could not
//! be loaded.

use bvc_scenario::{expand_all, run_campaign_streaming, ScenarioSpec, VerdictSink};
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::PathBuf;
use std::process::ExitCode;

/// Streams each verdict line to stdout and (optionally) tees it into
/// `--out`, flushing both at the end of the campaign.
struct CampaignSink {
    stdout: io::Stdout,
    file: Option<BufWriter<File>>,
}

impl VerdictSink for CampaignSink {
    fn emit(&mut self, line: &str) -> io::Result<()> {
        self.stdout.write_all(line.as_bytes())?;
        self.stdout.write_all(b"\n")?;
        if let Some(file) = &mut self.file {
            file.write_all(line.as_bytes())?;
            file.write_all(b"\n")?;
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.stdout.flush()?;
        if let Some(file) = &mut self.file {
            file.flush()?;
        }
        Ok(())
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: campaign-run [--dir <scenario-dir>] [<scenario.toml> ...] \
         [--jobs <n>] [--out <file>]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut dir: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut jobs = 0usize;
    let mut out_path: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--jobs" => {
                let value = args.next().unwrap_or_else(|| usage());
                match value.parse() {
                    Ok(n) => jobs = n,
                    Err(_) => {
                        eprintln!("campaign-run: invalid --jobs `{value}`");
                        return ExitCode::from(2);
                    }
                }
            }
            "--out" => out_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--help" | "-h" => usage(),
            other if other.ends_with(".toml") => files.push(PathBuf::from(other)),
            other => {
                eprintln!("campaign-run: unknown argument `{other}`");
                usage();
            }
        }
    }
    if dir.is_none() && files.is_empty() {
        usage()
    }

    // Load scenario files in sorted order for a stable instance matrix;
    // positional files come first, then the directory contents.  A file
    // reachable both ways (named positionally *and* living in --dir) is run
    // once: duplicates are filtered by canonical path.
    let mut paths: Vec<PathBuf> = files;
    paths.sort();
    if let Some(dir) = &dir {
        let mut from_dir: Vec<PathBuf> = match std::fs::read_dir(dir) {
            Ok(entries) => entries
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|path| path.extension().is_some_and(|ext| ext == "toml"))
                .collect(),
            Err(e) => {
                eprintln!("campaign-run: cannot read `{}`: {e}", dir.display());
                return ExitCode::from(2);
            }
        };
        from_dir.sort();
        paths.extend(from_dir);
    }
    let mut seen = std::collections::BTreeSet::new();
    paths.retain(|path| {
        let key = std::fs::canonicalize(path).unwrap_or_else(|_| path.clone());
        seen.insert(key)
    });
    if paths.is_empty() {
        eprintln!("campaign-run: no .toml scenarios to run");
        return ExitCode::from(2);
    }

    let mut specs = Vec::with_capacity(paths.len());
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("campaign-run: cannot read `{}`: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        match ScenarioSpec::from_toml(&text) {
            Ok(spec) => specs.push(spec),
            Err(e) => {
                eprintln!("campaign-run: `{}`: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    let instances = expand_all(&specs);
    eprintln!(
        "campaign-run: {} scenario file(s) → {} instance(s)",
        specs.len(),
        instances.len()
    );

    let file = match &out_path {
        None => None,
        Some(path) => match File::create(path) {
            Ok(file) => Some(BufWriter::new(file)),
            Err(e) => {
                eprintln!("campaign-run: cannot write `{}`: {e}", path.display());
                return ExitCode::from(2);
            }
        },
    };
    let mut sink = CampaignSink {
        stdout: io::stdout(),
        file,
    };
    let (summary, rejections) = match run_campaign_streaming(&instances, jobs, &mut sink) {
        Ok(done) => done,
        Err(e) => {
            eprintln!("campaign-run: verdict stream failed: {e}");
            return ExitCode::from(2);
        }
    };
    for (index, error) in &rejections {
        let instance = &instances[*index];
        eprintln!(
            "campaign-run: `{}` seed {} rejected: {error}",
            instance.spec.name, instance.seed
        );
    }
    eprintln!(
        "campaign-run: {} passed, {} violated, {} expected-unsolvable, {} rejected ({} total)",
        summary.passed,
        summary.violated,
        summary.expected_unsolvable,
        summary.rejected,
        summary.total()
    );
    let _ = std::io::stderr().flush();
    if summary.violated == 0 && summary.rejected == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
