//! Criterion bench: the restricted-round algorithms of Section 4 — end-to-end
//! synchronous and asynchronous executions at their tight bounds.

use bvc_adversary::ByzantineStrategy;
use bvc_bench::honest_workload;
use bvc_core::{BvcSession, ProtocolKind, RunConfig, Setting};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_restricted_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("restricted_sync");
    group.sample_size(10);
    for &(d, f) in &[(1usize, 1usize), (2, 1)] {
        let n = Setting::RestrictedSync.min_processes(d, f);
        let inputs = honest_workload(21, n - f, d);
        group.bench_with_input(
            BenchmarkId::new("run", format!("n{n}_f{f}_d{d}")),
            &inputs,
            |b, inputs| {
                b.iter(|| {
                    let run = BvcSession::new(
                        ProtocolKind::RestrictedSync,
                        RunConfig::new(n, f, d)
                            .honest_inputs(inputs.clone())
                            .adversary(ByzantineStrategy::FixedOutlier)
                            .epsilon(0.1)
                            .seed(4),
                    )
                    .expect("bound satisfied")
                    .run();
                    assert!(run.verdict().all_hold());
                })
            },
        );
    }
    group.finish();
}

fn bench_restricted_async(c: &mut Criterion) {
    let mut group = c.benchmark_group("restricted_async");
    group.sample_size(10);
    let (d, f) = (1usize, 1usize);
    let n = Setting::RestrictedAsync.min_processes(d, f);
    let inputs = honest_workload(22, n - f, d);
    group.bench_with_input(
        BenchmarkId::new("run", format!("n{n}_f{f}_d{d}")),
        &inputs,
        |b, inputs| {
            b.iter(|| {
                let run = BvcSession::new(
                    ProtocolKind::RestrictedAsync,
                    RunConfig::new(n, f, d)
                        .honest_inputs(inputs.clone())
                        .adversary(ByzantineStrategy::AntiConvergence)
                        .epsilon(0.1)
                        .seed(4),
                )
                .expect("bound satisfied")
                .run();
                assert!(run.verdict().all_hold());
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_restricted_sync, bench_restricted_async);
criterion_main!(benches);
