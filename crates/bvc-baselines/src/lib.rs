//! Baseline algorithms for the BVC reproduction.
//!
//! Two baselines the paper measures itself against (argumentatively — the
//! paper has no system evaluation, so the experiments in this repository make
//! the comparisons concrete):
//!
//! * [`scalar_exact`] — per-dimension scalar Byzantine consensus, the naive
//!   approach the introduction shows to violate vector validity (experiment
//!   E8 reproduces the probability-vector counterexample and measures the
//!   violation frequency on random workloads).
//! * [`scalar_approx`] — the classical iterative scalar approximate-agreement
//!   algorithm (trim `f` from each side, average the rest), the structural
//!   ancestor of the Section 4 restricted-round algorithms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scalar_approx;
pub mod scalar_exact;

pub use scalar_approx::{run_iterative_scalar, ExtremeScalarProcess, IterativeScalarProcess};
pub use scalar_exact::{
    per_dimension_decision, scalar_safe_interval, PerDimensionScalarProcess, ScalarPick,
};
