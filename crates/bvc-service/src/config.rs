//! Service configuration: one template, many instances, validated up front.

use bvc_core::{BvcError, InstanceOverrides, ProtocolKind, RunConfig};
use std::fmt;
use std::io;

/// How instances see the Γ cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Every instance gets a fresh per-instance cache chained to one
    /// service-lifetime parent, so safe-area evaluations are reused across
    /// instances and the parent's hit counter measures exactly that reuse.
    Shared,
    /// Every instance gets an isolated fresh cache (the one-shot
    /// behaviour).  Useful as the control group: decisions must be
    /// identical to [`CacheMode::Shared`].
    PerInstance,
}

/// A validated multi-instance stream: a [`RunConfig`] template plus one
/// [`InstanceOverrides`] per consensus instance, and the pool knobs.
///
/// Admission is all-or-nothing: [`ServiceConfig::validate`] (called by
/// [`BvcService::new`](crate::BvcService::new)) checks every effective
/// instance configuration against the protocol's admission bound before
/// anything runs, so the worker pool never sees a rejectable instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The protocol every instance is dispatched to.
    pub protocol: ProtocolKind,
    /// The stream-wide template (shape, topology, faults, ε, bounds…).
    pub template: RunConfig,
    /// One entry per instance, in decision order.
    pub instances: Vec<InstanceOverrides>,
    /// Worker threads; `0` selects the available parallelism.
    pub workers: usize,
    /// Instances admitted per batch (backpressure holds at most two
    /// batches in flight).  Must be ≥ 1.
    pub batch: usize,
    /// Γ-cache sharing across instances.
    pub cache_mode: CacheMode,
    /// Entry capacity of the shared parent cache (`0` selects the
    /// default).  The parent is wholesale-cleared when full, so it must be
    /// sized to span the stream's seed cycle: a stream whose distinct Γ
    /// queries between seed repeats exceed the capacity evicts every entry
    /// before it can be reused and measures zero cross-instance hits.
    pub shared_capacity: usize,
    /// Stream label, echoed in every verdict line and in the stats.
    pub label: String,
    /// Chaos-lab knob: deliberately panic the instance with this sequence
    /// number inside the worker pool.  No admitted configuration panics
    /// organically, so this is how panic containment is exercised — the
    /// instance must surface as a contained panic verdict while the rest
    /// of the stream drains normally.
    pub panic_instance: Option<usize>,
}

impl ServiceConfig {
    /// Default parent-cache capacity: sized for long streams of the
    /// hardest tier-1 shapes (n = 9, d = 2 restricted rounds contribute
    /// thousands of distinct multisets per instance; a 50-seed cycle then
    /// needs several hundred thousand live entries for repeats to survive
    /// until their reuse).
    pub const DEFAULT_SHARED_CAPACITY: usize = 1 << 20;

    /// A stream over `template` with no instances yet and the defaults:
    /// available-parallelism workers, batches of 64, shared Γ cache at
    /// [`DEFAULT_SHARED_CAPACITY`](Self::DEFAULT_SHARED_CAPACITY) entries,
    /// label `"service"`.
    pub fn new(protocol: ProtocolKind, template: RunConfig) -> Self {
        Self {
            protocol,
            template,
            instances: Vec::new(),
            workers: 0,
            batch: 64,
            cache_mode: CacheMode::Shared,
            shared_capacity: 0,
            label: "service".to_string(),
            panic_instance: None,
        }
    }

    /// Replaces the instance list.
    pub fn instances(mut self, instances: Vec<InstanceOverrides>) -> Self {
        self.instances = instances;
        self
    }

    /// Appends one instance.
    pub fn push_instance(mut self, overrides: InstanceOverrides) -> Self {
        self.instances.push(overrides);
        self
    }

    /// Worker threads (`0` = available parallelism; always clamped to the
    /// instance count).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Admission batch size (must be ≥ 1).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Γ-cache sharing mode.
    pub fn cache_mode(mut self, mode: CacheMode) -> Self {
        self.cache_mode = mode;
        self
    }

    /// Parent-cache entry capacity (`0` = the default).  Size it above the
    /// stream's distinct Γ queries per seed cycle, or eviction erases
    /// entries before their cross-instance reuse.
    pub fn shared_capacity(mut self, capacity: usize) -> Self {
        self.shared_capacity = capacity;
        self
    }

    /// Stream label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Deliberately panics the instance with sequence number `seq` inside
    /// the worker pool (chaos-lab panic injection; see
    /// [`panic_instance`](Self::panic_instance)).
    pub fn inject_panic(mut self, seq: usize) -> Self {
        self.panic_instance = Some(seq);
        self
    }

    /// Validates the whole stream: a non-empty instance list, a positive
    /// batch size, and every effective instance config admitted by
    /// [`RunConfig::validate`] for the stream's protocol.
    ///
    /// # Errors
    ///
    /// [`ServiceError::EmptyStream`], [`ServiceError::ZeroBatch`], or the
    /// first [`ServiceError::Instance`] rejection in stream order.
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.instances.is_empty() {
            return Err(ServiceError::EmptyStream);
        }
        if self.batch == 0 {
            return Err(ServiceError::ZeroBatch);
        }
        for (index, overrides) in self.instances.iter().enumerate() {
            self.template
                .for_instance(overrides)
                .validate(self.protocol)
                .map_err(|source| ServiceError::Instance { index, source })?;
        }
        Ok(())
    }
}

/// Why a service could not be built or run.
#[derive(Debug)]
pub enum ServiceError {
    /// The instance list is empty.
    EmptyStream,
    /// The batch size is zero.
    ZeroBatch,
    /// An instance's effective configuration was rejected at admission.
    Instance {
        /// Stream index of the rejected instance.
        index: usize,
        /// The underlying admission error.
        source: BvcError,
    },
    /// The verdict sink failed mid-stream.
    Io(io::Error),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::EmptyStream => write!(f, "service stream has no instances"),
            ServiceError::ZeroBatch => write!(f, "admission batch size must be at least 1"),
            ServiceError::Instance { index, source } => {
                write!(f, "instance {index} rejected at admission: {source}")
            }
            ServiceError::Io(e) => write!(f, "verdict sink error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Instance { source, .. } => Some(source),
            ServiceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvc_geometry::Point;

    fn inputs(count: usize, d: usize) -> Vec<Point> {
        (0..count)
            .map(|i| Point::uniform(d, i as f64 / count as f64))
            .collect()
    }

    fn valid_config(instances: usize) -> ServiceConfig {
        let template = RunConfig::new(5, 1, 2).honest_inputs(inputs(4, 2));
        let overrides = (0..instances as u64)
            .map(|seed| InstanceOverrides {
                seed,
                ..InstanceOverrides::default()
            })
            .collect();
        ServiceConfig::new(ProtocolKind::RestrictedSync, template).instances(overrides)
    }

    #[test]
    fn empty_stream_and_zero_batch_are_rejected() {
        assert!(matches!(
            valid_config(0).validate(),
            Err(ServiceError::EmptyStream)
        ));
        assert!(matches!(
            valid_config(3).batch(0).validate(),
            Err(ServiceError::ZeroBatch)
        ));
        valid_config(3).validate().expect("defaults are valid");
    }

    #[test]
    fn a_bad_instance_is_rejected_with_its_index() {
        let mut config = valid_config(3);
        // Instance 1 overrides the inputs with the wrong count.
        config.instances[1].honest_inputs = Some(inputs(2, 2));
        match config.validate() {
            Err(ServiceError::Instance { index, .. }) => assert_eq!(index, 1),
            other => panic!("expected instance rejection, got {other:?}"),
        }
    }
}
