//! A tiny deterministic JSON writer and reader.
//!
//! Verdicts must be **byte-identical** for identical scenario + seed (the
//! determinism property tests pin this), so the writer keeps insertion order,
//! formats floats with Rust's shortest-round-trip `Display`, and maps
//! non-finite floats to `null` (JSON has no `Infinity`).
//!
//! The reader ([`Json::parse`]) exists for the verdict-analytics side: the
//! `campaign-report` aggregator consumes the JSONL that `campaign-run`
//! emits.  It is a straightforward recursive-descent parser over the JSON
//! grammar (objects keep field order, numbers map back to
//! `Int`/`UInt`/`Float`).

use std::fmt::Write as _;

/// A JSON value being assembled.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (64-bit seeds exceed `i64`).
    UInt(u64),
    /// A float (`null` when not finite).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object preserving insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Self {
        Json::Object(Vec::new())
    }

    /// Appends a field to an object (panics if `self` is not an object —
    /// builder misuse, not input-dependent).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::field called on a non-object"),
        }
        self
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    let mut s = String::new();
                    let _ = write!(s, "{x}");
                    // Keep round floats visibly floats ("1" → "1.0").
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        s.push_str(".0");
                    }
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    Json::Str(key.clone()).write(out);
                    out.push_str(": ");
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Parses one JSON value from `text` (surrounding whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first violation.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (integers widen), if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            Json::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", byte as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "non-ascii \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multibyte sequences pass through).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty by the guard above");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    if text.is_empty() {
        return Err(format!("expected a value at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

/// Serialises compactly on a single line (`to_string()` comes with it);
/// identical values always produce identical bytes.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Self {
        Json::Int(i)
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Self {
        Json::Int(i as i64)
    }
}

impl From<u64> for Json {
    fn from(i: u64) -> Self {
        Json::UInt(i)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Self {
        Json::Array(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_keep_insertion_order() {
        let json = Json::object()
            .field("b", 1usize)
            .field("a", "x")
            .field("c", true);
        assert_eq!(json.to_string(), r#"{"b": 1, "a": "x", "c": true}"#);
    }

    #[test]
    fn floats_round_trip_and_infinities_are_null() {
        assert_eq!(Json::Float(0.05).to_string(), "0.05");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(1.0).to_string(), "1.0");
        assert_eq!(Json::Float(-2.0).to_string(), "-2.0");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::Str("a\"b\\c\n".into()).to_string(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn u64_seeds_above_i64_max_survive() {
        assert_eq!(
            Json::from(u64::MAX).to_string(),
            u64::MAX.to_string(),
            "seeds must round-trip so recorded verdicts stay replayable"
        );
    }

    #[test]
    fn arrays_nest() {
        let json = Json::Array(vec![Json::Int(1), Json::Array(vec![Json::Null])]);
        assert_eq!(json.to_string(), "[1, [null]]");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let json = Json::object()
            .field("name", "a \"quoted\" name\n")
            .field("count", 3usize)
            .field("rate", 0.25)
            .field("seed", u64::MAX)
            .field("ok", true)
            .field("missing", Json::Null)
            .field("items", Json::Array(vec![Json::Int(-1), Json::Float(2.5)]));
        let text = json.to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, json);
        assert_eq!(parsed.to_string(), text, "byte-identical round trip");
    }

    #[test]
    fn parser_accessors_navigate_objects() {
        let parsed =
            Json::parse(r#"{"verdict": {"agreement": true}, "faults": ["drop"]}"#).unwrap();
        let verdict = parsed.get("verdict").unwrap();
        assert_eq!(verdict.get("agreement").and_then(Json::as_bool), Some(true));
        let faults = parsed.get("faults").and_then(Json::as_array).unwrap();
        assert_eq!(faults[0].as_str(), Some("drop"));
        assert!(parsed.get("absent").is_none());
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn parser_handles_unicode_escapes_and_numbers() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".into())
        );
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(
            Json::parse(&u64::MAX.to_string()).unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
    }
}
