//! The AAD-style exchange primitive ("Component #1", Section 3.2).
//!
//! In every asynchronous round `t`, each non-faulty process `p_i` must obtain
//! a set `B_i[t]` of at least `n − f` tuples `(p_j, w_j, t)` with the three
//! properties the correctness proof of Theorem 5 relies on:
//!
//! 1. **Property 1** — for any two non-faulty `p_i, p_j`:
//!    `|B_i[t] ∩ B_j[t]| ≥ n − f`.
//! 2. **Property 2** — `B_i[t]` contains at most one tuple per process.
//! 3. **Property 3** — a tuple for a non-faulty `p_k` can only carry
//!    `w_k = v_k[t−1]`, that process's true round-`(t−1)` state.
//!
//! The paper takes this component from Abraham–Amit–Dolev (OPODIS 2004).  Our
//! implementation composes two sub-protocols, mirroring AAD's structure:
//!
//! * every process **reliably broadcasts** its round-`t` value
//!   ([`ReliableBroadcastInstance`]); consistency/validity of reliable
//!   broadcast give Properties 2 and 3, and totality guarantees that a tuple
//!   delivered anywhere is eventually delivered everywhere;
//! * once a process has delivered `n − f` tuples it broadcasts a **report**
//!   listing them; a process `p_k` becomes a **witness** for `p_i` when every
//!   tuple in `p_k`'s report has also been delivered at `p_i`.  A process
//!   finishes the exchange when it has `n − f` witnesses.  Any two non-faulty
//!   processes then share at least `n − 2f ≥ f + 1` witnesses, hence at least
//!   one *non-faulty* common witness, whose reported `n − f` tuples are
//!   contained in both B sets — exactly Property 1.
//!
//! The completed exchange also exposes the witnesses' reported tuple sets,
//! which is what the witness optimisation of Appendix F uses to shrink `Z_i`
//! from `C(|B_i|, n−f)` subsets to at most `n`.

use bvc_broadcast::{RbMessage, ReliableBroadcastInstance};
use bvc_geometry::Point;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Message of the asynchronous approximate-BVC protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum AadMsg {
    /// Reliable-broadcast traffic carrying the round-`round` value of process
    /// `origin`.
    Rb {
        /// Asynchronous round the value belongs to.
        round: usize,
        /// The process whose value is being reliably broadcast.
        origin: usize,
        /// The underlying echo-broadcast message.
        inner: RbMessage<Point>,
    },
    /// A process's report of the first `n − f` tuples it delivered in
    /// `round` (the witness mechanism).
    Report {
        /// Asynchronous round the report belongs to.
        round: usize,
        /// `(process, value)` tuples the reporter has delivered.
        entries: Vec<(usize, Point)>,
    },
}

impl AadMsg {
    /// The asynchronous round this message belongs to.
    pub fn round(&self) -> usize {
        match self {
            AadMsg::Rb { round, .. } => *round,
            AadMsg::Report { round, .. } => *round,
        }
    }

    /// Replaces every point payload in this message by `point` (used by the
    /// Byzantine wrapper to forge values while keeping the message shape).
    pub fn forge_points(&mut self, point: &Point) {
        match self {
            AadMsg::Rb { inner, .. } => match inner {
                RbMessage::Init(v) | RbMessage::Echo(v) | RbMessage::Ready(v) => *v = point.clone(),
            },
            AadMsg::Report { entries, .. } => {
                for (_, v) in entries.iter_mut() {
                    *v = point.clone();
                }
            }
        }
    }
}

/// The result of a completed exchange: the `B_i[t]` snapshot and the
/// witnesses' reported tuple sets.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedExchange {
    /// The tuples `(process, value)` delivered at completion time (Property 2
    /// guarantees at most one per process).
    pub entries: Vec<(usize, Point)>,
    /// The reported tuple sets of this process's witnesses, each of size
    /// exactly `n − f` (used by the Appendix F optimisation).
    pub witness_sets: Vec<Vec<(usize, Point)>>,
}

/// Per-process, per-round state machine of the exchange.
#[derive(Debug, Clone)]
pub struct AadExchange {
    n: usize,
    f: usize,
    me: usize,
    round: usize,
    rb: Vec<ReliableBroadcastInstance<Point>>,
    delivered: Vec<Option<Point>>,
    /// First report received from each process (later reports are ignored).
    reports: BTreeMap<usize, Vec<(usize, Point)>>,
    witnesses: BTreeSet<usize>,
    sent_report: bool,
    completion: Option<CompletedExchange>,
}

impl AadExchange {
    /// Starts the exchange for `round` at process `me` with state value
    /// `value`; returns the state machine and the initial messages to
    /// broadcast to all other processes.
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ 3f + 1`, `f ≥ 1` and `me < n`.
    pub fn start(n: usize, f: usize, me: usize, round: usize, value: Point) -> (Self, Vec<AadMsg>) {
        assert!(me < n, "process index {me} out of range");
        let rb: Vec<ReliableBroadcastInstance<Point>> = (0..n)
            .map(|_| ReliableBroadcastInstance::new(n, f))
            .collect();
        let mut exchange = Self {
            n,
            f,
            me,
            round,
            rb,
            delivered: vec![None; n],
            reports: BTreeMap::new(),
            witnesses: BTreeSet::new(),
            sent_report: false,
            completion: None,
        };
        let step = exchange.rb[me].start_as_sender(me, value);
        let mut out: Vec<AadMsg> = step
            .broadcast
            .into_iter()
            .map(|inner| AadMsg::Rb {
                round,
                origin: me,
                inner,
            })
            .collect();
        if let Some(v) = step.delivered {
            exchange.record_delivery(me, v, &mut out);
        }
        exchange.refresh(&mut out);
        (exchange, out)
    }

    /// The asynchronous round this exchange belongs to.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Number of tuples delivered so far.
    pub fn delivered_count(&self) -> usize {
        self.delivered.iter().filter(|d| d.is_some()).count()
    }

    /// Number of witnesses acquired so far.
    pub fn witness_count(&self) -> usize {
        self.witnesses.len()
    }

    /// The completed exchange, once `n − f` witnesses have been obtained.
    pub fn completed(&self) -> Option<&CompletedExchange> {
        self.completion.as_ref()
    }

    /// Handles a protocol message received from `from`; returns the messages
    /// to broadcast in response.  Messages whose round does not match this
    /// exchange are ignored (the caller routes by round).
    pub fn handle(&mut self, from: usize, msg: &AadMsg) -> Vec<AadMsg> {
        if from >= self.n || msg.round() != self.round {
            return Vec::new();
        }
        let mut out = Vec::new();
        match msg {
            AadMsg::Rb { origin, inner, .. } => {
                if *origin >= self.n {
                    return Vec::new();
                }
                let step = self.rb[*origin].handle(self.me, from, inner);
                out.extend(step.broadcast.into_iter().map(|inner| AadMsg::Rb {
                    round: self.round,
                    origin: *origin,
                    inner,
                }));
                if let Some(v) = step.delivered {
                    self.record_delivery(*origin, v, &mut out);
                }
            }
            AadMsg::Report { entries, .. } => {
                // Keep only the first, well-formed report of each process:
                // at most one entry per origin, valid indices, and at least
                // n − f entries (honest reports always satisfy this).
                if !self.reports.contains_key(&from) {
                    let sane = Self::sanitize_report(self.n, entries);
                    if sane.len() >= self.n - self.f {
                        self.reports.insert(from, sane);
                    }
                }
            }
        }
        self.refresh(&mut out);
        out
    }

    fn sanitize_report(n: usize, entries: &[(usize, Point)]) -> Vec<(usize, Point)> {
        let mut seen = BTreeSet::new();
        entries
            .iter()
            .filter(|(origin, _)| *origin < n && seen.insert(*origin))
            .cloned()
            .collect()
    }

    fn record_delivery(&mut self, origin: usize, value: Point, _out: &mut Vec<AadMsg>) {
        if self.delivered[origin].is_none() {
            self.delivered[origin] = Some(value);
        }
    }

    /// Re-evaluates report sending, witness membership and completion after
    /// any state change.
    fn refresh(&mut self, out: &mut Vec<AadMsg>) {
        let quorum = self.n - self.f;
        // Send our own report once we hold n − f tuples.
        if !self.sent_report && self.delivered_count() >= quorum {
            self.sent_report = true;
            let entries: Vec<(usize, Point)> = self
                .delivered
                .iter()
                .enumerate()
                .filter_map(|(p, v)| v.clone().map(|v| (p, v)))
                .take(quorum)
                .collect();
            // Self-deliver the report: we are trivially our own witness.
            self.reports.insert(self.me, entries.clone());
            out.push(AadMsg::Report {
                round: self.round,
                entries,
            });
        }
        // Witness check: a reporter is a witness once every tuple it reported
        // has been delivered here with the same value.
        for (&reporter, entries) in self.reports.iter() {
            if self.witnesses.contains(&reporter) {
                continue;
            }
            let all_present = entries
                .iter()
                .all(|(origin, value)| self.delivered[*origin].as_ref() == Some(value));
            if all_present {
                self.witnesses.insert(reporter);
            }
        }
        // Completion: n − f witnesses and n − f tuples.
        if self.completion.is_none()
            && self.witnesses.len() >= quorum
            && self.delivered_count() >= quorum
        {
            let entries: Vec<(usize, Point)> = self
                .delivered
                .iter()
                .enumerate()
                .filter_map(|(p, v)| v.clone().map(|v| (p, v)))
                .collect();
            let witness_sets: Vec<Vec<(usize, Point)>> = self
                .witnesses
                .iter()
                .filter_map(|w| self.reports.get(w))
                .map(|entries| entries.iter().take(quorum).cloned().collect())
                .collect();
            self.completion = Some(CompletedExchange {
                entries,
                witness_sets,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Runs one exchange round among `n` processes, `byz` of which are silent
    /// Byzantine processes, under FIFO per-channel scheduling.  Returns the
    /// exchanges after quiescence.
    fn run_exchange(n: usize, f: usize, byz: &[usize], values: &[f64]) -> Vec<AadExchange> {
        let mut exchanges = Vec::new();
        let mut queue: VecDeque<(usize, usize, AadMsg)> = VecDeque::new();
        for (me, &value) in values.iter().enumerate() {
            let (exchange, msgs) = AadExchange::start(n, f, me, 1, Point::new(vec![value]));
            if !byz.contains(&me) {
                for msg in msgs {
                    for to in 0..n {
                        if to != me {
                            queue.push_back((me, to, msg.clone()));
                        }
                    }
                }
            }
            exchanges.push(exchange);
        }
        while let Some((from, to, msg)) = queue.pop_front() {
            if byz.contains(&to) {
                continue;
            }
            let responses = exchanges[to].handle(from, &msg);
            for response in responses {
                for dest in 0..n {
                    if dest != to {
                        queue.push_back((to, dest, response.clone()));
                    }
                }
            }
        }
        exchanges
    }

    #[test]
    fn all_honest_processes_complete_without_faults() {
        let exchanges = run_exchange(4, 1, &[], &[1.0, 2.0, 3.0, 4.0]);
        for (i, e) in exchanges.iter().enumerate() {
            let done = e
                .completed()
                .unwrap_or_else(|| panic!("process {i} incomplete"));
            assert!(done.entries.len() >= 3);
            assert!(!done.witness_sets.is_empty());
        }
    }

    #[test]
    fn completes_despite_a_silent_byzantine_process() {
        let exchanges = run_exchange(4, 1, &[3], &[1.0, 2.0, 3.0, 99.0]);
        for (i, exchange) in exchanges.iter().take(3).enumerate() {
            assert!(
                exchange.completed().is_some(),
                "honest process {i} must complete without the silent process"
            );
        }
    }

    #[test]
    fn property_2_at_most_one_tuple_per_process() {
        let exchanges = run_exchange(4, 1, &[], &[1.0, 2.0, 3.0, 4.0]);
        for e in &exchanges {
            let done = e.completed().unwrap();
            let mut origins: Vec<usize> = done.entries.iter().map(|(p, _)| *p).collect();
            origins.sort_unstable();
            origins.dedup();
            assert_eq!(origins.len(), done.entries.len());
        }
    }

    #[test]
    fn property_3_honest_values_are_reported_faithfully() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let exchanges = run_exchange(4, 1, &[3], &values);
        for exchange in exchanges.iter().take(3) {
            let done = exchange.completed().unwrap();
            for (origin, value) in &done.entries {
                if *origin < 3 {
                    assert!(
                        (value.coord(0) - values[*origin]).abs() < 1e-12,
                        "tuple for honest process {origin} must carry its true value"
                    );
                }
            }
        }
    }

    #[test]
    fn property_1_intersection_is_at_least_n_minus_f() {
        let exchanges = run_exchange(4, 1, &[3], &[1.0, 2.0, 3.0, 4.0]);
        let quorum = 3;
        for i in 0..3 {
            for j in (i + 1)..3 {
                let a = exchanges[i].completed().unwrap();
                let b = exchanges[j].completed().unwrap();
                let common = a
                    .entries
                    .iter()
                    .filter(|(p, v)| {
                        b.entries
                            .iter()
                            .any(|(q, w)| q == p && w.approx_eq(v, 1e-12))
                    })
                    .count();
                assert!(
                    common >= quorum,
                    "processes {i} and {j} share only {common} tuples"
                );
            }
        }
    }

    #[test]
    fn witness_sets_have_exactly_quorum_entries() {
        let exchanges = run_exchange(7, 2, &[5, 6], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        for exchange in exchanges.iter().take(5) {
            let done = exchange.completed().unwrap();
            assert!(done.witness_sets.len() <= 7);
            for set in &done.witness_sets {
                assert_eq!(set.len(), 5);
            }
        }
    }

    #[test]
    fn messages_for_other_rounds_are_ignored() {
        let (mut exchange, _) = AadExchange::start(4, 1, 0, 1, Point::new(vec![0.0]));
        let before = exchange.delivered_count();
        let out = exchange.handle(
            1,
            &AadMsg::Rb {
                round: 2,
                origin: 1,
                inner: RbMessage::Init(Point::new(vec![5.0])),
            },
        );
        assert!(out.is_empty());
        assert_eq!(exchange.delivered_count(), before);
    }

    #[test]
    fn malformed_reports_are_dropped() {
        let (mut exchange, _) = AadExchange::start(4, 1, 0, 1, Point::new(vec![0.0]));
        // Too few entries after sanitisation (duplicates collapse).
        let _ = exchange.handle(
            1,
            &AadMsg::Report {
                round: 1,
                entries: vec![
                    (2, Point::new(vec![9.0])),
                    (2, Point::new(vec![9.0])),
                    (9, Point::new(vec![9.0])),
                ],
            },
        );
        assert_eq!(exchange.witness_count(), 0);
    }

    #[test]
    fn forge_points_rewrites_all_payload_kinds() {
        let p = Point::new(vec![7.0]);
        let mut rb = AadMsg::Rb {
            round: 1,
            origin: 0,
            inner: RbMessage::Echo(Point::new(vec![1.0])),
        };
        rb.forge_points(&p);
        if let AadMsg::Rb {
            inner: RbMessage::Echo(v),
            ..
        } = &rb
        {
            assert_eq!(v.coord(0), 7.0);
        } else {
            panic!("message shape changed");
        }
        let mut report = AadMsg::Report {
            round: 2,
            entries: vec![(0, Point::new(vec![1.0])), (1, Point::new(vec![2.0]))],
        };
        report.forge_points(&p);
        if let AadMsg::Report { entries, .. } = &report {
            assert!(entries.iter().all(|(_, v)| v.coord(0) == 7.0));
        }
        assert_eq!(report.round(), 2);
    }
}
