//! Property tests for the search/shrink pipeline.
//!
//! Three properties, each checked across a spread of master seeds (plain
//! seed loops — the properties themselves are the point, not a framework):
//!
//! 1. **Determinism** — the same master seed produces a byte-identical
//!    search trace, findings and shrink step sequence;
//! 2. **Preservation** — a shrunk reproducer still exhibits the original
//!    violation, with the same verdict flags;
//! 3. **Idempotence** — shrinking a shrunk genome changes nothing.
//!
//! The searches here run over a deliberately tiny space (exact protocol,
//! d = 1, small n) so the whole file stays debug-mode cheap; the acid-test
//! rediscovery of the small-α family runs in release mode via
//! `chaos-run --search` in CI instead.

use bvc_chaos::{evaluate, search, shrink, ChaosGenome, SearchConfig, ValidityGene};
use bvc_scenario::Protocol;

/// A tiny, debug-cheap search configuration.
fn tiny_config(master_seed: u64) -> SearchConfig {
    let mut config = SearchConfig::new(master_seed, 3, 6);
    config.space.protocols = vec![Protocol::Exact];
    config.space.f_range = (1, 1);
    config.space.d_range = (1, 2);
    config.space.n_slack = 1;
    config.space.alpha_max = 2.0;
    config
}

/// A hand-built violating genome in the small-α family (exact consensus
/// admitted by the α-relaxation below the strict bound, Γ_α empty), used
/// to exercise the shrinker even on seeds whose search finds nothing.
fn alpha_family_genome() -> ChaosGenome {
    ChaosGenome {
        protocol: Protocol::Exact,
        n: 4,
        f: 1,
        d: 3,
        epsilon: 0.1,
        seed: 7,
        points: vec![
            vec![0.05, 0.5, 0.95],
            vec![0.9, 0.1, 0.4],
            vec![0.3, 0.8, 0.2],
        ],
        strategy: "anti-convergence".to_string(),
        validity: ValidityGene::Alpha(0.05),
        topology: None,
        faults: Vec::new(),
        round_robin: false,
        max_steps: 200_000,
    }
}

#[test]
fn the_same_master_seed_reproduces_the_search_byte_for_byte() {
    for seed in [0u64, 1, 17, 4242] {
        let a = search(&tiny_config(seed));
        let b = search(&tiny_config(seed));
        assert_eq!(a.trace, b.trace, "trace diverged for master seed {seed}");
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.findings.len(), b.findings.len());
        for (fa, fb) in a.findings.iter().zip(&b.findings) {
            assert_eq!(fa.signature, fb.signature);
            assert_eq!(fa.genome, fb.genome, "finding genomes diverged");
            // The shrink sequence is a pure function of the finding.
            let sa = shrink(&fa.genome, fa.flags);
            let sb = shrink(&fb.genome, fb.flags);
            assert_eq!(sa.steps, sb.steps, "shrink steps diverged for seed {seed}");
            assert_eq!(sa.genome, sb.genome);
        }
    }
}

#[test]
fn shrunk_reproducers_still_exhibit_the_original_violation() {
    let mut shrunk_any = false;
    for genome in violating_genomes() {
        let original = evaluate(&genome);
        assert!(original.violation, "fixture must violate before shrinking");
        let flags = original.verdict_flags();

        let result = shrink(&genome, flags);
        let replay = evaluate(&result.genome);
        assert!(
            replay.violation,
            "shrinking lost the violation (steps: {:?})",
            result.steps
        );
        assert_eq!(
            replay.verdict_flags(),
            flags,
            "shrinking changed the verdict flags (steps: {:?})",
            result.steps
        );
        shrunk_any |= !result.steps.is_empty();
    }
    assert!(shrunk_any, "no fixture shrank at all — the passes are dead");
}

#[test]
fn shrinking_is_idempotent() {
    for genome in violating_genomes() {
        let flags = evaluate(&genome).verdict_flags();
        let once = shrink(&genome, flags);
        let twice = shrink(&once.genome, flags);
        assert!(
            twice.steps.is_empty(),
            "re-shrinking a shrunk genome still reduced it: {:?}",
            twice.steps
        );
        assert_eq!(once.genome, twice.genome);
    }
}

/// Violating genomes to shrink: the hand-built small-α fixture (seed
/// variants) plus anything the tiny searches find.
fn violating_genomes() -> Vec<ChaosGenome> {
    let mut genomes = Vec::new();
    for seed in [7u64, 123] {
        let mut genome = alpha_family_genome();
        genome.seed = seed;
        if evaluate(&genome).violation {
            genomes.push(genome);
        }
    }
    for master_seed in [0u64, 17] {
        let report = search(&tiny_config(master_seed));
        genomes.extend(report.findings.into_iter().map(|f| f.genome));
    }
    assert!(
        !genomes.is_empty(),
        "the hand-built small-α fixture must violate"
    );
    genomes
}
