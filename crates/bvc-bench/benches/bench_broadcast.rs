//! Criterion bench: the Byzantine broadcast substrate — one EIG broadcast
//! instance driven synchronously (cost grows steeply with `f`, which is why
//! the paper's Exact BVC message complexity is dominated by this step), and
//! one Bracha reliable-broadcast slot driven to delivery.

use bvc_broadcast::{BroadcastInstance, RbMessage, ReliableBroadcastInstance};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Drives one fault-free EIG broadcast among `n` processes with `f` tolerated
/// faults to completion and returns the common decision.
fn run_eig_broadcast(n: usize, f: usize, value: i64) -> i64 {
    let mut instances: Vec<BroadcastInstance<i64>> = (0..n)
        .map(|me| BroadcastInstance::new(n, f, me, 0, 0))
        .collect();
    instances[0].set_input(value);
    let rounds = f + 2;
    for round in 1..=rounds {
        let outgoing: Vec<_> = instances
            .iter_mut()
            .map(|inst| inst.message_for_round(round))
            .collect();
        for (to, inst) in instances.iter_mut().enumerate() {
            for (from, out) in outgoing.iter().enumerate() {
                if from == to {
                    continue;
                }
                if let Some(msg) = out {
                    inst.receive(round, from, msg);
                }
            }
        }
        for inst in instances.iter_mut() {
            inst.end_round(round);
        }
    }
    *instances[1].decision().expect("decided")
}

/// Drives one fault-free reliable-broadcast slot among `n` processes to
/// delivery everywhere.
fn run_reliable_broadcast(n: usize, f: usize, value: i32) -> usize {
    let mut instances: Vec<ReliableBroadcastInstance<i32>> = (0..n)
        .map(|_| ReliableBroadcastInstance::new(n, f))
        .collect();
    let mut queue: Vec<(usize, usize, RbMessage<i32>)> = Vec::new();
    let step = instances[0].start_as_sender(0, value);
    for m in step.broadcast {
        for to in 1..n {
            queue.push((0, to, m.clone()));
        }
    }
    let mut cursor = 0;
    while cursor < queue.len() {
        let (from, to, msg) = queue[cursor].clone();
        cursor += 1;
        let step = instances[to].handle(to, from, &msg);
        for m in step.broadcast {
            for dest in 0..n {
                if dest != to {
                    queue.push((to, dest, m.clone()));
                }
            }
        }
    }
    instances.iter().filter(|i| i.delivered().is_some()).count()
}

fn bench_eig(c: &mut Criterion) {
    let mut group = c.benchmark_group("eig_broadcast");
    group.sample_size(20);
    for &(n, f) in &[(4usize, 1usize), (7, 1), (7, 2), (10, 2)] {
        group.bench_with_input(
            BenchmarkId::new("run", format!("n{n}_f{f}")),
            &(n, f),
            |b, &(n, f)| {
                b.iter(|| {
                    let decision = run_eig_broadcast(n, f, 42);
                    assert_eq!(decision, 42);
                })
            },
        );
    }
    group.finish();
}

fn bench_reliable(c: &mut Criterion) {
    let mut group = c.benchmark_group("reliable_broadcast");
    group.sample_size(20);
    for &(n, f) in &[(4usize, 1usize), (7, 2), (10, 3)] {
        group.bench_with_input(
            BenchmarkId::new("run", format!("n{n}_f{f}")),
            &(n, f),
            |b, &(n, f)| {
                b.iter(|| {
                    let delivered = run_reliable_broadcast(n, f, 7);
                    assert_eq!(delivered, n);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_eig, bench_reliable);
criterion_main!(benches);
