//! The chaos campaign: seeded randomized churn across the whole stack,
//! with longitudinal metrics.
//!
//! A churn session alternates two kinds of waves, all derived from one
//! master seed so a session is exactly reproducible:
//!
//! * **campaign waves** sample boundary-centred genomes from the same
//!   [`SearchSpace`](crate::search::SearchSpace) the adversary search uses
//!   and run them through the parallel campaign runner, tallying verdicts,
//!   near-misses (ε-agreement runs that decided within 20 % of the ε
//!   budget) and any genuine violations;
//! * **service waves** stream a batch of instances through the
//!   [`BvcService`] worker pool from a deliberately *safe* cell (above the
//!   strict bound), flipping the panic-injection knob on half the waves to
//!   exercise panic containment and backpressure accounting end to end.
//!
//! The session report serialises as a `bvc-chaos-metrics/v1` JSON document
//! and as one Markdown row for the longitudinal `CHAOS.md` dashboard.

use crate::objective::strict_bound;
use crate::search::{sample, SearchSpace};
use bvc_core::{InstanceOverrides, ProtocolKind, RunConfig};
use bvc_geometry::Point;
use bvc_scenario::{expand, run_campaign, Protocol};
use bvc_service::{BvcService, MemorySink, ServiceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// A churn session's budget and identity.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Master seed: one seed reproduces the whole session byte for byte.
    pub master_seed: u64,
    /// Total waves (campaign and service waves alternate).
    pub waves: usize,
    /// Instances per wave.
    pub per_wave: usize,
    /// Worker threads for campaign waves and the service pool (0 = auto).
    pub jobs: usize,
    /// Session label for the dashboard row (commit id, CI run id…).
    pub label: String,
    /// The sampling space for campaign waves.
    pub space: SearchSpace,
}

impl ChurnConfig {
    /// A session over the default search space.
    pub fn new(master_seed: u64, waves: usize, per_wave: usize) -> Self {
        Self {
            master_seed,
            waves,
            per_wave,
            jobs: 0,
            label: "local".to_string(),
            space: SearchSpace::default(),
        }
    }
}

/// Tallies for one wave.
#[derive(Debug, Clone, Default)]
pub struct WaveMetrics {
    /// Wave index within the session.
    pub index: usize,
    /// `"campaign"` or `"service"`.
    pub kind: &'static str,
    /// Instances attempted.
    pub instances: usize,
    /// Verdicts with all three conditions holding.
    pub passed: usize,
    /// Genuine violations (unexcused failed verdicts / contained panics).
    pub violated: usize,
    /// Failed verdicts that were flagged expected-unsolvable up front.
    pub expected_unsolvable: usize,
    /// Instances rejected at admission.
    pub rejected: usize,
    /// Passing ε-agreement runs that used more than 80 % of the ε budget.
    pub near_misses: usize,
    /// Contained panics (service waves only).
    pub panicked: usize,
    /// Peak service queue depth (service waves only).
    pub max_queue_depth: usize,
    /// Family signatures of the genuine violations, in instance order.
    pub genuine: Vec<String>,
}

/// The session report: per-wave metrics plus the aggregates the dashboard
/// tracks over time.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Session label.
    pub label: String,
    /// Master seed of the session.
    pub master_seed: u64,
    /// Per-wave tallies, in wave order.
    pub waves: Vec<WaveMetrics>,
}

impl ChurnReport {
    /// Sums one numeric wave field across the session.
    fn total(&self, field: impl Fn(&WaveMetrics) -> usize) -> usize {
        self.waves.iter().map(field).sum()
    }

    /// Deduplicated genuine-violation signatures across the session.
    pub fn genuine_signatures(&self) -> Vec<String> {
        let mut signatures: Vec<String> = Vec::new();
        for wave in &self.waves {
            for signature in &wave.genuine {
                if !signatures.contains(signature) {
                    signatures.push(signature.clone());
                }
            }
        }
        signatures
    }

    /// The `bvc-chaos-metrics/v1` JSON document (deterministic key order,
    /// one line).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"format\": \"bvc-chaos-metrics/v1\", \"label\": \"{}\", \"master_seed\": {}, \
             \"instances\": {}, \"passed\": {}, \"violated\": {}, \"expected_unsolvable\": {}, \
             \"rejected\": {}, \"near_misses\": {}, \"panicked\": {}, \"genuine\": [",
            self.label,
            self.master_seed,
            self.total(|w| w.instances),
            self.total(|w| w.passed),
            self.total(|w| w.violated),
            self.total(|w| w.expected_unsolvable),
            self.total(|w| w.rejected),
            self.total(|w| w.near_misses),
            self.total(|w| w.panicked),
        );
        for (i, signature) in self.genuine_signatures().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{signature}\"");
        }
        out.push_str("], \"waves\": [");
        for (i, wave) in self.waves.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"index\": {}, \"kind\": \"{}\", \"instances\": {}, \"passed\": {}, \
                 \"violated\": {}, \"expected_unsolvable\": {}, \"rejected\": {}, \
                 \"near_misses\": {}, \"panicked\": {}, \"max_queue_depth\": {}}}",
                wave.index,
                wave.kind,
                wave.instances,
                wave.passed,
                wave.violated,
                wave.expected_unsolvable,
                wave.rejected,
                wave.near_misses,
                wave.panicked,
                wave.max_queue_depth,
            );
        }
        out.push_str("]}");
        out
    }

    /// One Markdown table row for the `CHAOS.md` longitudinal dashboard
    /// (columns match [`dashboard_header`]).
    pub fn dashboard_row(&self) -> String {
        let genuine = self.genuine_signatures();
        let genuine = if genuine.is_empty() {
            "—".to_string()
        } else {
            genuine.join(", ")
        };
        format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            self.label,
            self.master_seed,
            self.waves.len(),
            self.total(|w| w.instances),
            self.total(|w| w.passed),
            self.total(|w| w.violated),
            self.total(|w| w.expected_unsolvable + w.rejected),
            self.total(|w| w.near_misses),
            self.total(|w| w.panicked),
            genuine,
        )
    }
}

/// The `CHAOS.md` dashboard table header (label through genuine families).
pub fn dashboard_header() -> String {
    "| label | seed | waves | instances | passed | violated | excused | near-miss | \
     contained panics | genuine families |\n\
     |---|---|---|---|---|---|---|---|---|---|"
        .to_string()
}

/// Runs one churn session.  Waves alternate campaign (even) and service
/// (odd); everything is derived from `config.master_seed`.
pub fn churn(config: &ChurnConfig) -> ChurnReport {
    let mut rng = StdRng::seed_from_u64(config.master_seed);
    let mut waves = Vec::with_capacity(config.waves);
    for index in 0..config.waves {
        let wave = if index % 2 == 0 {
            campaign_wave(index, config, &mut rng)
        } else {
            service_wave(index, config, &mut rng)
        };
        waves.push(wave);
    }
    ChurnReport {
        label: config.label.clone(),
        master_seed: config.master_seed,
        waves,
    }
}

/// One campaign wave: sampled boundary genomes through the campaign runner.
fn campaign_wave(index: usize, config: &ChurnConfig, rng: &mut StdRng) -> WaveMetrics {
    let mut metrics = WaveMetrics {
        index,
        kind: "campaign",
        ..WaveMetrics::default()
    };
    let mut instances = Vec::with_capacity(config.per_wave);
    for _ in 0..config.per_wave {
        let genome = sample(rng, &config.space);
        metrics.instances += 1;
        match genome.to_spec() {
            Ok(spec) => instances.extend(expand(0, &spec)),
            Err(_) => metrics.rejected += 1,
        }
    }
    for result in run_campaign(&instances, config.jobs) {
        match result {
            Ok(outcome) => {
                let expected = outcome
                    .topology
                    .as_ref()
                    .is_some_and(|t| !t.expected_solvable)
                    || outcome.validity.as_ref().is_some_and(|v| !v.satisfied);
                if outcome.verdict.all_hold() {
                    metrics.passed += 1;
                    if let Some(epsilon) = outcome.epsilon {
                        let spread = outcome.verdict.max_pairwise_distance;
                        if epsilon > 0.0 && spread.is_finite() && spread / epsilon > 0.8 {
                            metrics.near_misses += 1;
                        }
                    }
                } else if expected {
                    metrics.expected_unsolvable += 1;
                } else {
                    metrics.violated += 1;
                    // Genome TOMLs name the scenario with its family
                    // signature, so the verdict already carries it.
                    metrics.genuine.push(outcome.scenario.clone());
                }
            }
            Err(_) => metrics.rejected += 1,
        }
    }
    metrics
}

/// One service wave: a safe above-bound cell streamed through the
/// [`BvcService`] pool, with the panic knob flipped on every other
/// service wave.
fn service_wave(index: usize, config: &ChurnConfig, rng: &mut StdRng) -> WaveMetrics {
    let mut metrics = WaveMetrics {
        index,
        kind: "service",
        ..WaveMetrics::default()
    };
    // A safe cell: restricted-sync or exact, comfortably above the strict
    // bound, honest inputs inside [0, 1].
    let (protocol, kind) = if rng.gen_bool(0.5) {
        (Protocol::RestrictedSync, ProtocolKind::RestrictedSync)
    } else {
        (Protocol::Exact, ProtocolKind::Exact)
    };
    let f = 1;
    let d = rng.gen_range(1..=2usize);
    let n = strict_bound(protocol, d, f) + rng.gen_range(0..=1usize);
    let template = RunConfig::new(n, f, d).epsilon(0.1);
    let count = config.per_wave.max(1);
    let instances: Vec<InstanceOverrides> = (0..count)
        .map(|_| {
            let seed = rng.gen_range(0..1_000u64);
            let inputs = (0..n - f)
                .map(|i| Point::uniform(d, (i as f64 + rng.gen_range(0.0..1.0)) / n as f64))
                .collect();
            InstanceOverrides {
                seed,
                honest_inputs: Some(inputs),
                ..InstanceOverrides::default()
            }
        })
        .collect();
    let mut service_config = ServiceConfig::new(kind, template)
        .instances(instances)
        .workers(if config.jobs == 0 { 2 } else { config.jobs })
        .batch(4.min(count))
        .label(format!("chaos-wave-{index}"));
    // Half the service waves exercise panic containment end to end.
    if index % 4 == 1 {
        service_config = service_config.inject_panic(rng.gen_range(0..count));
    }
    metrics.instances = count;
    match BvcService::new(service_config) {
        Ok(service) => {
            let mut sink = MemorySink::new();
            match service.run(&mut sink) {
                Ok(stats) => {
                    metrics.passed = stats.decided;
                    metrics.violated = stats.violated;
                    metrics.panicked = stats.panicked;
                    metrics.max_queue_depth = stats.queue.max_depth;
                    // A violation beyond the injected panics would be a real
                    // finding in a cell engineered to be safe.
                    for _ in 0..stats.violated.saturating_sub(stats.panicked) {
                        metrics
                            .genuine
                            .push(format!("service-{}-n{n}f{f}d{d}", kind.name()));
                    }
                }
                Err(_) => metrics.rejected = count,
            }
        }
        Err(_) => metrics.rejected = count,
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(seed: u64) -> ChurnConfig {
        let mut config = ChurnConfig::new(seed, 2, 3);
        config.jobs = 2;
        config.label = "test".to_string();
        // Keep the campaign wave cheap for debug-mode tests.
        config.space.protocols = vec![Protocol::Exact];
        config.space.d_range = (1, 1);
        config.space.f_range = (1, 1);
        config.space.n_slack = 1;
        config
    }

    #[test]
    fn a_session_is_reproducible_from_its_master_seed() {
        let a = churn(&tiny_config(11));
        let b = churn(&tiny_config(11));
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn metrics_json_has_the_version_header_and_covers_every_wave() {
        let report = churn(&tiny_config(5));
        let json = report.to_json();
        assert!(json.starts_with("{\"format\": \"bvc-chaos-metrics/v1\""));
        assert_eq!(report.waves.len(), 2);
        assert_eq!(report.waves[0].kind, "campaign");
        assert_eq!(report.waves[1].kind, "service");
        assert!(report.waves[1].passed + report.waves[1].violated > 0);
    }

    #[test]
    fn dashboard_row_has_the_header_column_count() {
        let report = churn(&tiny_config(3));
        let header_cols = dashboard_header()
            .lines()
            .next()
            .unwrap()
            .matches('|')
            .count();
        assert_eq!(report.dashboard_row().matches('|').count(), header_cols);
    }
}
