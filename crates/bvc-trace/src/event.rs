//! Typed trace events and their `bvc-trace/v1` JSONL serialization.
//!
//! Every event carries only *logical* time — a round or delivery step plus
//! the per-slot sequence number the scope assigns at emission — never a wall
//! clock, so the stream of a `(scenario, seed)` pair is byte-identical run
//! over run.  Wall-time measurements go to the separate timing channel
//! ([`crate::TraceHandle::record_timing`]), which is explicitly outside the
//! determinism contract.

/// Schema tag of the trace stream; the first line of every trace file is
/// `{"schema": "bvc-trace/v1"}`.
pub const SCHEMA: &str = "bvc-trace/v1";

/// Which fast path resolved a Γ query (point selection or membership).
///
/// The first five variants attribute point-selection queries, mirroring the
/// engine's escalation ladder; the remaining variants attribute membership
/// tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GammaPath {
    /// `d = 1` closed-form trimmed interval (point: its midpoint).
    D1ClosedForm,
    /// `f = 0`: the single full-hull LP, no intersection needed.
    HullF0,
    /// The trimmed-box centre probe passed the membership stream.
    ProbeHit,
    /// The active-set LP loop over streamed subset hulls.
    ActiveSetLp,
    /// The naive monolithic joint LP the active set falls back to on
    /// numerical disagreement.
    NaiveFallback,
    /// Membership accepted because the query point equals more than `f`
    /// members of the multiset.
    MultiplicityAccept,
    /// Membership rejected by the per-coordinate trimmed bounding box.
    BoxReject,
    /// Membership decided by streaming subset hulls (short-circuits on the
    /// first refuting hull).
    StreamScan,
    /// Membership rejected by the remembered refuter hull of an earlier,
    /// structurally similar query (the incremental cache mode's cross-round
    /// hint), without scanning the subset stream.
    HintReject,
}

impl GammaPath {
    /// Stable wire name of the path.
    pub fn as_str(self) -> &'static str {
        match self {
            GammaPath::D1ClosedForm => "d1-closed-form",
            GammaPath::HullF0 => "f0-hull",
            GammaPath::ProbeHit => "probe-hit",
            GammaPath::ActiveSetLp => "active-set-lp",
            GammaPath::NaiveFallback => "naive-fallback",
            GammaPath::MultiplicityAccept => "multiplicity-accept",
            GammaPath::BoxReject => "box-reject",
            GammaPath::StreamScan => "stream-scan",
            GammaPath::HintReject => "hint-reject",
        }
    }

    /// All variants, in wire order (index = [`Self::index`]).
    pub const ALL: [GammaPath; 9] = [
        GammaPath::D1ClosedForm,
        GammaPath::HullF0,
        GammaPath::ProbeHit,
        GammaPath::ActiveSetLp,
        GammaPath::NaiveFallback,
        GammaPath::MultiplicityAccept,
        GammaPath::BoxReject,
        GammaPath::StreamScan,
        GammaPath::HintReject,
    ];

    /// Dense index of the variant (for counter arrays).
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&p| p == self)
            .expect("ALL covers every variant")
    }
}

/// Which cache layer answered a Γ query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheLevel {
    /// Served from this cache's own map.
    Local,
    /// Missed locally, served by an ancestor in the parent chain.
    Parent,
    /// Missed every layer; the Γ engine computed it.
    Miss,
}

impl CacheLevel {
    /// Stable wire name of the level.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheLevel::Local => "local",
            CacheLevel::Parent => "parent",
            CacheLevel::Miss => "miss",
        }
    }
}

/// The query kind of a Γ trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GammaQueryKind {
    /// Deterministic point selection (`find_point`).
    Point,
    /// Membership test (`contains`).
    Membership,
    /// Relaxed-validity decision point (`decision_point`, non-strict mode).
    Decision,
}

impl GammaQueryKind {
    /// Stable wire name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            GammaQueryKind::Point => "point",
            GammaQueryKind::Membership => "membership",
            GammaQueryKind::Decision => "decision",
        }
    }
}

/// One structured trace event.
///
/// `round` is the synchronous round (or the asynchronous executor's delivery
/// step for message events from `AsyncNetwork`, where rounds do not exist);
/// message events identify link endpoints by process index.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A run (one consensus instance) starts; names the protocol and shape.
    RunOpen {
        /// Protocol wire name (e.g. `restricted-sync`).
        protocol: String,
        /// Number of processes.
        n: usize,
        /// Fault bound.
        f: usize,
        /// Input dimension.
        d: usize,
    },
    /// Result of the single admission point (`RunConfig::validate`).
    Admission {
        /// Whether the configuration was admitted.
        ok: bool,
        /// Resource-bound detail, or the rejection reason.
        detail: String,
    },
    /// A validity check of a decision value against the honest inputs.
    ValidityCheck {
        /// Whether the check held.
        ok: bool,
        /// Which predicate / value was checked.
        detail: String,
    },
    /// A synchronous round begins.
    RoundOpen {
        /// Round number (1-based, matching the executors).
        round: usize,
    },
    /// A synchronous round ended; `spread` is the L∞ diameter of the honest
    /// process states that opted into state reporting (`None` when fewer
    /// than two processes report).
    RoundClose {
        /// Round number.
        round: usize,
        /// Max per-coordinate spread of reported honest states.
        spread: Option<f64>,
    },
    /// A fault-plan window is active this round.
    FaultWindow {
        /// Round the window covers.
        round: usize,
        /// Fault kind (`drop`, `latency`, `partition`).
        kind: String,
        /// Window parameters.
        detail: String,
    },
    /// A message was handed to the network layer.
    Send {
        /// Round (sync executor) or delivery step (async executors).
        time: usize,
        /// Sender index.
        from: usize,
        /// Recipient index.
        to: usize,
    },
    /// A message reached its recipient.
    Deliver {
        /// Round or delivery step at delivery time.
        time: usize,
        /// Sender index.
        from: usize,
        /// Recipient index.
        to: usize,
    },
    /// A message was dropped by fault injection.
    Drop {
        /// Round or delivery step.
        time: usize,
        /// Sender index.
        from: usize,
        /// Recipient index.
        to: usize,
    },
    /// A message addressed across a missing topology link vanished (counted
    /// as sent, never delivered or dropped).
    Vanish {
        /// Round or delivery step.
        time: usize,
        /// Sender index.
        from: usize,
        /// Recipient index.
        to: usize,
    },
    /// A sender's per-step outgoing batch was canonicalised under the
    /// local-broadcast delivery guarantee: every receiver in `receivers`
    /// observes the same `slots` messages, so per-receiver equivocation is
    /// structurally impossible.  Emitted before per-link faults apply.
    LocalBroadcast {
        /// Round or delivery step of the send.
        time: usize,
        /// Sender index.
        from: usize,
        /// Sorted receiver set of the canonicalised batch.
        receivers: Vec<usize>,
        /// Number of broadcast slots (messages every receiver observes).
        slots: usize,
    },
    /// One Γ query through a [`GammaCache`](../bvc_geometry/struct.GammaCache.html)-style
    /// front end, with outcome attribution.
    Gamma {
        /// Point selection, membership, or relaxed decision.
        kind: GammaQueryKind,
        /// Which cache layer answered.
        cache: CacheLevel,
        /// Which engine path computed the value (misses only).
        path: Option<GammaPath>,
        /// Whether the trimmed-box probe was tried and missed before the
        /// answering path ran.
        probe_missed: bool,
        /// Multiset size |Y|.
        len: usize,
        /// Fault bound of the query.
        f: usize,
        /// Dimension of the multiset.
        d: usize,
        /// Point/decision queries: a point was found; membership: contained.
        found: bool,
    },
    /// One two-phase simplex solve.
    Simplex {
        /// Constraint rows.
        rows: usize,
        /// Tableau columns (structural + artificial).
        cols: usize,
        /// Pivot count across both phases.
        pivots: u64,
        /// Power-of-two size class of the tableau buffer.
        class: usize,
        /// Whether the tableau buffer was reused from the workspace pool.
        reused: bool,
        /// Solve status wire name (`optimal`, `infeasible`, ...).
        status: String,
    },
    /// A per-instance span opens (service / scenario instance).
    SpanOpen {
        /// Admission sequence number of the instance.
        instance: u64,
        /// Human label (scenario name, protocol, shape).
        label: String,
    },
    /// A per-instance span closes.
    SpanClose {
        /// Admission sequence number of the instance.
        instance: u64,
        /// Whether every waited-for process decided.
        decided: bool,
        /// Whether a verdict check was violated.
        violated: bool,
        /// Rounds (or async steps) the instance took, when known.
        rounds: Option<usize>,
    },
}

/// Escapes a string for a JSON string literal (no surrounding quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` deterministically for the trace stream: shortest
/// round-trip representation, `null` for non-finite values.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl TraceEvent {
    /// Stable wire name of the event kind (the `ev` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunOpen { .. } => "run_open",
            TraceEvent::Admission { .. } => "admission",
            TraceEvent::ValidityCheck { .. } => "validity_check",
            TraceEvent::RoundOpen { .. } => "round_open",
            TraceEvent::RoundClose { .. } => "round_close",
            TraceEvent::FaultWindow { .. } => "fault_window",
            TraceEvent::Send { .. } => "send",
            TraceEvent::Deliver { .. } => "deliver",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::Vanish { .. } => "vanish",
            TraceEvent::LocalBroadcast { .. } => "local_broadcast",
            TraceEvent::Gamma { .. } => "gamma",
            TraceEvent::Simplex { .. } => "simplex",
            TraceEvent::SpanOpen { .. } => "span_open",
            TraceEvent::SpanClose { .. } => "span_close",
        }
    }

    /// Serializes the event as one `bvc-trace/v1` JSON line (no trailing
    /// newline), tagged with its logical position `(slot, seq)`.
    pub fn to_json(&self, slot: u32, seq: u64) -> String {
        let mut out = format!(
            "{{\"ev\": \"{}\", \"slot\": {slot}, \"seq\": {seq}",
            self.kind()
        );
        match self {
            TraceEvent::RunOpen { protocol, n, f, d } => {
                out.push_str(&format!(
                    ", \"protocol\": \"{}\", \"n\": {n}, \"f\": {f}, \"d\": {d}",
                    escape_json(protocol)
                ));
            }
            TraceEvent::Admission { ok, detail } => {
                out.push_str(&format!(
                    ", \"ok\": {ok}, \"detail\": \"{}\"",
                    escape_json(detail)
                ));
            }
            TraceEvent::ValidityCheck { ok, detail } => {
                out.push_str(&format!(
                    ", \"ok\": {ok}, \"detail\": \"{}\"",
                    escape_json(detail)
                ));
            }
            TraceEvent::RoundOpen { round } => {
                out.push_str(&format!(", \"round\": {round}"));
            }
            TraceEvent::RoundClose { round, spread } => {
                let spread = match spread {
                    Some(v) => fmt_f64(*v),
                    None => "null".to_string(),
                };
                out.push_str(&format!(", \"round\": {round}, \"spread\": {spread}"));
            }
            TraceEvent::FaultWindow {
                round,
                kind,
                detail,
            } => {
                out.push_str(&format!(
                    ", \"round\": {round}, \"kind\": \"{}\", \"detail\": \"{}\"",
                    escape_json(kind),
                    escape_json(detail)
                ));
            }
            TraceEvent::Send { time, from, to }
            | TraceEvent::Deliver { time, from, to }
            | TraceEvent::Drop { time, from, to }
            | TraceEvent::Vanish { time, from, to } => {
                out.push_str(&format!(
                    ", \"time\": {time}, \"from\": {from}, \"to\": {to}"
                ));
            }
            TraceEvent::LocalBroadcast {
                time,
                from,
                receivers,
                slots,
            } => {
                // Flat-line schema: the receiver set is one comma-joined
                // string field, not a JSON array (the v1 parser is
                // deliberately flat — see `json::parse_flat`).
                let receivers = receivers
                    .iter()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                out.push_str(&format!(
                    ", \"time\": {time}, \"from\": {from}, \
                     \"receivers\": \"{receivers}\", \"slots\": {slots}"
                ));
            }
            TraceEvent::Gamma {
                kind,
                cache,
                path,
                probe_missed,
                len,
                f,
                d,
                found,
            } => {
                let path = match path {
                    Some(p) => format!("\"{}\"", p.as_str()),
                    None => "null".to_string(),
                };
                out.push_str(&format!(
                    ", \"kind\": \"{}\", \"cache\": \"{}\", \"path\": {path}, \
                     \"probe_missed\": {probe_missed}, \"len\": {len}, \"f\": {f}, \
                     \"d\": {d}, \"found\": {found}",
                    kind.as_str(),
                    cache.as_str()
                ));
            }
            TraceEvent::Simplex {
                rows,
                cols,
                pivots,
                class,
                reused,
                status,
            } => {
                out.push_str(&format!(
                    ", \"rows\": {rows}, \"cols\": {cols}, \"pivots\": {pivots}, \
                     \"class\": {class}, \"reused\": {reused}, \"status\": \"{}\"",
                    escape_json(status)
                ));
            }
            TraceEvent::SpanOpen { instance, label } => {
                out.push_str(&format!(
                    ", \"instance\": {instance}, \"label\": \"{}\"",
                    escape_json(label)
                ));
            }
            TraceEvent::SpanClose {
                instance,
                decided,
                violated,
                rounds,
            } => {
                let rounds = match rounds {
                    Some(r) => r.to_string(),
                    None => "null".to_string(),
                };
                out.push_str(&format!(
                    ", \"instance\": {instance}, \"decided\": {decided}, \
                     \"violated\": {violated}, \"rounds\": {rounds}"
                ));
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_is_flat_stable_json() {
        let ev = TraceEvent::Gamma {
            kind: GammaQueryKind::Point,
            cache: CacheLevel::Miss,
            path: Some(GammaPath::ProbeHit),
            probe_missed: false,
            len: 9,
            f: 2,
            d: 2,
            found: true,
        };
        assert_eq!(
            ev.to_json(0, 7),
            "{\"ev\": \"gamma\", \"slot\": 0, \"seq\": 7, \"kind\": \"point\", \
             \"cache\": \"miss\", \"path\": \"probe-hit\", \"probe_missed\": false, \
             \"len\": 9, \"f\": 2, \"d\": 2, \"found\": true}"
        );
    }

    #[test]
    fn local_broadcast_serializes_receiver_set() {
        let ev = TraceEvent::LocalBroadcast {
            time: 2,
            from: 1,
            receivers: vec![0, 2, 3],
            slots: 1,
        };
        assert_eq!(
            ev.to_json(1, 4),
            "{\"ev\": \"local_broadcast\", \"slot\": 1, \"seq\": 4, \"time\": 2, \
             \"from\": 1, \"receivers\": \"0,2,3\", \"slots\": 1}"
        );
    }

    #[test]
    fn spread_none_serializes_as_null() {
        let ev = TraceEvent::RoundClose {
            round: 3,
            spread: None,
        };
        assert!(ev.to_json(0, 0).contains("\"spread\": null"));
    }

    #[test]
    fn strings_are_escaped() {
        let ev = TraceEvent::Admission {
            ok: false,
            detail: "bad \"quote\"\nline".into(),
        };
        assert!(ev.to_json(0, 0).contains("bad \\\"quote\\\"\\nline"));
    }

    #[test]
    fn path_indices_are_dense_and_stable() {
        for (i, p) in GammaPath::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
