//! Pluggable validity conditions and the relaxed-regime resource checks.
//!
//! The verdict scoring of every runner used to hard-code the strict validity
//! condition (decision ∈ hull of honest inputs).  This module threads the
//! [`ValidityPredicate`] of `bvc-geometry` — strict, `(1+α)`-relaxed, or
//! `k`-relaxed (Xiang & Vaidya, arXiv:1601.08067) — through the runners as a
//! [`ValidityMode`], and models the relaxed paper's headline result as a
//! **resource check**: relaxing validity lowers the `(d+1)f+1`-type process
//! requirement of the strict problem, because the relaxed condition only
//! binds in an *effective dimension* `d_eff < d` (`k` for `k`-relaxed, `1`
//! for `(1+α)`-relaxed with `α > 0`).  Each run records the mode and the
//! lowered threshold alongside the verdict, the same way topology-aware runs
//! record the iterative sufficiency verdict: a failed verdict on a run whose
//! resource check is *not* satisfied is expected data, not a regression.
//!
//! The exact statements of 1601.08067 are finer-grained than this model
//! (separate necessity results per relaxation and per `k`); refining
//! `relaxed_min_processes` against them is a recorded ROADMAP follow-up.

use crate::config::{BvcError, Setting};
pub use bvc_geometry::ValidityPredicate as ValidityMode;

/// The relaxed-regime resource check recorded in run results: which validity
/// mode the run was scored against, the (possibly lowered) process
/// requirement for the run's protocol under that mode, and whether `n` meets
/// it.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidityCheck {
    /// The validity condition the verdict was scored against.
    pub mode: ValidityMode,
    /// Minimum `n` for this protocol under `mode` (the paper's strict bound
    /// evaluated at the mode's effective dimension).
    pub required_n: usize,
    /// Whether the configured `n` meets `required_n`.  A violated verdict
    /// with `satisfied = false` is the anticipated outcome of running below
    /// the resource bound, not a finding.
    pub satisfied: bool,
}

/// The minimum `n` for `setting` under the given validity mode: the strict
/// bound of the source paper evaluated at the mode's effective dimension
/// (`d` for strict, `k` for `k`-relaxed, `1` for `(1+α)`-relaxed, `α > 0`)
/// — **for protocols whose decision rule actually relaxes**.  Today that is
/// the exact algorithm only: approx and the restricted-round variants score
/// and admit under the mode but still run the strict update rule (a ROADMAP
/// follow-up), so relaxing validity cannot make a below-strict-bound run of
/// theirs succeed, and their recorded requirement stays the strict one —
/// otherwise anticipated failures would be tallied as regressions.
pub fn relaxed_min_processes(setting: Setting, mode: &ValidityMode, d: usize, f: usize) -> usize {
    let d_eff = match setting {
        // The exact decision rule relaxes, but its k-relaxed fallback (the
        // trimmed-centre rule) is only complete for k = 1: for 1 < k < d it
        // can fail projection verification at any n, so the recorded
        // requirement stays the strict one — a non-decision there must be
        // flagged as anticipated, not promised away by a lowered bound.
        Setting::ExactSync => match mode {
            ValidityMode::KRelaxed(k) if *k > 1 && *k < d => d,
            _ => mode.effective_dim(d),
        },
        Setting::ApproxAsync | Setting::RestrictedSync | Setting::RestrictedAsync => d,
    };
    setting.min_processes(d_eff, f)
}

/// Builds the [`ValidityCheck`] a run records for `setting`.
pub fn validity_check(
    setting: Setting,
    mode: ValidityMode,
    n: usize,
    d: usize,
    f: usize,
) -> ValidityCheck {
    let required_n = relaxed_min_processes(setting, &mode, d, f);
    ValidityCheck {
        mode,
        required_n,
        satisfied: n >= required_n,
    }
}

/// The effective dimension of a mode's *relaxation family*, used for
/// admission: a scenario sweeping `α` (or `k`) is solving the relaxed
/// problem, whose lowered bound admits it — including the `α = 0` cells of
/// the sweep, which execute (with behaviour byte-identical to strict) and
/// are then *recorded* against the strict requirement (`satisfied = false`
/// below it), exactly like topology sweeps record expected-unsolvable
/// substrates instead of refusing to run them.
fn family_dim(mode: &ValidityMode, d: usize) -> usize {
    match mode {
        ValidityMode::Strict => d,
        ValidityMode::AlphaScaled(_) => 1,
        ValidityMode::KRelaxed(k) => (*k).clamp(1, d),
    }
}

/// Mode-aware admission: strict runs are held to the paper's tight bound
/// exactly as before; relaxed runs are admitted down to the family's lowered
/// threshold (that is the point of the relaxation — e.g. an Exact BVC run at
/// `n = 8 < (d+1)f+1 = 9` is admissible under `(1+α)`-relaxed validity,
/// where only `3f+1 = 7` processes are required).
///
/// # Errors
///
/// Returns [`BvcError::InsufficientProcesses`] with the mode's (possibly
/// lowered) requirement when `n` is below it.
pub fn require_with_mode(
    setting: Setting,
    mode: &ValidityMode,
    n: usize,
    d: usize,
    f: usize,
) -> Result<(), BvcError> {
    let required = setting.min_processes(family_dim(mode, d), f);
    if n < required {
        return Err(BvcError::InsufficientProcesses {
            setting,
            required,
            actual: n,
        });
    }
    Ok(())
}

/// The shared strict-validity test assertion (deduplicated from the per-file
/// copies the protocol test modules used to carry): every decision must lie
/// in the hull of the honest inputs, judged by the same predicate the
/// runners score with.
#[cfg(test)]
pub(crate) fn assert_strict_validity(
    decisions: &[bvc_geometry::Point],
    honest_inputs: &[bvc_geometry::Point],
) {
    let honest = bvc_geometry::PointMultiset::new(honest_inputs.to_vec());
    for decision in decisions {
        assert!(
            ValidityMode::Strict.contains(&honest, decision),
            "validity violated: {decision} outside the honest hull"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_mode_reproduces_the_paper_bounds() {
        assert_eq!(
            relaxed_min_processes(Setting::ExactSync, &ValidityMode::Strict, 3, 1),
            5
        );
        assert_eq!(
            relaxed_min_processes(Setting::ApproxAsync, &ValidityMode::Strict, 2, 2),
            9
        );
    }

    #[test]
    fn alpha_relaxation_drops_the_dimension_term() {
        // Exact: max(3f+1, (d_eff+1)f+1) with d_eff = 1 is 3f+1.
        assert_eq!(
            relaxed_min_processes(Setting::ExactSync, &ValidityMode::AlphaScaled(0.5), 3, 2),
            7
        );
        // α = 0 is the strict condition and keeps the strict bound.
        assert_eq!(
            relaxed_min_processes(Setting::ExactSync, &ValidityMode::AlphaScaled(0.0), 3, 2),
            9
        );
        // Protocols without a relaxed decision rule keep the strict
        // requirement — relaxed scoring cannot make their runs succeed
        // below it, so failures there must be flagged as anticipated.
        assert_eq!(
            relaxed_min_processes(
                Setting::RestrictedAsync,
                &ValidityMode::AlphaScaled(1.0),
                3,
                1
            ),
            8
        );
        let check = validity_check(
            Setting::RestrictedSync,
            ValidityMode::AlphaScaled(1.0),
            8,
            3,
            2,
        );
        assert_eq!(check.required_n, 11, "strict (d+2)f+1: no relaxed rule");
        assert!(!check.satisfied);
    }

    #[test]
    fn k_relaxation_interpolates_between_scalar_and_strict() {
        let f = 1;
        let d = 4;
        let strict = relaxed_min_processes(Setting::ExactSync, &ValidityMode::Strict, d, f);
        let k1 = relaxed_min_processes(Setting::ExactSync, &ValidityMode::KRelaxed(1), d, f);
        let k2 = relaxed_min_processes(Setting::ExactSync, &ValidityMode::KRelaxed(2), d, f);
        let kd = relaxed_min_processes(Setting::ExactSync, &ValidityMode::KRelaxed(d), d, f);
        assert_eq!(strict, 6); // max(3f+1, (4+1)f+1)
        assert_eq!(k1, 4); // 3f+1 floor: the k = 1 rule is complete
        assert_eq!(k2, strict, "no complete 1 < k < d rule: strict bound");
        assert_eq!(kd, strict);
        assert!(k1 <= k2 && k2 <= kd);
    }

    #[test]
    fn admission_is_lowered_only_for_relaxed_modes() {
        // n = 8 < 9 = strict Exact bound at d = 3, f = 2 …
        assert!(require_with_mode(Setting::ExactSync, &ValidityMode::Strict, 8, 3, 2).is_err());
        // … but admissible under (1+α)-relaxed validity (requires 3f+1 = 7).
        assert!(
            require_with_mode(Setting::ExactSync, &ValidityMode::AlphaScaled(0.5), 8, 3, 2).is_ok()
        );
        let check = validity_check(Setting::ExactSync, ValidityMode::AlphaScaled(0.5), 8, 3, 2);
        assert_eq!(check.required_n, 7);
        assert!(check.satisfied);
        let strict = validity_check(Setting::ExactSync, ValidityMode::Strict, 8, 3, 2);
        assert_eq!(strict.required_n, 9);
        assert!(!strict.satisfied);
    }

    #[test]
    fn alpha_zero_cells_are_admitted_but_recorded_unsatisfied() {
        // The α = 0 cell of an alpha sweep runs (family admission) …
        assert!(
            require_with_mode(Setting::ExactSync, &ValidityMode::AlphaScaled(0.0), 8, 3, 2).is_ok()
        );
        // … but its recorded check reflects the strict requirement it is
        // actually held to, so its expected violations are flagged up front.
        let zero = validity_check(Setting::ExactSync, ValidityMode::AlphaScaled(0.0), 8, 3, 2);
        assert_eq!(zero.required_n, 9);
        assert!(!zero.satisfied);
    }
}
