//! Deterministic execution of one scenario instance.
//!
//! [`run_scenario`] materialises the honest inputs from the scenario's
//! generator, builds **one** protocol-agnostic [`RunConfig`]
//! ([`run_config_from_spec`]) and dispatches it through [`BvcSession`] (the
//! protocol logic lives in `bvc-core` — the scenario engine never
//! re-implements it, and [`protocol_kind`] is the runner's single protocol
//! dispatch point), then packages the unified report as a
//! [`ScenarioOutcome`] whose JSON form is byte-identical for identical
//! `(scenario, seed, strategy, policy)`.

use crate::json::Json;
use crate::schema::{policy_name, InputSpec, Protocol, ScenarioSpec};
use bvc_adversary::ByzantineStrategy;
use bvc_core::{
    BvcError, BvcSession, ProtocolKind, RunConfig, ValidityCheck, ValidityMode, Verdict,
};
use bvc_geometry::{Point, WorkloadGenerator};
use bvc_net::{DeliveryPolicy, ExecutionStats, FaultPlan};
use bvc_topology::{Topology, TopologySpec};
use std::fmt;

/// Salt separating input-generation randomness from executor randomness.
const INPUT_SEED_SALT: u64 = 0x1094_2A7C_5EED_5EED;

/// Salt separating topology-generation randomness from everything else (only
/// the random-regular family actually consumes it).  `pub(crate)` so the
/// service builder materialises the *same* substrate a single run would.
pub(crate) const TOPOLOGY_SEED_SALT: u64 = 0x70B0_70B0_70B0_70B0;

/// Why a scenario instance could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The generator cannot produce the required inputs.
    BadInputs(String),
    /// The run builder rejected the configuration (resilience bound,
    /// parameter validation).
    Rejected(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::BadInputs(msg) => write!(f, "cannot generate inputs: {msg}"),
            ScenarioError::Rejected(msg) => write!(f, "configuration rejected: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<BvcError> for ScenarioError {
    fn from(e: BvcError) -> Self {
        ScenarioError::Rejected(e.to_string())
    }
}

/// Topology metadata recorded in a verdict when the scenario declared (or
/// swept) a topology.  Absent for plain complete-graph scenarios, whose JSON
/// stays byte-identical to the pre-topology schema.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyMeta {
    /// The topology family label (`complete`, `ring`, `torus:RxC`, …).
    pub kind: String,
    /// Number of directed inter-process links.
    pub edges: usize,
    /// Smallest in-degree.
    pub min_in_degree: usize,
    /// Smallest out-degree.
    pub min_out_degree: usize,
    /// Whether the graph is strongly connected.
    pub strongly_connected: bool,
    /// Label of the iterative-BVC sufficiency check (`satisfied`,
    /// `violated`, `unknown`).
    pub sufficiency: &'static str,
    /// Whether the protocol is expected to hold its verdict on this topology
    /// (`iterative`: the sufficiency check passed or was too large to decide;
    /// the complete-graph protocols: the topology is actually complete).  A
    /// violated verdict with `expected_solvable = false` is data, not a
    /// regression.
    pub expected_solvable: bool,
}

impl TopologyMeta {
    fn from_topology(topology: &Topology, protocol: Protocol, f: usize, d: usize) -> Self {
        Self::with_sufficiency(topology, protocol, &topology.iterative_sufficiency(f, d))
    }

    /// Builds the metadata from an already-computed sufficiency verdict (the
    /// iterative run builder computes one anyway; reusing it avoids running
    /// the exponential partition enumeration twice per instance).
    fn with_sufficiency(
        topology: &Topology,
        protocol: Protocol,
        sufficiency: &bvc_topology::Sufficiency,
    ) -> Self {
        let expected_solvable = match protocol {
            // Unknown is treated as expected, so surprises surface loudly
            // instead of being excused by an unchecked condition.
            Protocol::Iterative | Protocol::DirectedExact | Protocol::DirectedExactLb => {
                !matches!(sufficiency, bvc_topology::Sufficiency::Violated(_))
            }
            _ => topology.is_complete(),
        };
        Self {
            kind: topology.label().to_string(),
            edges: topology.edge_count(),
            min_in_degree: topology.min_in_degree(),
            min_out_degree: topology.min_out_degree(),
            strongly_connected: topology.is_strongly_connected(),
            sufficiency: sufficiency.label(),
            expected_solvable,
        }
    }
}

/// Validity metadata recorded in a verdict when the scenario declared (or
/// swept) a validity mode.  Absent for plain strict scenarios, whose JSON
/// stays byte-identical to the pre-validity schema.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidityMeta {
    /// Stable mode label (`strict`, `(1+0.5)-relaxed`, `2-relaxed`).
    pub mode: String,
    /// The α of `(1+α)`-relaxed modes.
    pub alpha: Option<f64>,
    /// The k of `k`-relaxed modes.
    pub k: Option<usize>,
    /// The (possibly lowered) minimum `n` for the protocol under this mode
    /// (`None` for the iterative protocol, whose resource signal is the
    /// topology sufficiency check).
    pub required_n: Option<usize>,
    /// Whether the run meets its resource requirement.  A violated verdict
    /// with `satisfied = false` is expected data (mirrors
    /// [`TopologyMeta::expected_solvable`]).
    pub satisfied: bool,
}

impl ValidityMeta {
    fn params(mode: &ValidityMode) -> (Option<f64>, Option<usize>) {
        match mode {
            ValidityMode::Strict => (None, None),
            ValidityMode::AlphaScaled(a) => (Some(*a), None),
            ValidityMode::KRelaxed(k) => (None, Some(*k)),
        }
    }

    fn from_check(check: &ValidityCheck) -> Self {
        let (alpha, k) = Self::params(&check.mode);
        Self {
            mode: check.mode.label(),
            alpha,
            k,
            required_n: Some(check.required_n),
            satisfied: check.satisfied,
        }
    }

    /// For the iterative protocol, which has no closed-form `n` bound: the
    /// expected-solvable signal lives in the topology metadata (sufficiency
    /// evaluated at the mode's effective dimension).
    fn from_mode(mode: &ValidityMode) -> Self {
        let (alpha, k) = Self::params(mode);
        Self {
            mode: mode.label(),
            alpha,
            k,
            required_n: None,
            satisfied: true,
        }
    }
}

/// The outcome of one scenario instance, ready for JSON serialisation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Protocol under test.
    pub protocol: Protocol,
    /// `(n, f, d)` of the run.
    pub shape: (usize, usize, usize),
    /// ε the verdict was judged against (`None` for exact consensus).
    pub epsilon: Option<f64>,
    /// The executor seed used.
    pub seed: u64,
    /// Stable name of the Byzantine strategy.
    pub strategy: String,
    /// Stable name of the delivery policy (async protocols; `"sync"` for
    /// lock-step rounds).
    pub policy: String,
    /// Names of the injected fault kinds, in schedule order.
    pub faults: Vec<&'static str>,
    /// Topology metadata (`None` for plain complete-graph scenarios).
    pub topology: Option<TopologyMeta>,
    /// Validity metadata (`None` for plain strict scenarios).
    pub validity: Option<ValidityMeta>,
    /// The scored verdict.
    pub verdict: Verdict,
    /// Rounds (sync) or delivery steps (async) executed.
    pub rounds: usize,
    /// Message statistics, including per-process attribution.
    pub stats: ExecutionStats,
}

impl ScenarioOutcome {
    /// Serialises the outcome as a single deterministic JSON line.
    pub fn to_json(&self) -> String {
        let per_process: Vec<Json> = self
            .stats
            .per_process
            .iter()
            .map(|c| {
                Json::object()
                    .field("sent", c.sent)
                    .field("delivered", c.delivered)
                    .field("dropped", c.dropped)
            })
            .collect();
        let epsilon = match self.epsilon {
            Some(e) => Json::Float(e),
            None => Json::Null,
        };
        let distance = if self.verdict.max_pairwise_distance.is_finite() {
            Json::Float(self.verdict.max_pairwise_distance)
        } else {
            Json::Null
        };
        let mut json = Json::object()
            .field("scenario", self.scenario.as_str())
            .field("protocol", self.protocol.name())
            .field("n", self.shape.0)
            .field("f", self.shape.1)
            .field("d", self.shape.2)
            .field("epsilon", epsilon)
            .field("seed", self.seed)
            .field("strategy", self.strategy.as_str())
            .field("policy", self.policy.as_str())
            .field(
                "faults",
                Json::Array(self.faults.iter().map(|&k| Json::from(k)).collect()),
            );
        if let Some(meta) = &self.topology {
            json = json.field(
                "topology",
                Json::object()
                    .field("kind", meta.kind.as_str())
                    .field("edges", meta.edges)
                    .field("min_in_degree", meta.min_in_degree)
                    .field("min_out_degree", meta.min_out_degree)
                    .field("strongly_connected", meta.strongly_connected)
                    .field("sufficiency", meta.sufficiency)
                    .field("expected_solvable", meta.expected_solvable),
            );
        }
        if let Some(meta) = &self.validity {
            let mut obj = Json::object().field("mode", meta.mode.as_str());
            if let Some(alpha) = meta.alpha {
                obj = obj.field("alpha", Json::Float(alpha));
            }
            if let Some(k) = meta.k {
                obj = obj.field("k", k);
            }
            if let Some(required_n) = meta.required_n {
                obj = obj.field("required_n", required_n);
            }
            json = json.field("validity", obj.field("satisfied", meta.satisfied));
        }
        json.field(
            "verdict",
            Json::object()
                .field("agreement", self.verdict.agreement)
                .field("validity", self.verdict.validity)
                .field("termination", self.verdict.termination)
                .field("max_pairwise_distance", distance),
        )
        .field("rounds", self.rounds)
        .field(
            "messages",
            Json::object()
                .field("sent", self.stats.messages_sent)
                .field("delivered", self.stats.messages_delivered)
                .field("dropped", self.stats.messages_dropped),
        )
        .field("per_process", Json::Array(per_process))
        .to_string()
    }
}

/// Generates the `n − f` honest inputs a scenario declares.
///
/// # Errors
///
/// Returns [`ScenarioError::BadInputs`] when the generator cannot satisfy the
/// scenario shape (wrong explicit count, zero dimension, bad bounds).
pub fn generate_inputs(spec: &ScenarioSpec, seed: u64) -> Result<Vec<Point>, ScenarioError> {
    let count = spec
        .n
        .checked_sub(spec.f)
        .filter(|&c| c > 0)
        .ok_or_else(|| ScenarioError::BadInputs("need n > f".into()))?;
    if spec.d == 0 {
        return Err(ScenarioError::BadInputs("d must be positive".into()));
    }
    let (lo, hi) = spec.value_bounds;
    if !(lo.is_finite() && hi.is_finite() && lo < hi) {
        return Err(ScenarioError::BadInputs(format!(
            "value_bounds must be finite with lower < upper, got [{lo}, {hi}]"
        )));
    }
    let mut generator = WorkloadGenerator::new(seed ^ INPUT_SEED_SALT);
    let points = match &spec.inputs {
        InputSpec::Grid => grid_points(count, spec.d, lo, hi),
        InputSpec::Simplex => generator
            .probability_vectors(count, spec.d)
            .points()
            .to_vec(),
        InputSpec::RandomBall { center, radius } => {
            let centre = Point::new(center.clone());
            generator
                .clustered(count, &centre, *radius)
                .points()
                .to_vec()
        }
        InputSpec::Corners => corner_points(count, spec.d, lo, hi),
        InputSpec::Explicit { points } => {
            if points.len() != count {
                return Err(ScenarioError::BadInputs(format!(
                    "explicit inputs list {} points, need n − f = {count}",
                    points.len()
                )));
            }
            points.iter().cloned().map(Point::new).collect()
        }
    };
    Ok(points)
}

/// Synchronous executors evaluate fault windows at 1-based round numbers, so
/// a window starting at time 0 would silently lose its first unit (no round 0
/// exists).  The schema defines `start = 0` as "from the beginning"; shift
/// such windows to round 1 so they cover the declared number of rounds.
fn sync_rounds_plan(plan: &FaultPlan) -> FaultPlan {
    let mut adjusted = FaultPlan::new();
    for event in plan.events() {
        let mut event = event.clone();
        if event.start == 0 {
            event.start = 1;
        }
        adjusted
            .push(event)
            .expect("shifting a validated window keeps it valid");
    }
    adjusted
}

/// Row-major lattice over `[lo, hi]^d`, truncated to `count` points.
fn grid_points(count: usize, d: usize, lo: f64, hi: f64) -> Vec<Point> {
    // Smallest per-axis resolution whose lattice covers `count` points.
    let mut k = 1usize;
    while k.pow(d as u32) < count {
        k += 1;
    }
    let coordinate = |i: usize| {
        if k == 1 {
            0.5 * (lo + hi)
        } else {
            lo + (hi - lo) * i as f64 / (k - 1) as f64
        }
    };
    (0..count)
        .map(|mut index| {
            let coords = (0..d)
                .map(|_| {
                    let i = index % k;
                    index /= k;
                    coordinate(i)
                })
                .collect();
            Point::new(coords)
        })
        .collect()
}

/// Cycles through the `2^d` corners of `[lo, hi]^d` (maximum-spread inputs).
fn corner_points(count: usize, d: usize, lo: f64, hi: f64) -> Vec<Point> {
    let corners = 1usize << d.min(62);
    (0..count)
        .map(|j| {
            let mask = j % corners;
            Point::new(
                (0..d)
                    .map(|l| if (mask >> l) & 1 == 1 { hi } else { lo })
                    .collect(),
            )
        })
        .collect()
}

/// Runs one instance of a scenario: the spec with `seed`, `strategy` and
/// `policy` overriding the corresponding base values and the scenario's own
/// `[topology]` section (if any) selecting the substrate.
///
/// # Errors
///
/// Propagates input-generation failures and run-builder rejections; a run
/// whose verdict fails is **not** an error — failed verdicts are data.
pub fn run_scenario(
    spec: &ScenarioSpec,
    seed: u64,
    strategy: ByzantineStrategy,
    policy: DeliveryPolicy,
) -> Result<ScenarioOutcome, ScenarioError> {
    run_scenario_instance(
        spec,
        seed,
        strategy,
        policy,
        spec.topology.as_ref(),
        spec.validity.as_ref(),
    )
}

/// [`run_scenario`] with the topology axis made explicit, so callers can
/// override the scenario's base topology per instance (the validity mode
/// stays the scenario's own).
///
/// # Errors
///
/// Same as [`run_scenario`]; an unbuildable topology (size mismatch,
/// infeasible degree) is a rejection.
pub fn run_scenario_with_topology(
    spec: &ScenarioSpec,
    seed: u64,
    strategy: ByzantineStrategy,
    policy: DeliveryPolicy,
    topology_spec: Option<&TopologySpec>,
) -> Result<ScenarioOutcome, ScenarioError> {
    run_scenario_instance(
        spec,
        seed,
        strategy,
        policy,
        topology_spec,
        spec.validity.as_ref(),
    )
}

/// [`run_scenario`] with every campaign axis made explicit: topology *and*
/// validity mode, so sweeps can override both per instance.
///
/// The topology is materialised deterministically from the instance seed
/// (only the random-regular family consumes it).  `None` means the plain
/// complete graph *and* suppresses the `topology` verdict field, keeping
/// pre-topology scenarios byte-identical; likewise a `None` validity means
/// strict scoring with no `validity` verdict field.  A declared (or swept)
/// mode is threaded into the run builder: it selects the scoring predicate,
/// lowers the admission bound to the relaxed requirement, and — for the
/// exact protocol — relaxes the Step-2 decision rule itself.
///
/// # Errors
///
/// Same as [`run_scenario`]; an unbuildable topology (size mismatch,
/// infeasible degree) is a rejection.
pub fn run_scenario_instance(
    spec: &ScenarioSpec,
    seed: u64,
    strategy: ByzantineStrategy,
    policy: DeliveryPolicy,
    topology_spec: Option<&TopologySpec>,
    validity: Option<&ValidityMode>,
) -> Result<ScenarioOutcome, ScenarioError> {
    let kind = protocol_kind(spec.protocol);
    let topology = match topology_spec {
        None => None,
        Some(t) => Some(
            t.build(spec.n, seed ^ TOPOLOGY_SEED_SALT)
                .map_err(|e| ScenarioError::Rejected(e.to_string()))?,
        ),
    };
    let config = run_config_from_spec(
        spec,
        seed,
        strategy,
        policy.clone(),
        topology.as_ref(),
        validity,
    )?;
    let report = BvcSession::new(kind, config)?.run();

    // Topology metadata: the iterative protocol always reports its substrate
    // (the session resolves the complete graph by default, and its driver
    // already computed the sufficiency verdict — recomputing the exponential
    // partition enumeration here would double the cost per instance); the
    // complete-graph protocols report it only when the scenario declared or
    // swept one.
    let topology_meta = match report.sufficiency() {
        Some(sufficiency) => Some(TopologyMeta::with_sufficiency(
            report.topology(),
            spec.protocol,
            sufficiency,
        )),
        None => topology
            .as_ref()
            .map(|t| TopologyMeta::from_topology(t, spec.protocol, spec.f, spec.d)),
    };
    // Validity metadata only when the scenario declared (or swept) a mode;
    // the iterative protocol has no closed-form resource check, so its
    // metadata carries the mode alone.
    let validity_meta = validity.map(|_| match report.validity() {
        Some(check) => ValidityMeta::from_check(check),
        None => ValidityMeta::from_mode(report.validity_mode()),
    });
    let policy_label = if spec.protocol.is_async() {
        policy_name(&policy)
    } else {
        "sync".to_string()
    };
    Ok(ScenarioOutcome {
        scenario: spec.name.clone(),
        protocol: spec.protocol,
        shape: (spec.n, spec.f, spec.d),
        epsilon: report.epsilon(),
        seed,
        strategy: strategy_label(strategy),
        policy: policy_label,
        faults: spec.faults.events().iter().map(|e| e.kind.name()).collect(),
        topology: topology_meta,
        validity: validity_meta,
        verdict: report.verdict().clone(),
        rounds: report.rounds(),
        stats: report.stats().clone(),
    })
}

/// The runner's **single protocol dispatch point**: the scenario schema's
/// [`Protocol`] mapped onto the session API's [`ProtocolKind`].  Everything
/// else in this module is protocol-independent — adding a protocol to the
/// matrix means one schema name, one arm here, and a driver in `bvc-core`.
pub fn protocol_kind(protocol: Protocol) -> ProtocolKind {
    match protocol {
        Protocol::Exact => ProtocolKind::Exact,
        Protocol::Approx => ProtocolKind::Approx,
        Protocol::RestrictedSync => ProtocolKind::RestrictedSync,
        Protocol::RestrictedAsync => ProtocolKind::RestrictedAsync,
        Protocol::Iterative => ProtocolKind::Iterative,
        Protocol::DirectedExact => ProtocolKind::DirectedExact,
        Protocol::DirectedExactLb => ProtocolKind::DirectedExactLb,
    }
}

/// Builds the session [`RunConfig`] for one scenario instance: honest inputs
/// from the scenario's generator, the instance's seed / strategy / policy,
/// the scenario's ε, value bounds, step cap and fault plan (fault windows
/// shifted to 1-based rounds for the synchronous protocols), plus the two
/// campaign axes made explicit — the already-materialised topology override
/// and the instance's validity mode (`None` means strict scoring, mirroring
/// the suppressed `validity` verdict field; pass `spec.validity.as_ref()`
/// to apply a scenario's own declared mode).
///
/// # Errors
///
/// Returns [`ScenarioError::BadInputs`] when the input generator cannot
/// satisfy the scenario shape.
pub fn run_config_from_spec(
    spec: &ScenarioSpec,
    seed: u64,
    strategy: ByzantineStrategy,
    policy: DeliveryPolicy,
    topology: Option<&Topology>,
    validity: Option<&ValidityMode>,
) -> Result<RunConfig, ScenarioError> {
    let kind = protocol_kind(spec.protocol);
    let faults = if kind.is_async() {
        spec.faults.clone()
    } else {
        sync_rounds_plan(&spec.faults)
    };
    let mut config = RunConfig::new(spec.n, spec.f, spec.d)
        .honest_inputs(generate_inputs(spec, seed)?)
        .adversary(strategy)
        .seed(seed)
        .epsilon(spec.epsilon)
        .value_bounds(spec.value_bounds.0, spec.value_bounds.1)
        .delivery_policy(policy)
        .max_steps(spec.max_steps)
        .validity_mode(validity.copied().unwrap_or(ValidityMode::Strict))
        .faults(faults);
    if let Some(t) = topology {
        config = config.topology(t.clone());
    }
    Ok(config)
}

/// Stable label for a strategy, including the crash round (`crash:K`) and
/// the split-brain mask (`split-brain:MASK`).
pub fn strategy_label(strategy: ByzantineStrategy) -> String {
    match strategy {
        ByzantineStrategy::Crash(k) => format!("crash:{k}"),
        ByzantineStrategy::SplitBrain(mask) => format!("split-brain:{mask}"),
        other => other.name().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(protocol: &str) -> ScenarioSpec {
        let (n, f, d) = match protocol {
            "exact" => (5, 1, 2),
            "approx" => (5, 1, 2),
            "restricted-sync" => (5, 1, 2),
            "restricted-async" => (6, 1, 1),
            _ => unreachable!(),
        };
        ScenarioSpec::from_toml(&format!(
            "[scenario]\nname = \"t\"\nprotocol = \"{protocol}\"\nn = {n}\nf = {f}\nd = {d}\n\
             epsilon = 0.1\nmax_steps = 500000\n"
        ))
        .unwrap()
    }

    #[test]
    fn grid_inputs_cover_the_box_deterministically() {
        let s = spec("exact");
        let a = generate_inputs(&s, 1).unwrap();
        let b = generate_inputs(&s, 1).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        for p in &a {
            assert!(p.coords().iter().all(|&c| (0.0..=1.0).contains(&c)));
        }
    }

    #[test]
    fn corner_inputs_hit_extremes() {
        let mut s = spec("exact");
        s.inputs = InputSpec::Corners;
        let points = generate_inputs(&s, 0).unwrap();
        assert_eq!(points[0].coords(), &[0.0, 0.0]);
        assert_eq!(points[1].coords(), &[1.0, 0.0]);
        assert_eq!(points[2].coords(), &[0.0, 1.0]);
        assert_eq!(points[3].coords(), &[1.0, 1.0]);
    }

    #[test]
    fn all_four_protocols_run_and_serialize() {
        for protocol in ["exact", "approx", "restricted-sync", "restricted-async"] {
            let s = spec(protocol);
            let outcome = run_scenario(&s, 3, s.strategy, s.policy.clone())
                .unwrap_or_else(|e| panic!("{protocol}: {e}"));
            assert!(
                outcome.verdict.all_hold(),
                "{protocol} verdict: {:?}",
                outcome.verdict
            );
            let json = outcome.to_json();
            assert!(json.contains(&format!("\"protocol\": \"{protocol}\"")));
            assert!(json.contains("\"per_process\""));
        }
    }

    #[test]
    fn json_is_byte_identical_for_equal_runs() {
        let s = spec("approx");
        let a = run_scenario(&s, 42, s.strategy, s.policy.clone()).unwrap();
        let b = run_scenario(&s, 42, s.strategy, s.policy.clone()).unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn explicit_inputs_must_count_n_minus_f() {
        let mut s = spec("exact");
        s.inputs = InputSpec::Explicit {
            points: vec![vec![0.0, 0.0]],
        };
        assert!(matches!(
            generate_inputs(&s, 0),
            Err(ScenarioError::BadInputs(_))
        ));
    }

    #[test]
    fn sync_fault_windows_starting_at_zero_cover_round_one() {
        // Rounds are 1-based, so a raw start = 0 window of duration 1 would
        // never fire; the runner shifts it to round 1 and the drop fault must
        // actually destroy round-1 messages.
        let spec = ScenarioSpec::from_toml(
            "[scenario]\nname = \"t\"\nprotocol = \"exact\"\nn = 5\nf = 1\nd = 2\n\
             [[faults]]\nkind = \"drop\"\nrate = 1.0\nfrom = [0]\nstart = 0\nduration = 1\n",
        )
        .unwrap();
        let outcome = run_scenario(&spec, 1, spec.strategy, spec.policy.clone()).unwrap();
        assert!(
            outcome.stats.messages_dropped > 0,
            "a start = 0 window must cover round 1, not vanish"
        );
        assert_eq!(
            outcome.stats.per_process[0].dropped,
            outcome.stats.messages_dropped
        );
    }

    #[test]
    fn bound_violations_surface_as_rejections() {
        let mut s = spec("approx");
        s.n = 4; // (d+2)f+1 = 5 > 4
        let err = run_scenario(&s, 0, s.strategy, s.policy.clone()).unwrap_err();
        assert!(matches!(err, ScenarioError::Rejected(_)));
    }
}
