//! Two-phase simplex driver: converts a [`LinearProgram`] to standard form,
//! finds an initial basic feasible solution with artificial variables
//! (phase 1), and then optimises the user objective (phase 2).

use crate::problem::{LinearProgram, Objective, Relation};
use crate::tableau::{PivotOutcome, Tableau};
use crate::EPSILON;

/// Outcome classification of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// An optimal (finite) solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The feasible region is unbounded in the optimisation direction.
    Unbounded,
}

/// Result of solving a [`LinearProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Solve outcome. `values` and `objective_value` are only meaningful when
    /// this is [`SolveStatus::Optimal`].
    pub status: SolveStatus,
    /// One optimal assignment of the decision variables (original indexing).
    pub values: Vec<f64>,
    /// Objective value attained by `values`, in the direction the program was
    /// stated (i.e. already un-negated for maximisation problems).
    pub objective_value: f64,
}

impl Solution {
    fn infeasible(num_variables: usize) -> Self {
        Self {
            status: SolveStatus::Infeasible,
            values: vec![0.0; num_variables],
            objective_value: f64::NAN,
        }
    }

    fn unbounded(num_variables: usize) -> Self {
        Self {
            status: SolveStatus::Unbounded,
            values: vec![0.0; num_variables],
            objective_value: f64::NAN,
        }
    }

    /// Returns `true` when the solve found an optimal point.
    pub fn is_optimal(&self) -> bool {
        self.status == SolveStatus::Optimal
    }
}

/// Internal description of how original variables map onto standard-form
/// columns.
struct StandardForm {
    /// For each original variable, the column of its non-negative part.
    positive_column: Vec<usize>,
    /// For each original variable, the column of its negative part (only for
    /// free variables).
    negative_column: Vec<Option<usize>>,
    /// Total number of structural columns before artificials.
    num_structural: usize,
    /// Objective coefficients over structural columns (minimisation form).
    objective: Vec<f64>,
    /// Constraint rows over structural columns with non-negative RHS.
    rows: Vec<(Vec<f64>, f64)>,
    /// For each row, the column of a slack that can serve as the initial
    /// basis (only rows originating from `≤` with non-negative RHS have one).
    slack_basis: Vec<Option<usize>>,
}

fn to_standard_form(lp: &LinearProgram) -> StandardForm {
    let n = lp.num_variables();
    let mut positive_column = Vec::with_capacity(n);
    let mut negative_column = Vec::with_capacity(n);
    let mut next_col = 0usize;
    for var in 0..n {
        positive_column.push(next_col);
        next_col += 1;
        if lp.is_free(var) {
            negative_column.push(Some(next_col));
            next_col += 1;
        } else {
            negative_column.push(None);
        }
    }

    // Count slack/surplus columns.
    let mut slack_count = 0usize;
    for c in lp.constraints() {
        if c.relation != Relation::Equal {
            slack_count += 1;
        }
    }
    let num_structural = next_col + slack_count;

    // Objective in minimisation form over structural columns.
    let sign = match lp.objective() {
        Objective::Minimize => 1.0,
        Objective::Maximize => -1.0,
    };
    let mut objective = vec![0.0; num_structural];
    for var in 0..n {
        let c = sign * lp.objective_coefficients()[var];
        objective[positive_column[var]] += c;
        if let Some(neg) = negative_column[var] {
            objective[neg] -= c;
        }
    }

    // Build rows, flipping signs so every RHS is non-negative, and adding
    // slack (+1 for ≤) or surplus (−1 for ≥) columns.
    let mut rows = Vec::with_capacity(lp.num_constraints());
    let mut slack_basis = Vec::with_capacity(lp.num_constraints());
    let mut slack_col = next_col;
    for constraint in lp.constraints() {
        let mut coeffs = vec![0.0; num_structural];
        for var in 0..n {
            let a = constraint.coefficients[var];
            coeffs[positive_column[var]] += a;
            if let Some(neg) = negative_column[var] {
                coeffs[neg] -= a;
            }
        }
        let mut rhs = constraint.rhs;
        // Effective relation after a potential sign flip.
        let mut relation = constraint.relation;
        if rhs < 0.0 {
            for c in coeffs.iter_mut() {
                *c = -*c;
            }
            rhs = -rhs;
            relation = match relation {
                Relation::LessEq => Relation::GreaterEq,
                Relation::GreaterEq => Relation::LessEq,
                Relation::Equal => Relation::Equal,
            };
        }
        let basis = match relation {
            Relation::LessEq => {
                coeffs[slack_col] = 1.0;
                let b = Some(slack_col);
                slack_col += 1;
                b
            }
            Relation::GreaterEq => {
                coeffs[slack_col] = -1.0;
                slack_col += 1;
                None
            }
            Relation::Equal => None,
        };
        rows.push((coeffs, rhs));
        slack_basis.push(basis);
    }

    StandardForm {
        positive_column,
        negative_column,
        num_structural,
        objective,
        rows,
        slack_basis,
    }
}

/// Solves `lp` with the two-phase simplex method.
pub(crate) fn solve_two_phase(lp: &LinearProgram) -> Solution {
    let sf = to_standard_form(lp);
    let m = sf.rows.len();
    let n_structural = sf.num_structural;

    // Phase 1: add an artificial variable for every row that has no natural
    // slack basis, and minimise the sum of artificials.
    let mut artificial_cols = Vec::new();
    let mut total_cols = n_structural;
    for basis in &sf.slack_basis {
        if basis.is_none() {
            artificial_cols.push(total_cols);
            total_cols += 1;
        }
    }

    let mut tableau = Tableau::zeros(m, total_cols);
    {
        let mut artificial_iter = artificial_cols.iter();
        for (row, (coeffs, rhs)) in sf.rows.iter().enumerate() {
            for (col, &a) in coeffs.iter().enumerate() {
                if a != 0.0 {
                    tableau.set(row, col, a);
                }
            }
            tableau.set_rhs(row, *rhs);
            match sf.slack_basis[row] {
                Some(slack) => tableau.set_basic(row, slack),
                None => {
                    let art = *artificial_iter
                        .next()
                        .expect("artificial column allocated for every basisless row");
                    tableau.set(row, art, 1.0);
                    tableau.set_basic(row, art);
                }
            }
        }
    }

    if !artificial_cols.is_empty() {
        // Phase-1 objective: minimise the sum of artificial variables.
        for &col in &artificial_cols {
            tableau.set_objective_coefficient(col, 1.0);
        }
        tableau.price_out_basis();
        let eligible = vec![true; total_cols];
        // The phase-1 objective is bounded below by zero, so an "unbounded"
        // outcome can only be numerical noise; either way the decision is made
        // on the attained objective value.
        let _ = tableau.run_simplex(&eligible);
        if tableau.objective_value() > 1e-7 {
            return Solution::infeasible(lp.num_variables());
        }
        // Drive any artificial variable that is still basic (at value zero)
        // out of the basis if a structural pivot exists; otherwise the row is
        // redundant and the artificial stays basic at zero harmlessly.
        for row in 0..m {
            let basic = tableau.basic_column(row);
            if artificial_cols.contains(&basic) {
                if let Some(col) = (0..n_structural).find(|&c| tableau.get(row, c).abs() > 1e-7) {
                    tableau.pivot(row, col);
                }
            }
        }
        // Clear the phase-1 objective row.
        for col in 0..total_cols {
            tableau.set_objective_coefficient(col, 0.0);
        }
        let cols = tableau.cols();
        tableau.set(m, cols, 0.0);
    }

    // Phase 2: load the user objective and optimise, keeping artificial
    // columns out of the basis.
    for (col, &c) in sf.objective.iter().enumerate() {
        tableau.set_objective_coefficient(col, c);
    }
    tableau.price_out_basis();
    let mut eligible = vec![false; total_cols];
    for e in eligible.iter_mut().take(n_structural) {
        *e = true;
    }
    let outcome = tableau.run_simplex(&eligible);
    if outcome == PivotOutcome::Unbounded {
        return Solution::unbounded(lp.num_variables());
    }

    // Recover original variable values.
    let mut values = vec![0.0; lp.num_variables()];
    for (var, value) in values.iter_mut().enumerate() {
        let pos = tableau.variable_value(sf.positive_column[var]);
        let neg = sf.negative_column[var]
            .map(|c| tableau.variable_value(c))
            .unwrap_or(0.0);
        *value = pos - neg;
    }
    let raw_objective = tableau.objective_value();
    let objective_value = match lp.objective() {
        Objective::Minimize => raw_objective,
        Objective::Maximize => -raw_objective,
    };
    // Clamp values that are tiny negative due to floating point back to zero
    // for non-free variables.
    for (var, v) in values.iter_mut().enumerate() {
        if !lp.is_free(var) && *v < 0.0 && *v > -EPSILON * 10.0 {
            *v = 0.0;
        }
    }

    Solution {
        status: SolveStatus::Optimal,
        values,
        objective_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearProgram, Objective, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} !~ {b}");
    }

    #[test]
    fn maximization_with_slack_constraints() {
        let mut lp = LinearProgram::new(2, Objective::Maximize);
        lp.set_objective_coefficient(0, 3.0);
        lp.set_objective_coefficient(1, 5.0);
        lp.add_constraint(vec![1.0, 0.0], Relation::LessEq, 4.0);
        lp.add_constraint(vec![0.0, 2.0], Relation::LessEq, 12.0);
        lp.add_constraint(vec![3.0, 2.0], Relation::LessEq, 18.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.objective_value, 36.0);
        assert_close(s.values[0], 2.0);
        assert_close(s.values[1], 6.0);
    }

    #[test]
    fn minimization_with_geq_constraints_needs_phase1() {
        // Classic diet-style LP: minimise 0.12x + 0.15y with coverage
        // constraints.
        let mut lp = LinearProgram::new(2, Objective::Minimize);
        lp.set_objective_coefficient(0, 0.12);
        lp.set_objective_coefficient(1, 0.15);
        lp.add_constraint(vec![60.0, 60.0], Relation::GreaterEq, 300.0);
        lp.add_constraint(vec![12.0, 6.0], Relation::GreaterEq, 36.0);
        lp.add_constraint(vec![10.0, 30.0], Relation::GreaterEq, 90.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.objective_value, 0.66);
        assert_close(s.values[0], 3.0);
        assert_close(s.values[1], 2.0);
    }

    #[test]
    fn equality_constraints_solve() {
        // minimise x + y subject to x + 2y = 4, 3x + 2y = 8
        let mut lp = LinearProgram::new(2, Objective::Minimize);
        lp.set_objective_coefficient(0, 1.0);
        lp.set_objective_coefficient(1, 1.0);
        lp.add_constraint(vec![1.0, 2.0], Relation::Equal, 4.0);
        lp.add_constraint(vec![3.0, 2.0], Relation::Equal, 8.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.values[0], 2.0);
        assert_close(s.values[1], 1.0);
        assert_close(s.objective_value, 3.0);
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ 1 and x ≥ 2 simultaneously.
        let mut lp = LinearProgram::new(1, Objective::Minimize);
        lp.set_objective_coefficient(0, 1.0);
        lp.add_constraint(vec![1.0], Relation::LessEq, 1.0);
        lp.add_constraint(vec![1.0], Relation::GreaterEq, 2.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // maximise x with only a lower bound.
        let mut lp = LinearProgram::new(1, Objective::Maximize);
        lp.set_objective_coefficient(0, 1.0);
        lp.add_constraint(vec![1.0], Relation::GreaterEq, 1.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Unbounded);
    }

    #[test]
    fn free_variable_can_go_negative() {
        // minimise x with x free and x ≥ -5: optimum is -5.
        let mut lp = LinearProgram::new(1, Objective::Minimize);
        lp.mark_free(0);
        lp.set_objective_coefficient(0, 1.0);
        lp.add_constraint(vec![1.0], Relation::GreaterEq, -5.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.values[0], -5.0);
    }

    #[test]
    fn negative_rhs_rows_are_normalised() {
        // -x - y ≤ -2  (i.e. x + y ≥ 2), minimise x + y.
        let mut lp = LinearProgram::new(2, Objective::Minimize);
        lp.set_objective_coefficient(0, 1.0);
        lp.set_objective_coefficient(1, 1.0);
        lp.add_constraint(vec![-1.0, -1.0], Relation::LessEq, -2.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.objective_value, 2.0);
    }

    #[test]
    fn pure_feasibility_problem_convex_combination() {
        // Find alphas with a0 + a1 + a2 = 1, alphas ≥ 0 and
        // 0*a0 + 1*a1 + 2*a2 = 0.5 (a point in the hull of {0,1,2}).
        let mut lp = LinearProgram::new(3, Objective::Minimize);
        lp.add_constraint(vec![1.0, 1.0, 1.0], Relation::Equal, 1.0);
        lp.add_constraint(vec![0.0, 1.0, 2.0], Relation::Equal, 0.5);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Optimal);
        let recombined = s.values[1] + 2.0 * s.values[2];
        assert_close(recombined, 0.5);
        let total: f64 = s.values.iter().sum();
        assert_close(total, 1.0);
        assert!(s.values.iter().all(|&v| v >= -1e-9));
    }

    #[test]
    fn infeasible_convex_combination_detected() {
        // Ask for the point 5 in the hull of {0, 1, 2}: infeasible.
        let mut lp = LinearProgram::new(3, Objective::Minimize);
        lp.add_constraint(vec![1.0, 1.0, 1.0], Relation::Equal, 1.0);
        lp.add_constraint(vec![0.0, 1.0, 2.0], Relation::Equal, 5.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Infeasible);
    }

    #[test]
    fn degenerate_program_terminates() {
        // A degenerate LP where multiple bases describe the same vertex;
        // Bland's rule must still terminate.
        let mut lp = LinearProgram::new(2, Objective::Maximize);
        lp.set_objective_coefficient(0, 1.0);
        lp.set_objective_coefficient(1, 1.0);
        lp.add_constraint(vec![1.0, 1.0], Relation::LessEq, 1.0);
        lp.add_constraint(vec![1.0, 1.0], Relation::LessEq, 1.0);
        lp.add_constraint(vec![1.0, 0.0], Relation::LessEq, 1.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.objective_value, 1.0);
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // Two identical equality rows: one artificial stays basic at zero.
        let mut lp = LinearProgram::new(2, Objective::Minimize);
        lp.set_objective_coefficient(0, 1.0);
        lp.add_constraint(vec![1.0, 1.0], Relation::Equal, 1.0);
        lp.add_constraint(vec![1.0, 1.0], Relation::Equal, 1.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.values[0] + s.values[1], 1.0);
        assert_close(s.objective_value, 0.0);
    }

    #[test]
    fn maximize_with_equality_and_free_variable() {
        // maximise z = x (free) subject to x + y = 3, y ≤ 2 → x can be 3 when
        // y = 0, and as large as... wait y ≥ 0 so x ≤ 3. Optimum x = 3.
        let mut lp = LinearProgram::new(2, Objective::Maximize);
        lp.mark_free(0);
        lp.set_objective_coefficient(0, 1.0);
        lp.add_constraint(vec![1.0, 1.0], Relation::Equal, 3.0);
        lp.add_constraint(vec![0.0, 1.0], Relation::LessEq, 2.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.values[0], 3.0);
    }

    #[test]
    fn solution_is_optimal_helper() {
        let mut lp = LinearProgram::new(1, Objective::Minimize);
        lp.set_objective_coefficient(0, 1.0);
        let s = lp.solve();
        assert!(s.is_optimal());
    }
}
