//! # bvc-scenario — declarative scenarios, fault injection, campaign runs
//!
//! The `bvc-core` runners exercise the paper's four algorithms through Rust
//! builders.  This crate adds the layer the ROADMAP's scenario-diversity goal
//! asks for: **declare** an adversarial scenario in TOML — protocol,
//! parameters, honest-input workload, Byzantine strategy, delivery schedule,
//! injected network faults — then **replay** it deterministically or **sweep**
//! it as a campaign across threads, emitting one JSON verdict per instance.
//!
//! ## Quickstart
//!
//! Run one scenario (from the workspace root):
//!
//! ```text
//! cargo run -p bvc-scenario --bin scenario-run -- \
//!     --scenario scenarios/partition_heal.toml --seed 42
//! ```
//!
//! Run every scenario in a directory, fanned across CPU cores, one JSON line
//! per instance on stdout:
//!
//! ```text
//! cargo run -p bvc-scenario --bin campaign-run -- --dir scenarios --jobs 8
//! ```
//!
//! Identical scenario file + identical seed ⇒ **byte-identical** JSON verdict
//! (the determinism property tests pin this), so verdict files diff cleanly
//! across revisions and make regression triage trivial.
//!
//! ## A worked scenario
//!
//! ```toml
//! [scenario]
//! name = "partition-heal"
//! protocol = "approx"          # exact | approx | restricted-sync |
//!                              # restricted-async | iterative |
//!                              # directed-exact | directed-exact-lb
//! n = 5                        # processes
//! f = 1                        # Byzantine processes (the last f ids)
//! d = 2                        # input dimension
//! epsilon = 0.05               # ε-agreement target (approximate protocols)
//! seed = 1                     # base seed; `--seed` overrides per run
//! max_steps = 500000           # async delivery-step cap
//! value_bounds = [0.0, 1.0]    # the paper's a-priori bounds [ν, U]
//! validity = "strict"          # optional: strict | "(1+α)-relaxed" (+ alpha)
//! # alpha = 0.5                # | k-relaxed (+ k) — the relaxed validity
//! # k = 1                      # conditions of Xiang & Vaidya 1601.08067
//!
//! [inputs]
//! generator = "random-ball"    # grid | simplex | random-ball | corners | explicit
//! center = [0.5, 0.5]
//! radius = 0.3
//!
//! [adversary]
//! strategy = "anti-convergence"  # crash[:K] | silent | fixed-outlier |
//!                                # random-noise | equivocate | anti-convergence | benign
//!
//! [delivery]                     # asynchronous protocols only
//! policy = "random-fair"         # random-fair | round-robin | delay-from | delay-to
//! # processes = [4]              # required by delay-from / delay-to
//!
//! [[faults]]                     # zero or more; windows are scheduler ticks
//! kind = "partition"             # (async) or 1-based rounds (sync; start = 0
//! groups = [[0, 1]]              # means "from round 1").  drop | latency |
//! start = 0                      # partition; unlisted processes form the
//! duration = 400                 # other partition side.  Windows must be
//!                                # finite: every fault expires (fairness).
//!
//! # Drop/latency faults take link selectors: `from = [..]` (senders),
//! # `to = [..]` (receivers), or both — `from` + `to` together cover only
//! # the *directed* links from × to, never the replies.
//!
//! [topology]                     # optional: declared adjacency (default:
//! kind = "ring"                  # the complete graph).  complete | ring |
//!                                # torus (+ rows/cols) | random-regular
//!                                # (+ degree) | explicit (+ edges, undirected).
//!                                # The random-regular wiring is drawn
//!                                # deterministically from the instance seed.
//!
//! [campaign]                     # optional: turn the file into a sweep
//! seed_range = [0, 24]           # inclusive integers; or `seeds = [..]`
//! strategies = ["equivocate", "anti-convergence"]
//! policies = ["random-fair", "round-robin"]  # ignored by sync protocols
//! topologies = ["complete", "ring", "torus:2x4", "random-regular:6"]
//! alphas = [0.0, 1.0, 3.0]       # validity axis: (1+α)-relaxed values …
//! ks = [1]                       # … then k-relaxed values
//! # broadcast = ["point-to-point", "local"]  # directed protocols only:
//! #                                # rewrites the instance protocol between
//! #                                # directed-exact / directed-exact-lb
//!
//! [service]                      # optional: run the file as a multi-shot
//! instances = 1000               # consensus stream (`service-run`, the
//! batch = 64                     # `bvc-service` crate).  Instance i runs at
//! workers = 0                    # seed base + (i % seed_cycle) with inputs
//! seed_cycle = 50                # regenerated from that seed; 0 = no cycle.
//! strategies = ["equivocate", "silent"]  # rotation (empty ⇒ base strategy)
//! shared_cache = true            # chain per-instance Γ caches to one parent
//! # sink = "verdicts.jsonl"      # default stdout; `--out` overrides
//! ```
//!
//! The `iterative` protocol is the incomplete-graph algorithm of Vaidya 2013:
//! it runs on whatever `[topology]` declares (complete by default), accepts
//! `f = 0`, and its verdict carries topology metadata including the
//! **iterative sufficiency check** — scenarios on graphs that fail the check
//! are flagged `expected_solvable = false` up front, and campaign summaries
//! count their violations separately (expected data, not regressions).
//!
//! The `directed-exact` / `directed-exact-lb` pair runs exact consensus on
//! the declared directed topology under point-to-point channels
//! (arXiv:1208.5075) or the local-broadcast delivery model
//! (arXiv:1911.07298).  Their verdicts carry the matching cut-based
//! sufficiency check, and the `broadcast` campaign axis sweeps one scenario
//! across both delivery models — the model shows up in the verdict's
//! `protocol` field, and `scenarios/directed_divergence.toml` pins a graph
//! the two models provably separate.
//!
//! A declared (or swept) `validity` mode selects the relaxed conditions of
//! *Relaxed Byzantine Vector Consensus* (Xiang & Vaidya, arXiv:1601.08067):
//! verdicts are scored against the `(1+α)`-dilated honest hull or the
//! `k`-coordinate projections, the run is admitted at the **lowered**
//! resource bound (e.g. Exact BVC at `3f + 1` instead of
//! `max(3f+1, (d+1)f+1)`), and the exact protocol's Step-2 rule decides in
//! the relaxed safe area.  The verdict carries a `validity` object with the
//! mode, the (lowered) `required_n` and whether `n` meets it — runs below
//! their bound are tallied as *expected-unsolvable*, exactly like
//! insufficient topologies.  `scenarios/alpha_sweep.toml` sweeps α below
//! the strict threshold to show the violation rate collapsing to zero.
//!
//! Fault semantics, and the fairness caveat (every fault window must be
//! finite so the asynchronous executor's eventual-delivery contract still
//! holds after the plan's quiescence horizon), are documented in
//! [`bvc_net::faults`].
//!
//! ## The JSON verdict
//!
//! One object per instance, key order fixed:
//!
//! ```json
//! {"scenario": "partition-heal", "protocol": "approx", "n": 5, "f": 1,
//!  "d": 2, "epsilon": 0.05, "seed": 42, "strategy": "anti-convergence",
//!  "policy": "random-fair", "faults": ["partition"],
//!  "verdict": {"agreement": true, "validity": true, "termination": true,
//!              "max_pairwise_distance": 0.03125},
//!  "rounds": 1234, "messages": {"sent": 5000, "delivered": 4970, "dropped": 0},
//!  "per_process": [{"sent": 1000, "delivered": 990, "dropped": 0}, ...]}
//! ```
//!
//! Programmatic use mirrors the CLI:
//!
//! ```
//! use bvc_scenario::{run_scenario, ScenarioSpec};
//!
//! let spec = ScenarioSpec::from_toml(r#"
//! [scenario]
//! name = "doc"
//! protocol = "exact"
//! n = 5
//! f = 1
//! d = 2
//! "#).expect("valid scenario");
//! let outcome = run_scenario(&spec, 42, spec.strategy, spec.policy.clone())
//!     .expect("parameters satisfy the resilience bound");
//! assert!(outcome.verdict.all_hold());
//! assert!(outcome.to_json().starts_with("{\"scenario\": \"doc\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod json;
pub mod report;
pub mod runner;
pub mod schema;
pub mod service;
pub mod toml;

pub use bvc_core::ValidityMode;
pub use bvc_service::{JsonlSink, MemorySink, ServiceConfig, VerdictSink};
pub use bvc_topology::TopologySpec;
pub use campaign::{
    expand, expand_all, run_campaign, run_campaign_streaming, CampaignSummary, Instance,
    InstanceResult,
};
pub use report::{CellKey, CellStats, ViolationTable};
pub use runner::{
    generate_inputs, run_scenario, run_scenario_instance, run_scenario_with_topology,
    strategy_label, ScenarioError, ScenarioOutcome, TopologyMeta, ValidityMeta,
};
pub use schema::{
    parse_strategy, policy_name, BroadcastModel, CampaignSpec, InputSpec, Protocol, ScenarioSpec,
    SchemaError, ServiceSpec,
};
pub use service::service_config_from_spec;
