//! E1 — Theorem 1 (necessity): `n ≥ max(3f+1, (d+1)f+1)` for Exact BVC.
//!
//! Reproduces the impossibility construction of the proof: with `n = d + 1`
//! processes and `f = 1`, the standard-basis-plus-origin inputs make the
//! intersection of the leave-one-out hulls empty, so no decision vector can
//! satisfy agreement and validity simultaneously.  A control configuration
//! with one extra interior point (n = d + 2) is feasible, showing the
//! emptiness is the construction's doing, not the machinery's.

use bvc_bench::{experiment_header, mark, Table};
use bvc_core::{theorem1_control_inputs, theorem1_evidence};
use bvc_geometry::leave_one_out_intersection;

fn main() {
    experiment_header(
        "E1: Theorem 1 necessity construction",
        "with n = d+1 and f = 1 the standard-basis inputs admit no valid common decision \
         (intersection of leave-one-out hulls is empty); n = d+2 can be feasible",
    );

    let mut table = Table::new(&[
        "d",
        "n = d+1 (construction)",
        "intersection empty (paper: yes)",
        "n = d+2 (control)",
        "control feasible",
    ]);
    for d in 1..=6 {
        let evidence = theorem1_evidence(d);
        let control = theorem1_control_inputs(d);
        let control_feasible = leave_one_out_intersection(&control).is_some();
        table.row(&[
            d.to_string(),
            evidence.n.to_string(),
            mark(evidence.intersection_empty),
            (d + 2).to_string(),
            mark(control_feasible),
        ]);
    }
    table.print();
    println!();
    println!(
        "Every row reports an empty intersection for the n = d+1 construction, matching the \
         necessity argument of Theorem 1; the control row shows the same machinery finds a \
         common point once a (d+2)-th interior input exists."
    );
}
