//! Criterion bench: the Γ-engine fast paths against the naive all-LPs
//! formulation — the d = 1 closed form, the lazy active-set point search,
//! the shared-cache hit path, and streamed membership, each next to the
//! monolithic joint LP they replace.

use bvc_geometry::{
    gamma_contains, gamma_point, ConvexHull, GammaCache, PointMultiset, SafeArea, WorkloadGenerator,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn multiset(n: usize, d: usize, seed: u64) -> PointMultiset {
    WorkloadGenerator::new(seed).box_points(n, d, 0.0, 1.0)
}

/// The naive reference: materialise every `(|Y|−f)`-subset hull and solve
/// the monolithic joint LP of Section 2.2.
fn naive_gamma_point(y: &PointMultiset, f: usize) -> Option<bvc_geometry::Point> {
    ConvexHull::common_point(&SafeArea::new(y.clone(), f).hulls())
}

fn bench_find_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("gamma_engine/find_point");
    group.sample_size(20);
    for &(n, f, d) in &[(5usize, 1usize, 2usize), (7, 2, 2), (9, 2, 2), (10, 2, 3)] {
        let y = multiset(n, d, 7);
        group.bench_with_input(
            BenchmarkId::new("lazy", format!("n{n}_f{f}_d{d}")),
            &y,
            |b, y| b.iter(|| gamma_point(y, f).expect("Lemma 1 shape")),
        );
        group.bench_with_input(
            BenchmarkId::new("naive", format!("n{n}_f{f}_d{d}")),
            &y,
            |b, y| b.iter(|| naive_gamma_point(y, f).expect("Lemma 1 shape")),
        );
    }
    group.finish();
}

fn bench_d1_closed_form(c: &mut Criterion) {
    let mut group = c.benchmark_group("gamma_engine/d1_closed_form");
    group.sample_size(50);
    for &(n, f) in &[(4usize, 1usize), (7, 2), (13, 4)] {
        let y = multiset(n, 1, 11);
        group.bench_with_input(
            BenchmarkId::new("closed", format!("n{n}_f{f}")),
            &y,
            |b, y| b.iter(|| gamma_point(y, f).expect("interval is non-empty")),
        );
        group.bench_with_input(
            BenchmarkId::new("naive", format!("n{n}_f{f}")),
            &y,
            |b, y| b.iter(|| naive_gamma_point(y, f).expect("interval is non-empty")),
        );
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("gamma_engine/cache");
    group.sample_size(50);
    let y = multiset(9, 2, 13);
    let cache = GammaCache::new();
    let _ = cache.find_point(&y, 2); // warm
    group.bench_with_input(BenchmarkId::new("hit", "n9_f2_d2"), &y, |b, y| {
        b.iter(|| cache.find_point(y, 2).expect("Lemma 1 shape"))
    });
    group.bench_with_input(BenchmarkId::new("uncached", "n9_f2_d2"), &y, |b, y| {
        b.iter(|| gamma_point(y, 2).expect("Lemma 1 shape"))
    });
    group.finish();
}

fn bench_membership(c: &mut Criterion) {
    let mut group = c.benchmark_group("gamma_engine/contains");
    group.sample_size(50);
    let y = multiset(9, 2, 17);
    let inside = gamma_point(&y, 2).expect("Lemma 1 shape");
    let outside = bvc_geometry::Point::new(vec![9.0, 9.0]);
    group.bench_with_input(BenchmarkId::new("inside", "n9_f2_d2"), &y, |b, y| {
        b.iter(|| assert!(gamma_contains(y, 2, &inside)))
    });
    group.bench_with_input(
        BenchmarkId::new("trimmed_box_reject", "n9_f2_d2"),
        &y,
        |b, y| b.iter(|| assert!(!gamma_contains(y, 2, &outside))),
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_find_point,
    bench_d1_closed_form,
    bench_cache,
    bench_membership
);
criterion_main!(benches);
