//! `perf-compare` — the Γ-engine perf-regression gate.
//!
//! Compares a freshly generated `perf-snapshot` document against the
//! committed baseline (`BENCH_gamma.json`), workload by workload, and fails
//! loudly when any sufficiently-large workload slowed down past the
//! tolerance:
//!
//! ```text
//! cargo run --release -p bvc-bench --bin perf-compare -- \
//!     --baseline BENCH_gamma.json --fresh BENCH_gamma.fresh.json \
//!     [--tolerance 2.0] [--min-mean-us 500]
//! ```
//!
//! A per-workload delta table goes to stdout either way; when the
//! `GITHUB_STEP_SUMMARY` environment variable names a writable file (as it
//! does inside a GitHub Actions job), the same table is appended there as
//! GitHub-flavoured markdown so the deltas are readable from the run's
//! summary page without opening the job log.  Workloads whose
//! fresh mean is below `--min-mean-us` are reported but never gate: at the
//! sub-millisecond scale the matrix's micro rows measure scheduler noise as much
//! as the engine, and cross-machine variance would make a ratio gate flaky.
//! A slow regression *into* the measurable range still gates, because the
//! ratio is checked whenever the fresh mean clears the floor.
//!
//! Exit codes: 0 — no regression; 1 — at least one workload regressed past
//! the tolerance; 2 — a document could not be read or parsed.

use bvc_scenario::json::Json;
use std::process::ExitCode;

/// One parsed workload row of a `bvc-perf-snapshot/v1` document.
#[derive(Debug, Clone)]
struct Workload {
    kind: String,
    n: u64,
    f: u64,
    d: u64,
    detail: String,
    mean_us: f64,
    /// Fast-path hit rate in percent, for rows that publish one.  Unlike
    /// `mean_us` this is a *logical* measurement (which engine path served
    /// the queries), so it gates regardless of the `--min-mean-us` floor:
    /// a path-selection regression is real even when the row is fast.
    fast_path_pct: Option<f64>,
}

impl Workload {
    /// Pairing identity: shape plus the stable prefix of `detail`.  The
    /// `", rounds=…"` suffix of macro rows and the `"found=N/M"` detail of
    /// `gamma_point` rows are measured outcomes, not part of the workload's
    /// identity — keying on either would orphan both rows of a pair (one
    /// "new", one "removed-gated" ⇒ spurious gate failure) whenever a
    /// numerically benign change shifts the round count or flips a
    /// borderline Lemma-1 sliver.
    fn key(&self) -> (String, u64, u64, u64, String) {
        let stable = self.detail.split(", rounds=").next().unwrap_or("");
        let detail_key = if stable.starts_with("found=") {
            String::new()
        } else {
            stable.to_string()
        };
        (self.kind.clone(), self.n, self.f, self.d, detail_key)
    }

    fn label(&self) -> String {
        let mut label = format!("{} n={} f={} d={}", self.kind, self.n, self.f, self.d);
        if !self.detail.is_empty() {
            label.push_str(&format!(" [{}]", self.detail));
        }
        label
    }
}

fn parse_snapshot(path: &str) -> Result<Vec<Workload>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("`{path}`: {e}"))?;
    let Some(workloads) = json.get("workloads").and_then(Json::as_array) else {
        return Err(format!("`{path}`: missing `workloads` array"));
    };
    let as_u64 =
        |entry: &Json, key: &str| -> u64 { entry.get(key).and_then(Json::as_u64).unwrap_or(0) };
    let as_f64 =
        |entry: &Json, key: &str| -> f64 { entry.get(key).and_then(Json::as_f64).unwrap_or(0.0) };
    let mut rows = Vec::with_capacity(workloads.len());
    for entry in workloads {
        let Some(kind) = entry.get("kind").and_then(Json::as_str) else {
            return Err(format!("`{path}`: workload without a `kind`"));
        };
        rows.push(Workload {
            kind: kind.to_string(),
            n: as_u64(entry, "n"),
            f: as_u64(entry, "f"),
            d: as_u64(entry, "d"),
            detail: entry
                .get("detail")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            mean_us: as_f64(entry, "mean_us"),
            fast_path_pct: entry.get("fast_path_pct").and_then(Json::as_f64),
        });
    }
    Ok(rows)
}

/// Appends the delta table as GitHub-flavoured markdown to the file named by
/// `GITHUB_STEP_SUMMARY`, when set.  Best-effort: a summary write failure
/// must never change the gate's verdict, so errors only warn on stderr.
fn write_step_summary(baseline_path: &str, tolerance: f64, min_mean_us: f64, rows: &[String]) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut doc = format!(
        "### Perf gate: `{baseline_path}` ({tolerance:.1}x tolerance, \
         {min_mean_us:.0} µs floor)\n\n\
         | workload | base µs | fresh µs | ratio | fast-path % | status |\n\
         | --- | ---: | ---: | ---: | ---: | --- |\n"
    );
    for row in rows {
        doc.push_str(row);
        doc.push('\n');
    }
    doc.push('\n');
    use std::io::Write;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| file.write_all(doc.as_bytes()));
    if let Err(e) = appended {
        eprintln!("perf-compare: cannot append step summary to `{path}`: {e}");
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: perf-compare --baseline <committed.json> --fresh <new.json> \
         [--tolerance <ratio>] [--min-mean-us <us>] [--max-fastpath-drop <points>]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut baseline_path: Option<String> = None;
    let mut fresh_path: Option<String> = None;
    let mut tolerance = 2.0f64;
    let mut min_mean_us = 500.0f64;
    let mut max_fastpath_drop = 10.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = Some(args.next().unwrap_or_else(|| usage())),
            "--fresh" => fresh_path = Some(args.next().unwrap_or_else(|| usage())),
            "--tolerance" => {
                let value = args.next().unwrap_or_else(|| usage());
                match value.parse::<f64>() {
                    Ok(t) if t > 1.0 && t.is_finite() => tolerance = t,
                    _ => {
                        eprintln!("perf-compare: --tolerance must be a finite ratio > 1");
                        return ExitCode::from(2);
                    }
                }
            }
            "--min-mean-us" => {
                let value = args.next().unwrap_or_else(|| usage());
                match value.parse::<f64>() {
                    Ok(m) if m >= 0.0 && m.is_finite() => min_mean_us = m,
                    _ => {
                        eprintln!("perf-compare: --min-mean-us must be a finite number >= 0");
                        return ExitCode::from(2);
                    }
                }
            }
            "--max-fastpath-drop" => {
                let value = args.next().unwrap_or_else(|| usage());
                match value.parse::<f64>() {
                    Ok(p) if p >= 0.0 && p.is_finite() => max_fastpath_drop = p,
                    _ => {
                        eprintln!("perf-compare: --max-fastpath-drop must be a finite number >= 0");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("perf-compare: unknown argument `{other}`");
                usage();
            }
        }
    }
    let (Some(baseline_path), Some(fresh_path)) = (baseline_path, fresh_path) else {
        usage()
    };

    let baseline = match parse_snapshot(&baseline_path) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("perf-compare: {e}");
            return ExitCode::from(2);
        }
    };
    let fresh = match parse_snapshot(&fresh_path) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("perf-compare: {e}");
            return ExitCode::from(2);
        }
    };

    // Pair fresh rows with baseline rows by (kind, n, f, d), first unmatched
    // occurrence first — the matrix is a fixed ordered list, and repeated
    // shapes (the two ε variants of the restricted-sync macro) pair in order.
    let mut used = vec![false; baseline.len()];
    let mut regressions = 0usize;
    let mut summary = Vec::new();
    println!(
        "{:<58} {:>12} {:>12} {:>8} {:>14}  status",
        "workload", "base µs", "fresh µs", "ratio", "fast-path %"
    );
    let fastpath_cell = |base: Option<f64>, fresh: Option<f64>| match (base, fresh) {
        (Some(b), Some(f)) => format!("{b:.0} → {f:.0}"),
        (None, Some(f)) => format!("— → {f:.0}"),
        (Some(b), None) => format!("{b:.0} → —"),
        (None, None) => "—".to_string(),
    };
    for row in &fresh {
        let matched = baseline
            .iter()
            .enumerate()
            .find(|(i, b)| !used[*i] && b.key() == row.key());
        let Some((index, base)) = matched else {
            println!(
                "{:<58} {:>12} {:>12.1} {:>8} {:>14}  new (no baseline)",
                row.label(),
                "—",
                row.mean_us,
                "—",
                fastpath_cell(None, row.fast_path_pct)
            );
            summary.push(format!(
                "| {} | — | {:.1} | — | {} | new (no baseline) |",
                row.label(),
                row.mean_us,
                fastpath_cell(None, row.fast_path_pct)
            ));
            continue;
        };
        used[index] = true;
        let ratio = if base.mean_us > 0.0 {
            row.mean_us / base.mean_us
        } else if row.mean_us > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        let gated = row.mean_us >= min_mean_us;
        let slow = gated && ratio > tolerance;
        // The fast-path gate is independent of the latency floor: losing a
        // fast path is a logical regression even on a fast row.  A baseline
        // without the column (pre-column snapshots) never gates.
        let path_drop = match (base.fast_path_pct, row.fast_path_pct) {
            (Some(b), Some(f)) => f < b - max_fastpath_drop,
            (Some(_), None) => true,
            _ => false,
        };
        let status = if slow {
            regressions += 1;
            format!("SLOW (> {tolerance:.1}x)")
        } else if path_drop {
            regressions += 1;
            format!("FAST-PATH DROP (> {max_fastpath_drop:.0} pts)")
        } else if !gated {
            format!("ok (below {min_mean_us:.0} µs floor)")
        } else {
            "ok".to_string()
        };
        println!(
            "{:<58} {:>12.1} {:>12.1} {:>7.2}x {:>14}  {status}",
            row.label(),
            base.mean_us,
            row.mean_us,
            ratio,
            fastpath_cell(base.fast_path_pct, row.fast_path_pct)
        );
        summary.push(format!(
            "| {} | {:.1} | {:.1} | {ratio:.2}x | {} | {status} |",
            row.label(),
            base.mean_us,
            row.mean_us,
            fastpath_cell(base.fast_path_pct, row.fast_path_pct)
        ));
    }
    // A gated-magnitude workload that vanished from the matrix fails the
    // gate: deleting the slow row must not be a way to pass it.  (Sub-floor
    // rows may come and go freely.)
    let mut removed_gated = 0usize;
    for (i, base) in baseline.iter().enumerate() {
        if !used[i] {
            let gated = base.mean_us >= min_mean_us;
            removed_gated += usize::from(gated);
            let status = if gated {
                "REMOVED (gated workload missing)"
            } else {
                "removed from matrix"
            };
            println!(
                "{:<58} {:>12.1} {:>12} {:>8}  {status}",
                base.label(),
                base.mean_us,
                "—",
                "—"
            );
            summary.push(format!(
                "| {} | {:.1} | — | — | — | {status} |",
                base.label(),
                base.mean_us
            ));
        }
    }

    write_step_summary(&baseline_path, tolerance, min_mean_us, &summary);

    if regressions > 0 || removed_gated > 0 {
        eprintln!(
            "perf-compare: {regressions} workload(s) regressed (past the \
             {tolerance:.1}x latency tolerance or the {max_fastpath_drop:.0}-point \
             fast-path drop) and {removed_gated} gated workload(s) missing \
             from the fresh matrix (floor {min_mean_us:.0} µs)"
        );
        ExitCode::from(1)
    } else {
        eprintln!("perf-compare: no regression past {tolerance:.1}x");
        ExitCode::SUCCESS
    }
}
