//! Driver for the restricted-round asynchronous algorithm (Section 4,
//! Theorem 6).

use super::{make_forge, BvcSession, DriverOutcome, ProtocolDriver};
use crate::restricted::{ByzantineRestrictedAsync, RestrictedAsyncProcess, StateMsg};
use bvc_geometry::Point;
use bvc_net::{AsyncNetwork, AsyncProcess};

pub(super) struct RestrictedAsyncDriver;

impl ProtocolDriver for RestrictedAsyncDriver {
    fn execute(&self, session: &BvcSession) -> DriverOutcome {
        let config = session.params();
        let rc = session.config();
        // Partial sharing: asynchronous B_i[t] sets overlap without being
        // identical, so the run's cache still deduplicates most solves.
        let gamma_cache = session.gamma_cache().clone();
        let mut processes: Vec<Box<dyn AsyncProcess<Msg = StateMsg, Output = Point>>> = Vec::new();
        for (i, input) in rc.honest_inputs.iter().enumerate() {
            processes.push(Box::new(
                RestrictedAsyncProcess::new(config.clone(), i, input.clone())
                    .with_gamma_cache(gamma_cache.clone()),
            ));
        }
        for b in 0..config.f {
            let me = config.honest_count() + b;
            let forge = make_forge(rc.adversary, config, rc.seed, b);
            processes.push(Box::new(ByzantineRestrictedAsync::new(
                config.clone(),
                me,
                forge,
            )));
        }
        let honest = session.honest_indices();
        let outcome =
            AsyncNetwork::new(processes, rc.delivery_policy.clone(), rc.seed, rc.max_steps)
                .with_topology(session.topology().as_ref().clone())
                .with_faults(rc.faults.clone())
                .run(&honest);
        let decisions = session.honest_decisions(&outcome.outputs);
        let terminated = decisions.len() == honest.len() && outcome.completed;
        DriverOutcome {
            decisions,
            terminated,
            tolerance: config.epsilon,
            rounds: outcome.stats.steps,
            stats: outcome.stats,
            round_budget: None,
            outputs: Vec::new(),
            sufficiency: None,
        }
    }
}
