//! Criterion bench: finding a point of `Γ(S)` (the Section 2.2 LP) as a
//! function of `n`, `f` and `d` — the computational heart of both the exact
//! decision step and the approximate update rule (experiment E7 reports the
//! corresponding LP sizes).

use bvc_geometry::{gamma_point, PointMultiset, WorkloadGenerator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn multiset(n: usize, d: usize, seed: u64) -> PointMultiset {
    WorkloadGenerator::new(seed).box_points(n, d, 0.0, 1.0)
}

fn bench_gamma_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("gamma_point");
    group.sample_size(20);
    // f = 1 sweep over n and d.
    for &(n, d) in &[(4usize, 1usize), (5, 2), (6, 3), (8, 2)] {
        let s = multiset(n, d, 7);
        group.bench_with_input(BenchmarkId::new("f1", format!("n{n}_d{d}")), &s, |b, s| {
            b.iter(|| {
                let p = gamma_point(s, 1);
                assert!(p.is_some());
            })
        });
    }
    // f = 2: the C(n, n−2) growth the paper warns about.
    for &(n, d) in &[(7usize, 2usize), (8, 2)] {
        let s = multiset(n, d, 9);
        group.bench_with_input(BenchmarkId::new("f2", format!("n{n}_d{d}")), &s, |b, s| {
            b.iter(|| {
                let p = gamma_point(s, 2);
                assert!(p.is_some());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gamma_point);
criterion_main!(benches);
