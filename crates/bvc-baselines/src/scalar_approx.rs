//! Baseline: iterative scalar approximate agreement (Dolev et al. style).
//!
//! The classical iterative algorithm for approximate Byzantine agreement on
//! **scalars** in a synchronous complete graph (Dolev, Lynch, Pinter, Stark,
//! Weihl 1986): in every round each process broadcasts its value, discards the
//! `f` lowest and `f` highest values it received, and moves to the average of
//! what remains.  The paper's Section 4 restricted-round algorithms generalise
//! exactly this structure to vectors; the experiments use this baseline to
//! compare per-round contraction against the vector algorithms on
//! 1-dimensional inputs.

use bvc_geometry::Point;
use bvc_net::{broadcast_to_all, Delivery, Outgoing, ProcessId, SyncProcess};

/// Message of the scalar iterative baseline: the sender's current value.
pub type ScalarMsg = f64;

/// Honest process of the iterative scalar algorithm.
pub struct IterativeScalarProcess {
    n: usize,
    f: usize,
    me: usize,
    value: f64,
    rounds: usize,
    history: Vec<f64>,
    decision: Option<f64>,
}

impl IterativeScalarProcess {
    /// Creates the process with index `me`, initial value `value`, running
    /// for `rounds` exchange rounds.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3f` (the classical requirement for trimming to be
    /// safe) and `me < n` and `rounds > 0`.
    pub fn new(n: usize, f: usize, me: usize, value: f64, rounds: usize) -> Self {
        assert!(n > 3 * f, "iterative scalar agreement requires n > 3f");
        assert!(me < n, "process index {me} out of range");
        assert!(rounds > 0, "need at least one round");
        Self {
            n,
            f,
            me,
            value,
            rounds,
            history: vec![value],
            decision: None,
        }
    }

    /// Per-round values (`history()[t]` is the value after round `t`).
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    fn update(&mut self, inbox: &[Delivery<f64>]) {
        let mut values: Vec<f64> = inbox.iter().map(|d| d.msg).collect();
        values.push(self.value);
        values.sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
        // Trim f from each side; average the rest.
        if values.len() > 2 * self.f {
            let kept = &values[self.f..values.len() - self.f];
            self.value = kept.iter().sum::<f64>() / kept.len() as f64;
        }
        self.history.push(self.value);
    }
}

impl SyncProcess for IterativeScalarProcess {
    type Msg = f64;
    type Output = Point;

    fn round(&mut self, round: usize, inbox: &[Delivery<f64>]) -> Vec<Outgoing<f64>> {
        if round >= 2 && round <= self.rounds + 1 {
            self.update(inbox);
            if round == self.rounds + 1 {
                self.decision = Some(self.value);
            }
        }
        if round <= self.rounds {
            broadcast_to_all(self.n, Some(ProcessId::new(self.me)), &self.value)
        } else {
            Vec::new()
        }
    }

    fn output(&self) -> Option<Point> {
        self.decision.map(|v| Point::new(vec![v]))
    }
}

/// A Byzantine participant that always reports the given extreme value
/// (pushing the honest average towards it).
pub struct ExtremeScalarProcess {
    n: usize,
    me: usize,
    report: f64,
    rounds: usize,
}

impl ExtremeScalarProcess {
    /// Creates the adversary reporting `report` for `rounds` rounds.
    pub fn new(n: usize, me: usize, report: f64, rounds: usize) -> Self {
        Self {
            n,
            me,
            report,
            rounds,
        }
    }
}

impl SyncProcess for ExtremeScalarProcess {
    type Msg = f64;
    type Output = Point;

    fn round(&mut self, round: usize, _inbox: &[Delivery<f64>]) -> Vec<Outgoing<f64>> {
        if round <= self.rounds {
            broadcast_to_all(self.n, Some(ProcessId::new(self.me)), &self.report)
        } else {
            Vec::new()
        }
    }

    fn output(&self) -> Option<Point> {
        None
    }
}

/// Runs the iterative scalar baseline with the last `f` processes reporting
/// the extreme value `attack_value`, and returns the honest decisions.
pub fn run_iterative_scalar(
    n: usize,
    f: usize,
    honest_values: &[f64],
    attack_value: f64,
    rounds: usize,
) -> Vec<f64> {
    assert_eq!(honest_values.len(), n - f, "need n − f honest values");
    use bvc_net::SyncNetwork;
    let mut processes: Vec<Box<dyn SyncProcess<Msg = f64, Output = Point>>> = Vec::new();
    for (i, &v) in honest_values.iter().enumerate() {
        processes.push(Box::new(IterativeScalarProcess::new(n, f, i, v, rounds)));
    }
    for b in 0..f {
        processes.push(Box::new(ExtremeScalarProcess::new(
            n,
            n - f + b,
            attack_value,
            rounds,
        )));
    }
    let honest: Vec<usize> = (0..n - f).collect();
    let outcome = SyncNetwork::new(processes, rounds + 2).run(&honest);
    honest
        .iter()
        .map(|&i| {
            outcome.outputs[i]
                .as_ref()
                .expect("honest decision")
                .coord(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_only_execution_converges_to_agreement() {
        let decisions = run_iterative_scalar(4, 1, &[0.0, 0.5, 1.0], 0.5, 20);
        let spread = decisions.iter().cloned().fold(f64::MIN, f64::max)
            - decisions.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 1e-3, "spread {spread} too large after 20 rounds");
    }

    #[test]
    fn decisions_stay_within_the_honest_range_despite_extreme_attack() {
        let decisions = run_iterative_scalar(4, 1, &[0.2, 0.4, 0.6], 1_000.0, 15);
        for d in &decisions {
            assert!(
                (0.2 - 1e-9..=0.6 + 1e-9).contains(d),
                "decision {d} escaped the honest range"
            );
        }
    }

    #[test]
    fn spread_contracts_every_round() {
        // Drive three honest processes directly and check monotone contraction
        // of the spread of their histories.
        let decisions = run_iterative_scalar(5, 1, &[0.0, 0.25, 0.75, 1.0], 0.0, 10);
        let spread = decisions.iter().cloned().fold(f64::MIN, f64::max)
            - decisions.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.5, "after 10 rounds the spread must have shrunk");
    }

    #[test]
    #[should_panic(expected = "n > 3f")]
    fn too_few_processes_panics() {
        let _ = IterativeScalarProcess::new(3, 1, 0, 0.0, 5);
    }

    #[test]
    fn history_is_recorded() {
        let mut p = IterativeScalarProcess::new(4, 1, 0, 0.5, 3);
        for round in 1..=4 {
            let _ = p.round(round, &[]);
        }
        assert_eq!(p.history().len(), 4);
        assert!(p.output().is_some());
    }
}
