//! E9 — Figure 1: a Tverberg partition of 7 points in the plane (f = 2).
//!
//! The paper's only figure illustrates Tverberg's theorem on the vertices of
//! a regular heptagon: `n = 7 = (d+1)f + 1` points with `d = 2, f = 2` admit
//! a partition into `f + 1 = 3` parts whose convex hulls share a point.  This
//! experiment recomputes such a partition, verifies the common point lies in
//! every part hull and in `Γ(Y)`, and prints the partition.

use bvc_bench::{experiment_header, mark, Table};
use bvc_geometry::{
    common_point_of_partition, find_tverberg_partition, tverberg_threshold, ConvexHull, Point,
    PointMultiset, SafeArea,
};

fn heptagon() -> PointMultiset {
    PointMultiset::new(
        (0..7)
            .map(|k| {
                let theta = 2.0 * std::f64::consts::PI * k as f64 / 7.0;
                Point::new(vec![theta.cos(), theta.sin()])
            })
            .collect(),
    )
}

fn main() {
    experiment_header(
        "E9: Figure 1 — Tverberg partition of a regular heptagon",
        "7 points in R^2 with f = 2 admit a partition into 3 parts whose hulls intersect; \
         every Tverberg point lies in Γ(Y) (Lemma 1)",
    );

    let d = 2;
    let f = 2;
    let y = heptagon();
    assert_eq!(y.len(), tverberg_threshold(d, f));

    let partition = find_tverberg_partition(&y, f + 1).expect("Tverberg's theorem");
    println!("heptagon vertices (indexed 0..6):");
    for (i, p) in y.iter().enumerate() {
        println!("  v{i} = {p}");
    }
    println!();
    println!("Tverberg partition found (canonical search order):");
    for (k, part) in partition.parts.iter().enumerate() {
        println!("  part {}: {:?}", k + 1, part);
    }
    println!("common point: {}", partition.point);
    println!();

    let parts = y.partition(&partition.parts);
    let mut table = Table::new(&["check", "holds"]);
    for (k, part) in parts.iter().enumerate() {
        let hull = ConvexHull::new(part.clone());
        table.row(&[
            format!("common point in hull of part {}", k + 1),
            mark(hull.contains(&partition.point)),
        ]);
    }
    let gamma = SafeArea::new(y.clone(), f);
    table.row(&[
        "common point in Γ(Y) with f = 2 (Lemma 1)".to_string(),
        mark(gamma.contains(&partition.point)),
    ]);
    table.row(&[
        "verification via common_point_of_partition".to_string(),
        mark(common_point_of_partition(&y, &partition.parts).is_some()),
    ]);
    table.print();
    println!();
    println!(
        "The partition matches the structure of Figure 1 (one triangle-like part and two \
         smaller parts whose hulls all contain the common point)."
    );
}
