//! Integration tests: the algorithms deliver their guarantees exactly at the
//! paper's resilience bounds, across dimensions, fault counts and adversary
//! strategies — and the session refuses to run below the bounds.

use bvc::adversary::ByzantineStrategy;
use bvc::core::{BvcError, BvcSession, ProtocolKind, RunConfig, RunReport, Setting, UpdateRule};
use bvc::geometry::{Point, WorkloadGenerator};

fn honest_inputs(seed: u64, count: usize, d: usize) -> Vec<Point> {
    WorkloadGenerator::new(seed)
        .box_points(count, d, 0.0, 1.0)
        .into_points()
}

fn run(kind: ProtocolKind, config: RunConfig) -> RunReport {
    BvcSession::new(kind, config)
        .expect("parameters satisfy the bound")
        .run()
}

#[test]
fn exact_bvc_at_the_tight_bound_for_several_dimensions() {
    // For each (d, f), run with exactly n = max(3f+1, (d+1)f+1) processes.
    for &(d, f) in &[(1usize, 1usize), (2, 1), (3, 1), (2, 2)] {
        let n = Setting::ExactSync.min_processes(d, f);
        for (s, strategy) in ByzantineStrategy::active_attacks().into_iter().enumerate() {
            let inputs = honest_inputs(100 + s as u64, n - f, d);
            let report = run(
                ProtocolKind::Exact,
                RunConfig::new(n, f, d)
                    .honest_inputs(inputs)
                    .adversary(strategy)
                    .seed(7 + s as u64),
            );
            assert!(
                report.verdict().all_hold(),
                "d={d} f={f} n={n} strategy={strategy:?}: verdict {:?}",
                report.verdict()
            );
        }
    }
}

#[test]
fn exact_bvc_refuses_to_run_below_the_bound() {
    // d = 3, f = 1 needs n >= 5; n = 4 must be rejected.
    let err = BvcSession::new(
        ProtocolKind::Exact,
        RunConfig::new(4, 1, 3).honest_inputs(honest_inputs(1, 3, 3)),
    )
    .expect_err("below the bound");
    match err {
        BvcError::InsufficientProcesses {
            required, actual, ..
        } => {
            assert_eq!(required, 5);
            assert_eq!(actual, 4);
        }
        other => panic!("unexpected error: {other:?}"),
    }
}

#[test]
fn approximate_bvc_at_the_tight_bound() {
    // n = (d+2)f+1 for d ∈ {1, 2}, f = 1.
    for &d in &[1usize, 2usize] {
        let f = 1;
        let n = Setting::ApproxAsync.min_processes(d, f);
        let inputs = honest_inputs(200 + d as u64, n - f, d);
        let report = run(
            ProtocolKind::Approx,
            RunConfig::new(n, f, d)
                .honest_inputs(inputs)
                .adversary(ByzantineStrategy::AntiConvergence)
                .epsilon(0.1)
                .update_rule(UpdateRule::WitnessOptimized)
                .seed(11),
        );
        assert!(
            report.verdict().all_hold(),
            "d={d} n={n}: verdict {:?}",
            report.verdict()
        );
        assert!(report.verdict().max_pairwise_distance <= 0.1);
    }
}

#[test]
fn approximate_bvc_refuses_to_run_below_the_bound() {
    // d = 2, f = 1 needs n >= 5.
    let err = BvcSession::new(
        ProtocolKind::Approx,
        RunConfig::new(4, 1, 2).honest_inputs(honest_inputs(3, 3, 2)),
    )
    .expect_err("below the bound");
    assert!(matches!(
        err,
        BvcError::InsufficientProcesses {
            required: 5,
            actual: 4,
            ..
        }
    ));
}

#[test]
fn approximate_bvc_full_rule_matches_witness_rule_guarantees() {
    let n = 4;
    let d = 1;
    let inputs = honest_inputs(42, n - 1, d);
    for rule in [UpdateRule::FullSubsets, UpdateRule::WitnessOptimized] {
        let report = run(
            ProtocolKind::Approx,
            RunConfig::new(n, 1, d)
                .honest_inputs(inputs.clone())
                .adversary(ByzantineStrategy::Equivocate)
                .epsilon(0.05)
                .update_rule(rule)
                .seed(5),
        );
        assert!(
            report.verdict().all_hold(),
            "rule {rule:?}: {:?}",
            report.verdict()
        );
    }
}

#[test]
fn restricted_sync_at_its_bound_and_rejected_below() {
    // d = 2, f = 1: restricted synchronous needs n >= 5 (one more than exact).
    let n = Setting::RestrictedSync.min_processes(2, 1);
    assert_eq!(n, 5);
    let report = run(
        ProtocolKind::RestrictedSync,
        RunConfig::new(n, 1, 2)
            .honest_inputs(honest_inputs(55, n - 1, 2))
            .adversary(ByzantineStrategy::FixedOutlier)
            .epsilon(0.1)
            .seed(3),
    );
    assert!(
        report.verdict().all_hold(),
        "verdict: {:?}",
        report.verdict()
    );

    let err = BvcSession::new(
        ProtocolKind::RestrictedSync,
        RunConfig::new(4, 1, 2).honest_inputs(honest_inputs(56, 3, 2)),
    )
    .expect_err("below the bound");
    assert!(matches!(
        err,
        BvcError::InsufficientProcesses { required: 5, .. }
    ));
}

#[test]
fn restricted_async_at_its_bound_and_rejected_below() {
    // d = 1, f = 1: restricted asynchronous needs n >= 6 (2f more than the
    // AAD-based algorithm).
    let n = Setting::RestrictedAsync.min_processes(1, 1);
    assert_eq!(n, 6);
    let report = run(
        ProtocolKind::RestrictedAsync,
        RunConfig::new(n, 1, 1)
            .honest_inputs(honest_inputs(77, n - 1, 1))
            .adversary(ByzantineStrategy::AntiConvergence)
            .epsilon(0.1)
            .seed(21),
    );
    assert!(
        report.verdict().all_hold(),
        "verdict: {:?}",
        report.verdict()
    );

    let err = BvcSession::new(
        ProtocolKind::RestrictedAsync,
        RunConfig::new(5, 1, 1).honest_inputs(honest_inputs(78, 4, 1)),
    )
    .expect_err("below the bound");
    assert!(matches!(
        err,
        BvcError::InsufficientProcesses { required: 6, .. }
    ));
}

#[test]
fn crash_and_silent_adversaries_never_block_termination() {
    for strategy in [ByzantineStrategy::Crash(1), ByzantineStrategy::Silent] {
        let report = run(
            ProtocolKind::Exact,
            RunConfig::new(5, 1, 2)
                .honest_inputs(honest_inputs(91, 4, 2))
                .adversary(strategy)
                .seed(9),
        );
        assert!(
            report.verdict().termination,
            "{strategy:?} blocked termination"
        );
        assert!(report.verdict().all_hold());

        let report = run(
            ProtocolKind::Approx,
            RunConfig::new(5, 1, 2)
                .honest_inputs(honest_inputs(92, 4, 2))
                .adversary(strategy)
                .epsilon(0.1)
                .seed(9),
        );
        assert!(
            report.verdict().termination,
            "{strategy:?} blocked async termination"
        );
        assert!(report.verdict().all_hold());
    }
}

#[test]
fn larger_systems_with_two_faults() {
    // d = 2, f = 2: exact needs n >= 7.
    let inputs = honest_inputs(123, 5, 2);
    let report = run(
        ProtocolKind::Exact,
        RunConfig::new(7, 2, 2)
            .honest_inputs(inputs)
            .adversary(ByzantineStrategy::Equivocate)
            .seed(17),
    );
    assert!(
        report.verdict().all_hold(),
        "verdict: {:?}",
        report.verdict()
    );
}

#[test]
fn decision_is_deterministic_for_a_fixed_seed() {
    let inputs = honest_inputs(5, 4, 2);
    let config = RunConfig::new(5, 1, 2)
        .honest_inputs(inputs)
        .adversary(ByzantineStrategy::RandomNoise)
        .seed(1234);
    let run1 = run(ProtocolKind::Exact, config.clone());
    let run2 = run(ProtocolKind::Exact, config);
    for (a, b) in run1.decisions().iter().zip(run2.decisions()) {
        assert!(a.approx_eq(b, 1e-12));
    }
}
