//! Pins of the bvc-trace determinism contract at the scenario/service level:
//!
//! 1. the verdict stream of a traced run is **byte-identical** to an
//!    untraced one (tracing is observationally transparent);
//! 2. the trace itself is **byte-deterministic**: same scenario + seed ⇒
//!    identical `bvc-trace/v1` document, and for service streams the same
//!    holds across worker counts (per-instance slots + per-slot sequence
//!    numbers canonicalise scheduling);
//! 3. event-stream invariants: every `round_open` is closed, `delivered`
//!    never exceeds `sent`, and every engine-computed Γ query is path-
//!    attributed;
//! 4. the Γ totals recorded in `ExecutionStats` / `ServiceStats` equal the
//!    per-path call counts in the trace — the contract `trace-report`'s
//!    hot-path breakdown relies on.

use bvc_core::{InstanceOverrides, ProtocolKind, RunConfig};
use bvc_geometry::Point;
use bvc_scenario::{run_scenario, ScenarioSpec};
use bvc_service::{BvcService, CacheMode, MemorySink, ServiceConfig};
use bvc_trace::{install, parse_flat, render_trace, JsonValue, TraceHandle};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Runs `f` under a fresh JSONL trace scope and returns (result, trace
/// lines in canonical order).
fn capture<T>(f: impl FnOnce() -> T) -> (T, Vec<String>) {
    let handle = TraceHandle::jsonl();
    let value = {
        let _scope = install(handle.clone(), 0);
        f()
    };
    (value, handle.finish())
}

fn spec_from(toml: &str) -> ScenarioSpec {
    ScenarioSpec::from_toml(toml).expect("inline spec parses")
}

/// A cheap restricted-sync shape for the determinism and invariant pins
/// (tens of rounds in a debug build).
fn small_spec() -> ScenarioSpec {
    spec_from(
        r#"
[scenario]
name = "trace-pin-small"
protocol = "restricted-sync"
n = 5
f = 1
d = 2
epsilon = 0.1

[inputs]
generator = "random-ball"
center = [0.5, 0.5]
radius = 0.4

[adversary]
strategy = "equivocate"
"#,
    )
}

/// The acceptance-criterion shape: restricted-sync, n = 9, f = 2, d = 2.
/// ε is kept loose so the single traced run stays affordable in a debug
/// build — the Γ-attribution contract under test is ε-independent.
fn acceptance_spec() -> ScenarioSpec {
    spec_from(
        r#"
[scenario]
name = "trace-pin-acceptance"
protocol = "restricted-sync"
n = 9
f = 2
d = 2
epsilon = 0.35

[inputs]
generator = "random-ball"
center = [0.5, 0.5]
radius = 0.4

[adversary]
strategy = "equivocate"
"#,
    )
}

/// A small restricted-sync service stream with repeated seeds (so the
/// shared parent cache sees cross-instance traffic in the trace).
fn stream(instances: usize) -> ServiceConfig {
    let template = RunConfig::new(5, 1, 2).epsilon(0.1);
    let overrides = (0..instances)
        .map(|i| {
            let seed = i as u64 % 4;
            InstanceOverrides {
                seed,
                honest_inputs: Some(
                    (0..4)
                        .map(|p| {
                            Point::new(vec![
                                (seed as f64 * 0.31 + p as f64 * 0.17) % 1.0,
                                (seed as f64 * 0.47 + p as f64 * 0.13) % 1.0,
                            ])
                        })
                        .collect(),
                ),
                ..InstanceOverrides::default()
            }
        })
        .collect();
    ServiceConfig::new(ProtocolKind::RestrictedSync, template)
        .instances(overrides)
        .label("trace-pin")
}

fn parsed(lines: &[String]) -> Vec<BTreeMap<String, JsonValue>> {
    lines
        .iter()
        .map(|line| parse_flat(line).expect("trace lines are flat JSON"))
        .collect()
}

fn str_field<'a>(map: &'a BTreeMap<String, JsonValue>, key: &str) -> &'a str {
    map.get(key).and_then(JsonValue::as_str).unwrap_or("")
}

#[test]
fn trace_is_byte_deterministic_and_transparent_for_the_pinned_scenario() {
    let spec = small_spec();
    let untraced = run_scenario(&spec, 11, spec.strategy, spec.policy.clone()).unwrap();
    let (first, lines_a) =
        capture(|| run_scenario(&spec, 11, spec.strategy, spec.policy.clone()).unwrap());
    let (_, lines_b) =
        capture(|| run_scenario(&spec, 11, spec.strategy, spec.policy.clone()).unwrap());
    assert_eq!(
        untraced.to_json(),
        first.to_json(),
        "tracing must not perturb the verdict stream"
    );
    assert_eq!(
        render_trace(&lines_a),
        render_trace(&lines_b),
        "same scenario + seed must yield a byte-identical trace"
    );
    assert!(!lines_a.is_empty());
}

#[test]
fn event_invariants_hold_on_a_sync_trace() {
    let spec = small_spec();
    let (outcome, lines) =
        capture(|| run_scenario(&spec, 3, spec.strategy, spec.policy.clone()).unwrap());
    let events = parsed(&lines);

    // Every round_open is closed (and vice versa), per slot.
    let mut opened: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut closed: BTreeSet<(u64, u64)> = BTreeSet::new();
    let (mut sent, mut delivered) = (0u64, 0u64);
    let mut gamma_total = 0u64;
    for map in &events {
        let slot = map.get("slot").and_then(JsonValue::as_uint).unwrap_or(0);
        match str_field(map, "ev") {
            "round_open" => {
                let round = map.get("round").and_then(JsonValue::as_uint).unwrap();
                opened.insert((slot, round));
            }
            "round_close" => {
                let round = map.get("round").and_then(JsonValue::as_uint).unwrap();
                closed.insert((slot, round));
            }
            "send" => sent += 1,
            "deliver" => delivered += 1,
            "gamma" => {
                gamma_total += 1;
                // Engine-computed point/membership queries are always
                // path-attributed; only relaxed decision-kind queries may
                // go unattributed.
                if str_field(map, "cache") == "miss" && str_field(map, "kind") != "decision" {
                    assert!(
                        map.get("path").and_then(JsonValue::as_str).is_some(),
                        "miss without path attribution: {map:?}"
                    );
                }
            }
            _ => {}
        }
    }
    assert_eq!(opened, closed, "every round_open must be closed");
    assert!(!opened.is_empty(), "sync runs open rounds");
    assert!(delivered <= sent, "delivered {delivered} > sent {sent}");
    assert_eq!(
        gamma_total, outcome.stats.gamma_queries,
        "trace Γ events must equal the ExecutionStats total"
    );
}

/// The acceptance pin: on the n = 9, f = 2, d = 2 restricted-sync trace the
/// per-path call counts (the rows of `trace-report`'s Γ hot-path breakdown)
/// sum to exactly the Γ query total recorded in `ExecutionStats`.
#[test]
fn gamma_breakdown_rows_sum_to_recorded_totals() {
    let spec = acceptance_spec();
    let (outcome, lines) =
        capture(|| run_scenario(&spec, 5, spec.strategy, spec.policy.clone()).unwrap());
    let mut rows: BTreeMap<String, u64> = BTreeMap::new();
    for map in parsed(&lines) {
        if str_field(&map, "ev") != "gamma" {
            continue;
        }
        let row = match str_field(&map, "cache") {
            "local" => "cache-local".to_string(),
            "parent" => "cache-parent".to_string(),
            _ => match map.get("path").and_then(JsonValue::as_str) {
                Some(path) => path.to_string(),
                None => "unattributed".to_string(),
            },
        };
        *rows.entry(row).or_default() += 1;
    }
    let sum: u64 = rows.values().sum();
    assert!(outcome.stats.gamma_queries > 0, "Γ work happened");
    assert_eq!(
        sum, outcome.stats.gamma_queries,
        "breakdown rows must partition the recorded Γ total: {rows:?}"
    );
}

fn run_service(
    workers: usize,
    mode: CacheMode,
) -> ((Vec<String>, bvc_service::ServiceStats), Vec<String>) {
    capture(|| {
        let mut sink = MemorySink::new();
        let stats = BvcService::new(stream(12).workers(workers).batch(4).cache_mode(mode))
            .expect("stream admits")
            .run(&mut sink)
            .expect("memory sink cannot fail");
        (sink.into_lines(), stats)
    })
}

/// With isolated per-instance caches the service trace is byte-identical
/// across worker counts: per-instance slots plus per-slot sequence numbers
/// canonicalise the physical interleaving.
#[test]
fn per_instance_service_trace_is_byte_identical_across_worker_counts() {
    let ((verdicts_1, stats_1), trace_1) = run_service(1, CacheMode::PerInstance);
    let ((verdicts_4, stats_4), trace_4) = run_service(4, CacheMode::PerInstance);
    assert_eq!(verdicts_1, verdicts_4);
    assert_eq!(
        render_trace(&trace_1),
        render_trace(&trace_4),
        "per-instance slots must canonicalise worker scheduling"
    );
    // Span accounting matches the stream, and the service-level Γ total
    // equals the trace's gamma event count.
    let events = parsed(&trace_1);
    let spans = events
        .iter()
        .filter(|m| str_field(m, "ev") == "span_close")
        .count();
    assert_eq!(spans, 12, "one span per instance");
    let gammas = events
        .iter()
        .filter(|m| str_field(m, "ev") == "gamma")
        .count() as u64;
    assert_eq!(gammas, stats_1.messages.gamma_queries);
    assert_eq!(
        stats_1.messages.gamma_queries,
        stats_4.messages.gamma_queries
    );
}

/// With a shared parent cache, *which* instance warms the parent first is a
/// worker-scheduling race, so two things in the trace legitimately depend
/// on the worker count: the attribution fields of gamma events (cache
/// level, path, probe flag), and the simplex events themselves — a query
/// that hits the shared cache under one schedule runs the LP (and emits
/// solve events) under another, which also shifts the `seq` numbers of
/// every later event on that slot.  Everything else is schedule-independent:
/// the verdict stream, the Γ query totals, and the per-slot event sequence
/// once simplex events are dropped, attribution is masked, and `seq` is
/// erased.
#[test]
fn shared_service_trace_is_schedule_independent_up_to_attribution() {
    let ((verdicts_1, stats_1), trace_1) = run_service(1, CacheMode::Shared);
    let ((verdicts_4, stats_4), trace_4) = run_service(4, CacheMode::Shared);
    assert_eq!(verdicts_1, verdicts_4);
    assert_eq!(
        stats_1.messages.gamma_queries,
        stats_4.messages.gamma_queries
    );

    let mask = |lines: &[String]| -> Vec<String> {
        parsed(lines)
            .into_iter()
            .filter(|map| str_field(map, "ev") != "simplex")
            .map(|mut map| {
                map.remove("seq");
                if str_field(&map, "ev") == "gamma" {
                    map.remove("cache");
                    map.remove("path");
                    map.remove("probe_missed");
                }
                format!("{map:?}")
            })
            .collect()
    };
    assert_eq!(
        mask(&trace_1),
        mask(&trace_4),
        "masking attribution and solver activity must restore cross-worker \
         determinism"
    );
}

proptest! {
    // Traced end-to-end runs are expensive; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tracing is observationally transparent for any seed: the verdict
    /// JSON of a traced run is byte-identical to the untraced one.
    #[test]
    fn traced_verdict_is_byte_identical_for_any_seed(seed in 0u64..500) {
        let spec = small_spec();
        let untraced = run_scenario(&spec, seed, spec.strategy, spec.policy.clone()).unwrap();
        let (traced, lines) =
            capture(|| run_scenario(&spec, seed, spec.strategy, spec.policy.clone()).unwrap());
        prop_assert_eq!(untraced.to_json(), traced.to_json());
        prop_assert!(!lines.is_empty());
    }
}
