//! `trace-report` — aggregate a `bvc-trace/v1` JSONL trace into tables.
//!
//! ```text
//! trace-report --in trace.jsonl            # full report to stdout
//! trace-report --in trace.jsonl --check    # schema validation only
//! ```
//!
//! The report prints, in order: per-round convergence (state spread vs.
//! round), per-process message timelines, the Γ hot-path breakdown (which
//! fast path served what fraction of queries, per protocol × shape), the
//! simplex solve profile, and per-instance span summaries.  Exit code 0 on
//! success, 1 on a schema violation, 2 on usage or I/O errors.

use bvc_trace::json::{check_trace, parse_flat, JsonValue};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: trace-report --in <trace.jsonl> [--check]");
    std::process::exit(2);
}

/// Upper bound on the rows of the per-round tables (long asynchronous
/// traces are decimated / bucketed down to this).
const MAX_ROWS: usize = 64;

fn field_u(map: &BTreeMap<String, JsonValue>, key: &str) -> u64 {
    map.get(key).and_then(JsonValue::as_uint).unwrap_or(0)
}

fn field_s<'a>(map: &'a BTreeMap<String, JsonValue>, key: &str) -> &'a str {
    map.get(key).and_then(JsonValue::as_str).unwrap_or("")
}

fn field_b(map: &BTreeMap<String, JsonValue>, key: &str) -> bool {
    map.get(key).and_then(JsonValue::as_bool).unwrap_or(false)
}

/// Per-(protocol × shape) Γ attribution tallies.
#[derive(Default)]
struct GammaGroup {
    /// cache level name → count (local / parent), plus per-path counts for
    /// misses; the sum over all rows equals the total queries of the group.
    rows: BTreeMap<String, u64>,
    total: u64,
    probe_misses: u64,
}

#[derive(Default)]
struct MessageTotals {
    sent: u64,
    delivered: u64,
    dropped: u64,
    vanished: u64,
}

#[derive(Default)]
struct Report {
    events: usize,
    /// round → (spread values in file order).
    convergence: Vec<(u64, Option<f64>)>,
    per_process: BTreeMap<u64, MessageTotals>,
    per_round_msgs: BTreeMap<u64, MessageTotals>,
    gamma: BTreeMap<String, GammaGroup>,
    simplex_solves: u64,
    simplex_pivots: u64,
    simplex_reused: u64,
    simplex_by_class: BTreeMap<u64, u64>,
    local_broadcasts: u64,
    local_broadcast_slots: u64,
    spans: Vec<(u64, String, bool, bool, Option<u64>)>,
    open_spans: BTreeMap<u64, String>,
    admissions: Vec<(bool, String)>,
    validity_failures: u64,
    validity_checks: u64,
}

impl Report {
    fn ingest(&mut self, map: &BTreeMap<String, JsonValue>, context: &mut String) {
        self.events += 1;
        match field_s(map, "ev") {
            "run_open" => {
                *context = format!(
                    "{} n={} f={} d={}",
                    field_s(map, "protocol"),
                    field_u(map, "n"),
                    field_u(map, "f"),
                    field_u(map, "d")
                );
            }
            "round_close" => {
                let spread = map.get("spread").and_then(JsonValue::as_num);
                self.convergence.push((field_u(map, "round"), spread));
            }
            "send" | "deliver" | "drop" | "vanish" => {
                let ev = field_s(map, "ev").to_string();
                let process = if ev == "deliver" {
                    field_u(map, "to")
                } else {
                    field_u(map, "from")
                };
                let time = field_u(map, "time");
                for totals in [
                    self.per_process.entry(process).or_default(),
                    self.per_round_msgs.entry(time).or_default(),
                ] {
                    match ev.as_str() {
                        "send" => totals.sent += 1,
                        "deliver" => totals.delivered += 1,
                        "drop" => totals.dropped += 1,
                        _ => totals.vanished += 1,
                    }
                }
            }
            "local_broadcast" => {
                self.local_broadcasts += 1;
                self.local_broadcast_slots += field_u(map, "slots");
            }
            "gamma" => {
                let group = self.gamma.entry(context.clone()).or_default();
                group.total += 1;
                if field_b(map, "probe_missed") {
                    group.probe_misses += 1;
                }
                let cache = field_s(map, "cache");
                let row = match cache {
                    "local" => "cache-local".to_string(),
                    "parent" => "cache-parent".to_string(),
                    _ => field_s(map, "path").to_string(),
                };
                let row = if row.is_empty() {
                    "unattributed".to_string()
                } else {
                    row
                };
                *group.rows.entry(row).or_default() += 1;
            }
            "simplex" => {
                self.simplex_solves += 1;
                self.simplex_pivots += field_u(map, "pivots");
                if field_b(map, "reused") {
                    self.simplex_reused += 1;
                }
                *self
                    .simplex_by_class
                    .entry(field_u(map, "class"))
                    .or_default() += 1;
            }
            "span_open" => {
                self.open_spans
                    .insert(field_u(map, "instance"), field_s(map, "label").to_string());
            }
            "span_close" => {
                let instance = field_u(map, "instance");
                let label = self
                    .open_spans
                    .remove(&instance)
                    .unwrap_or_else(|| "?".to_string());
                self.spans.push((
                    instance,
                    label,
                    field_b(map, "decided"),
                    field_b(map, "violated"),
                    map.get("rounds").and_then(JsonValue::as_uint),
                ));
            }
            "admission" => {
                self.admissions
                    .push((field_b(map, "ok"), field_s(map, "detail").to_string()));
            }
            "validity_check" => {
                self.validity_checks += 1;
                if !field_b(map, "ok") {
                    self.validity_failures += 1;
                }
            }
            _ => {}
        }
    }

    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# Trace report ({} event(s))\n", self.events));

        if !self.admissions.is_empty() {
            let admitted = self.admissions.iter().filter(|(ok, _)| *ok).count();
            out.push_str(&format!(
                "\nAdmissions: {admitted}/{} admitted",
                self.admissions.len()
            ));
            if let Some((_, detail)) = self.admissions.iter().find(|(ok, _)| !ok) {
                out.push_str(&format!(" (first rejection: {detail})"));
            }
            out.push('\n');
        }
        if self.validity_checks > 0 {
            out.push_str(&format!(
                "Validity checks: {} run, {} failed\n",
                self.validity_checks, self.validity_failures
            ));
        }

        if !self.convergence.is_empty() {
            out.push_str("\n## Per-round convergence (spread vs. round budget)\n\n");
            out.push_str("| round | spread |\n|---:|---:|\n");
            // Long runs are decimated to ~MAX_ROWS evenly spaced rows; the
            // last round (the converged spread) always survives.
            let stride = self.convergence.len().div_ceil(MAX_ROWS).max(1);
            for (i, (round, spread)) in self.convergence.iter().enumerate() {
                if i % stride != 0 && i + 1 != self.convergence.len() {
                    continue;
                }
                match spread {
                    Some(s) => out.push_str(&format!("| {round} | {s:.6} |\n")),
                    None => out.push_str(&format!("| {round} | - |\n")),
                }
            }
        }

        if !self.per_process.is_empty() {
            out.push_str("\n## Per-process message timeline\n\n");
            out.push_str(
                "| process | sent | delivered | dropped | vanished |\n|---:|---:|---:|---:|---:|\n",
            );
            for (process, t) in &self.per_process {
                out.push_str(&format!(
                    "| {process} | {} | {} | {} | {} |\n",
                    t.sent, t.delivered, t.dropped, t.vanished
                ));
            }
            out.push_str("\n## Per-round messages\n\n");
            out.push_str(
                "| round | sent | delivered | dropped | vanished |\n|---:|---:|---:|---:|---:|\n",
            );
            // Asynchronous traces have one "round" per delivery step, so the
            // table is bucketed into at most MAX_ROWS contiguous ranges with
            // summed counts (totals are preserved exactly).
            let rounds: Vec<_> = self.per_round_msgs.iter().collect();
            for bucket in rounds.chunks(rounds.len().div_ceil(MAX_ROWS).max(1)) {
                let (first, last) = (bucket[0].0, bucket[bucket.len() - 1].0);
                let label = if first == last {
                    first.to_string()
                } else {
                    format!("{first}\u{2013}{last}")
                };
                let mut t = MessageTotals::default();
                for (_, b) in bucket {
                    t.sent += b.sent;
                    t.delivered += b.delivered;
                    t.dropped += b.dropped;
                    t.vanished += b.vanished;
                }
                out.push_str(&format!(
                    "| {label} | {} | {} | {} | {} |\n",
                    t.sent, t.delivered, t.dropped, t.vanished
                ));
            }
        }

        if self.local_broadcasts > 0 {
            out.push_str(&format!(
                "\nLocal broadcast: {} canonicalised batch(es), {} slot(s) \
                 (per-receiver equivocation structurally impossible)\n",
                self.local_broadcasts, self.local_broadcast_slots
            ));
        }

        if !self.gamma.is_empty() {
            out.push_str("\n## Γ hot-path breakdown\n");
            let mut grand_total = 0u64;
            for (context, group) in &self.gamma {
                let label = if context.is_empty() {
                    "(no run context)"
                } else {
                    context
                };
                out.push_str(&format!(
                    "\n### {label} — {} quer(ies), {} probe miss(es)\n\n",
                    group.total, group.probe_misses
                ));
                out.push_str("| path | calls | share |\n|---|---:|---:|\n");
                for (row, count) in &group.rows {
                    out.push_str(&format!(
                        "| {row} | {count} | {:.1}% |\n",
                        100.0 * *count as f64 / group.total.max(1) as f64
                    ));
                }
                let sum: u64 = group.rows.values().sum();
                out.push_str(&format!("| **total** | {sum} | 100.0% |\n"));
                grand_total += sum;
            }
            out.push_str(&format!("\nTotal Γ queries: {grand_total}\n"));
        }

        if self.simplex_solves > 0 {
            out.push_str(&format!(
                "\n## Simplex profile\n\n{} solve(s), {} pivot(s) total ({:.2} per solve), \
                 workspace reuse {:.1}%\n\n| size class | solves |\n|---:|---:|\n",
                self.simplex_solves,
                self.simplex_pivots,
                self.simplex_pivots as f64 / self.simplex_solves as f64,
                100.0 * self.simplex_reused as f64 / self.simplex_solves as f64,
            ));
            for (class, count) in &self.simplex_by_class {
                out.push_str(&format!("| 2^{class} | {count} |\n"));
            }
        }

        if !self.spans.is_empty() || !self.open_spans.is_empty() {
            out.push_str("\n## Per-instance spans\n\n");
            out.push_str(
                "| instance | label | decided | violated | rounds |\n|---:|---|---|---|---:|\n",
            );
            for (instance, label, decided, violated, rounds) in &self.spans {
                let rounds = rounds.map_or("-".to_string(), |r| r.to_string());
                out.push_str(&format!(
                    "| {instance} | {label} | {decided} | {violated} | {rounds} |\n"
                ));
            }
            for (instance, label) in &self.open_spans {
                out.push_str(&format!(
                    "| {instance} | {label} | (span never closed) | - | - |\n"
                ));
            }
        }
        out
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut input: Option<String> = None;
    let mut check_only = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--in" => input = Some(args.next().unwrap_or_else(|| usage())),
            "--check" => check_only = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("trace-report: unknown argument `{other}`");
                usage();
            }
        }
    }
    let Some(path) = input else { usage() };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("trace-report: cannot read `{path}`: {e}");
            return ExitCode::from(2);
        }
    };

    let events = match check_trace(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("trace-report: `{path}`: {e}");
            return ExitCode::from(1);
        }
    };
    if check_only {
        println!("trace-report: `{path}` is valid bvc-trace/v1 ({events} event(s))");
        return ExitCode::SUCCESS;
    }

    let mut report = Report::default();
    let mut context = String::new();
    for line in text.lines().skip(1) {
        let map = parse_flat(line).expect("check_trace validated every line");
        report.ingest(&map, &mut context);
    }
    print!("{}", report.render());
    ExitCode::SUCCESS
}
