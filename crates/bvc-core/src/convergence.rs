//! Convergence-rate formulas of the approximate algorithms.
//!
//! The proof of Theorem 5 shows that in every asynchronous round the range of
//! the non-faulty states contracts by at least the factor `1 − γ` per
//! coordinate (equation (12)), where
//!
//! ```text
//! γ = 1 / ( n · C(n, n − f) )          (equation (11))
//! ```
//!
//! and Appendix F's witness optimisation improves this to `γ = 1 / n²`.  The
//! termination rule of the algorithm (Step 3) runs for
//! `1 + ⌈ log_{1/(1−γ)} ((U − ν)/ε) ⌉` rounds.  This module computes those
//! quantities; experiment E5 compares the measured per-round contraction with
//! these bounds.

use bvc_geometry::combinatorics::binomial;

/// The contraction parameter `γ = 1 / (n · C(n, n−f))` of equation (11).
///
/// # Panics
///
/// Panics if `f >= n` or `n < 2`.
pub fn gamma(n: usize, f: usize) -> f64 {
    assert!(n >= 2, "consensus is trivial for n < 2");
    assert!(f < n, "f must be smaller than n");
    let subsets = binomial(n, n - f) as f64;
    1.0 / (n as f64 * subsets)
}

/// The improved contraction parameter `γ = 1 / n²` obtained with the witness
/// optimisation of Appendix F.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn gamma_witness_optimized(n: usize) -> f64 {
    assert!(n >= 2, "consensus is trivial for n < 2");
    1.0 / (n as f64 * n as f64)
}

/// Conservative per-round contraction parameter assumed by the iterative
/// incomplete-graph protocol's round budget: `γ = 1 / (2n²)`.
///
/// The incomplete-graphs paper proves convergence without a closed-form rate
/// for general graphs (the rate depends on how information mixes across the
/// topology); `1/(2n²)` sits below the complete-graph rates above and is
/// validated empirically by the topology scenarios — sparse-but-sufficient
/// graphs such as seeded random-regular families reach ε-agreement well
/// inside the resulting budget.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn gamma_iterative(n: usize) -> f64 {
    assert!(n >= 2, "consensus is trivial for n < 2");
    1.0 / (2.0 * n as f64 * n as f64)
}

/// The round threshold `1 + ⌈ log_{1/(1−γ)} ((U − ν)/ε) ⌉` of Step 3 of the
/// asynchronous algorithm.
///
/// Returns 1 when the initial range `U − ν` is already within `ε`.
///
/// # Panics
///
/// Panics if `γ ∉ (0, 1)`, `ε ≤ 0`, or `upper < lower`.
pub fn round_threshold(gamma: f64, lower: f64, upper: f64, epsilon: f64) -> usize {
    assert!(gamma > 0.0 && gamma < 1.0, "gamma must lie in (0, 1)");
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(upper >= lower, "upper bound must not be below lower bound");
    let range = upper - lower;
    if range <= epsilon {
        return 1;
    }
    // log_{1/(1-γ)}(range/ε) = ln(range/ε) / ln(1/(1-γ)) = ln(range/ε) / (−ln(1−γ)).
    let rounds = (range / epsilon).ln() / (-(1.0 - gamma).ln());
    1 + rounds.ceil() as usize
}

/// The guaranteed range after `t` rounds starting from `initial_range`:
/// `(1 − γ)^t · initial_range` (equation (13)).
pub fn guaranteed_range(gamma: f64, initial_range: f64, t: usize) -> f64 {
    assert!(gamma > 0.0 && gamma < 1.0, "gamma must lie in (0, 1)");
    (1.0 - gamma).powi(t as i32) * initial_range
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_matches_hand_computation() {
        // n = 4, f = 1: C(4,3) = 4, γ = 1/16.
        assert!((gamma(4, 1) - 1.0 / 16.0).abs() < 1e-12);
        // n = 6, f = 1: C(6,5) = 6, γ = 1/36.
        assert!((gamma(6, 1) - 1.0 / 36.0).abs() < 1e-12);
        // n = 9, f = 2: C(9,7) = 36, γ = 1/324.
        assert!((gamma(9, 2) - 1.0 / 324.0).abs() < 1e-12);
    }

    #[test]
    fn witness_gamma_is_one_over_n_squared() {
        assert!((gamma_witness_optimized(6) - 1.0 / 36.0).abs() < 1e-12);
        assert!((gamma_witness_optimized(9) - 1.0 / 81.0).abs() < 1e-12);
    }

    #[test]
    fn witness_gamma_never_below_full_gamma() {
        // The witness optimisation can only improve (increase) γ, because
        // C(n, n−f) ≥ n for 1 ≤ f ≤ n−1... (equality at f = 1); check a sweep.
        for n in 4..10 {
            for f in 1..(n / 3).max(2) {
                if 3 * f + 1 > n {
                    continue;
                }
                assert!(
                    gamma_witness_optimized(n) >= gamma(n, f) - 1e-15,
                    "n={n}, f={f}"
                );
            }
        }
    }

    #[test]
    fn round_threshold_is_monotone_in_epsilon() {
        let g = gamma(6, 1);
        let coarse = round_threshold(g, 0.0, 1.0, 0.1);
        let fine = round_threshold(g, 0.0, 1.0, 0.001);
        assert!(fine > coarse);
        assert!(coarse >= 1);
    }

    #[test]
    fn round_threshold_when_already_within_epsilon() {
        assert_eq!(round_threshold(0.1, 0.0, 0.5, 1.0), 1);
    }

    #[test]
    fn guaranteed_range_contracts_geometrically() {
        let g = 0.25;
        let after_two = guaranteed_range(g, 8.0, 2);
        assert!((after_two - 8.0 * 0.5625).abs() < 1e-12);
        assert!(guaranteed_range(g, 8.0, 10) < guaranteed_range(g, 8.0, 5));
    }

    #[test]
    fn threshold_guarantees_epsilon() {
        // After `round_threshold` rounds the guaranteed range must be ≤ ε.
        for &(n, f) in &[(4usize, 1usize), (6, 1), (9, 2)] {
            let g = gamma(n, f);
            for &eps in &[0.1, 0.01] {
                let t = round_threshold(g, 0.0, 1.0, eps);
                assert!(
                    guaranteed_range(g, 1.0, t) <= eps * (1.0 + 1e-9),
                    "n={n} f={f} eps={eps}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "gamma must lie in (0, 1)")]
    fn bad_gamma_panics() {
        let _ = round_threshold(1.5, 0.0, 1.0, 0.1);
    }
}
